"""Tests for the graduated thermal-degradation supervisor.

Two styles: engine-integrated (the supervisor wired in by
``SimConfig.thermal.protection``, physics driven through the thermal
model's fault seams) and direct (a supervisor fed hand-crafted thermal
samples, for exact threshold/hysteresis arithmetic).
"""

import pytest

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.core.resilience import DVFSSupervisor, ThermalState, ThermalSupervisor
from repro.governors import MaxFrequencyGovernor
from repro.hw import ThermalConfig, ThermalParams, ThermalProtectionConfig, tc2_chip
from repro.hw.sensors import ThermalSample
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task

#: Fast thermal path (tau = 0.6 s) with a fault-free steady state below
#: the WARN threshold, so escalation in tests is injection-driven.
FAST_PARAMS = ThermalParams(resistance_k_per_w=6.0, capacitance_j_per_k=0.1)


def _thermal_sim(tasks, governor=None, protection=None, **config):
    chip = tc2_chip()
    thermal = ThermalConfig(
        params={c.cluster_id: FAST_PARAMS for c in chip.clusters},
        protection=protection,
    )
    return Simulation(
        chip,
        tasks,
        governor or MaxFrequencyGovernor(),
        config=SimConfig(thermal=thermal, **config),
    )


def _upward(transitions, cluster_id):
    order = [s.value for s in (
        ThermalState.NORMAL, ThermalState.WARN, ThermalState.THROTTLE,
        ThermalState.SHED, ThermalState.TRIP,
    )]
    return [
        new for _, cid, old, new in transitions
        if cid == cluster_id and order.index(new) > order.index(old)
    ]


class TestLadderInEngine:
    def test_runaway_engages_ladder_in_order_then_recovers(self):
        sim = _thermal_sim(build_workload("m2"), protection=ThermalProtectionConfig())
        sim.run(0.5)  # settle fault-free
        supervisor = sim.thermal_supervisor
        assert supervisor.state_of("big") is ThermalState.NORMAL
        sim.thermal.set_power_injection("big", 30.0)
        sim.run(2.0)
        assert supervisor.state_of("big") is ThermalState.TRIP
        assert "big" in sim.offline_clusters
        assert supervisor.unrecovered_trips == 1
        assert _upward(supervisor.transitions, "big") == [
            "warn", "throttle", "shed", "trip"
        ]
        # Heat source removed: the cluster cools, the ladder unwinds and
        # the supervisor replugs the cluster it tripped.
        sim.thermal.set_power_injection("big", 0.0)
        sim.run(4.0)
        assert supervisor.state_of("big") is ThermalState.NORMAL
        assert "big" not in sim.offline_clusters
        assert supervisor.recoveries == 1
        assert supervisor.unrecovered_trips == 0

    def test_time_over_tcrit_accumulates(self):
        sim = _thermal_sim(build_workload("m2"), protection=ThermalProtectionConfig())
        sim.thermal.set_power_injection("big", 30.0)
        sim.run(2.0)
        assert sim.time_over_tcrit_s > 0.0

    def test_without_protection_no_supervisor_acts(self):
        sim = _thermal_sim(build_workload("m2"))
        sim.thermal.set_power_injection("big", 30.0)
        sim.run(1.0)
        assert sim.thermal_supervisor is None
        assert "big" not in sim.offline_clusters
        assert sim.level_ceiling_of("big") is None


class TestLadderArithmetic:
    """Direct drive: exact thresholds and hysteresis, no physics."""

    def _setup(self, governor=None, tasks=()):
        sim = Simulation(
            tc2_chip(),
            list(tasks),
            governor or MaxFrequencyGovernor(),
            config=SimConfig(),
        )
        supervisor = ThermalSupervisor(ThermalProtectionConfig())
        return sim, supervisor

    def _evaluate(self, sim, supervisor, temps):
        sim.run(0.2)  # advance past the check period
        supervisor.on_tick(sim, ThermalSample(cluster_temperature_c=temps))

    def test_exact_threshold_enters_rung(self):
        sim, sup = self._setup()
        self._evaluate(sim, sup, {"big": 70.0, "little": 30.0})
        assert sup.state_of("big") is ThermalState.WARN
        assert sup.state_of("little") is ThermalState.NORMAL

    def test_hysteresis_band_holds_the_rung(self):
        sim, sup = self._setup()
        self._evaluate(sim, sup, {"big": 71.0})
        assert sup.state_of("big") is ThermalState.WARN
        # warn_c=70, hysteresis=5: anything in [65, 70) holds WARN.
        for temp in (69.0, 66.0, 65.0):
            self._evaluate(sim, sup, {"big": temp})
            assert sup.state_of("big") is ThermalState.WARN
        self._evaluate(sim, sup, {"big": 64.9})
        assert sup.state_of("big") is ThermalState.NORMAL
        assert sup.warnings == 1  # one engagement, no chatter

    def test_one_rung_per_evaluation_even_when_scalding(self):
        sim, sup = self._setup()
        for expected in (
            ThermalState.WARN,
            ThermalState.THROTTLE,
            ThermalState.SHED,
            ThermalState.TRIP,
        ):
            self._evaluate(sim, sup, {"big": 120.0})
            assert sup.state_of("big") is expected

    def test_evaluations_gated_by_check_period(self):
        sim, sup = self._setup()
        sim.run(0.2)
        sup.on_tick(sim, ThermalSample(cluster_temperature_c={"big": 120.0}))
        sup.on_tick(sim, ThermalSample(cluster_temperature_c={"big": 120.0}))
        # Second call lands inside the same check period: no extra rung.
        assert sup.state_of("big") is ThermalState.WARN

    def test_throttle_ratchets_ceiling_down_then_back_up(self):
        sim, sup = self._setup()
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        self._evaluate(sim, sup, {"big": 85.0})  # -> WARN, no ceiling yet
        assert sim.level_ceiling_of("big") is None
        self._evaluate(sim, sup, {"big": 85.0})  # -> THROTTLE
        assert sim.level_ceiling_of("big") == top - 1
        self._evaluate(sim, sup, {"big": 85.0})  # still hot: one more level
        assert sim.level_ceiling_of("big") == top - 2
        # In the hysteresis band the ceiling holds (no ratchet either way).
        self._evaluate(sim, sup, {"big": 77.0})
        assert sup.state_of("big") is ThermalState.THROTTLE
        assert sim.level_ceiling_of("big") == top - 2
        # Cooled below throttle_c - hysteresis: rung down, ceiling back up.
        self._evaluate(sim, sup, {"big": 60.0})
        assert sup.state_of("big") is ThermalState.WARN
        assert sim.level_ceiling_of("big") == top - 1
        self._evaluate(sim, sup, {"big": 60.0})
        assert sim.level_ceiling_of("big") is None  # cleared at the top

    def test_ceiling_clamps_governor_requests(self):
        sim, sup = self._setup()
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        self._evaluate(sim, sup, {"big": 85.0})
        self._evaluate(sim, sup, {"big": 85.0})
        sim.request_level(big, top)
        assert big.regulator.target_index == top - 1

    def test_shed_migrates_tasks_to_cooler_cluster(self):
        task = make_task("x264", "l")
        sim, sup = self._setup(tasks=[task])
        sim.run(0.05)  # initial placement happens on the first tick
        big = sim.chip.cluster("big")
        if sim.placement.core_of(task).cluster.cluster_id != "big":
            sim.migrate(task, big.cores[0])
        # 91 >= shed_c after two intermediate rungs; little stays cool.
        for _ in range(3):
            self._evaluate(sim, sup, {"big": 91.0, "little": 35.0})
        assert sup.state_of("big") is ThermalState.SHED
        assert sim.placement.core_of(task).cluster.cluster_id == "little"
        assert sup.tasks_shed == 1
        assert not sim.placement.tasks_on_cluster(big)

    def test_never_replugs_clusters_it_did_not_trip(self):
        sim, sup = self._setup()
        big = sim.chip.cluster("big")
        sim.hotplug_out(big)  # injected fault, not a thermal trip
        for _ in range(5):
            self._evaluate(sim, sup, {"big": 30.0, "little": 30.0})
        assert "big" in sim.offline_clusters
        assert sup.recoveries == 0

    def test_warn_surcharge_applied_and_cleared(self):
        governor = PPMGovernor(PPMConfig(market=MarketConfig()))
        task = make_task("x264", "l")
        sim, sup = self._setup(governor=governor, tasks=[task])
        self._evaluate(sim, sup, {"big": 71.0})
        assert governor.thermal_surcharge == pytest.approx(0.25)
        for _ in range(2):
            self._evaluate(sim, sup, {"big": 30.0})
        assert governor.thermal_surcharge == 0.0

    def test_surcharge_hook_optional(self):
        sim, sup = self._setup()  # MaxFrequencyGovernor has no hook
        self._evaluate(sim, sup, {"big": 71.0})  # must not raise
        assert sup.state_of("big") is ThermalState.WARN

    def test_snapshot_roundtrip_resumes_identically(self):
        sim, sup = self._setup()
        for temp in (85.0, 85.0, 77.0):
            self._evaluate(sim, sup, {"big": temp})
        clone = ThermalSupervisor(ThermalProtectionConfig())
        clone.restore_state(sup.snapshot_state())
        assert clone.state_of("big") is sup.state_of("big")
        assert clone.stats() == sup.stats()
        assert clone.transitions == sup.transitions


class TestDVFSSupervisorUnderCeiling:
    def test_no_reissue_storm_while_throttled(self):
        sim = Simulation(
            tc2_chip(), [], MaxFrequencyGovernor(), config=SimConfig()
        )
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        sim.set_level_ceiling(big, 1)
        dvfs = DVFSSupervisor()
        dvfs.request(sim, big, top)
        assert big.regulator.target_index == 1  # clamped by the ceiling
        for round_no in range(5):
            assert dvfs.verify(sim, round_no) == 0
        assert dvfs.reissues == 0
        # Ceiling lifted: verification notices and restores the desire.
        sim.clear_level_ceiling(big)
        assert dvfs.verify(sim, 6) == 1
        assert big.regulator.target_index == top
