"""Market mechanics beyond the running examples: registry, freezes,
renormalisation, floor descent, growth gating."""

import pytest

from repro.core import (
    ChipPowerState,
    ClusterFreeze,
    Market,
    MarketConfig,
    MarketObservations,
)


def two_cluster_market(config=None):
    market = Market(config or MarketConfig(initial_allowance=40.0))
    market.add_cluster("big", ["b0", "b1"], [500.0, 800.0, 1200.0])
    market.add_cluster("little", ["l0", "l1"], [350.0, 700.0, 1000.0])
    return market


def observe(market, demands, levels, power=1.0, cluster_power=None, in_transition=None):
    return market.run_round(
        MarketObservations(
            demands=demands,
            cluster_level=levels,
            cluster_in_transition=in_transition or {},
            chip_power_w=power,
            cluster_power_w=cluster_power or {"big": power / 2, "little": power / 2},
        )
    )


class TestRegistry:
    def test_duplicate_cluster_rejected(self):
        market = two_cluster_market()
        with pytest.raises(ValueError):
            market.add_cluster("big", ["x"], [100.0])

    def test_duplicate_core_rejected(self):
        market = two_cluster_market()
        with pytest.raises(ValueError):
            market.add_cluster("other", ["b0"], [100.0])

    def test_duplicate_task_rejected(self):
        market = two_cluster_market()
        market.add_task("t", 1, "b0")
        with pytest.raises(ValueError):
            market.add_task("t", 1, "b1")

    def test_task_on_unknown_core_rejected(self):
        with pytest.raises(KeyError):
            two_cluster_market().add_task("t", 1, "nope")

    def test_move_preserves_agent_state(self):
        market = two_cluster_market()
        agent = market.add_task("t", 1, "b0")
        agent.bid = 7.0
        market.move_task("t", "l1")
        assert market.core_of("t") == "l1"
        assert market.tasks["t"].bid == 7.0

    def test_move_unknown_task_or_core_rejected(self):
        market = two_cluster_market()
        market.add_task("t", 1, "b0")
        with pytest.raises(KeyError):
            market.move_task("nope", "b0")
        with pytest.raises(KeyError):
            market.move_task("t", "nope")

    def test_remove_task(self):
        market = two_cluster_market()
        market.add_task("t", 1, "b0")
        market.remove_task("t")
        assert market.tasks_on_core("b0") == []

    def test_constrained_core_is_highest_demand(self):
        market = two_cluster_market()
        a = market.add_task("a", 1, "l0")
        b = market.add_task("b", 1, "l1")
        a.demand, b.demand = 100.0, 400.0
        assert market.constrained_core("little").core_id == "l1"
        assert market.cluster_demand("little") == 400.0

    def test_constrained_core_empty_cluster(self):
        market = two_cluster_market()
        assert market.constrained_core("big") is None
        assert market.cluster_demand("big") == 0.0

    def test_allowance_pool_bootstrap(self):
        market = two_cluster_market(MarketConfig())
        market.add_task("t", 1, "b0")
        assert market.chip.allowance > 0.0


class TestFreezeProtocol:
    def test_awaiting_while_hardware_in_transition(self):
        market = two_cluster_market()
        market.add_task("t", 1, "l0")
        # Force a demand spike so the cluster requests a level.
        for _ in range(6):
            result = observe(market, {"t": 900.0}, {"big": 0, "little": 0})
            if result.level_requests:
                break
        assert market.clusters["little"].freeze is ClusterFreeze.AWAITING
        bid_before = market.tasks["t"].bid
        # Hardware still mid-transition: bids must not move, allocations held.
        result = observe(
            market,
            {"t": 900.0},
            {"big": 0, "little": 0},
            in_transition={"little": True},
        )
        assert market.tasks["t"].bid == bid_before
        assert market.clusters["little"].freeze is ClusterFreeze.AWAITING

    def test_observation_round_unfreezes_and_resets_base(self):
        market = two_cluster_market()
        market.add_task("t", 1, "l0")
        for _ in range(6):
            result = observe(market, {"t": 900.0}, {"big": 0, "little": 0})
            if result.level_requests:
                break
        new_level = result.level_requests["little"]
        result = observe(market, {"t": 900.0}, {"big": 0, "little": new_level})
        assert market.clusters["little"].freeze is ClusterFreeze.ACTIVE
        assert market.cores["l0"].base_price == pytest.approx(result.prices["l0"])


class TestAllocations:
    def test_allocations_sum_to_core_supply(self):
        market = two_cluster_market()
        market.add_task("a", 1, "l0")
        market.add_task("b", 2, "l0")
        result = observe(
            market, {"a": 300.0, "b": 400.0}, {"big": 0, "little": 1}
        )
        assert result.allocations["a"] + result.allocations["b"] == pytest.approx(700.0)

    def test_cores_priced_independently(self):
        market = two_cluster_market()
        market.add_task("a", 1, "l0")
        market.add_task("b", 1, "l1")
        market.tasks["a"].bid = 2.0
        market.tasks["b"].bid = 0.5
        result = observe(market, {"a": 300.0, "b": 300.0}, {"big": 0, "little": 0})
        assert result.prices["l0"] != result.prices["l1"]

    def test_empty_core_price_zero(self):
        market = two_cluster_market()
        market.add_task("a", 1, "l0")
        result = observe(market, {"a": 100.0}, {"big": 0, "little": 0})
        assert result.prices["b0"] == 0.0


class TestGrowthGating:
    def test_no_growth_when_all_satisfied(self):
        market = two_cluster_market(MarketConfig(initial_allowance=10.0))
        market.add_task("t", 1, "l0")
        observe(market, {"t": 100.0}, {"big": 0, "little": 0})
        before = market.chip.allowance
        for _ in range(5):
            observe(market, {"t": 100.0}, {"big": 0, "little": 0})
        assert market.chip.allowance == before

    def test_no_growth_at_max_level(self):
        market = two_cluster_market(MarketConfig(initial_allowance=10.0))
        market.add_task("t", 1, "l0")
        observe(market, {"t": 5000.0}, {"big": 0, "little": 2})
        before = market.chip.allowance
        for _ in range(5):
            observe(market, {"t": 5000.0}, {"big": 0, "little": 2})
        assert market.chip.allowance == before

    def test_grows_on_cluster_shortage_below_max(self):
        market = two_cluster_market(MarketConfig(initial_allowance=10.0))
        market.add_task("t", 1, "l0")
        before = market.chip.allowance
        for _ in range(3):
            observe(market, {"t": 900.0}, {"big": 0, "little": 0})
        assert market.chip.allowance > before


class TestRenormalisation:
    def test_redenomination_preserves_relative_state(self):
        market = two_cluster_market(MarketConfig(initial_allowance=10.0))
        a = market.add_task("a", 1, "l0")
        b = market.add_task("b", 1, "l0")
        observe(market, {"a": 300.0, "b": 100.0}, {"big": 0, "little": 0})
        observe(market, {"a": 300.0, "b": 100.0}, {"big": 0, "little": 0})
        ratio_before = a.bid / b.bid
        # Inflate the money supply grotesquely, then renormalise.
        market.chip.allowance = 1e12
        a.bid *= 1e10
        b.bid *= 1e10
        a.wallet.allowance *= 1e10
        b.wallet.allowance *= 1e10
        for core in market.cores.values():
            core.price *= 1e10
            if core.base_price is not None:
                core.base_price *= 1e10
        market._renormalize_money()
        assert market.chip.allowance < 1e9
        assert a.bid / b.bid == pytest.approx(ratio_before, rel=1e-6)

    def test_noop_below_threshold(self):
        market = two_cluster_market(MarketConfig(initial_allowance=10.0))
        market.add_task("a", 1, "l0")
        market._renormalize_money()
        assert market.chip.allowance == 10.0


class TestEmergencyDescent:
    def test_supply_never_raised_in_emergency(self):
        market = two_cluster_market(
            MarketConfig(initial_allowance=40.0, wtdp=2.0, wth=1.5)
        )
        market.add_task("t", 1, "l0")
        # Demand pressure + power above TDP: no upward level requests.
        for _ in range(10):
            result = observe(
                market, {"t": 900.0}, {"big": 0, "little": 1}, power=3.0
            )
            for cluster_id, level in result.level_requests.items():
                assert level <= market.clusters[cluster_id].level_index

    def test_floor_bids_force_descent_in_emergency(self):
        market = two_cluster_market(
            MarketConfig(initial_allowance=40.0, wtdp=2.0, wth=1.5)
        )
        market.add_task("t", 1, "l0")
        market.tasks["t"].bid = market.config.bmin
        market.tasks["t"].wallet.allowance = market.config.bmin
        result = observe(market, {"t": 900.0}, {"big": 0, "little": 2}, power=3.0)
        assert result.chip_state is ChipPowerState.EMERGENCY
        assert result.level_requests.get("little") == 1
