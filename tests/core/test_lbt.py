"""Unit tests for the load-balancing and task-migration module."""

import pytest

from repro.core import LBTModule, Market, MarketConfig, SteadyStateEstimator


def build_market():
    market = Market(MarketConfig(tolerance=0.2, initial_allowance=40.0))
    market.add_cluster("big", ["b0", "b1"], [500.0, 800.0, 1200.0])
    market.add_cluster("little", ["l0", "l1", "l2"], [350.0, 700.0, 1000.0])
    return market


ENERGY = {"big": 1.8e-3, "little": 6.5e-4}


def make_lbt(market, min_saving=0.02):
    def demand_lookup(task_id, cluster_id):
        agent = market.tasks[task_id]
        current = market.cores[market.core_of(task_id)].cluster_id
        if cluster_id == current:
            return agent.demand
        return agent.demand / 2.0 if cluster_id == "big" else agent.demand * 2.0

    estimator = SteadyStateEstimator(
        market, demand_lookup, lambda cid, lvl: ENERGY[cid]
    )
    return LBTModule(market, estimator, min_spend_saving_frac=min_saving)


def add(market, task_id, core, demand, supply=None, bid=1.0, priority=1, unsat=0):
    agent = market.add_task(task_id, priority, core)
    agent.demand = demand
    agent.supply = demand if supply is None else supply
    agent.bid = bid
    agent.unsatisfied_rounds = unsat
    return agent


class TestPerformanceMode:
    def make_overloaded_little(self):
        """Two tasks on one little core that cannot both be served."""
        market = build_market()
        add(market, "heavy", "l0", 800.0, supply=500.0, bid=2.0, unsat=10)
        add(market, "light", "l1", 200.0, bid=0.5)
        market.clusters["little"].level_index = 2
        market.cores["l0"].price = 0.005
        market.cores["l1"].price = 0.001
        # Another heavy task shares the constrained core.
        add(market, "mate", "l0", 600.0, supply=400.0, bid=1.5, unsat=10)
        return market

    def test_migration_promotes_persistent_unsatisfied_task(self):
        market = self.make_overloaded_little()
        lbt = make_lbt(market)
        decision = lbt.propose_migration()
        assert decision is not None
        assert decision.mode == "performance"
        assert decision.task_id in {"heavy", "mate"}
        assert decision.target_core_id in {"b0", "b1"}

    def test_transient_dissatisfaction_does_not_migrate(self):
        market = self.make_overloaded_little()
        for agent in market.tasks.values():
            agent.unsatisfied_rounds = 1  # below the persistence bar
        decision = make_lbt(market).propose_migration()
        assert decision is None

    def test_exclusion_blocks_cooling_tasks(self):
        market = self.make_overloaded_little()
        lbt = make_lbt(market)
        decision = lbt.propose_migration(
            exclude_tasks=frozenset({"heavy", "mate"})
        )
        assert decision is None

    def test_load_balance_stays_within_cluster(self):
        market = build_market()
        add(market, "a", "l0", 600.0, supply=400.0, bid=2.0, unsat=10)
        add(market, "b", "l0", 500.0, supply=350.0, bid=1.5, unsat=10)
        market.clusters["little"].level_index = 2
        market.cores["l0"].price = 0.004
        decision = make_lbt(market).propose_load_balance()
        assert decision is not None
        assert decision.target_core_id.startswith("l")
        assert decision.source_core_id == "l0"

    def test_higher_priority_mover_preferred(self):
        market = build_market()
        # Demands so large that even the priority-proportional steady-state
        # share cannot satisfy the high-priority task in place.
        add(market, "lo", "l0", 900.0, supply=150.0, bid=2.0, priority=1, unsat=10)
        add(market, "hi", "l0", 900.0, supply=750.0, bid=2.0, priority=5, unsat=10)
        market.clusters["little"].level_index = 2
        market.cores["l0"].price = 0.005
        decision = make_lbt(market).propose_migration()
        assert decision is not None
        assert decision.task_id == "hi"

    def test_satisfied_in_steady_state_does_not_move(self):
        market = build_market()
        # hi is under-supplied *now* but its steady-state priority share
        # covers it, so only lo contemplates moving.
        add(market, "lo", "l0", 700.0, supply=400.0, bid=2.0, priority=1, unsat=10)
        add(market, "hi", "l0", 700.0, supply=400.0, bid=2.0, priority=5, unsat=10)
        market.clusters["little"].level_index = 2
        market.cores["l0"].price = 0.005
        decision = make_lbt(market).propose_migration()
        assert decision is not None
        assert decision.task_id == "lo"


class TestPowerMode:
    def make_wasteful_big(self):
        """A small satisfied task alone on big; little has room."""
        market = build_market()
        add(market, "small", "b0", 150.0, supply=500.0, bid=1.0)
        add(market, "other", "l0", 300.0, bid=0.8)
        market.clusters["big"].level_index = 0
        market.clusters["little"].level_index = 1
        market.cores["b0"].price = 0.004
        market.cores["l0"].price = 0.002
        return market

    def test_migration_reclaims_energy(self):
        market = self.make_wasteful_big()
        decision = make_lbt(market).propose_migration()
        assert decision is not None
        assert decision.mode == "power"
        assert decision.task_id == "small"
        assert decision.target_core_id.startswith("l")
        assert decision.spend_saving > 0

    def test_power_mode_never_wakes_empty_cluster(self):
        market = build_market()
        # Only little is populated and everyone is satisfied.
        add(market, "a", "l0", 300.0, bid=1.0)
        add(market, "b", "l1", 250.0, bid=0.9)
        market.clusters["little"].level_index = 1
        market.cores["l0"].price = 0.002
        decision = make_lbt(market).propose_migration()
        assert decision is None or not decision.target_core_id.startswith("b")

    def test_insufficient_saving_rejected(self):
        market = self.make_wasteful_big()
        lbt = make_lbt(market, min_saving=100.0)  # absurd bar
        assert lbt.propose_migration() is None

    def test_empty_market_proposes_nothing(self):
        market = build_market()
        assert make_lbt(market).propose_migration() is None
        assert make_lbt(market).propose_load_balance() is None

    def test_evaluation_counter_increments(self):
        market = self.make_wasteful_big()
        lbt = make_lbt(market)
        lbt.propose_migration()
        assert lbt.evaluations > 0
