"""Unit tests for steady-state mapping estimation and perf/spend orders."""

import pytest

from repro.core import (
    Market,
    MarketConfig,
    SteadyStateEstimator,
    perf_equal,
    perf_improves,
    perf_not_worse,
)


class TestPerfOrdering:
    PRIOS = {"hi": 5, "mid": 3, "lo": 1}

    def test_improvement_with_no_higher_priority_harm(self):
        cur = {"hi": 1.0, "mid": 0.5, "lo": 0.5}
        new = {"hi": 1.0, "mid": 0.9, "lo": 0.5}
        assert perf_improves(cur, new, self.PRIOS)

    def test_improvement_rejected_if_higher_priority_worsens(self):
        cur = {"hi": 1.0, "mid": 0.5, "lo": 0.5}
        new = {"hi": 0.8, "mid": 0.9, "lo": 0.5}
        assert not perf_improves(cur, new, self.PRIOS)

    def test_lower_priority_may_be_sacrificed(self):
        # The paper's ordering: only *higher*-priority tasks are protected.
        cur = {"hi": 0.5, "mid": 1.0, "lo": 1.0}
        new = {"hi": 0.9, "mid": 0.4, "lo": 0.4}
        assert perf_improves(cur, new, self.PRIOS)

    def test_no_change_is_not_improvement(self):
        cur = {"hi": 0.5, "lo": 0.5}
        assert not perf_improves(cur, dict(cur), self.PRIOS)

    def test_equal(self):
        cur = {"hi": 0.5, "lo": 0.7}
        assert perf_equal(cur, dict(cur))
        assert not perf_equal(cur, {"hi": 0.5})
        assert not perf_equal(cur, {"hi": 0.5, "lo": 0.8})

    def test_not_worse(self):
        cur = {"hi": 0.5, "lo": 0.7}
        assert perf_not_worse(cur, dict(cur), self.PRIOS)
        assert perf_not_worse(cur, {"hi": 0.6, "lo": 0.7}, self.PRIOS)
        assert not perf_not_worse(cur, {"hi": 0.4, "lo": 0.7}, self.PRIOS)


def build_market():
    market = Market(MarketConfig(tolerance=0.2, initial_allowance=40.0))
    market.add_cluster("big", ["b0", "b1"], [500.0, 800.0, 1200.0])
    market.add_cluster("little", ["l0", "l1", "l2"], [350.0, 700.0, 1000.0])
    return market


def set_state(agent, demand, supply, bid):
    agent.demand, agent.supply, agent.bid = demand, supply, bid


class TestEstimator:
    def make(self, energy=None):
        market = build_market()
        a = market.add_task("a", 2, "l0")
        b = market.add_task("b", 1, "l1")
        set_state(a, 600.0, 600.0, 2.0)
        set_state(b, 300.0, 300.0, 1.0)
        market.clusters["little"].level_index = 1
        market.cores["l0"].price = 0.004
        market.cores["l1"].price = 0.002

        def demand_lookup(task_id, cluster_id):
            agent = market.tasks[task_id]
            if cluster_id == "big":
                return agent.demand / 2.0  # profiled 2x speedup
            return agent.demand

        return market, SteadyStateEstimator(market, demand_lookup, energy)

    def test_current_mapping_satisfied(self):
        market, estimator = self.make()
        estimate = estimator.evaluate_current()
        assert estimate.all_satisfied
        assert estimate.ratios == {"a": 1.0, "b": 1.0}

    def test_required_level_rounds_demand_up(self):
        market, estimator = self.make()
        estimate = estimator.evaluate_current()
        # Constrained little core demands 600 -> level 1 (700 PUs).
        assert estimate.levels["little"] == 1

    def test_saturated_core_splits_by_priority(self):
        market, estimator = self.make()
        market.tasks["a"].demand = 900.0
        market.tasks["b"].demand = 900.0
        market.move_task("b", "l0")  # both on one core: 1800 > 1000 max
        estimate = estimator.evaluate_current()
        assert not estimate.all_satisfied
        ratio_a = estimate.ratios["a"]
        ratio_b = estimate.ratios["b"]
        # Priority 2 vs 1 -> a gets twice b's supply.
        assert ratio_a == pytest.approx(2 * ratio_b, rel=1e-6)
        assert set(estimate.unsatisfied_tasks()) == {"a", "b"}

    def test_price_recursion_up(self):
        market, estimator = self.make()
        price = estimator.estimate_price("little", 2)
        # One level up from index 1 at constrained-core price 0.004.
        assert price == pytest.approx(0.004 * 1.2)

    def test_price_recursion_down(self):
        market, estimator = self.make()
        price = estimator.estimate_price("little", 0)
        assert price == pytest.approx(0.004 * 0.8)

    def test_priceless_cluster_uses_market_average(self):
        market, estimator = self.make()
        price = estimator.estimate_price("big", 0)
        avg = (2.0 + 1.0) / 700.0  # total bids / populated supply
        assert price == pytest.approx(avg)

    def test_evaluate_move_covers_both_clusters(self):
        market, estimator = self.make()
        current, candidate = estimator.evaluate_move("a", "b0")
        assert set(current.levels) == {"big", "little"}
        assert "a" in candidate.ratios
        # In the candidate, a's demand halves on the big core type.
        assert candidate.levels["big"] == 0  # 300 <= 500

    def test_evaluate_move_unknown_ids(self):
        market, estimator = self.make()
        with pytest.raises(KeyError):
            estimator.evaluate_move("nope", "b0")
        with pytest.raises(KeyError):
            estimator.evaluate_move("a", "nope")

    def test_energy_aware_pricing_makes_big_expensive(self):
        costs = {"big": 2e-3, "little": 6e-4}

        def energy(cluster_id, level):
            return costs[cluster_id]

        market, estimator = self.make(energy=energy)
        big_price = estimator.estimate_price("big", 0)
        little_price = estimator.estimate_price("little", 0)
        assert big_price / little_price == pytest.approx(2e-3 / 6e-4)

    def test_spend_is_sum_of_bids(self):
        market, estimator = self.make()
        estimate = estimator.evaluate_current()
        assert estimate.spend == pytest.approx(sum(estimate.bids.values()))

    def test_bids_floored_at_bmin(self):
        market, estimator = self.make()
        market.tasks["b"].demand = 0.001
        estimate = estimator.evaluate_current()
        assert estimate.bids["b"] >= market.config.bmin
