"""Unit tests for wallets: allowances, savings, bid clamping."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Wallet


class TestBudget:
    def test_budget_is_allowance_plus_savings(self):
        assert Wallet(allowance=2.0, savings=3.0).budget() == 5.0


class TestClampBid:
    def test_within_budget_passes_through(self):
        assert Wallet(2.0, 1.0).clamp_bid(2.5, bmin=0.1) == 2.5

    def test_capped_at_budget(self):
        assert Wallet(2.0, 1.0).clamp_bid(10.0, bmin=0.1) == 3.0

    def test_floored_at_bmin(self):
        assert Wallet(2.0, 1.0).clamp_bid(0.0, bmin=0.1) == 0.1

    def test_destitute_agent_still_bids_bmin(self):
        assert Wallet(0.0, 0.0).clamp_bid(5.0, bmin=0.1) == 0.1


class TestSettle:
    def test_unspent_allowance_becomes_savings(self):
        w = Wallet(allowance=3.0, savings=0.0)
        w.settle(bid=1.0, cap_fraction=10.0)
        assert w.savings == pytest.approx(2.0)

    def test_overspending_drains_savings(self):
        w = Wallet(allowance=1.0, savings=5.0)
        w.settle(bid=3.0, cap_fraction=10.0)
        assert w.savings == pytest.approx(3.0)

    def test_savings_never_negative(self):
        w = Wallet(allowance=1.0, savings=0.5)
        w.settle(bid=2.0, cap_fraction=10.0)
        assert w.savings == 0.0

    def test_cap_applied(self):
        w = Wallet(allowance=2.0, savings=9.5)
        w.settle(bid=0.0, cap_fraction=5.0)
        assert w.savings == pytest.approx(10.0)  # 5 * allowance

    def test_repeated_saving_accumulates_to_cap(self):
        w = Wallet(allowance=1.0, savings=0.0)
        for _ in range(20):
            w.settle(bid=0.2, cap_fraction=5.0)
        assert w.savings == pytest.approx(5.0)

    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=200),
        st.floats(min_value=0, max_value=10),
    )
    def test_invariant_zero_leq_savings_leq_cap(self, allowance, savings, bid, cap):
        w = Wallet(allowance=allowance, savings=savings)
        bid = w.clamp_bid(bid, bmin=0.01)
        w.settle(bid, cap_fraction=cap)
        assert 0.0 <= w.savings <= cap * allowance + 1e-9

    @given(
        st.floats(min_value=0.01, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=-1000, max_value=1000),
    )
    def test_clamped_bid_always_affordable_or_bmin(self, allowance, savings, desired):
        w = Wallet(allowance=allowance, savings=savings)
        bid = w.clamp_bid(desired, bmin=0.01)
        assert bid >= 0.01
        assert bid <= max(w.budget(), 0.01)
