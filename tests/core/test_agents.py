"""Unit tests for the four agent types."""

import pytest

from repro.core import (
    ChipAgent,
    ChipPowerState,
    ClusterAgent,
    CoreAgent,
    TaskAgent,
    Wallet,
    distribute_allowance,
)


class TestTaskAgent:
    def make(self, bid=1.0, demand=200.0, supply=150.0):
        agent = TaskAgent(task_id="t", priority=1, bid=bid)
        agent.demand = demand
        agent.supply = supply
        agent.wallet = Wallet(allowance=10.0, savings=0.0)
        return agent

    def test_undersupplied_raises_bid(self):
        agent = self.make()
        assert agent.desired_bid(0.01) == pytest.approx(1.0 + 50 * 0.01)

    def test_oversupplied_lowers_bid(self):
        agent = self.make(demand=100.0, supply=150.0)
        assert agent.desired_bid(0.01) < 1.0

    def test_satisfied_keeps_bid(self):
        agent = self.make(demand=150.0, supply=150.0)
        assert agent.desired_bid(0.01) == 1.0

    def test_place_bid_clamps_and_settles(self):
        agent = self.make()
        agent.wallet = Wallet(allowance=1.2, savings=0.0)
        bid = agent.place_bid(last_price=1.0, bmin=0.01, cap_fraction=5.0)
        assert bid == pytest.approx(1.2)  # clamped to budget
        assert agent.wallet.savings == pytest.approx(0.0)

    def test_supply_demand_ratio(self):
        agent = self.make(demand=200.0, supply=100.0)
        assert agent.supply_demand_ratio == 0.5
        agent.demand = 0.0
        assert agent.supply_demand_ratio == 1.0

    def test_unsatisfied_rounds_counter(self):
        agent = self.make(demand=200.0, supply=100.0)
        agent.note_round_outcome()
        agent.note_round_outcome()
        assert agent.unsatisfied_rounds == 2
        agent.supply = 250.0
        agent.note_round_outcome()
        assert agent.unsatisfied_rounds == 0


class TestCoreAgent:
    def test_price_discovery(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        assert core.discover_price([1.0, 1.0], 300.0) == pytest.approx(1 / 150)

    def test_first_price_becomes_base(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        core.discover_price([3.0], 300.0)
        assert core.base_price == pytest.approx(0.01)

    def test_zero_supply_gives_zero_price(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        assert core.discover_price([1.0], 0.0) == 0.0

    def test_inflation_signal(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        core.price, core.base_price = 1.3, 1.0
        assert core.inflation_signal(0.2) == 1
        core.price = 0.7
        assert core.inflation_signal(0.2) == -1
        core.price = 1.1
        assert core.inflation_signal(0.2) == 0

    def test_signal_boundary_inclusive(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        core.price, core.base_price = 1.2, 1.0
        assert core.inflation_signal(0.2) == 1

    def test_no_base_price_no_signal(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        core.price = 5.0
        assert core.inflation_signal(0.2) == 0

    def test_reset_base_price(self):
        core = CoreAgent(core_id="c", cluster_id="v")
        core.discover_price([1.0], 100.0)
        core.discover_price([2.0], 100.0)
        core.reset_base_price()
        assert core.base_price == core.price


class TestClusterAgent:
    def make(self, level=1):
        return ClusterAgent(
            cluster_id="v",
            core_ids=["c0", "c1"],
            supply_ladder=[300.0, 400.0, 500.0],
            level_index=level,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterAgent("v", [], [300.0])
        with pytest.raises(ValueError):
            ClusterAgent("v", ["c"], [500.0, 300.0])

    def test_supply_properties(self):
        cluster = self.make(level=1)
        assert cluster.supply == 400.0
        assert cluster.max_supply == 500.0
        assert cluster.max_index == 2

    def test_decide_level_change_follows_signal(self):
        cluster = self.make(level=1)
        core = CoreAgent(core_id="c0", cluster_id="v")
        core.price, core.base_price = 1.3, 1.0
        assert cluster.decide_level_change(core, 0.2) == 1
        core.price = 0.7
        assert cluster.decide_level_change(core, 0.2) == -1

    def test_decide_clamped_at_ends(self):
        core = CoreAgent(core_id="c0", cluster_id="v")
        core.price, core.base_price = 2.0, 1.0
        top = self.make(level=2)
        assert top.decide_level_change(core, 0.2) == 0
        core.price = 0.1
        bottom = self.make(level=0)
        assert bottom.decide_level_change(core, 0.2) == 0


class TestChipAgent:
    def make(self, allowance=10.0):
        return ChipAgent(allowance=allowance, wth=1.75, wtdp=2.25)

    def test_classify_states(self):
        chip = self.make()
        assert chip.classify(1.0) is ChipPowerState.NORMAL
        assert chip.classify(2.0) is ChipPowerState.THRESHOLD
        assert chip.classify(1.75) is ChipPowerState.THRESHOLD
        assert chip.classify(2.26) is ChipPowerState.EMERGENCY

    def test_no_tdp_always_normal(self):
        chip = ChipAgent(allowance=1.0)
        assert chip.classify(100.0) is ChipPowerState.NORMAL

    def test_normal_growth_proportional_to_shortfall(self):
        chip = self.make(allowance=10.0)
        chip.update_allowance(1.0, total_demand=600.0, supply_shortfall=60.0, floor=0.1)
        assert chip.allowance == pytest.approx(11.0)

    def test_normal_growth_capped(self):
        chip = self.make(allowance=10.0)
        chip.update_allowance(1.0, total_demand=100.0, supply_shortfall=90.0, floor=0.1)
        assert chip.allowance == pytest.approx(11.0)  # 10% cap, not 90%

    def test_growth_gated_when_not_useful(self):
        chip = self.make(allowance=10.0)
        chip.update_allowance(
            1.0, total_demand=600.0, supply_shortfall=60.0, floor=0.1, growth_useful=False
        )
        assert chip.allowance == 10.0

    def test_threshold_holds_allowance(self):
        chip = self.make(allowance=10.0)
        chip.update_allowance(2.0, total_demand=600.0, supply_shortfall=100.0, floor=0.1)
        assert chip.allowance == 10.0

    def test_emergency_contracts_proportionally(self):
        chip = self.make(allowance=6.0)
        # The Table 3 step: W=3, Wtdp=2.25 -> delta = 6*(2.25-3)/2.25 = -2.
        chip.update_allowance(3.0, total_demand=600.0, supply_shortfall=100.0, floor=0.1)
        assert chip.allowance == pytest.approx(4.0)

    def test_floor_respected(self):
        chip = self.make(allowance=0.2)
        chip.update_allowance(10.0, total_demand=1.0, supply_shortfall=0.0, floor=0.15)
        assert chip.allowance >= 0.15


class TestAllowanceDistribution:
    def agents(self, priorities):
        return [TaskAgent(task_id=f"t{i}", priority=p) for i, p in enumerate(priorities)]

    def test_priority_proportional_within_cluster(self):
        agents = self.agents([2, 1])
        distribute_allowance(4.5, 1.0, {"v": 1.0}, {"v": agents})
        assert agents[0].wallet.allowance == pytest.approx(3.0)
        assert agents[1].wallet.allowance == pytest.approx(1.5)

    def test_inverse_power_weighting_across_clusters(self):
        hot = self.agents([1])
        cool = self.agents([1])
        # Chip at 4 W: hot cluster burns 3 W, cool 1 W -> weights 1 : 3.
        distribute_allowance(
            8.0, 4.0, {"hot": 3.0, "cool": 1.0}, {"hot": hot, "cool": cool}
        )
        assert hot[0].wallet.allowance == pytest.approx(2.0)
        assert cool[0].wallet.allowance == pytest.approx(6.0)

    def test_empty_clusters_receive_nothing(self):
        agents = self.agents([1])
        distribute_allowance(5.0, 2.0, {"a": 1.0, "b": 1.0}, {"a": agents, "b": []})
        assert agents[0].wallet.allowance == pytest.approx(5.0)

    def test_zero_power_splits_equally(self):
        a, b = self.agents([1]), self.agents([1])
        distribute_allowance(4.0, 0.0, {}, {"a": a, "b": b})
        assert a[0].wallet.allowance == pytest.approx(2.0)
        assert b[0].wallet.allowance == pytest.approx(2.0)

    def test_no_tasks_is_noop(self):
        distribute_allowance(4.0, 1.0, {}, {"a": [], "b": []})

    def test_total_allowance_conserved(self):
        g1, g2 = self.agents([1, 2]), self.agents([3])
        distribute_allowance(9.0, 5.0, {"a": 2.0, "b": 3.0}, {"a": g1, "b": g2})
        total = sum(a.wallet.allowance for a in g1 + g2)
        assert total == pytest.approx(9.0)
