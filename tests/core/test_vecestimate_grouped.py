"""Grouped vs dense LBT row evaluator: live differential check.

:meth:`BatchMappingEvaluator._eval_cluster_rows` collapses candidate
rows onto signature groups when ``rows x tasks`` is large; the dense
per-row evaluation (``_eval_cluster_rows_dense``) is its documented
oracle.  Rather than hand-crafting specs, this test forces the grouped
path during a real simulation (gate patched to zero) and compares every
call's grouped result against the dense oracle on the very same
evaluator state: ``max`` reductions and per-row flags must match
bit-for-bit, ``spend`` up to the documented last-ulp fold freedom.
"""

import math

from repro.core import vecestimate as V
from repro.experiments.harness import make_governor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import random_tasks

_EXACT_KEYS = (
    "present",
    "maxprio_imp",
    "maxprio_wor",
    "maxabs",
    "mv_ok",
    "mv_ratio",
    "mv_bid",
)


def test_grouped_rows_match_dense_oracle(monkeypatch):
    # Force the grouped path regardless of population size...
    monkeypatch.setattr(V, "_GROUPED_MIN_ELEMS", 0)
    grouped_impl = V.BatchMappingEvaluator._eval_cluster_rows
    dense_impl = V.BatchMappingEvaluator._eval_cluster_rows_dense
    compared = []

    def differential(self, cluster_id, specs):
        grouped = grouped_impl(self, cluster_id, specs)
        dense = dense_impl(self, cluster_id, specs)
        compared.append((cluster_id, len(specs)))
        assert set(grouped) == set(dense)
        for key in _EXACT_KEYS:
            assert grouped[key] == dense[key], (
                f"{key} diverged for {cluster_id} ({len(specs)} rows)"
            )
        for g, d in zip(grouped["spend"], dense["spend"]):
            assert math.isclose(g, d, rel_tol=1e-12, abs_tol=1e-12)
        # ...but hand the dense result back, so the run's decisions are
        # the stock small-population behaviour.
        return dense

    monkeypatch.setattr(
        V.BatchMappingEvaluator, "_eval_cluster_rows", differential
    )

    # Enough tasks that the batch evaluator engages (>= _VEC_MIN_TASKS)
    # and the LBT proposes candidate rows on most invocations.
    sim = Simulation(
        tc2_chip(),
        random_tasks(40, seed=23),
        make_governor("PPM", power_cap_w=7.0),
        config=SimConfig(seed=23, metrics_warmup_s=0.0, engine="columnar"),
    )
    sim.run(1.5)
    assert compared, "batch evaluator never ran; the gate moved?"
