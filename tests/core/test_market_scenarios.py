"""Scripted multi-cluster market scenarios.

Where the running-example tests replay the paper's single-core tables,
these walk the market through multi-cluster situations the full system
hits constantly: independent cluster price dynamics, demand waves,
inflation cascades across the ladder, recovery after emergencies, and
the interplay between an over- and an under-provisioned cluster.
"""

import pytest

from repro.core import ChipPowerState, Market, MarketConfig, MarketObservations


def build(wtdp=None, tolerance=0.15, allowance=40.0):
    market = Market(
        MarketConfig(tolerance=tolerance, initial_allowance=allowance, wtdp=wtdp)
    )
    market.add_cluster("big", ["b0", "b1"], [500.0, 800.0, 1200.0])
    market.add_cluster("little", ["l0", "l1", "l2"], [350.0, 700.0, 1000.0])
    return market


class Driver:
    """Applies level requests with a one-round lag, like the hardware."""

    def __init__(self, market, power_fn=None):
        self.market = market
        self.levels = {cid: 0 for cid in market.clusters}
        # power_fn(levels) -> per-cluster watts dict.
        self.power_fn = power_fn or (
            lambda levels: {cid: 0.5 for cid in levels}
        )

    def round(self, demands):
        cluster_power = self.power_fn(self.levels)
        power = sum(cluster_power.values())
        result = self.market.run_round(
            MarketObservations(
                demands=demands,
                cluster_level=dict(self.levels),
                cluster_in_transition={cid: False for cid in self.levels},
                chip_power_w=power,
                cluster_power_w=dict(cluster_power),
            )
        )
        self.levels.update(result.level_requests)
        return result

    def run(self, demands, rounds):
        return [self.round(demands) for _ in range(rounds)]


class TestClusterIndependence:
    def test_clusters_price_and_scale_independently(self):
        market = build()
        market.add_task("hog", 1, "l0")     # will need the top level
        market.add_task("mouse", 1, "b0")   # trivially satisfied
        driver = Driver(market)
        driver.run({"hog": 950.0, "mouse": 100.0}, rounds=40)
        assert driver.levels["little"] == 2   # ramped to 1000 PUs
        assert driver.levels["big"] == 0      # never moved
        assert market.tasks["hog"].supply == pytest.approx(1000.0, rel=0.01)

    def test_inflation_cascades_up_the_whole_ladder(self):
        market = build()
        market.add_task("t", 1, "l1")
        driver = Driver(market)
        levels_seen = set()
        for _ in range(60):
            driver.round({"t": 980.0})
            levels_seen.add(driver.levels["little"])
        # Every intermediate level was visited: one step per decision.
        assert levels_seen == {0, 1, 2}


class TestDemandWaves:
    def test_market_follows_demand_up_and_down(self):
        market = build()
        market.add_task("wave", 1, "l0")
        driver = Driver(market)
        driver.run({"wave": 900.0}, rounds=40)
        assert driver.levels["little"] == 2
        driver.run({"wave": 200.0}, rounds=80)
        assert driver.levels["little"] == 0

    def test_two_tasks_swap_roles(self):
        market = build()
        market.add_task("a", 1, "l0")
        market.add_task("b", 1, "l0")
        driver = Driver(market)
        driver.run({"a": 500.0, "b": 150.0}, rounds=40)
        a_first = market.tasks["a"].supply
        driver.run({"a": 150.0, "b": 500.0}, rounds=40)
        assert market.tasks["b"].supply > market.tasks["a"].supply
        assert market.tasks["b"].supply == pytest.approx(a_first, rel=0.25)


class TestPowerStateJourney:
    @staticmethod
    def power_of(levels):
        # Additive model chosen so a threshold-compatible operating point
        # exists (big 0 + little 2 = 3.8 W inside the [3.5, 4.0] buffer):
        # the paper requires the buffer zone be reachable, otherwise the
        # system legitimately limit-cycles around the TDP (section 3.2.3).
        return {
            "little": [0.5, 1.2, 2.0][levels["little"]],
            "big": [1.8, 2.6, 6.0][levels["big"]],
        }

    def test_emergency_recovery_parks_in_threshold(self):
        market = build(wtdp=4.0)
        market.add_task("lhog", 2, "l0")
        market.add_task("bhog", 1, "b0")
        driver = Driver(market, power_fn=self.power_of)
        states = [
            r.chip_state for r in driver.run({"lhog": 990.0, "bhog": 1150.0}, 150)
        ]
        tail = states[-15:]
        assert all(s is not ChipPowerState.EMERGENCY for s in tail)
        # And the power model confirms we're at/below the cap.
        assert sum(self.power_of(driver.levels).values()) <= 4.0

    def test_cheaper_cluster_receives_larger_allowance(self):
        # Inverse-power distribution: the hungry big cluster is starved
        # of money relative to the frugal little cluster (section 3.2.3).
        market = build(wtdp=4.0)
        market.add_task("lhog", 1, "l0")
        market.add_task("bhog", 1, "b0")
        driver = Driver(market, power_fn=self.power_of)
        driver.run({"lhog": 990.0, "bhog": 1150.0}, 120)
        assert (
            market.tasks["lhog"].wallet.allowance
            > market.tasks["bhog"].wallet.allowance
        )


class TestMultiTenantCores:
    def test_three_tenants_share_by_demand(self):
        market = build()
        for name, demand in [("x", 300.0), ("y", 200.0), ("z", 100.0)]:
            market.add_task(name, 1, "l0")
        driver = Driver(market)
        driver.run({"x": 300.0, "y": 200.0, "z": 100.0}, rounds=50)
        # Everyone is served; the level's surplus flows to the bmin-floor
        # bidders, so the smallest tenants may hold more than they asked.
        assert market.tasks["x"].supply == pytest.approx(300.0, rel=0.15)
        assert market.tasks["y"].supply >= 200.0 * 0.9
        assert market.tasks["z"].supply >= 100.0 * 0.9
        total = sum(market.tasks[n].supply for n in "xyz")
        assert total == pytest.approx(
            market.clusters["little"].supply, rel=0.01
        )

    def test_priorities_break_ties_under_contention(self):
        market = build()
        market.add_task("vip", 5, "l0")
        market.add_task("pleb", 1, "l0")
        driver = Driver(market)
        # Both want the whole core: the cluster saturates at 1000 PUs.
        driver.run({"vip": 900.0, "pleb": 900.0}, rounds=120)
        vip, pleb = market.tasks["vip"], market.tasks["pleb"]
        assert vip.supply > 1.5 * pleb.supply
