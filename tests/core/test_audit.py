"""Tests for the market auditor."""

import pytest

from repro.core import (
    Market,
    MarketAuditor,
    MarketConfig,
    MarketInvariantError,
    MarketObservations,
    audited_round,
)


def make_market():
    market = Market(MarketConfig(initial_allowance=20.0))
    market.add_cluster("v", ["c0", "c1"], [350.0, 700.0, 1000.0])
    market.add_task("a", 2, "c0")
    market.add_task("b", 1, "c0")
    return market


def obs(market, da=300.0, db=200.0, level=1):
    return MarketObservations(
        demands={"a": da, "b": db},
        cluster_level={"v": level},
        chip_power_w=1.0,
        cluster_power_w={"v": 1.0},
    )


class TestCleanMarketPasses:
    def test_many_rounds_audit_clean(self):
        market = make_market()
        auditor = MarketAuditor(market)
        for i in range(50):
            market.run_round(obs(market, da=200.0 + (i % 7) * 50))
            report = auditor.audit_now()
            assert report.ok
        assert auditor.violation_count == 0
        assert auditor.rounds_audited == 50

    def test_audited_round_helper(self):
        market = make_market()
        result = audited_round(market, obs(market))
        assert result.allocations


class TestViolationsDetected:
    def test_bid_below_floor(self):
        market = make_market()
        market.run_round(obs(market))
        market.tasks["a"].bid = 0.0001  # corrupt
        auditor = MarketAuditor(market)
        with pytest.raises(MarketInvariantError, match="I1"):
            auditor.audit_now()

    def test_negative_savings(self):
        market = make_market()
        market.run_round(obs(market))
        market.tasks["b"].wallet.savings = -1.0
        with pytest.raises(MarketInvariantError, match="I3"):
            MarketAuditor(market).audit_now()

    def test_over_cap_savings_tolerated(self):
        # The savings cap binds at settle time, not as a standing
        # invariant: an allowance contraction can leave the stock above
        # the new cap until the next settle.
        market = make_market()
        market.run_round(obs(market))
        market.tasks["a"].wallet.savings = 1e9
        assert MarketAuditor(market).audit_now().ok

    def test_over_allocation_detected(self):
        market = make_market()
        auditor = MarketAuditor(market)
        market.run_round(obs(market))
        auditor.audit_now()  # establishes core membership
        market.run_round(obs(market))
        market.tasks["a"].supply += 500.0
        with pytest.raises(MarketInvariantError, match="I4"):
            auditor.audit_now()

    def test_stale_purchase_after_membership_change_tolerated(self):
        # Right after an LBT move purchases are stale; I4 is suspended
        # for cores whose membership changed since the previous audit.
        market = make_market()
        auditor = MarketAuditor(market)
        market.run_round(obs(market))
        auditor.audit_now()
        market.move_task("b", "c1")
        market.tasks["b"].supply = 5000.0  # stale carry-over
        assert auditor.audit_now().ok

    def test_overdistributed_allowance(self):
        market = make_market()
        market.run_round(obs(market))
        market.tasks["a"].wallet.allowance = market.chip.allowance * 2
        with pytest.raises(MarketInvariantError, match="I5"):
            MarketAuditor(market).audit_now()

    def test_non_strict_collects_instead_of_raising(self):
        market = make_market()
        market.run_round(obs(market))
        market.tasks["b"].wallet.savings = -1.0
        auditor = MarketAuditor(market, strict=False)
        report = auditor.audit_now()
        assert not report.ok
        assert auditor.violation_count == 1


class TestEndToEndAudit:
    def test_ppm_run_is_invariant_clean(self):
        """A real PPM simulation never violates the market invariants."""
        from repro.core import PPMGovernor
        from repro.hw import tc2_chip
        from repro.sim import SimConfig, Simulation
        from repro.tasks import build_workload

        governor = PPMGovernor()
        auditor = MarketAuditor(governor.market, strict=True)
        original = governor.on_tick

        def audited_tick(sim):
            before = governor.market.rounds_run
            original(sim)
            if governor.market.rounds_run > before:
                auditor.audit_now()

        governor.on_tick = audited_tick  # type: ignore[method-assign]
        sim = Simulation(tc2_chip(), build_workload("m2"), governor, config=SimConfig())
        sim.run(10.0)
        assert auditor.rounds_audited > 100
        assert auditor.violation_count == 0
