"""Property-based tests: market invariants under arbitrary round sequences.

Whatever demands, power readings and level changes the world throws at
it, the market must maintain its accounting invariants -- these are the
properties the paper's stability arguments (sections 3.2.4, 3.3.1) rest
on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChipPowerState, ClusterFreeze, Market, MarketConfig, MarketObservations

N_TASKS = 4
LADDERS = {
    "big": [500.0, 800.0, 1200.0],
    "little": [350.0, 700.0, 1000.0],
}


def build_market(wtdp=None):
    market = Market(
        MarketConfig(initial_allowance=20.0, wtdp=wtdp)
    )
    market.add_cluster("big", ["b0", "b1"], LADDERS["big"])
    market.add_cluster("little", ["l0", "l1"], LADDERS["little"])
    for i in range(N_TASKS):
        market.add_task(f"t{i}", priority=(i % 3) + 1, core_id=["b0", "b1", "l0", "l1"][i])
    return market


round_strategy = st.fixed_dictionaries(
    {
        "demands": st.lists(
            st.floats(min_value=0.0, max_value=2000.0), min_size=N_TASKS, max_size=N_TASKS
        ),
        "power": st.floats(min_value=0.0, max_value=10.0),
        "apply_levels": st.booleans(),
    }
)


def drive(market, rounds):
    levels = {"big": 0, "little": 0}
    pending = {}
    results = []
    for spec in rounds:
        if spec["apply_levels"]:
            levels.update(pending)
            pending = {}
        obs = MarketObservations(
            demands={f"t{i}": spec["demands"][i] for i in range(N_TASKS)},
            cluster_level=dict(levels),
            cluster_in_transition={
                cid: cid in pending for cid in levels
            },
            chip_power_w=spec["power"],
            cluster_power_w={"big": spec["power"] / 2, "little": spec["power"] / 2},
        )
        result = market.run_round(obs)
        # Remember which level the market traded against this round so
        # assertions don't compare old requests with future state.
        result.levels_seen = dict(levels)  # type: ignore[attr-defined]
        pending.update(result.level_requests)
        results.append(result)
    return results


@settings(max_examples=40, deadline=None)
@given(st.lists(round_strategy, min_size=1, max_size=30))
def test_accounting_invariants_hold(rounds):
    market = build_market(wtdp=4.0)
    results = drive(market, rounds)
    cfg = market.config
    for result in results:
        # Money is never negative and bids respect the floor.
        assert result.allowance > 0.0
        for agent in market.tasks.values():
            assert agent.bid >= cfg.bmin - 1e-12
            assert agent.wallet.savings >= -1e-9
            assert agent.wallet.allowance >= -1e-9
            assert agent.supply >= -1e-9
        # Allocations on each core sum to at most its supply.
        for cluster in market.clusters.values():
            for core_id in cluster.core_ids:
                total = sum(
                    a.supply for a in market.tasks_on_core(core_id)
                )
                assert total <= cluster.max_supply + 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(round_strategy, min_size=1, max_size=30))
def test_level_requests_always_valid(rounds):
    market = build_market(wtdp=4.0)
    results = drive(market, rounds)
    for result, spec in zip(results, rounds):
        for cluster_id, level in result.level_requests.items():
            assert 0 <= level <= market.clusters[cluster_id].max_index
            # Only one-step moves relative to the level the market saw
            # *in that round* (the paper's cluster agent semantics).
            assert abs(level - result.levels_seen[cluster_id]) <= 1


@settings(max_examples=40, deadline=None)
@given(st.lists(round_strategy, min_size=1, max_size=30))
def test_freeze_states_remain_legal(rounds):
    market = build_market()
    drive(market, rounds)
    for cluster in market.clusters.values():
        assert cluster.freeze in (
            ClusterFreeze.ACTIVE,
            ClusterFreeze.AWAITING,
            ClusterFreeze.OBSERVING,
        )
        # OBSERVING never persists across a round boundary.
        assert cluster.freeze is not ClusterFreeze.OBSERVING


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=5, max_size=25
    )
)
def test_power_states_classified_consistently(powers):
    market = build_market(wtdp=4.0)
    for power in powers:
        obs = MarketObservations(
            demands={f"t{i}": 100.0 for i in range(N_TASKS)},
            cluster_level={"big": 0, "little": 0},
            chip_power_w=power,
            cluster_power_w={"big": power / 2, "little": power / 2},
        )
        result = market.run_round(obs)
        if power > 4.0:
            assert result.chip_state is ChipPowerState.EMERGENCY
        elif power >= 3.5:
            assert result.chip_state is ChipPowerState.THRESHOLD
        else:
            assert result.chip_state is ChipPowerState.NORMAL


@settings(max_examples=25, deadline=None)
@given(st.lists(round_strategy, min_size=2, max_size=20), st.data())
def test_task_churn_never_corrupts_market(rounds, data):
    """Tasks entering/leaving between rounds keep the registry coherent."""
    market = build_market()
    next_id = N_TASKS
    for spec in rounds:
        action = data.draw(st.sampled_from(["none", "add", "remove", "move"]))
        task_ids = list(market.tasks)
        if action == "add":
            market.add_task(f"t{next_id}", priority=1, core_id="l0")
            next_id += 1
        elif action == "remove" and task_ids:
            market.remove_task(data.draw(st.sampled_from(task_ids)))
        elif action == "move" and task_ids:
            market.move_task(
                data.draw(st.sampled_from(task_ids)),
                data.draw(st.sampled_from(["b0", "b1", "l0", "l1"])),
            )
        obs = MarketObservations(
            demands={tid: 200.0 for tid in market.tasks},
            cluster_level={"big": 0, "little": 0},
            chip_power_w=1.0,
            cluster_power_w={"big": 0.5, "little": 0.5},
        )
        result = market.run_round(obs)
        assert set(result.allocations) <= set(market.tasks)
        placed = {
            a.task_id
            for cid in market.cores
            for a in market.tasks_on_core(cid)
        }
        assert placed == set(market.tasks)
