"""Admission ladder: one rung per check, hysteresis, snapshot fidelity.

Property tests drive :meth:`AdmissionController.evaluate_ladder` -- the
exact transition logic the simulation uses -- with arbitrary pressure
sequences, mirroring the thermal supervisor's ladder tests.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AdmissionConfig, AdmissionController, AdmissionState
from repro.core.admission import _LADDER
from repro.tasks import ArrivalRecord


def make_record(index=1, priority=2, arrival_s=0.0):
    return ArrivalRecord(
        name=f"arr{index}.h264_s",
        benchmark="h264",
        input_code="s",
        priority=priority,
        arrival_s=arrival_s,
        lifetime_s=3.0,
        phase_offset_s=0.0,
    )


pressures = st.lists(
    st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=60
)


class TestLadderProperties:
    @settings(max_examples=100, deadline=None)
    @given(sequence=pressures)
    def test_never_skips_a_rung(self, sequence):
        controller = AdmissionController()
        rank = _LADDER.index(controller.state)
        for i, pressure in enumerate(sequence):
            controller.evaluate_ladder(float(i), pressure)
            new_rank = _LADDER.index(controller.state)
            assert abs(new_rank - rank) <= 1
            rank = new_rank

    @settings(max_examples=100, deadline=None)
    @given(sequence=pressures)
    def test_hysteresis_ordering(self, sequence):
        """Escalate only at the next rung's entry threshold; de-escalate
        only once pressure undercuts the current entry by the hysteresis."""
        config = AdmissionConfig()
        controller = AdmissionController(config)
        entry = {
            AdmissionState.DEGRADED: config.degrade_at,
            AdmissionState.QUEUE: config.queue_at,
            AdmissionState.SHED: config.shed_at,
            AdmissionState.REJECT: config.reject_at,
        }
        for i, pressure in enumerate(sequence):
            before = controller.state
            after = controller.evaluate_ladder(float(i), pressure)
            rank, new_rank = _LADDER.index(before), _LADDER.index(after)
            if new_rank > rank:
                assert pressure >= entry[after]
            elif new_rank < rank:
                assert pressure < entry[before] - config.hysteresis
            else:
                up = rank + 1 < len(_LADDER) and pressure >= entry[_LADDER[rank + 1]]
                down = rank > 0 and pressure < entry[before] - config.hysteresis
                assert not up and not down

    @settings(max_examples=50, deadline=None)
    @given(sequence=pressures)
    def test_transitions_log_matches_states(self, sequence):
        controller = AdmissionController()
        for i, pressure in enumerate(sequence):
            controller.evaluate_ladder(float(i), pressure)
        state = AdmissionState.OPEN
        for _t, frm, to, _p in controller.transitions:
            assert frm == state.value
            state = AdmissionState(to)
        assert state is controller.state

    def test_full_escalation_takes_one_check_per_rung(self):
        controller = AdmissionController()
        states = [
            controller.evaluate_ladder(float(i), 10.0) for i in range(4)
        ]
        assert states == [
            AdmissionState.DEGRADED,
            AdmissionState.QUEUE,
            AdmissionState.SHED,
            AdmissionState.REJECT,
        ]
        # Calm pressure walks it all the way back down, one per check.
        states = [
            controller.evaluate_ladder(float(4 + i), 0.0) for i in range(4)
        ]
        assert states[-1] is AdmissionState.OPEN


class TestPricing:
    def test_unit_price_is_excess_pressure(self):
        controller = AdmissionController()
        controller.evaluate_ladder(0.0, 0.8)
        assert controller.unit_price() == 0.0
        controller.evaluate_ladder(1.0, 1.6)
        assert controller.unit_price() == pytest.approx(0.6)

    def test_priority_buys_admission_deeper_into_overload(self):
        config = AdmissionConfig(budget_per_priority=0.25)
        controller = AdmissionController(config)
        controller.evaluate_ladder(0.0, 1.6)  # premium 0.6
        assert not controller._affords(make_record(priority=1))
        assert not controller._affords(make_record(priority=2))
        assert controller._affords(make_record(priority=4))


class TestQueueBounds:
    def test_queue_overflow_rejects(self):
        config = AdmissionConfig(queue_capacity=3)
        controller = AdmissionController(config)
        for i in range(5):
            controller._enqueue(make_record(index=i), now_s=0.0)
        assert controller.queue_depth == 3
        assert controller.queued == 3
        assert controller.rejected == 2
        assert controller.peak_queue_depth == 3

    def test_queue_entries_time_out(self):
        config = AdmissionConfig(queue_timeout_s=2.0)
        controller = AdmissionController(config)
        controller._enqueue(make_record(index=1), now_s=0.0)
        controller._enqueue(make_record(index=2), now_s=1.5)
        controller._expire_queue(now_s=2.0)
        assert controller.queue_timeouts == 1
        assert controller.queue_depth == 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"check_period_s": 0.0},
            {"degrade_at": 1.1},  # breaks ascending order
            {"queue_at": 1.5},
            {"hysteresis": 0.0},
            {"queue_capacity": 0},
            {"queue_timeout_s": 0.0},
            {"drain_per_check": 0},
            {"degraded_qos_factor": 0.0},
            {"degraded_qos_factor": 1.5},
            {"budget_per_priority": -0.1},
            {"sheds_per_check": 0},
            {"thermal_surcharge": -0.5},
        ],
    )
    def test_bad_configs_raise(self, overrides):
        with pytest.raises(ValueError):
            AdmissionConfig(**overrides)


class TestSnapshot:
    def test_snapshot_restore_round_trips(self):
        controller = AdmissionController()
        for i, pressure in enumerate([0.5, 0.9, 1.3, 1.9, 2.6, 1.0]):
            controller.evaluate_ladder(float(i), pressure)
        controller._enqueue(make_record(index=1), now_s=4.0)
        controller._enqueue(make_record(index=2), now_s=5.0)
        controller.admission_latencies.extend([0.1, 0.4])
        controller.shed_names.append("arr9.h264_s")
        state = json.loads(json.dumps(controller.snapshot_state()))
        restored = AdmissionController()
        restored.restore_state(state)
        assert restored.snapshot_state() == controller.snapshot_state()
        assert restored.state is controller.state
        assert restored.queue_depth == controller.queue_depth
