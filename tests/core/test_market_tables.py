"""Market-round tests reproducing the paper's running examples verbatim.

Tables 1 and 2 are checked cell by cell; Table 3 is checked on its
behavioural waypoints (state transitions, allowance contraction, savings
drain) and on its stable end point: the system parks in the threshold
state at 500 PUs with the high-priority task fully served.
"""

import pytest

from repro.core import ChipPowerState, Market, MarketConfig, MarketObservations


def single_core_market(config=None):
    market = Market(
        config
        or MarketConfig(tolerance=0.2, initial_bid=1.0, initial_allowance=40.0)
    )
    market.add_cluster("v", ["c"], [300.0, 400.0, 500.0, 600.0])
    market.add_task("ta", 1, "c")
    market.add_task("tb", 1, "c")
    return market


def run_round(market, level, da, db, power=0.5):
    obs = MarketObservations(
        demands={"ta": da, "tb": db},
        cluster_level={"v": level},
        cluster_in_transition={"v": False},
        chip_power_w=power,
        cluster_power_w={"v": power},
    )
    return market.run_round(obs)


class TestTable1:
    """Two tasks on a 300 PU core: the bids redistribute the supply."""

    def test_round1_equal_bids_split_supply(self):
        market = single_core_market()
        result = run_round(market, 0, 200.0, 100.0)
        assert market.tasks["ta"].bid == pytest.approx(1.0)
        assert market.tasks["tb"].bid == pytest.approx(1.0)
        assert result.prices["c"] == pytest.approx(2.0 / 300.0)
        assert market.tasks["ta"].supply == pytest.approx(150.0)
        assert market.tasks["tb"].supply == pytest.approx(150.0)

    def test_round2_bids_track_demand(self):
        market = single_core_market()
        run_round(market, 0, 200.0, 100.0)
        run_round(market, 0, 200.0, 100.0)
        assert market.tasks["ta"].bid == pytest.approx(4.0 / 3.0, rel=1e-3)
        assert market.tasks["tb"].bid == pytest.approx(2.0 / 3.0, rel=1e-3)
        assert market.tasks["ta"].supply == pytest.approx(200.0)
        assert market.tasks["tb"].supply == pytest.approx(100.0)

    def test_satisfied_market_is_stable(self):
        market = single_core_market()
        for _ in range(10):
            result = run_round(market, 0, 200.0, 100.0)
        assert market.tasks["ta"].supply == pytest.approx(200.0)
        assert market.tasks["tb"].supply == pytest.approx(100.0)
        assert result.level_requests == {}


class TestTable2:
    """A demand increase inflates the price past delta and raises supply."""

    def run_to_round3(self):
        market = single_core_market()
        run_round(market, 0, 200.0, 100.0)
        run_round(market, 0, 200.0, 100.0)
        return market

    def test_round3_inflation_detected(self):
        market = self.run_to_round3()
        result = run_round(market, 0, 300.0, 100.0)
        assert market.tasks["ta"].bid == pytest.approx(2.0, rel=1e-3)
        assert result.prices["c"] == pytest.approx(0.00889, rel=1e-2)
        # Inflation beyond base * 1.2 -> one level up (300 -> 400 PUs).
        assert result.level_requests == {"v": 1}
        assert "v" in result.frozen_clusters
        assert market.tasks["ta"].supply == pytest.approx(225.0)
        assert market.tasks["tb"].supply == pytest.approx(75.0)

    def test_round4_new_supply_observed_base_reset(self):
        market = self.run_to_round3()
        run_round(market, 0, 300.0, 100.0)
        result = run_round(market, 1, 300.0, 100.0)  # regulator applied
        # Bids frozen during the observation round.
        assert market.tasks["ta"].bid == pytest.approx(2.0, rel=1e-3)
        assert market.tasks["tb"].bid == pytest.approx(2.0 / 3.0, rel=1e-3)
        assert result.prices["c"] == pytest.approx(2.6667 / 400.0, rel=1e-3)
        assert market.cores["c"].base_price == pytest.approx(result.prices["c"])
        assert market.tasks["ta"].supply == pytest.approx(300.0)
        assert market.tasks["tb"].supply == pytest.approx(100.0)
        assert result.frozen_clusters == set()

    def test_no_dvfs_decision_in_round_after_observation(self):
        market = self.run_to_round3()
        run_round(market, 0, 300.0, 100.0)
        result4 = run_round(market, 1, 300.0, 100.0)
        assert result4.level_requests == {}


TABLE3_POWER = {300.0: 0.6, 400.0: 0.8, 500.0: 2.0, 600.0: 3.0}


class TestTable3:
    """Chip dynamics: normal -> threshold -> emergency -> stable threshold."""

    def make_market(self):
        return single_core_market(
            MarketConfig(
                tolerance=0.2,
                initial_bid=1.0,
                initial_allowance=4.5,
                wtdp=2.25,
                wth=1.75,
            )
        )

    def drive(self, rounds):
        market = Market(
            MarketConfig(
                tolerance=0.2, initial_bid=1.0, initial_allowance=4.5,
                wtdp=2.25, wth=1.75,
            )
        )
        market.add_cluster("v", ["c"], [300.0, 400.0, 500.0, 600.0])
        market.add_task("ta", 2, "c")
        market.add_task("tb", 1, "c")
        level = 0
        states = []
        supplies = []
        allowances = []
        demands = [(200.0, 100.0)] * 2 + [(300.0, 100.0)] * 2 + [(300.0, 300.0)] * rounds
        for da, db in demands:
            power = TABLE3_POWER[market.clusters["v"].supply_ladder[level]]
            obs = MarketObservations(
                demands={"ta": da, "tb": db},
                cluster_level={"v": level},
                cluster_in_transition={"v": False},
                chip_power_w=power,
                cluster_power_w={"v": power},
            )
            result = market.run_round(obs)
            for _, new_level in result.level_requests.items():
                level = new_level
            states.append(result.chip_state)
            supplies.append(market.clusters["v"].supply_ladder[level])
            allowances.append(result.allowance)
        return market, states, supplies, allowances

    def test_priority_weighted_allowances(self):
        market, *_ = self.drive(1)
        assert market.tasks["ta"].wallet.allowance == pytest.approx(
            2 * market.tasks["tb"].wallet.allowance
        )

    def test_passes_through_emergency(self):
        _, states, supplies, _ = self.drive(20)
        assert ChipPowerState.EMERGENCY in states
        assert max(supplies) == 600.0

    def test_emergency_contracts_allowance(self):
        _, states, _, allowances = self.drive(20)
        first_emergency = states.index(ChipPowerState.EMERGENCY)
        assert allowances[first_emergency + 1] < allowances[first_emergency]

    def test_stabilises_in_threshold_at_500(self):
        market, states, supplies, _ = self.drive(40)
        assert states[-1] is ChipPowerState.THRESHOLD
        assert supplies[-1] == 500.0
        # Once parked, the supply no longer changes.
        assert len(set(supplies[-5:])) == 1

    def test_high_priority_task_served_low_priority_suffers(self):
        market, *_ = self.drive(40)
        ta, tb = market.tasks["ta"], market.tasks["tb"]
        assert ta.supply == pytest.approx(300.0, rel=0.02)  # meets demand
        assert tb.supply == pytest.approx(200.0, rel=0.02)  # squeezed
        assert ta.supply_demand_ratio > tb.supply_demand_ratio

    def test_never_stabilises_in_emergency(self):
        _, states, _, _ = self.drive(40)
        assert all(s is not ChipPowerState.EMERGENCY for s in states[-10:])
