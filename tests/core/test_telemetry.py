"""Tests for the market recorder."""

import pytest

from repro.core import ChipPowerState, MarketRecorder, PPMGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


def run_recorded(duration=1.0):
    task = make_task("swaptions", "l", task_name="sw")
    governor = PPMGovernor()
    recorder = MarketRecorder(governor)
    sim = Simulation(tc2_chip(), [task], governor, config=SimConfig())
    sim.run(duration)
    return governor, recorder


class TestRecorder:
    def test_one_snapshot_per_round(self):
        governor, recorder = run_recorded(1.0)
        assert len(recorder) == governor.market.rounds_run

    def test_snapshot_contents(self):
        _, recorder = run_recorded(0.5)
        snap = recorder.snapshots[-1]
        assert "sw" in snap.bids
        assert snap.allowance > 0
        assert snap.chip_state is ChipPowerState.NORMAL
        assert snap.total_supply > 0

    def test_aggregate_series(self):
        _, recorder = run_recorded(0.5)
        times, allowances = recorder.series("allowance")
        assert len(times) == len(recorder)
        assert all(a > 0 for a in allowances)

    def test_per_task_series(self):
        _, recorder = run_recorded(0.5)
        times, bids = recorder.series("bids", "sw")
        assert len(bids) == len(recorder)
        assert all(b > 0 for b in bids)

    def test_aggregate_series_requires_scalar(self):
        _, recorder = run_recorded(0.2)
        with pytest.raises(KeyError):
            recorder.series("bids")  # per-task quantity without task_id

    def test_state_intervals_start_with_initial_state(self):
        _, recorder = run_recorded(0.5)
        intervals = recorder.state_intervals()
        assert intervals[0][1] is ChipPowerState.NORMAL

    def test_time_in_state(self):
        _, recorder = run_recorded(0.5)
        assert recorder.time_in_state(ChipPowerState.NORMAL) == pytest.approx(1.0)
        assert recorder.time_in_state(ChipPowerState.EMERGENCY) == 0.0

    def test_capacity_bound(self):
        task = make_task("swaptions", "l")
        governor = PPMGovernor()
        recorder = MarketRecorder(governor, capacity=5)
        sim = Simulation(tc2_chip(), [task], governor, config=SimConfig())
        sim.run(1.0)
        assert len(recorder) == 5
        assert recorder.dropped > 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MarketRecorder(PPMGovernor(), capacity=0)
