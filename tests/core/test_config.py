"""Unit tests for framework configuration validation."""

import pytest

from repro.core import MarketConfig, PPMConfig


class TestMarketConfig:
    def test_defaults_valid(self):
        cfg = MarketConfig()
        assert cfg.bmin > 0
        assert not cfg.has_power_budget

    def test_tdp_enables_budget_and_defaults_buffer(self):
        cfg = MarketConfig(wtdp=4.0)
        assert cfg.has_power_budget
        assert cfg.wth == pytest.approx(3.5)

    def test_explicit_buffer(self):
        cfg = MarketConfig(wtdp=4.0, wth=3.0)
        assert cfg.wth == 3.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MarketConfig(bmin=0.0)
        with pytest.raises(ValueError):
            MarketConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            MarketConfig(savings_cap_fraction=-1.0)
        with pytest.raises(ValueError):
            MarketConfig(initial_bid=0.001, bmin=0.01)
        with pytest.raises(ValueError):
            MarketConfig(wtdp=-1.0)
        with pytest.raises(ValueError):
            MarketConfig(wtdp=2.0, wth=2.5)


class TestPPMConfig:
    def test_defaults_follow_paper_ratios(self):
        cfg = PPMConfig()
        # bid : load-balance : migration = 1 : 3 : 6 (section 3.4).
        assert cfg.bid_period_s == pytest.approx(0.0317)
        assert cfg.load_balance_every == 3
        assert cfg.migrate_every == 6
        assert cfg.lbt_enabled

    def test_lbt_disabled_flag(self):
        cfg = PPMConfig(enable_load_balancing=False, enable_migration=False)
        assert not cfg.lbt_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            PPMConfig(bid_period_s=0.0)
        with pytest.raises(ValueError):
            PPMConfig(load_balance_every=0)
        with pytest.raises(ValueError):
            PPMConfig(migration_cooldown_s=-1.0)
