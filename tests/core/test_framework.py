"""Integration tests for the PPM governor on the simulator."""

import pytest

from repro.core import ChipPowerState, MarketConfig, PPMConfig, PPMGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task


def make_sim(tasks, config=None, dt=0.01):
    governor = PPMGovernor(config)
    sim = Simulation(
        tc2_chip(), tasks, governor, config=SimConfig(dt=dt, metrics_warmup_s=0.0)
    )
    return sim, governor


class TestMarketWiring:
    def test_agents_created_for_tasks(self):
        tasks = build_workload("l1")
        sim, gov = make_sim(tasks)
        sim.run(0.1)
        assert set(gov.market.tasks) == {t.name for t in tasks}

    def test_allocations_pushed_to_engine(self):
        tasks = build_workload("l1")
        sim, gov = make_sim(tasks)
        sim.run(0.2)
        assert all(sim.allocation_of(t) is not None for t in tasks)

    def test_market_round_runs_at_bid_period(self):
        tasks = [make_task("swaptions", "l")]
        sim, gov = make_sim(tasks)
        sim.run(0.32)  # ~10 bid periods of 31.7 ms
        # Bid rounds quantise to the 10 ms engine tick (31.7 ms -> every 4th).
        assert 7 <= gov.market.rounds_run <= 11

    def test_departed_task_removed_from_market(self):
        brief = make_task("swaptions", "l", duration=0.2)
        keeper = make_task("x264", "l")
        sim, gov = make_sim([brief, keeper])
        sim.run(0.1)
        assert brief.name in gov.market.tasks
        sim.run(0.3)
        assert brief.name not in gov.market.tasks
        assert keeper.name in gov.market.tasks

    def test_placement_synced_into_market(self):
        task = make_task("swaptions", "l")
        sim, gov = make_sim([task])
        sim.run(0.1)
        assert gov.market.core_of(task.name) == sim.placement.core_of(task).core_id


class TestSupplyDemandBehaviour:
    def test_dvfs_rises_to_meet_demand(self):
        # One demanding task: little must leave its minimum level.
        task = make_task("tracking", "v")  # 720 PUs on A7
        sim, gov = make_sim([task])
        sim.run(5.0)
        assert sim.chip.cluster("little").frequency_mhz >= 700.0
        assert task.observed_heart_rate() >= 0.9 * task.hr_range.min_hr

    def test_light_task_keeps_frequency_low(self):
        task = make_task("multicnt", "v")  # 280 PUs on A7
        sim, gov = make_sim([task])
        sim.run(5.0)
        assert sim.chip.cluster("little").frequency_mhz <= 500.0

    def test_frequency_descends_after_demand_drop(self):
        from repro.tasks import PiecewisePhases, make_profile
        from repro.tasks.task import Task

        profile = make_profile(
            "tracking", "v", phases=PiecewisePhases([(3.0, 1.2), (60.0, 0.35)])
        )
        task = Task(profile=profile)
        sim, gov = make_sim([task])
        sim.run(3.0)
        high = sim.chip.cluster("little").frequency_mhz
        sim.run(8.0)
        low = sim.chip.cluster("little").frequency_mhz
        assert low < high

    def test_demand_bootstraps_from_profile(self):
        task = make_task("swaptions", "l")
        sim, gov = make_sim([task])
        sim.run(0.04)  # first bid round only
        agent = gov.market.tasks[task.name]
        nominal = task.profile.nominal_demand_pus("A7")
        assert agent.demand == pytest.approx(
            nominal * gov.config.market.demand_headroom, rel=0.05
        )


class TestLBTIntegration:
    def test_overloaded_little_promotes_to_big(self):
        tasks = build_workload("h3")  # cannot fit on the little cluster
        sim, gov = make_sim(tasks)
        sim.run(10.0)
        big_tasks = sim.placement.tasks_on_cluster(sim.chip.cluster("big"))
        assert len(big_tasks) >= 1
        assert gov.moves_executed >= 1

    def test_lbt_can_be_disabled(self):
        tasks = build_workload("h3")
        sim, gov = make_sim(
            tasks,
            PPMConfig(enable_load_balancing=False, enable_migration=False),
        )
        sim.run(5.0)
        assert gov.moves_executed == 0
        assert sim.migrations.counts() == (0, 0)

    def test_cooldown_limits_per_task_migration_rate(self):
        tasks = build_workload("m2")
        sim, gov = make_sim(tasks, PPMConfig(migration_cooldown_s=2.0))
        sim.run(6.0)
        for task in tasks:
            # With a 2 s cooldown a task can move at most ~3 times in 6 s.
            assert task.migrations <= 4


class TestTDPBehaviour:
    def test_power_respects_cap_on_average(self):
        tasks = build_workload("h1")
        sim, gov = make_sim(
            tasks, PPMConfig(market=MarketConfig(wtdp=4.0, wth=3.5))
        )
        sim.run(20.0)
        # Averaged after convergence the chip sits in/below the buffer zone.
        recent = [s.chip_power_w for s in sim.metrics.samples[-500:]]
        assert sum(recent) / len(recent) <= 4.3

    def test_no_cap_allows_higher_power(self):
        tasks = build_workload("h1")
        sim_uncapped, _ = make_sim(tasks)
        sim_uncapped.run(20.0)
        recent = [s.chip_power_w for s in sim_uncapped.metrics.samples[-500:]]
        assert sum(recent) / len(recent) > 4.0

    def test_emergency_state_reported(self):
        tasks = build_workload("h1")
        sim, gov = make_sim(
            tasks, PPMConfig(market=MarketConfig(wtdp=2.0, wth=1.8))
        )
        seen = set()
        for _ in range(100):
            sim.run(0.1)
            if gov.last_round is not None:
                seen.add(gov.last_round.chip_state)
        assert ChipPowerState.EMERGENCY in seen or ChipPowerState.THRESHOLD in seen
