"""Online power-estimator and estimator-supervisor tests.

Covers the RLS fit (bounded coefficients, convergence on clean data),
the config validation contract, and the supervisor's degradation ladder
(one rung at a time, hysteresis-guarded recovery) driven directly with
synthetic health scores.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.powerest import (
    N_FEATURES,
    ClusterPowerEstimator,
    EstimationConfig,
    EstimationManager,
    PowerEstimator,
)
from repro.core.resilience import (
    _ESTIMATOR_ENTRY,
    _ESTIMATOR_LADDER,
    EstimatorState,
    EstimatorSupervisor,
)
from repro.hw import tc2_chip


class TestEstimationConfigValidation:
    def test_defaults_are_valid(self):
        EstimationConfig()

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"forgetting": 0.0}, "forgetting factor must be in"),
            ({"forgetting": 1.1}, "forgetting factor must be in"),
            ({"ridge": 0.0}, "ridge must be positive"),
            ({"innovation_window": 1}, "innovation_window must be at least 2"),
            ({"warmup_ticks": 0}, "warmup_ticks must be at least 1"),
            ({"check_period_s": 0.0}, "check_period_s must be positive"),
            ({"innovation_gate_w": 0.0}, "innovation_gate_w must be positive"),
            (
                {"innovation_clamp_w": 0.5},
                "innovation_clamp_w must be at least innovation_gate_w",
            ),
            ({"margin_factor": 1.0}, "margin_factor must exceed 1"),
            ({"hysteresis": -0.1}, "hysteresis must be non-negative"),
            ({"recovery_checks": 0}, "recovery_checks must be at least 1"),
            ({"counters": object()}, "counters must be a CounterConfig"),
        ],
    )
    def test_bad_values_rejected_with_context(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            EstimationConfig(**kwargs)


def make_rls(forgetting=0.995, ridge=1.0, window=32):
    return ClusterPowerEstimator(forgetting, ridge, window)


features = st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=4, max_size=4
).map(lambda xs: [1.0] + xs)
targets = st.floats(min_value=0.0, max_value=20.0)


class TestClusterPowerEstimatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(features, targets), min_size=1, max_size=120))
    def test_coefficients_stay_bounded_and_finite(self, pairs):
        """Bounded inputs never blow the fit up -- every weight stays
        finite and within a generous envelope of the target scale."""
        rls = make_rls()
        for x, y in pairs:
            rls.update(x, y)
        assert all(math.isfinite(w) for w in rls.weights)
        assert all(abs(w) < 1e4 for w in rls.weights)
        assert math.isfinite(rls.innovation_ewma)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-2.0, max_value=2.0),
            min_size=N_FEATURES,
            max_size=N_FEATURES,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_converges_on_clean_linear_data(self, true_weights, seed):
        """Noise-free data from a linear model is learned near-exactly."""
        import random

        rng = random.Random(seed)
        rls = make_rls()
        for _ in range(400):
            x = [1.0] + [rng.uniform(0.0, 5.0) for _ in range(N_FEATURES - 1)]
            y = sum(w * v for w, v in zip(true_weights, x))
            rls.update(x, y)
        probe = [1.0] + [rng.uniform(0.0, 5.0) for _ in range(N_FEATURES - 1)]
        truth = sum(w * v for w, v in zip(true_weights, probe))
        assert rls.predict(probe) == pytest.approx(truth, abs=0.05)

    def test_frozen_holds_coefficients_but_tracks_innovation(self):
        rls = make_rls()
        for i in range(50):
            rls.update([1.0, 1.0, 2.0, 0.5, 0.1], 3.0)
        rls.frozen = True
        weights = list(rls.weights)
        before_ewma = rls.innovation_ewma
        rls.update([1.0, 1.0, 2.0, 0.5, 0.1], 9.0)  # big surprise
        assert rls.weights == weights
        assert rls.innovation_ewma > before_ewma

    def test_snapshot_roundtrip_is_exact(self):
        rls = make_rls()
        for i in range(20):
            rls.update([1.0, float(i % 3), 2.0, 0.5, 0.1], 2.0 + 0.1 * i)
        clone = make_rls()
        clone.restore_state(rls.snapshot_state())
        x = [1.0, 1.5, 2.0, 0.5, 0.2]
        assert clone.predict(x) == rls.predict(x)
        assert clone.snapshot_state() == rls.snapshot_state()


class _StubSim:
    """Minimal clock for driving the supervisor's ladder directly."""

    def __init__(self):
        self.now = 0.0


class _StubEstimator:
    """Health-score source the ladder property tests control exactly."""

    def __init__(self):
        self.score = 0.0
        self.frozen = False

    def health_score(self):
        return self.score

    def freeze(self):
        self.frozen = True

    def unfreeze(self):
        self.frozen = False


def drive(supervisor, sim, estimator, scores):
    """Feed one ladder evaluation per score; returns visited states."""
    visited = [supervisor.state]
    for score in scores:
        estimator.score = score
        sim.now += supervisor.config.check_period_s
        supervisor._evaluate(sim, estimator)
        visited.append(supervisor.state)
    return visited


def make_supervisor(**kwargs):
    config = EstimationConfig(**kwargs)
    return (
        EstimatorSupervisor(config, {"big": 8.0, "little": 2.0}),
        _StubSim(),
        _StubEstimator(),
    )


class TestEstimatorLadderProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0), min_size=1, max_size=60
        )
    )
    def test_never_skips_a_rung(self, scores):
        supervisor, sim, estimator = make_supervisor()
        visited = drive(supervisor, sim, estimator, scores)
        for old, new in zip(visited, visited[1:]):
            assert abs(
                _ESTIMATOR_LADDER.index(new) - _ESTIMATOR_LADDER.index(old)
            ) <= 1

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0), min_size=1, max_size=60
        )
    )
    def test_transitions_match_visited_states(self, scores):
        supervisor, sim, estimator = make_supervisor()
        visited = drive(supervisor, sim, estimator, scores)
        changes = [
            (old.value, new.value)
            for old, new in zip(visited, visited[1:])
            if old is not new
        ]
        assert [(t[1], t[2]) for t in supervisor.transitions] == changes

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_recovery_needs_consecutive_healthy_checks(self, recovery_checks):
        supervisor, sim, estimator = make_supervisor(
            recovery_checks=recovery_checks
        )
        drive(supervisor, sim, estimator, [1.5])  # escalate to FROZEN
        assert supervisor.state is EstimatorState.FROZEN
        # recovery_checks - 1 healthy evaluations are not enough...
        drive(supervisor, sim, estimator, [0.0] * (recovery_checks - 1))
        assert supervisor.state is EstimatorState.FROZEN
        # ...and a single relapse resets the count entirely.
        drive(supervisor, sim, estimator, [1.5])
        drive(supervisor, sim, estimator, [0.0] * (recovery_checks - 1))
        assert supervisor.state is EstimatorState.FROZEN
        drive(supervisor, sim, estimator, [0.0])
        assert supervisor.state is EstimatorState.HEALTHY

    def test_hysteresis_blocks_descent_at_the_edge(self):
        supervisor, sim, estimator = make_supervisor(
            hysteresis=0.25, recovery_checks=1
        )
        drive(supervisor, sim, estimator, [1.5])
        assert supervisor.state is EstimatorState.FROZEN
        # Just under entry but inside the hysteresis band: stays put.
        entry = _ESTIMATOR_ENTRY[EstimatorState.FROZEN]
        drive(supervisor, sim, estimator, [entry - 0.1] * 10)
        assert supervisor.state is EstimatorState.FROZEN
        drive(supervisor, sim, estimator, [entry - 0.3])
        assert supervisor.state is EstimatorState.HEALTHY

    def test_freeze_follows_served_rungs_only(self):
        """The model is held while its output is served (frozen/margin)
        and learns while out of the loop (healthy/fallback)."""
        supervisor, sim, estimator = make_supervisor(recovery_checks=1)
        drive(supervisor, sim, estimator, [1.5])
        assert estimator.frozen  # FROZEN: output served, model held
        drive(supervisor, sim, estimator, [2.5])
        assert estimator.frozen  # MARGIN: still served, still held
        drive(supervisor, sim, estimator, [5.0])
        assert supervisor.state is EstimatorState.FALLBACK
        assert not estimator.frozen  # shadow retraining behind metered
        drive(supervisor, sim, estimator, [0.0])
        assert supervisor.state is EstimatorState.MARGIN
        assert estimator.frozen

    def test_snapshot_roundtrip(self):
        supervisor, sim, estimator = make_supervisor()
        drive(supervisor, sim, estimator, [1.5, 2.5, 5.0, 0.0, 0.0])
        clone = EstimatorSupervisor(
            supervisor.config, {"big": 8.0, "little": 2.0}
        )
        clone.restore_state(supervisor.snapshot_state())
        assert clone.state is supervisor.state
        assert clone.transitions == supervisor.transitions
        assert clone.stats() == supervisor.stats()


class TestPowerEstimatorAggregate:
    def test_health_score_is_worst_cluster(self):
        chip = tc2_chip()
        estimator = PowerEstimator(chip, EstimationConfig())
        estimator.estimator_for("big").innovation_ewma = 0.4
        estimator.estimator_for("little").innovation_ewma = 1.2
        assert estimator.health_score() == pytest.approx(1.2)

    def test_confidence_decays_with_innovation(self):
        chip = tc2_chip()
        estimator = PowerEstimator(chip, EstimationConfig())
        estimator.estimator_for("big").innovation_ewma = 0.0
        estimator.estimator_for("little").innovation_ewma = 3.0
        estimates = estimator.estimates()
        assert estimates["big"].confidence == pytest.approx(1.0)
        assert estimates["little"].confidence == pytest.approx(0.25)

    def test_manager_serves_metered_during_warmup(self):
        from repro.experiments.harness import make_governor
        from repro.sim import SimConfig, Simulation
        from repro.tasks import build_workload

        config = EstimationConfig(warmup_ticks=10_000)  # never warms up
        sim = Simulation(
            tc2_chip(),
            build_workload("m1"),
            make_governor("PPM", power_cap_w=4.0),
            config=SimConfig(seed=2, estimation=config),
        )
        sim.run(0.5)
        manager = sim.estimation
        assert isinstance(manager, EstimationManager)
        assert not manager.warmed_up
        metered = sim.metered_power_sample()
        assert sim.last_power_sample() is manager.served_sample
        assert manager.served_sample.chip_power_w == metered.chip_power_w
