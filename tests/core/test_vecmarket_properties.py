"""Property tests for the vectorized market kernels (:mod:`repro.core.vecmarket`).

Two kinds of guarantee, both driven by hypothesis:

* **Market invariants** -- prices never negative, settled bids respect the
  ``[bmin, budget]`` clamp, savings stay within the cap, grants are
  non-negative and a core's in-order grant fold never exceeds its supply
  beyond the scalar path's own rounding guard.
* **Scalar-oracle agreement** -- every kernel must reproduce the
  per-agent scalar arithmetic (``TaskAgent.place_bid``, ``Wallet.settle``,
  ``CoreAgent``'s ``sum(bids)/S_c``, ``distribute_allowance``'s
  priority split, ``compute_grants``) *bit for bit*, because replay
  journals and golden telemetry digests depend on exact float identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agents import TaskAgent
from repro.core.money import Wallet
from repro.core.vecmarket import (
    clear_prices,
    compute_grants_batch,
    grants_at_prices,
    ordered_core_sums,
    settle_bids,
    share_allowance,
    update_unsatisfied_rounds,
)
from repro.sim.scheduler import compute_grants

N_CORES = 4


def _approx(x, rel=1e-9):
    return pytest.approx(x, rel=rel, abs=1e-12)


# Supplies are either exactly zero (gated core) or far enough from the
# subnormal range that sum/supply cannot overflow to inf and trip numpy's
# RuntimeWarning -- the engine never produces subnormal supplies.
_pos = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
)
_money = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)

# One task row: (core index, bid, demand, supply, allowance, savings)
_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_CORES - 1),
        _money, _money, _money, _money, _money,
    ),
    min_size=1,
    max_size=16,
)


def _unpack(rows):
    core_ix = np.asarray([r[0] for r in rows], dtype=np.intp)
    cols = [np.asarray([r[i] for r in rows], dtype=float) for i in range(1, 6)]
    return (core_ix, *cols)


class TestOrderedCoreSums:
    @settings(max_examples=200, deadline=None)
    @given(rows=_rows)
    def test_matches_left_to_right_fold(self, rows):
        core_ix, bids, *_ = _unpack(rows)
        sums = ordered_core_sums(bids, core_ix, N_CORES)
        for c in range(N_CORES):
            total = 0.0
            for i, b in zip(core_ix, bids):
                if i == c:
                    total += float(b)
            assert sums[c] == total  # exact: bincount folds in input order


class TestClearPrices:
    @settings(max_examples=200, deadline=None)
    @given(rows=_rows, supplies=st.lists(_pos, min_size=N_CORES, max_size=N_CORES))
    def test_non_negative_and_matches_scalar(self, rows, supplies):
        core_ix, bids, *_ = _unpack(rows)
        sup = np.asarray(supplies, dtype=float)
        prices = clear_prices(bids, core_ix, N_CORES, sup)
        assert (prices >= 0.0).all()
        for c in range(N_CORES):
            core_bids = [float(b) for i, b in zip(core_ix, bids) if i == c]
            if not core_bids or sup[c] <= 0.0:
                expect = 0.0
            else:
                # CoreAgent.discover_price: sum(bids) / S_c
                total = 0.0
                for b in core_bids:
                    total += b
                expect = total / float(sup[c])
            assert prices[c] == expect

    @settings(max_examples=100, deadline=None)
    @given(rows=_rows)
    def test_supplyless_core_prices_zero(self, rows):
        core_ix, bids, *_ = _unpack(rows)
        prices = clear_prices(bids, core_ix, N_CORES, np.zeros(N_CORES))
        assert (prices == 0.0).all()


class TestGrantsAtPrices:
    @settings(max_examples=200, deadline=None)
    @given(rows=_rows, supplies=st.lists(
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
        min_size=N_CORES, max_size=N_CORES))
    def test_non_negative_and_matches_scalar(self, rows, supplies):
        core_ix, bids, *_ = _unpack(rows)
        sup = np.asarray(supplies, dtype=float)
        prices = clear_prices(bids, core_ix, N_CORES, sup)
        grants = grants_at_prices(bids, core_ix, prices)
        assert (grants >= 0.0).all()
        for k in range(len(bids)):
            p = float(prices[core_ix[k]])
            expect = float(bids[k]) / p if p > 0.0 else 0.0
            assert grants[k] == expect

    @settings(max_examples=100, deadline=None)
    @given(rows=_rows, supplies=st.lists(
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
        min_size=N_CORES, max_size=N_CORES))
    def test_purchases_cover_supply(self, rows, supplies):
        """Sum of purchases on a priced core recovers S_c (pro-rata split)."""
        core_ix, bids, *_ = _unpack(rows)
        sup = np.asarray(supplies, dtype=float)
        prices = clear_prices(bids, core_ix, N_CORES, sup)
        grants = grants_at_prices(bids, core_ix, prices)
        bought = ordered_core_sums(grants, core_ix, N_CORES)
        for c in range(N_CORES):
            if prices[c] > 0.0:
                # Real-math identity sum(b/P) = S_c; per-task division
                # rounding across mixed-magnitude bids leaves ~1e-7 rel.
                assert bought[c] == _approx(float(sup[c]), rel=1e-6)


class TestSettleBids:
    @settings(max_examples=300, deadline=None)
    @given(
        rows=_rows,
        price=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        bmin=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        cap=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_budget_clamps_and_scalar_agreement(self, rows, price, bmin, cap):
        core_ix, bid, demand, supply, allowance, savings = _unpack(rows)
        new_bid, new_savings = settle_bids(
            bid, demand, supply, np.full(len(bid), price), allowance, savings,
            bmin, cap)
        # Invariants: bid floor, budget ceiling (unless destitute), savings
        # within [0, cap * allowance] -- no money creation.
        assert (new_bid >= bmin).all()
        budget = allowance + savings
        assert (new_bid <= np.maximum(bmin, budget)).all()
        assert (new_savings >= 0.0).all()
        assert (new_savings <= cap * allowance).all()
        # Bit-exact against TaskAgent.place_bid + Wallet.settle.
        for k in range(len(bid)):
            agent = TaskAgent(
                "t%d" % k, 1,
                wallet=Wallet(allowance=float(allowance[k]),
                              savings=float(savings[k])),
                bid=float(bid[k]), demand=float(demand[k]),
                supply=float(supply[k]))
            scalar_bid = agent.place_bid(price, bmin, cap)
            assert new_bid[k] == scalar_bid
            assert new_savings[k] == agent.wallet.savings


class TestShareAllowance:
    @settings(max_examples=200, deadline=None)
    @given(
        assigns=st.lists(
            st.tuples(st.integers(min_value=0, max_value=2),
                      st.integers(min_value=1, max_value=8)),
            min_size=1, max_size=16),
        allowances=st.lists(_money, min_size=3, max_size=3),
    )
    def test_conserves_and_matches_scalar(self, assigns, allowances):
        cluster_ix = np.asarray([a[0] for a in assigns], dtype=np.intp)
        prio = np.asarray([a[1] for a in assigns], dtype=float)
        cluster_allowance = np.asarray(allowances, dtype=float)
        shares = share_allowance(prio, cluster_ix, cluster_allowance)
        assert (shares >= 0.0).all()
        for v in range(3):
            members = [k for k in range(len(assigns)) if cluster_ix[k] == v]
            if not members:
                continue
            # distribute_allowance: a_t = A_v * r_t / R_v
            psum = sum(int(prio[k]) for k in members)
            for k in members:
                expect = float(cluster_allowance[v]) * float(prio[k]) / psum
                assert shares[k] == expect
            # Budget conservation: the split hands out A_v, no more.
            assert sum(float(shares[k]) for k in members) == _approx(
                float(cluster_allowance[v]))


class TestUnsatisfiedRounds:
    @settings(max_examples=200, deadline=None)
    @given(rows=_rows, counts=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=16))
    def test_matches_note_round_outcome(self, rows, counts):
        core_ix, bid, demand, supply, *_ = _unpack(rows)
        n = len(bid)
        unsat = np.asarray((counts * n)[:n], dtype=np.int64)
        out = update_unsatisfied_rounds(unsat, demand, supply)
        for k in range(n):
            agent = TaskAgent("t%d" % k, 1, demand=float(demand[k]),
                              supply=float(supply[k]))
            agent.unsatisfied_rounds = int(unsat[k])
            agent.note_round_outcome()
            assert int(out[k]) == agent.unsatisfied_rounds


class TestComputeGrantsBatch:
    @settings(max_examples=200, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=N_CORES - 1),
                st.booleans(),  # has explicit allocation
                _money,  # allocation value (if explicit)
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1, max_size=16),
        supplies=st.lists(_pos, min_size=N_CORES, max_size=N_CORES),
    )
    def test_matches_scalar_compute_grants(self, rows, supplies):
        core_ix = np.asarray([r[0] for r in rows], dtype=np.intp)
        has_alloc = np.asarray([r[1] for r in rows], dtype=bool)
        alloc = np.asarray(
            [max(0.0, r[2]) if r[1] else 0.0 for r in rows], dtype=float)
        weights = np.asarray([max(0.0, r[3]) for r in rows], dtype=float)
        sup = np.asarray(supplies, dtype=float)

        grants = compute_grants_batch(core_ix, N_CORES, sup, alloc,
                                      has_alloc, weights)
        assert (grants >= 0.0).all()

        names = ["t%d" % k for k in range(len(rows))]
        for c in range(N_CORES):
            members = [k for k in range(len(rows)) if core_ix[k] == c]
            tasks = [names[k] for k in members]
            allocations = {names[k]: float(rows[k][2])
                           for k in members if has_alloc[k]}
            wmap = {names[k]: float(weights[k]) for k in members}
            scalar = compute_grants(float(sup[c]), tasks, allocations, wmap)
            # In-order fold never exceeds supply past the rounding guard.
            total = 0.0
            for name in tasks:
                total += scalar[name]
            assert total <= float(sup[c]) * (1.0 + 1e-9) or total == 0.0
            for k in members:
                assert grants[k] == scalar[names[k]], (
                    "core %d task %s: %r vs %r"
                    % (c, names[k], float(grants[k]), scalar[names[k]]))
