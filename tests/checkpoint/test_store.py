"""Checkpoint file format: atomic writes, validation, listing."""

import json
import os

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointFingerprintError,
    CheckpointSchemaError,
    atomic_write_text,
    checkpoint_filename,
    latest_checkpoint,
    list_checkpoints,
    payload_checksum,
    read_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.store import CHECKPOINT_GLOB_RE


PAYLOAD = {"engine": {"tick_index": 7}, "tasks": [{"name": "a", "beats": 1.5}]}


def _write(tmp_path, name="ckpt_0000000007.json", **overrides):
    path = os.path.join(str(tmp_path), name)
    write_checkpoint(
        path, PAYLOAD, fingerprint="f" * 64, tick_index=7, sim_time_s=0.07
    )
    if overrides:
        with open(path) as handle:
            envelope = json.load(handle)
        envelope.update(overrides)
        with open(path, "w") as handle:
            json.dump(envelope, handle)
    return path


class TestAtomicWrite:
    def test_writes_content_and_creates_directories(self, tmp_path):
        path = os.path.join(str(tmp_path), "deep", "nested", "file.txt")
        atomic_write_text(path, "hello")
        with open(path) as handle:
            assert handle.read() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        path = os.path.join(str(tmp_path), "file.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        with open(path) as handle:
            assert handle.read() == "new"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        path = os.path.join(str(tmp_path), "file.txt")
        atomic_write_text(path, "content")
        assert os.listdir(str(tmp_path)) == ["file.txt"]


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = _write(tmp_path)
        envelope = read_checkpoint(path)
        assert envelope.tick_index == 7
        assert envelope.sim_time_s == 0.07
        assert envelope.fingerprint == "f" * 64
        assert envelope.payload == PAYLOAD

    def test_fingerprint_match_accepted(self, tmp_path):
        path = _write(tmp_path)
        envelope = read_checkpoint(path, expected_fingerprint="f" * 64)
        assert envelope.payload == PAYLOAD

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = _write(tmp_path)
        with pytest.raises(CheckpointFingerprintError, match="different run"):
            read_checkpoint(path, expected_fingerprint="0" * 64)

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        tampered = dict(PAYLOAD, engine={"tick_index": 8})
        path = _write(tmp_path, payload=tampered)
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(path)

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = _write(tmp_path, schema_version=CHECKPOINT_SCHEMA_VERSION + 1)
        with pytest.raises(CheckpointSchemaError, match="schema version"):
            read_checkpoint(path)

    def test_missing_magic_rejected(self, tmp_path):
        path = _write(tmp_path, magic="something-else")
        with pytest.raises(CheckpointCorruptError, match="magic"):
            read_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = _write(tmp_path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(CheckpointCorruptError, match="not valid JSON"):
            read_checkpoint(path)

    def test_missing_envelope_fields_rejected(self, tmp_path):
        path = _write(tmp_path)
        with open(path) as handle:
            envelope = json.load(handle)
        del envelope["payload_sha256"]
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        with pytest.raises(CheckpointCorruptError, match="payload_sha256"):
            read_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointCorruptError, match="cannot read"):
            read_checkpoint(os.path.join(str(tmp_path), "nope.json"))

    def test_checksum_is_order_insensitive(self):
        assert payload_checksum({"a": 1, "b": 2}) == payload_checksum(
            {"b": 2, "a": 1}
        )


class TestNamingAndListing:
    def test_filename_zero_pads_tick(self):
        assert checkpoint_filename(42) == "ckpt_0000000042.json"
        assert checkpoint_filename(42, "0-PPM") == "ckpt_0-PPM_0000000042.json"

    def test_filename_pattern_extracts_stream_and_tick(self):
        match = CHECKPOINT_GLOB_RE.match("ckpt_1-HL_0000000300.json")
        assert match.group("stream") == "1-HL"
        assert match.group("tick") == "0000000300"
        plain = CHECKPOINT_GLOB_RE.match("ckpt_0000000300.json")
        assert plain.group("stream") is None

    def test_list_is_oldest_first_and_latest_is_newest(self, tmp_path):
        for tick in (300, 100, 200):
            _write(tmp_path, name=checkpoint_filename(tick))
        paths = list_checkpoints(str(tmp_path))
        ticks = [os.path.basename(p) for p in paths]
        assert ticks == [
            "ckpt_0000000100.json",
            "ckpt_0000000200.json",
            "ckpt_0000000300.json",
        ]
        assert latest_checkpoint(str(tmp_path)) == paths[-1]

    def test_list_ignores_non_checkpoint_files(self, tmp_path):
        _write(tmp_path, name=checkpoint_filename(5))
        atomic_write_text(os.path.join(str(tmp_path), "journal_0-PPM.json"), "{}")
        assert len(list_checkpoints(str(tmp_path))) == 1

    def test_empty_or_missing_directory(self, tmp_path):
        assert list_checkpoints(os.path.join(str(tmp_path), "missing")) == []
        assert latest_checkpoint(str(tmp_path)) is None
