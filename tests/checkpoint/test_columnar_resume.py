"""Columnar-engine checkpointing: bit-exact snapshot, resume, and replay.

The columnar engine keeps the object graph authoritative through
write-through, so a snapshot taken mid-run under either engine must be
byte-identical to the other's, and a snapshot taken under one engine
must restore into the other with telemetry identical to the donor's
uninterrupted run.  The engine is deliberately not part of the
checkpoint fingerprint (``SimConfig`` excludes it from the identity
dict) -- these tests are what make that exclusion safe.
"""

import os

import pytest

from repro.checkpoint import (
    CheckpointManager,
    replay_from_checkpoint,
    resume_from,
    tick_records,
)
from repro.experiments.harness import make_governor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.sim.engine import default_engine
from repro.tasks import build_workload

DURATION_S = 5.0


def build_sim(engine, seed=11, governor="PPM"):
    return Simulation(
        tc2_chip(),
        build_workload("m1"),
        make_governor(governor, power_cap_w=10.0),
        config=SimConfig(
            seed=seed, metrics_warmup_s=1.0, audit=True, engine=engine
        ),
    )


def run_with_checkpoints(tmp_path, engine, subdir):
    directory = os.path.join(str(tmp_path), subdir)
    sim = build_sim(engine)
    manager = CheckpointManager(
        directory, interval_s=1.0, retention=None
    ).attach(sim)
    sim.run(DURATION_S)
    return sim, manager


class TestColumnarSnapshotIdentity:
    def test_checkpoint_files_are_byte_identical_across_engines(
        self, tmp_path
    ):
        """Write-through leaves nothing engine-specific in a snapshot."""
        _, columnar = run_with_checkpoints(tmp_path, "columnar", "columnar")
        _, obj = run_with_checkpoints(tmp_path, "object", "object")
        col_paths = columnar.checkpoints()
        obj_paths = obj.checkpoints()
        assert len(col_paths) == len(obj_paths) == 5
        for col_path, obj_path in zip(col_paths, obj_paths):
            with open(col_path, "rb") as handle:
                col_bytes = handle.read()
            with open(obj_path, "rb") as handle:
                obj_bytes = handle.read()
            assert col_bytes == obj_bytes, os.path.basename(col_path)

    def test_checkpointing_does_not_perturb_columnar_run(self, tmp_path):
        baseline = build_sim("columnar")
        baseline.run(DURATION_S)
        checkpointed, _ = run_with_checkpoints(tmp_path, "columnar", "ckpt")
        assert tick_records(checkpointed.metrics) == tick_records(
            baseline.metrics
        )


class TestColumnarResume:
    def test_resume_midway_matches_uninterrupted(self, tmp_path):
        baseline = build_sim("columnar")
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path, "columnar", "ckpt")
        midpoint = manager.checkpoints()[2]
        sim, envelope = resume_from(midpoint, lambda: build_sim("columnar"))
        assert envelope.tick_index == 300
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)

    @pytest.mark.parametrize(
        "donor,restorer",
        [("columnar", "object"), ("object", "columnar")],
        ids=["columnar-to-object", "object-to-columnar"],
    )
    def test_cross_engine_restore_is_exact(self, tmp_path, donor, restorer):
        """A snapshot restores into either engine with identical telemetry."""
        baseline = build_sim(donor)
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path, donor, "ckpt")
        midpoint = manager.checkpoints()[2]
        sim, _ = resume_from(midpoint, lambda: build_sim(restorer))
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)


class TestColumnarReplay:
    def test_clean_replay_from_columnar_checkpoint(self, tmp_path):
        sim, manager = run_with_checkpoints(tmp_path, "columnar", "ckpt")
        records = tick_records(sim.metrics)
        report = replay_from_checkpoint(
            manager.checkpoints()[1], lambda: build_sim("columnar"), records
        )
        assert report.clean
        assert report.first_divergent_tick is None

    def test_cross_engine_replay_verifies_clean(self, tmp_path):
        """Object-engine journal replays divergence-free under columnar."""
        sim, manager = run_with_checkpoints(tmp_path, "object", "ckpt")
        records = tick_records(sim.metrics)
        report = replay_from_checkpoint(
            manager.checkpoints()[1], lambda: build_sim("columnar"), records
        )
        assert report.clean


class TestEngineDefault:
    def test_default_engine_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "columnar"
        assert SimConfig().engine == "columnar"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "object")
        assert SimConfig().engine == "object"

    def test_invalid_env_value_is_rejected_like_an_argument(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError, match="engine"):
            SimConfig()

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "object")
        assert SimConfig(engine="columnar").engine == "columnar"
