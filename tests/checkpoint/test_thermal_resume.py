"""Checkpoint/resume/replay of thermally-throttled runs must not diverge.

The thermal subsystem adds live state everywhere the checkpoint layer
looks: the RC model temperatures and fault seams, the sensor RNG and
stuck-reading cache, the cycle counters, ``time_over_tcrit_s``, and the
supervisor's ladder (states, ceilings, shed/trip bookkeeping).  A resume
that loses any of it diverges within a tick or two, so these tests pin
bit-exact identity through a run that warns, throttles, sheds and trips.
"""

import pytest

from repro.checkpoint import (
    CheckpointFingerprintError,
    CheckpointManager,
    SnapshotRestoreError,
    replay_from_checkpoint,
    restore_simulation,
    resume_from,
    snapshot_simulation,
    tick_records,
)
from repro.core.resilience import ThermalState
from repro.experiments.harness import make_governor
from repro.faults import FaultInjector, FaultKind, single_fault
from repro.hw import ThermalConfig, ThermalParams, ThermalProtectionConfig, tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 6.0

#: tau = 0.6 s so the runaway fault walks the full ladder well before the
#: midpoint checkpoint at t = 3 s.
FAST_PARAMS = ThermalParams(resistance_k_per_w=6.0, capacitance_j_per_k=0.1)


def build_sim(seed=11, governor="PPM", thermal=True, fault=None):
    chip = tc2_chip()
    config = None
    if thermal:
        config = ThermalConfig(
            params={c.cluster_id: FAST_PARAMS for c in chip.clusters},
            protection=ThermalProtectionConfig(),
            sensor_noise_std_c=0.3,  # exercises the sensor RNG stream
        )
    sim = Simulation(
        chip,
        build_workload("m1"),
        make_governor(governor, power_cap_w=10.0),
        config=SimConfig(
            seed=seed, metrics_warmup_s=1.0, audit=True, thermal=config
        ),
    )
    if fault is not None:
        schedule = single_fault(
            fault, 1.0, 2.0, target="big", magnitude=30.0
        )
        FaultInjector(sim, schedule).attach()
    return sim


def build_throttled_sim():
    return build_sim(fault=FaultKind.THERMAL_RUNAWAY)


def run_with_checkpoints(tmp_path, factory=build_throttled_sim):
    sim = factory()
    manager = CheckpointManager(
        str(tmp_path), interval_s=1.0, retention=None
    ).attach(sim)
    sim.run(DURATION_S)
    return sim, manager


class TestThermalResumeIdentity:
    def test_scenario_actually_throttles(self):
        """Guard against vacuity: the ladder must fully engage mid-run."""
        sim = build_throttled_sim()
        sim.run(3.0)  # the midpoint checkpoint the tests resume from
        assert sim.thermal_supervisor.state_of("big") is ThermalState.TRIP
        sim.run(DURATION_S - sim.now)
        assert sim.thermal_supervisor.recoveries == 1

    def test_checkpointing_does_not_perturb_a_throttled_run(self, tmp_path):
        baseline = build_throttled_sim()
        baseline.run(DURATION_S)
        checkpointed, _ = run_with_checkpoints(tmp_path)
        assert tick_records(baseline.metrics) == tick_records(
            checkpointed.metrics
        )

    def test_resume_mid_trip_matches_uninterrupted(self, tmp_path):
        """Resume lands inside the tripped window and still matches."""
        baseline = build_throttled_sim()
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path)
        midpoint = manager.checkpoints()[2]  # t = 3 s: big is offline
        sim, envelope = resume_from(midpoint, build_throttled_sim)
        assert envelope.tick_index == 300
        assert sim.thermal_supervisor.state_of("big") is ThermalState.TRIP
        assert "big" in sim.offline_clusters
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)
        # The resumed run finishes the recovery exactly like the baseline.
        assert sim.thermal_supervisor.recoveries == 1
        assert sim.thermal_supervisor.unrecovered_trips == 0

    def test_resume_from_every_checkpoint_matches(self, tmp_path):
        baseline = build_throttled_sim()
        baseline.run(DURATION_S)
        expected = tick_records(baseline.metrics)
        _, manager = run_with_checkpoints(tmp_path)
        for path in manager.checkpoints():
            sim, _ = resume_from(path, build_throttled_sim)
            sim.run(DURATION_S - sim.now)
            assert tick_records(sim.metrics) == expected

    def test_replay_of_throttled_run_is_clean(self, tmp_path):
        baseline = build_throttled_sim()
        baseline.run(DURATION_S)
        journal = tick_records(baseline.metrics)
        _, manager = run_with_checkpoints(tmp_path)
        report = replay_from_checkpoint(
            manager.checkpoints()[2], build_throttled_sim, journal
        )
        assert report.clean, report.describe()
        assert report.ticks_compared == len(journal)

    def test_records_carry_temperatures(self, tmp_path):
        sim, _ = run_with_checkpoints(tmp_path)
        records = tick_records(sim.metrics)
        assert all(
            set(r["cluster_temperature_c"]) == {"big", "little"}
            for r in records
        )

    def test_fault_free_thermal_resume_matches(self, tmp_path):
        baseline = build_sim()
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path, factory=build_sim)
        sim, _ = resume_from(manager.checkpoints()[2], build_sim)
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)


class TestThermalResumeRefusals:
    """Presence mismatches refuse loudly instead of resuming half-blind.

    ``resume_from`` already rejects these via the config fingerprint;
    driving ``restore_simulation`` directly pins the snapshot layer's own
    guard, which protects hand-rolled restore paths too.
    """

    def test_thermal_checkpoint_needs_thermal_sim(self):
        donor = build_sim()
        donor.run(1.0)
        payload = snapshot_simulation(donor)
        with pytest.raises(SnapshotRestoreError, match="thermal tracking"):
            restore_simulation(build_sim(thermal=False), payload)

    def test_thermal_free_checkpoint_refuses_thermal_sim(self):
        donor = build_sim(thermal=False)
        donor.run(1.0)
        payload = snapshot_simulation(donor)
        with pytest.raises(SnapshotRestoreError, match="without thermal"):
            restore_simulation(build_sim(), payload)

    def test_fingerprint_catches_thermal_config_drift(self, tmp_path):
        _, manager = run_with_checkpoints(tmp_path, factory=build_sim)
        with pytest.raises(CheckpointFingerprintError, match="different run"):
            resume_from(
                manager.checkpoints()[0], lambda: build_sim(thermal=False)
            )
