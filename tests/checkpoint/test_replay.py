"""Replay verification: clean runs diff to nothing, perturbed runs localize."""

import os

import pytest

from repro.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    diff_tick_records,
    read_journal,
    replay_from_checkpoint,
    resume_from,
    tick_records,
    write_journal,
)
from repro.experiments.campaigns import (
    replay_campaign_checkpoint,
    run_fault_campaign,
)
from repro.experiments.harness import make_governor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 5.0


def build_sim(seed=23):
    return Simulation(
        tc2_chip(),
        build_workload("m1"),
        make_governor("PPM", power_cap_w=10.0),
        config=SimConfig(seed=seed, metrics_warmup_s=1.0, audit=True),
    )


@pytest.fixture
def recorded_run(tmp_path):
    """A checkpointed run plus its telemetry journal."""
    sim = build_sim()
    manager = CheckpointManager(
        str(tmp_path), interval_s=1.0, retention=None
    ).attach(sim)
    sim.run(DURATION_S)
    journal_path = os.path.join(str(tmp_path), "journal.json")
    write_journal(
        journal_path, tick_records(sim.metrics), manager.fingerprint, sim.dt
    )
    return manager, journal_path


class TestReplay:
    def test_clean_replay_reports_zero_divergence(self, recorded_run):
        manager, journal_path = recorded_run
        records = read_journal(journal_path)["records"]
        report = replay_from_checkpoint(
            manager.checkpoints()[1], build_sim, records
        )
        assert report.clean
        assert report.first_divergent_tick is None
        assert report.checkpoint_tick == 200
        assert report.ticks_compared == 500
        assert "clean" in report.describe()

    def test_perturbed_state_pinpoints_first_divergent_tick(self, recorded_run):
        manager, journal_path = recorded_run
        records = read_journal(journal_path)["records"]
        checkpoint = manager.checkpoints()[1]
        sim, envelope = resume_from(checkpoint, build_sim)
        sim.tasks[0].total_beats += 5.0  # corrupt one task's progress
        while sim.tick_index < len(records):
            sim.step()
        divergence = diff_tick_records(records, tick_records(sim.metrics))
        assert divergence is not None
        assert divergence["tick"] >= envelope.tick_index
        assert divergence["diffs"]
        # The field-level diff names the perturbed task's telemetry.
        assert any(sim.tasks[0].name in diff for diff in divergence["diffs"])

    def test_divergent_report_describe_names_the_tick(self):
        expected = [{"power": 1.0}, {"power": 2.0}]
        actual = [{"power": 1.0}, {"power": 2.5}]
        divergence = diff_tick_records(expected, actual)
        assert divergence == {
            "tick": 1,
            "diffs": ["tick.power: 2.5 != expected 2.0"],
        }

    def test_length_mismatch_is_divergence(self):
        expected = [{"power": 1.0}, {"power": 2.0}]
        divergence = diff_tick_records(expected, expected[:1])
        assert divergence["tick"] == 1
        assert "1" in divergence["diffs"][0]

    def test_identical_streams_have_no_divergence(self):
        records = [{"power": 1.0, "tasks": {"a": {"rate": 2.0}}}]
        assert diff_tick_records(records, list(records)) is None

    def test_checkpoint_beyond_journal_is_an_error(self, recorded_run):
        manager, journal_path = recorded_run
        records = read_journal(journal_path)["records"]
        with pytest.raises(ValueError, match="earlier checkpoint"):
            replay_from_checkpoint(
                manager.checkpoints()[-1], build_sim, records[:100]
            )


class TestJournalFormat:
    def test_round_trip(self, tmp_path):
        path = os.path.join(str(tmp_path), "journal.json")
        records = [{"time_s": 0.01, "power": 3.5}]
        write_journal(path, records, fingerprint="a" * 64, dt=0.01)
        journal = read_journal(path)
        assert journal["records"] == records
        assert journal["fingerprint"] == "a" * 64
        assert journal["dt"] == 0.01

    def test_rejects_non_journal_files(self, tmp_path):
        path = os.path.join(str(tmp_path), "not_journal.json")
        with open(path, "w") as handle:
            handle.write('{"magic": "other"}')
        with pytest.raises(CheckpointCorruptError, match="not a telemetry"):
            read_journal(path)

    def test_rejects_unreadable_files(self, tmp_path):
        path = os.path.join(str(tmp_path), "truncated.json")
        with open(path, "w") as handle:
            handle.write('{"magic": "repro-journal", "rec')
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            read_journal(path)


class TestCampaignReplay:
    def test_campaign_checkpoints_replay_clean(self, tmp_path):
        directory = str(tmp_path)
        run_fault_campaign(
            "sensor-dropout",
            governors=("PPM",),
            workload="m1",
            duration_s=10.0,
            warmup_s=2.0,
            intensity=0.4,
            seed=5,
            checkpoint_dir=directory,
            checkpoint_interval_s=2.0,
        )
        report = replay_campaign_checkpoint(directory)
        assert report.clean

    def test_replay_without_journal_is_actionable(self, tmp_path):
        directory = str(tmp_path)
        run_fault_campaign(
            "sensor-dropout",
            governors=("PPM",),
            workload="m1",
            duration_s=10.0,
            warmup_s=2.0,
            intensity=0.4,
            seed=5,
            checkpoint_dir=directory,
            checkpoint_interval_s=2.0,
        )
        os.unlink(os.path.join(directory, "point_0-PPM", "journal.json"))
        with pytest.raises(CheckpointError, match="journal"):
            replay_campaign_checkpoint(directory)
