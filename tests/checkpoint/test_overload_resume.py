"""Checkpoint/resume through a flash crowd must stay bit-exact.

The overload acceptance drill: snapshot mid-crowd (spawned tasks live,
queue populated, ladder escalated, possibly tasks already shed), rebuild
from the checkpoint, and the resumed run's telemetry and admission
accounting must equal the uninterrupted run byte for byte.
"""

import pytest

from repro.checkpoint import (
    CheckpointManager,
    SnapshotRestoreError,
    resume_from,
    tick_records,
)
from repro.checkpoint.snapshot import restore_simulation, snapshot_simulation
from repro.core import AdmissionConfig, AdmissionController, OverloadManager
from repro.experiments.harness import make_governor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import ArrivalConfig, ArrivalStream, build_workload

DURATION_S = 8.0


def crowd_config() -> ArrivalConfig:
    # A dense flash crowd inside a short run: burst from 3 s to 6 s.
    return ArrivalConfig(
        process="flash-crowd",
        rate_hz=2.0,
        burst_rate_hz=12.0,
        burst_start_s=3.0,
        burst_duration_s=3.0,
        lifetime_s=(1.0, 3.0),
    )


def build_sim(seed=11, with_admission=True):
    sim = Simulation(
        tc2_chip(),
        build_workload("l1"),
        make_governor("PPM", power_cap_w=10.0),
        config=SimConfig(seed=seed, metrics_warmup_s=1.0, audit=True),
    )
    controller = (
        AdmissionController(AdmissionConfig()) if with_admission else None
    )
    OverloadManager(ArrivalStream(crowd_config(), seed), controller).attach(sim)
    return sim


def admission_facts(sim):
    manager = sim.arrivals
    facts = {
        "spawned": [t.name for t in manager.spawned_tasks],
        "durations": [t.duration for t in manager.spawned_tasks],
        "stats": manager.stats(),
    }
    if manager.controller is not None:
        facts["snapshot"] = manager.controller.snapshot_state()
    return facts


class TestOverloadResume:
    @pytest.mark.parametrize("cut_index", [2, 4])  # pre-burst / mid-burst
    def test_resume_through_flash_crowd_is_bit_exact(self, tmp_path, cut_index):
        baseline = build_sim()
        baseline.run(DURATION_S)

        interrupted = build_sim()
        manager = CheckpointManager(
            str(tmp_path), interval_s=1.0, retention=None
        ).attach(interrupted)
        interrupted.run(DURATION_S)

        cut = manager.checkpoints()[cut_index]
        resumed, _ = resume_from(cut, build_sim)
        resumed.run(DURATION_S - resumed.now)

        assert tick_records(resumed.metrics) == tick_records(baseline.metrics)
        assert admission_facts(resumed) == admission_facts(baseline)

    def test_resume_baseline_manager_without_controller(self, tmp_path):
        baseline = build_sim(with_admission=False)
        baseline.run(DURATION_S)

        interrupted = build_sim(with_admission=False)
        manager = CheckpointManager(
            str(tmp_path), interval_s=1.0, retention=None
        ).attach(interrupted)
        interrupted.run(DURATION_S)

        cut = manager.checkpoints()[4]
        resumed, _ = resume_from(
            cut, lambda: build_sim(with_admission=False)
        )
        resumed.run(DURATION_S - resumed.now)
        assert tick_records(resumed.metrics) == tick_records(baseline.metrics)
        assert admission_facts(resumed) == admission_facts(baseline)

    def test_checkpointing_does_not_perturb_the_crowd(self, tmp_path):
        baseline = build_sim()
        baseline.run(DURATION_S)
        checkpointed = build_sim()
        CheckpointManager(str(tmp_path), interval_s=1.0, retention=None).attach(
            checkpointed
        )
        checkpointed.run(DURATION_S)
        assert tick_records(checkpointed.metrics) == tick_records(
            baseline.metrics
        )

    def test_controller_presence_must_match_the_checkpoint(self):
        sim = build_sim()
        sim.run(4.0)
        payload = snapshot_simulation(sim)
        mismatched = build_sim(with_admission=False)
        with pytest.raises((SnapshotRestoreError, ValueError)):
            restore_simulation(mismatched, payload)

    def test_arrivals_presence_must_match_the_checkpoint(self):
        sim = build_sim()
        sim.run(4.0)
        payload = snapshot_simulation(sim)
        plain = Simulation(
            tc2_chip(),
            build_workload("l1"),
            make_governor("PPM", power_cap_w=10.0),
            config=SimConfig(seed=11, metrics_warmup_s=1.0, audit=True),
        )
        with pytest.raises(SnapshotRestoreError):
            restore_simulation(plain, payload)
