"""Checkpoint/resume/replay of estimated-power runs must not diverge.

The estimation pipeline adds live state everywhere the checkpoint layer
looks: the counter emitter's RNG, each cluster's RLS weights and gain
matrix, the innovation EWMAs, the supervisor's ladder (state, pending
check time, recovery counter, transition log) and the served sample.  A
drift fault walks the ladder mid-run, so a resume from the mid-fault
checkpoint must restore a partially-degraded estimator bit-exactly.
"""

import pytest

from repro.checkpoint import (
    CheckpointFingerprintError,
    CheckpointManager,
    SnapshotRestoreError,
    replay_from_checkpoint,
    restore_simulation,
    resume_from,
    snapshot_simulation,
    tick_records,
)
from repro.core.powerest import EstimationConfig
from repro.core.resilience import EstimatorState
from repro.experiments.harness import make_governor
from repro.faults import FaultInjector, FaultKind, single_fault
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 6.0
FAULT_START_S = 2.0
FAULT_WINDOW_S = 3.0


def build_sim(seed=11, estimation=True, fault=None):
    config = EstimationConfig(warmup_ticks=50) if estimation else None
    sim = Simulation(
        tc2_chip(),
        build_workload("m1"),
        make_governor("PPM", power_cap_w=4.0),
        config=SimConfig(
            seed=seed, metrics_warmup_s=1.0, audit=True, estimation=config
        ),
    )
    if fault is not None:
        schedule = single_fault(
            fault,
            FAULT_START_S,
            FAULT_WINDOW_S,
            target="little",  # m1 loads the little cluster
            magnitude=6.0,
        )
        FaultInjector(sim, schedule).attach()
    return sim


def build_drifting_sim():
    return build_sim(fault=FaultKind.POWER_MODEL_DRIFT)


def run_with_checkpoints(tmp_path, factory=build_drifting_sim):
    sim = factory()
    manager = CheckpointManager(
        str(tmp_path), interval_s=1.0, retention=None
    ).attach(sim)
    sim.run(DURATION_S)
    return sim, manager


class TestEstimationResumeIdentity:
    def test_scenario_actually_degrades(self):
        """Guard against vacuity: drift walks freeze -> margin -> fallback."""
        sim = build_drifting_sim()
        sim.run(DURATION_S)
        supervisor = sim.estimation.supervisor
        assert supervisor.fallbacks >= 1
        visited = [t[2] for t in supervisor.transitions]
        assert visited[:3] == ["frozen", "margin", "fallback"]

    def test_checkpointing_does_not_perturb_a_drifting_run(self, tmp_path):
        baseline = build_drifting_sim()
        baseline.run(DURATION_S)
        checkpointed, _ = run_with_checkpoints(tmp_path)
        assert tick_records(baseline.metrics) == tick_records(
            checkpointed.metrics
        )

    def test_resume_mid_fault_matches_uninterrupted(self, tmp_path):
        """Resume lands inside the drift window with the ladder engaged."""
        baseline = build_drifting_sim()
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path)
        midpoint = manager.checkpoints()[3]  # t = 4 s: mid-fault
        sim, envelope = resume_from(midpoint, build_drifting_sim)
        assert envelope.tick_index == 400
        supervisor = sim.estimation.supervisor
        assert supervisor.state is not EstimatorState.HEALTHY
        assert supervisor.transitions  # telemetry restored, not reset
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)
        base_sup = baseline.estimation.supervisor
        assert supervisor.transitions == base_sup.transitions
        assert supervisor.stats() == base_sup.stats()

    def test_resume_from_every_checkpoint_matches(self, tmp_path):
        baseline = build_drifting_sim()
        baseline.run(DURATION_S)
        expected = tick_records(baseline.metrics)
        _, manager = run_with_checkpoints(tmp_path)
        for path in manager.checkpoints():
            sim, _ = resume_from(path, build_drifting_sim)
            sim.run(DURATION_S - sim.now)
            assert tick_records(sim.metrics) == expected

    def test_replay_of_drifting_run_is_clean(self, tmp_path):
        baseline = build_drifting_sim()
        baseline.run(DURATION_S)
        journal = tick_records(baseline.metrics)
        _, manager = run_with_checkpoints(tmp_path)
        report = replay_from_checkpoint(
            manager.checkpoints()[3], build_drifting_sim, journal
        )
        assert report.clean, report.describe()
        assert report.ticks_compared == len(journal)

    def test_records_carry_estimated_power(self, tmp_path):
        sim, _ = run_with_checkpoints(tmp_path)
        records = tick_records(sim.metrics)
        assert all("estimated_chip_power_w" in r for r in records)

    def test_fault_free_estimation_resume_matches(self, tmp_path):
        baseline = build_sim()
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path, factory=build_sim)
        sim, _ = resume_from(manager.checkpoints()[2], build_sim)
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)


class TestEstimationResumeRefusals:
    """Presence mismatches refuse loudly instead of resuming half-blind."""

    def test_estimation_checkpoint_needs_estimating_sim(self):
        donor = build_sim()
        donor.run(1.0)
        payload = snapshot_simulation(donor)
        with pytest.raises(SnapshotRestoreError, match="no estimation"):
            restore_simulation(build_sim(estimation=False), payload)

    def test_estimation_free_checkpoint_refuses_estimating_sim(self):
        donor = build_sim(estimation=False)
        donor.run(1.0)
        payload = snapshot_simulation(donor)
        with pytest.raises(SnapshotRestoreError, match="without"):
            restore_simulation(build_sim(), payload)

    def test_fingerprint_catches_estimation_config_drift(self, tmp_path):
        _, manager = run_with_checkpoints(tmp_path, factory=build_sim)
        with pytest.raises(CheckpointFingerprintError, match="different run"):
            resume_from(
                manager.checkpoints()[0], lambda: build_sim(estimation=False)
            )
