"""Checkpoint-at-T + resume must equal the uninterrupted run, bit for bit."""

import os

import pytest

from repro.checkpoint import (
    CheckpointFingerprintError,
    CheckpointManager,
    SnapshotRestoreError,
    resume_from,
    tick_records,
)
from repro.experiments.campaigns import (
    CAMPAIGN_FAULTS,
    build_campaign_schedule,
    resume_fault_campaign,
    run_fault_campaign,
)
from repro.experiments.harness import make_governor
from repro.faults import FaultInjector
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 6.0


def build_sim(seed=11, governor="PPM", fault=None):
    chip = tc2_chip()
    tasks = build_workload("m1")
    gov = make_governor(governor, power_cap_w=10.0)
    sim = Simulation(
        chip,
        tasks,
        gov,
        config=SimConfig(seed=seed, metrics_warmup_s=1.0, audit=True),
    )
    if fault is not None:
        schedule = build_campaign_schedule(
            CAMPAIGN_FAULTS[fault], DURATION_S + 4.0, 1.0, 0.4, chip
        )
        FaultInjector(sim, schedule).attach()
    return sim


def run_with_checkpoints(tmp_path, duration_s=DURATION_S, **kwargs):
    sim = build_sim(**kwargs)
    manager = CheckpointManager(
        str(tmp_path), interval_s=1.0, retention=None
    ).attach(sim)
    sim.run(duration_s)
    return sim, manager


class TestResumeIdentity:
    def test_checkpointing_does_not_perturb_the_run(self, tmp_path):
        baseline = build_sim()
        baseline.run(DURATION_S)
        checkpointed, _ = run_with_checkpoints(tmp_path)
        assert tick_records(baseline.metrics) == tick_records(
            checkpointed.metrics
        )

    def test_resume_midway_matches_uninterrupted(self, tmp_path):
        baseline = build_sim()
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path)
        midpoint = manager.checkpoints()[2]  # tick 300 of 600
        sim, envelope = resume_from(midpoint, build_sim)
        assert envelope.tick_index == 300
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)

    def test_resume_midway_under_faults(self, tmp_path):
        duration = DURATION_S + 4.0
        baseline = build_sim(fault="sensor-dropout")
        baseline.run(duration)
        _, manager = run_with_checkpoints(
            tmp_path, duration_s=duration, fault="sensor-dropout"
        )
        midpoint = manager.checkpoints()[4]
        sim, _ = resume_from(
            midpoint, lambda: build_sim(fault="sensor-dropout")
        )
        sim.run(duration - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)

    @pytest.mark.parametrize("governor", ["HPM", "HL"])
    def test_resume_non_market_governors(self, tmp_path, governor):
        baseline = build_sim(governor=governor)
        baseline.run(DURATION_S)
        _, manager = run_with_checkpoints(tmp_path, governor=governor)
        midpoint = manager.checkpoints()[2]
        sim, _ = resume_from(midpoint, lambda: build_sim(governor=governor))
        sim.run(DURATION_S - sim.now)
        assert tick_records(sim.metrics) == tick_records(baseline.metrics)


class TestResumeRefusals:
    def test_different_seed_is_refused(self, tmp_path):
        _, manager = run_with_checkpoints(tmp_path)
        with pytest.raises(CheckpointFingerprintError, match="different run"):
            resume_from(manager.checkpoints()[0], lambda: build_sim(seed=12))

    def test_different_governor_is_refused(self, tmp_path):
        _, manager = run_with_checkpoints(tmp_path)
        with pytest.raises(CheckpointFingerprintError, match="different run"):
            resume_from(
                manager.checkpoints()[0], lambda: build_sim(governor="HL")
            )

    def test_missing_injector_is_refused(self, tmp_path):
        _, manager = run_with_checkpoints(tmp_path, fault="sensor-stuck")
        with pytest.raises(SnapshotRestoreError, match="fault injector"):
            resume_from(manager.checkpoints()[0], build_sim)


class TestManagerPolicy:
    def test_retention_prunes_oldest(self, tmp_path):
        sim = build_sim()
        manager = CheckpointManager(
            str(tmp_path), interval_s=1.0, retention=2
        ).attach(sim)
        sim.run(DURATION_S)
        names = [os.path.basename(p) for p in manager.checkpoints()]
        assert names == ["ckpt_0000000500.json", "ckpt_0000000600.json"]

    def test_interval_controls_cadence(self, tmp_path):
        sim = build_sim()
        manager = CheckpointManager(
            str(tmp_path), interval_s=2.0, retention=None
        ).attach(sim)
        sim.run(DURATION_S)
        assert manager.saves == 3

    def test_streams_do_not_prune_each_other(self, tmp_path):
        sim_a = build_sim()
        manager_a = CheckpointManager(
            str(tmp_path), interval_s=1.0, retention=1, stream="0-PPM"
        ).attach(sim_a)
        sim_a.run(2.0)
        sim_b = build_sim()
        manager_b = CheckpointManager(
            str(tmp_path), interval_s=1.0, retention=1, stream="1-PPM"
        ).attach(sim_b)
        sim_b.run(2.0)
        assert len(manager_a.checkpoints()) == 1
        assert len(manager_b.checkpoints()) == 1

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), interval_s=0.0)
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), retention=0)


class TestCampaignResume:
    def _run(self, checkpoint_dir=None):
        return run_fault_campaign(
            "sensor-stuck",
            governors=("PPM", "HL"),
            workload="m1",
            duration_s=10.0,
            warmup_s=2.0,
            intensity=0.4,
            seed=5,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval_s=2.0,
        )

    def test_killed_campaign_resumes_to_identical_result(self, tmp_path):
        uninterrupted = self._run()
        directory = str(tmp_path)
        self._run(checkpoint_dir=directory)
        # Emulate a SIGKILL mid governor 0: only one early checkpoint left
        # in its point directory, no journal/result, governor 1 never
        # started.  The campaign manifest is deleted too, so resume must
        # fall back to the identity embedded in the checkpoint.
        point_dir = os.path.join(directory, "point_0-PPM")
        survivor = os.path.join(point_dir, "ckpt_0-PPM_0000000600.json")
        for root, _dirs, files in os.walk(directory):
            for name in files:
                path = os.path.join(root, name)
                if path != survivor:
                    os.unlink(path)
        resumed = resume_fault_campaign(directory, checkpoint_interval_s=2.0)
        assert resumed.to_json() == uninterrupted.to_json()
        # Resume regenerates the journals for replay verification.
        assert os.path.exists(os.path.join(point_dir, "journal.json"))
        assert os.path.exists(
            os.path.join(directory, "point_1-HL", "journal.json")
        )

    def test_campaign_checkpointing_is_observation_free(self, tmp_path):
        with_checkpoints = self._run(checkpoint_dir=str(tmp_path))
        without = self._run()
        assert with_checkpoints.to_json() == without.to_json()
