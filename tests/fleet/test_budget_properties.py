"""Property-based tests: the grid-budget market's invariants.

Whatever bids, regions, ladder positions and dead-chip subsets the fleet
throws at it, the clearing must conserve the grid budget, never pay a
down chip, never exceed a weighted claim, and the readmission ladder
must climb one rung at a time under hysteresis.  These are the fleet
analogue of the chip market's property suite.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import (
    ChipBid,
    FleetBudgetAuditor,
    FleetBudgetConfig,
    FleetBudgetInvariantError,
    ReadmissionLadder,
    clear_grants,
)

_EPS = 1e-6


@st.composite
def fleets(draw):
    """A budget config, a bid list, and a weights map (None = down)."""
    n = draw(st.integers(min_value=1, max_value=12))
    budget = draw(
        st.floats(min_value=0.5, max_value=64.0, allow_nan=False)
    )
    min_grant = draw(st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    regions = ["us-east", "eu-west", "ap-south", "local"]
    prices = {
        region: draw(
            st.floats(min_value=0.2, max_value=5.0, allow_nan=False)
        )
        for region in regions[:3]
    }
    config = FleetBudgetConfig(
        grid_budget_w=budget,
        min_grant_w=min_grant,
        region_prices=prices,
    )
    bids = []
    weights = {}
    for i in range(n):
        chip_id = f"chip{i:02d}"
        tdp = draw(st.floats(min_value=0.5, max_value=16.0, allow_nan=False))
        bid = draw(st.floats(min_value=0.0, max_value=32.0, allow_nan=False))
        bids.append(
            ChipBid(
                chip_id=chip_id,
                bid_w=bid,
                tdp_w=tdp,
                region=draw(st.sampled_from(regions)),
            )
        )
        rung = draw(
            st.one_of(
                st.none(),
                st.integers(
                    min_value=0, max_value=len(config.ladder_weights) - 1
                ),
            )
        )
        weights[chip_id] = (
            None if rung is None else config.ladder_weights[rung]
        )
    return config, bids, weights


@given(fleets())
@settings(max_examples=200, deadline=None)
def test_conservation_under_any_dead_subset(fleet):
    """Grants never sum above the grid budget, dead chips or not."""
    config, bids, weights = fleet
    grants = clear_grants(config, bids, weights)
    assert sum(grants.values()) <= config.grid_budget_w + _EPS


@given(fleets())
@settings(max_examples=200, deadline=None)
def test_no_negative_grants_and_down_chips_get_zero(fleet):
    config, bids, weights = fleet
    grants = clear_grants(config, bids, weights)
    assert set(grants) == {b.chip_id for b in bids}
    for bid in bids:
        grant = grants[bid.chip_id]
        assert grant >= 0.0
        if weights[bid.chip_id] is None:
            assert grant == 0.0


@given(fleets())
@settings(max_examples=200, deadline=None)
def test_no_grant_exceeds_weighted_claim(fleet):
    config, bids, weights = fleet
    grants = clear_grants(config, bids, weights)
    for bid in bids:
        weight = weights[bid.chip_id]
        if weight is not None:
            assert grants[bid.chip_id] <= bid.demand_w * weight + _EPS


@given(fleets())
@settings(max_examples=200, deadline=None)
def test_auditor_accepts_every_clearing(fleet):
    """clear_grants output passes the strict auditor by construction."""
    config, bids, weights = fleet
    grants = clear_grants(config, bids, weights)
    auditor = FleetBudgetAuditor(strict=True)
    rungs = {
        cid: (
            None
            if weights[cid] is None
            else config.ladder_weights.index(weights[cid])
        )
        for cid in weights
    }
    record = auditor.audit_epoch(
        0, config, bids, weights, grants, rungs, rungs
    )
    assert record.ok


@given(fleets())
@settings(max_examples=100, deadline=None)
def test_determinism_and_bid_order_independence(fleet):
    """Clearing is a pure function of (config, bid set, weights)."""
    config, bids, weights = fleet
    grants = clear_grants(config, bids, weights)
    again = clear_grants(config, list(reversed(bids)), dict(weights))
    assert grants == again


@given(
    st.integers(min_value=1, max_value=4),
    st.lists(
        st.sampled_from(["healthy", "failure", "restart"]),
        min_size=1,
        max_size=40,
    ),
)
@settings(max_examples=200, deadline=None)
def test_ladder_never_skips_a_rung(hysteresis, events):
    """Any event sequence moves the ladder at most one rung at a time."""
    config = FleetBudgetConfig(grid_budget_w=8.0, hysteresis_epochs=hysteresis)
    ladder = ReadmissionLadder(config)
    top = len(config.ladder_weights) - 1
    assert ladder.rung == top  # fresh chips start at full share
    previous = ladder.rung
    for epoch, event in enumerate(events):
        if event == "healthy":
            ladder.on_healthy_epoch(epoch)
        elif event == "failure":
            ladder.on_failure(epoch)
        else:
            if ladder.down:
                ladder.on_restart(epoch)
        current = ladder.rung
        if previous is None:
            assert current in (None, 0)  # readmission lands on the bottom
        elif current is not None:
            assert abs(current - previous) <= 1
        previous = current
        assert current is None or 0 <= current <= top


@given(st.integers(min_value=2, max_value=5))
@settings(max_examples=20, deadline=None)
def test_ladder_respects_hysteresis(hysteresis):
    """A promotion needs ``hysteresis`` consecutive healthy epochs."""
    config = FleetBudgetConfig(
        grid_budget_w=8.0, hysteresis_epochs=hysteresis
    )
    ladder = ReadmissionLadder(config)
    ladder.on_failure(0)
    ladder.on_restart(1)
    assert ladder.rung == 0
    epoch = 2
    for _ in range(hysteresis - 1):
        ladder.on_healthy_epoch(epoch)
        epoch += 1
    assert ladder.rung == 0  # one short of the gate: no promotion
    ladder.on_healthy_epoch(epoch)
    assert ladder.rung == 1  # the gating epoch promotes exactly one rung


def test_ladder_failure_resets_streak():
    config = FleetBudgetConfig(grid_budget_w=8.0, hysteresis_epochs=2)
    ladder = ReadmissionLadder(config)
    ladder.on_failure(0)
    ladder.on_restart(1)
    ladder.on_healthy_epoch(2)
    ladder.on_failure(3)  # flap: back to DOWN, streak gone
    ladder.on_restart(4)
    ladder.on_healthy_epoch(5)
    assert ladder.rung == 0  # the pre-failure streak must not carry over


def test_ladder_snapshot_roundtrip():
    config = FleetBudgetConfig(grid_budget_w=8.0)
    ladder = ReadmissionLadder(config)
    ladder.on_failure(2)
    ladder.on_restart(3)
    ladder.on_healthy_epoch(4)
    clone = ReadmissionLadder(config)
    clone.restore_state(ladder.snapshot_state())
    assert clone.rung == ladder.rung
    assert clone.healthy_streak == ladder.healthy_streak
    assert clone.transitions == ladder.transitions


def test_auditor_catches_conservation_violation():
    config = FleetBudgetConfig(grid_budget_w=4.0)
    bids = [ChipBid(chip_id="chip00", bid_w=8.0, tdp_w=8.0)]
    auditor = FleetBudgetAuditor(strict=True)
    with pytest.raises(FleetBudgetInvariantError, match="F1 conservation"):
        auditor.audit_epoch(
            0, config, bids, {"chip00": 1.0}, {"chip00": 9.0},
            {"chip00": 3}, {"chip00": 3},
        )


def test_auditor_catches_paid_down_chip_and_rung_skip():
    config = FleetBudgetConfig(grid_budget_w=8.0)
    bids = [
        ChipBid(chip_id="chip00", bid_w=4.0, tdp_w=8.0),
        ChipBid(chip_id="chip01", bid_w=4.0, tdp_w=8.0),
    ]
    auditor = FleetBudgetAuditor()
    record = auditor.audit_epoch(
        0,
        config,
        bids,
        {"chip00": None, "chip01": 1.0},
        {"chip00": 1.0, "chip01": 4.0},
        {"chip00": None, "chip01": 1},
        {"chip00": 2, "chip01": 3},  # readmitted above bottom + 2-rung jump
    )
    kinds = " ".join(record.violations)
    assert "F3" in kinds and "F5" in kinds
    assert len(auditor.violations()) == len(record.violations)


def test_duplicate_chip_ids_rejected():
    config = FleetBudgetConfig(grid_budget_w=8.0)
    bids = [
        ChipBid(chip_id="chip00", bid_w=4.0, tdp_w=8.0),
        ChipBid(chip_id="chip00", bid_w=2.0, tdp_w=8.0),
    ]
    with pytest.raises(ValueError, match="duplicate chip id"):
        clear_grants(config, bids, {"chip00": 1.0})


def test_cheap_region_clears_more_under_scarcity():
    """Price weighting: identical demand, cheaper electricity, more watts."""
    config = FleetBudgetConfig(
        grid_budget_w=6.0,
        min_grant_w=0.0,
        region_prices={"cheap": 0.5, "dear": 2.0},
    )
    bids = [
        ChipBid(chip_id="chip00", bid_w=8.0, tdp_w=8.0, region="cheap"),
        ChipBid(chip_id="chip01", bid_w=8.0, tdp_w=8.0, region="dear"),
    ]
    grants = clear_grants(config, bids, {"chip00": 1.0, "chip01": 1.0})
    assert grants["chip00"] > grants["chip01"]
    assert sum(grants.values()) == pytest.approx(6.0)
