"""The fleet message protocol: bounded waits, retries, failure taxonomy.

These tests drive :func:`repro.fleet.request` against a scripted peer on
the other end of a real multiprocessing pipe (answered from a thread, so
no processes are involved) and check the robustness contract: timeouts
are bounded, retries re-send with exponential backoff, heartbeats never
reset a deadline, and dead pipes surface as :class:`WorkerClosed`.
"""

import multiprocessing
import threading
import time

import pytest

from repro.fleet import (
    ProtocolError,
    RetryPolicy,
    WorkerClosed,
    WorkerTimeout,
    poll_message,
    request,
    send_message,
)
from repro.fleet.protocol import MSG_HEARTBEAT, MSG_RESULT


def pipe():
    return multiprocessing.Pipe(duplex=True)


def serve(conn, script):
    """Answer incoming messages from a thread: script(msg) -> replies."""

    def loop():
        while True:
            try:
                if not conn.poll(5.0):
                    return
                message = conn.recv()
            except (EOFError, OSError):
                return
            for reply in script(message):
                if reply == "close":
                    conn.close()
                    return
                conn.send(reply)

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return thread


def test_retry_policy_backoff_and_cap():
    policy = RetryPolicy(attempts=4, timeout_s=1.0, backoff=3.0, max_timeout_s=5.0)
    assert policy.timeout_for(0) == 1.0
    assert policy.timeout_for(1) == 3.0
    assert policy.timeout_for(2) == 5.0  # capped
    assert policy.timeout_for(3) == 5.0
    assert policy.total_budget_s() == pytest.approx(14.0)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)


def test_request_answered_first_try():
    a, b = pipe()
    serve(b, lambda m: [{"type": MSG_RESULT, "echo": m["payload"]}])
    reply = request(
        a,
        "work",
        {"payload": 7},
        matches=lambda m: m["type"] == MSG_RESULT,
        policy=RetryPolicy(attempts=1, timeout_s=5.0),
    )
    assert reply["echo"] == 7


def test_request_recovers_lost_reply_via_retry():
    """First reply is swallowed; the re-sent request must be answered."""
    seen = []

    def script(message):
        seen.append(message)
        if len(seen) == 1:
            return []  # drop the first reply entirely
        return [{"type": MSG_RESULT, "attempt": len(seen)}]

    a, b = pipe()
    serve(b, script)
    reply = request(
        a,
        "work",
        {},
        matches=lambda m: m["type"] == MSG_RESULT,
        policy=RetryPolicy(attempts=3, timeout_s=0.2, backoff=2.0),
    )
    assert reply["attempt"] == 2
    assert len(seen) == 2  # exactly one retransmission


def test_request_times_out_after_bounded_attempts():
    a, b = pipe()
    serve(b, lambda m: [])  # never answer
    policy = RetryPolicy(attempts=2, timeout_s=0.1, backoff=2.0)
    start = time.monotonic()
    with pytest.raises(WorkerTimeout, match="2 attempt"):
        request(
            a, "work", {}, matches=lambda m: True, policy=policy
        )
    elapsed = time.monotonic() - start
    assert elapsed >= policy.total_budget_s() * 0.9
    assert elapsed < policy.total_budget_s() + 5.0  # bounded, not hanging


def test_heartbeats_do_not_reset_the_deadline():
    """A worker that only ever heartbeats still times out."""

    def script(message):
        return [{"type": MSG_HEARTBEAT, "n": i} for i in range(50)]

    a, b = pipe()
    serve(b, script)
    beats = []
    start = time.monotonic()
    with pytest.raises(WorkerTimeout):
        request(
            a,
            "work",
            {},
            matches=lambda m: m["type"] == MSG_RESULT,
            policy=RetryPolicy(attempts=2, timeout_s=0.2, backoff=1.0),
            on_other=beats.append,
        )
    assert time.monotonic() - start < 10.0
    assert beats  # the sideband traffic was delivered, not dropped


def test_closed_pipe_raises_worker_closed():
    a, b = pipe()
    b.close()
    with pytest.raises(WorkerClosed):
        while True:  # the send may need a round trip to observe the close
            send_message(a, "work")
            if poll_message(a, 0.05) is None:
                continue


def test_peer_death_mid_request_raises_worker_closed():
    a, b = pipe()
    serve(b, lambda m: ["close"])
    with pytest.raises(WorkerClosed):
        request(
            a,
            "work",
            {},
            matches=lambda m: m["type"] == MSG_RESULT,
            policy=RetryPolicy(attempts=3, timeout_s=0.5),
        )


def test_malformed_message_rejected():
    a, b = pipe()
    b.send(["not", "a", "dict"])
    with pytest.raises(ProtocolError, match="malformed"):
        poll_message(a, 1.0)


def test_poll_returns_none_on_silence():
    a, _b = pipe()
    assert poll_message(a, 0.05) is None
