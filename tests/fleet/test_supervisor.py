"""The fleet supervisor end to end: small real fleets, real processes.

Kept deliberately tiny (two or three chips, sub-second epochs, tight
retry timeouts) so the whole file stays inside tier-1 time while still
exercising the actual multi-process runtime: spawn, heartbeats, epoch
lockstep, fault detection, checkpoint restart, ladder readmission and
the budget audit.
"""

import json
import os

import pytest

from repro.fleet import (
    ChipSpec,
    FleetBudgetConfig,
    FleetConfig,
    FleetFaultSchedule,
    FleetSupervisor,
    RetryPolicy,
    parse_fleet_fault,
)

#: Short detection windows: a test stall is waited out in ~1.5 s.
RETRY = RetryPolicy(attempts=2, timeout_s=0.5, backoff=2.0, max_timeout_s=1.0)


def small_config(epochs=2, epoch_s=0.2, chips=2, hysteresis=1):
    return FleetConfig(
        chips=tuple(
            ChipSpec(
                chip_id=f"chip{i:02d}",
                workload=("m1", "m2", "l1")[i % 3],
                seed=11 + i,
                region=("us-east", "eu-west")[i % 2],
            )
            for i in range(chips)
        ),
        epochs=epochs,
        epoch_s=epoch_s,
        budget=FleetBudgetConfig(
            grid_budget_w=3.0 * chips,
            region_prices={"eu-west": 1.2, "us-east": 1.0},
            hysteresis_epochs=hysteresis,
        ),
        retry=RETRY,
    )


def run_fleet(tmp_path, name, config, schedule=None):
    supervisor = FleetSupervisor(
        config, str(tmp_path / name), schedule=schedule, strict_audit=False
    )
    return supervisor.run()


def test_fault_free_fleet_is_deterministic(tmp_path):
    config = small_config()
    first = run_fleet(tmp_path, "a", config)
    second = run_fleet(tmp_path, "b", config)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    assert first["epochs_completed"] == config.epochs
    assert first["audit"]["violations"] == []
    assert first["total_restarts"] == 0
    for chip in first["chips"].values():
        assert chip["completed_epochs"] == config.epochs


def test_fleet_report_has_no_wall_clock_content(tmp_path):
    """Nothing pid- or time-shaped may leak into the deterministic record."""
    report = run_fleet(tmp_path, "fleet", small_config())
    text = json.dumps(report)
    assert "pid" not in text
    assert "monotonic" not in text
    assert "wall" not in text


def test_worker_kill_is_detected_restarted_and_readmitted(tmp_path):
    config = small_config(epochs=4)
    schedule = FleetFaultSchedule([parse_fleet_fault("worker-kill@1:chip00")])
    report = run_fleet(tmp_path, "kill", config, schedule)
    assert report["faults_injected"] == {"worker-kill": 1}
    epoch, chip_id, kind = report["failures"][0]
    assert (epoch, chip_id, kind) == (1, "chip00", "WorkerClosed")
    chip = report["chips"]["chip00"]
    assert chip["restarts"] == 1
    assert chip["completed_epochs"] == config.epochs  # caught back up
    assert report["audit"]["violations"] == []
    # Ladder walked: top -> DOWN (kill) -> 0 (readmit) -> one rung/epoch.
    transitions = [tuple(t) for t in chip["ladder_transitions"]]
    assert (1, 3, None) in transitions
    assert (2, None, 0) in transitions


def test_killed_chip_budget_flows_to_survivors(tmp_path):
    """Graceful degradation: a revenant's budget share shrinks, the
    survivors inherit the slack, and conservation holds throughout."""
    config = small_config(epochs=3)
    schedule = FleetFaultSchedule([parse_fleet_fault("worker-kill@1:chip00")])
    report = run_fleet(tmp_path, "degrade", config, schedule)
    rows = {row["epoch"]: row for row in report["rows"]}
    # The kill lands during epoch 1's drive, so that row records the
    # chip as down; at epoch 2 it is readmitted on bottom-rung probation
    # (weight 0.25), clearing far less than its pre-crash grant.
    assert "chip00" in rows[1]["down"]
    assert rows[2]["rungs"]["chip00"] == 0
    assert rows[2]["grants"]["chip00"] < rows[0]["grants"]["chip00"]
    assert rows[2]["grants"]["chip01"] >= rows[2]["grants"]["chip00"]
    for row in rows.values():
        assert (
            sum(row["grants"].values())
            <= config.budget.grid_budget_w + 1e-6
        )


def test_message_loss_recovers_without_restart(tmp_path):
    """A dropped result is re-served from the worker's idempotent cache."""
    config = small_config(epochs=3)
    schedule = FleetFaultSchedule(
        [parse_fleet_fault("worker-msg-loss@1:chip01:1")]
    )
    report = run_fleet(tmp_path, "drop", config, schedule)
    assert report["faults_injected"] == {"worker-msg-loss": 1}
    assert report["total_restarts"] == 0
    assert report["failures"] == []
    assert report["chips"]["chip01"]["completed_epochs"] == config.epochs
    assert report["audit"]["violations"] == []


def test_stalled_worker_is_timed_out_and_restarted(tmp_path):
    config = small_config(epochs=4)
    schedule = FleetFaultSchedule(
        [parse_fleet_fault("worker-stall@1:chip00:3600")]
    )
    report = run_fleet(tmp_path, "stall", config, schedule)
    assert report["faults_injected"] == {"worker-stall": 1}
    assert report["chips"]["chip00"]["restarts"] == 1
    assert report["chips"]["chip00"]["completed_epochs"] == config.epochs
    assert any(kind == "WorkerTimeout" for _, _, kind in report["failures"])
    assert report["audit"]["violations"] == []


def test_hysteresis_slows_readmission(tmp_path):
    """With 2-epoch hysteresis a revenant spends 2 epochs per rung."""
    config = small_config(epochs=6, hysteresis=2)
    schedule = FleetFaultSchedule([parse_fleet_fault("worker-kill@1:chip00")])
    report = run_fleet(tmp_path, "hyst", config, schedule)
    rungs = [row["rungs"]["chip00"] for row in report["rows"]]
    # Readmitted at epoch 2 on rung 0; each promotion needs two aligned
    # healthy epochs, so by the final epoch it must still be below top.
    assert rungs[2] == 0
    top = len(config.budget.ladder_weights) - 1
    assert all(r is None or r < top for r in rungs[2:])
    assert report["audit"]["violations"] == []


def test_per_chip_checkpoints_live_under_fleet_dir(tmp_path):
    config = small_config()
    fleet_dir = tmp_path / "layout"
    FleetSupervisor(config, str(fleet_dir)).run()
    for spec in config.chips:
        chip_dir = fleet_dir / "chips" / spec.chip_id
        assert chip_dir.is_dir()
        assert any(name.startswith("ckpt_") for name in os.listdir(chip_dir))
    assert (fleet_dir / "fleet_manifest.json").is_file()


def test_campaign_refuses_duplicate_chips():
    with pytest.raises(ValueError, match="duplicate chip ids"):
        FleetConfig(
            chips=(
                ChipSpec(chip_id="chip00", seed=1),
                ChipSpec(chip_id="chip00", seed=2),
            ),
            epochs=1,
            budget=FleetBudgetConfig(grid_budget_w=8.0),
        )
