"""Fleet checkpoint/resume: byte-identical continuation, refusal taxonomy.

The supervisor writes a fleet manifest after every global epoch; these
tests interrupt a campaign at an epoch boundary, resume from the
manifest, and demand the final report match an uninterrupted run byte
for byte -- plus the refusal paths: corrupt manifests, wrong
fingerprints, and manifests whose per-chip checkpoints disagree.
"""

import json
import os

import pytest

from repro.checkpoint import (
    CheckpointCorruptError,
    CheckpointFingerprintError,
    fleet_manifest_path,
    read_fleet_manifest,
    validate_fleet_manifest,
)
from repro.fleet import (
    ChipSpec,
    FleetBudgetConfig,
    FleetConfig,
    FleetSupervisor,
    RetryPolicy,
)

RETRY = RetryPolicy(attempts=2, timeout_s=0.5, backoff=2.0, max_timeout_s=1.0)


def config(epochs=3):
    return FleetConfig(
        chips=(
            ChipSpec(chip_id="chip00", workload="m1", seed=11),
            ChipSpec(chip_id="chip01", workload="m2", seed=12),
        ),
        epochs=epochs,
        epoch_s=0.2,
        budget=FleetBudgetConfig(grid_budget_w=6.0),
        retry=RETRY,
    )


def test_resume_is_byte_identical(tmp_path):
    full_dir, cut_dir = str(tmp_path / "full"), str(tmp_path / "cut")
    uninterrupted = FleetSupervisor(config(), full_dir).run()

    # Stop cleanly after one epoch (the manifest is the only survivor
    # that matters; the supervisor object is thrown away like a crash).
    FleetSupervisor(config(), cut_dir).run(until_epoch=1)
    resumed = FleetSupervisor.resume(cut_dir).run()

    assert json.dumps(uninterrupted, sort_keys=True) == json.dumps(
        resumed, sort_keys=True
    )


def test_resume_twice_is_idempotent(tmp_path):
    """Resuming a finished campaign re-runs nothing and loses nothing."""
    fleet_dir = str(tmp_path / "fleet")
    done = FleetSupervisor(config(), fleet_dir).run()
    again = FleetSupervisor.resume(fleet_dir).run()
    assert json.dumps(done, sort_keys=True) == json.dumps(again, sort_keys=True)


def test_manifest_contents(tmp_path):
    fleet_dir = str(tmp_path / "fleet")
    FleetSupervisor(config(epochs=2), fleet_dir).run()
    manifest = read_fleet_manifest(fleet_manifest_path(fleet_dir))
    assert manifest.epochs_completed == 2
    assert set(manifest.chips) == {"chip00", "chip01"}
    for entry in manifest.chips.values():
        assert entry["completed_epochs"] == 2
        assert os.path.isfile(os.path.join(fleet_dir, entry["checkpoint"]))
    validate_fleet_manifest(manifest, fleet_dir)  # must not raise


def test_corrupt_manifest_is_refused(tmp_path):
    fleet_dir = str(tmp_path / "fleet")
    FleetSupervisor(config(epochs=1), fleet_dir).run()
    path = fleet_manifest_path(fleet_dir)
    with open(path, "r", encoding="utf-8") as handle:
        envelope = json.load(handle)
    envelope["body"]["epochs_completed"] = 99  # checksum now lies
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    with pytest.raises(CheckpointCorruptError, match="checksum"):
        read_fleet_manifest(path)


def test_wrong_fingerprint_is_refused(tmp_path):
    fleet_dir = str(tmp_path / "fleet")
    FleetSupervisor(config(epochs=1), fleet_dir).run()
    with pytest.raises(CheckpointFingerprintError, match="different fleet"):
        read_fleet_manifest(
            fleet_manifest_path(fleet_dir), expected_fingerprint="0" * 64
        )


def test_truncated_manifest_is_refused(tmp_path):
    fleet_dir = str(tmp_path / "fleet")
    FleetSupervisor(config(epochs=1), fleet_dir).run()
    path = fleet_manifest_path(fleet_dir)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[: len(text) // 2])
    with pytest.raises(CheckpointCorruptError):
        read_fleet_manifest(path)


def test_manifest_checkpoint_disagreement_is_caught(tmp_path):
    """validate_fleet_manifest cross-checks manifest vs chip checkpoints."""
    fleet_dir = str(tmp_path / "fleet")
    FleetSupervisor(config(epochs=2), fleet_dir).run()
    manifest = read_fleet_manifest(fleet_manifest_path(fleet_dir))
    manifest.chips["chip00"]["completed_epochs"] = 7
    with pytest.raises(CheckpointCorruptError, match="disagree"):
        validate_fleet_manifest(manifest, fleet_dir)


def test_worker_refuses_checkpoint_from_other_chip(tmp_path):
    """Per-chip fingerprints: chip01's checkpoint cannot restore chip00."""
    from repro.checkpoint import resume_from
    from repro.fleet import build_chip_simulation

    fleet_dir = str(tmp_path / "fleet")
    cfg = config(epochs=1)
    supervisor = FleetSupervisor(cfg, fleet_dir)
    supervisor.run()
    manifest = read_fleet_manifest(fleet_manifest_path(fleet_dir))
    other = os.path.join(fleet_dir, manifest.chips["chip01"]["checkpoint"])
    spec = cfg.chips[0]
    with pytest.raises(CheckpointFingerprintError):
        resume_from(
            other,
            lambda: build_chip_simulation(spec),
            fingerprint_extra={
                "fleet": supervisor.identity,
                "chip": spec.identity(),
            },
        )
