"""Edge cases across the experiments layer not covered elsewhere."""

import math

import pytest

from repro.experiments.reporting import format_percent_table, format_table
from repro.experiments.savings import SavingsResult
from repro.experiments.harness import RunResult


class TestReportingEdges:
    def test_percent_table_with_missing_cell_renders_nan(self):
        text = format_percent_table("T", ["w1", "w2"], {"G": {"w1": 0.5}})
        assert "nan" in text.lower()

    def test_table_with_no_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule

    def test_table_mixed_types(self):
        text = format_table(["x"], [[None], [1.23456], ["s"]])
        assert "None" in text and "1.235" in text and "s" in text


class TestSavingsResultEdges:
    def make(self):
        run = RunResult(
            governor="PPM", workload="fig8", duration_s=1.0,
            miss_fraction=0.0, mean_miss_fraction=0.0,
            average_power_w=1.0, peak_power_w=1.0,
            intra_migrations=0, inter_migrations=0,
        )
        return SavingsResult(
            run=run,
            series={"x264_native": ([0.0, 1.0, 2.0], [1.0, 0.9, 0.8])},
            savings_series=([0.0, 1.0], [5.0, 0.0]),
            dormant_s=1.0,
            active_s=1.0,
        )

    def test_windowed_mean(self):
        result = self.make()
        assert result.x264_normalized_hr(0.0, 2.0) == pytest.approx(0.95)

    def test_empty_window_is_zero(self):
        assert self.make().x264_normalized_hr(10.0, 20.0) == 0.0


class TestCLIParser:
    def test_validate_and_export_flags(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["fig6", "--export", "out.csv", "--duration", "10"])
        assert args.export == "out.csv"
        assert args.duration == 10.0
        args = build_parser().parse_args(["validate", "--full"])
        assert args.full

    def test_unknown_experiment_rejected(self):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMarketRecorderWithSweep:
    def test_sweep_and_telemetry_compose(self):
        """The utilities stack: sweep a knob while recording the market."""
        from repro.core import MarketRecorder, PPMConfig, PPMGovernor
        from repro.hw import tc2_chip
        from repro.sim import SimConfig, Simulation
        from repro.tasks import build_workload

        governor = PPMGovernor(PPMConfig())
        recorder = MarketRecorder(governor)
        sim = Simulation(
            tc2_chip(), build_workload("l1"), governor, config=SimConfig()
        )
        sim.run(2.0)
        times, allowance = recorder.series("allowance")
        assert len(times) > 30
        assert min(allowance) > 0
