"""Overload campaign: end-to-end flash crowd through the admission ladder.

Short runs (a governor or two, ~12 simulated seconds) exercising the
full stack: arrival stream -> OverloadManager -> AdmissionController ->
engine -> tail-QoS accounting -> report.  The graceful-degradation
acceptance drill itself (3x crowd, every governor, p99 strictly better
than baseline) lives in ``scripts/ci_overload_smoke.py``.
"""

import json

import pytest

from repro.core import AdmissionState
from repro.experiments.overload import (
    OVERLOAD_TDP_W,
    build_overload_arrivals,
    run_overload,
    run_overload_soak,
    write_overload_report,
    write_overload_soak_report,
)
from repro.hw import tc2_chip
from repro.tasks import sustainable_rate_hz

DURATION_S = 12.0
WARMUP_S = 2.0


@pytest.fixture(scope="module")
def result():
    return run_overload(
        governors=["PPM"], duration_s=DURATION_S, warmup_s=WARMUP_S, seed=3
    )


class TestOverloadRun:
    def test_arrivals_burst_at_multiplier_times_sustainable(self):
        chip = tc2_chip()
        config = build_overload_arrivals(chip, DURATION_S, WARMUP_S, 3.0)
        from repro.tasks import ArrivalConfig

        sustainable = sustainable_rate_hz(chip, ArrivalConfig())
        assert config.burst_rate_hz == pytest.approx(3.0 * sustainable)
        assert config.rate_hz < sustainable

    def test_too_short_a_run_is_rejected(self):
        with pytest.raises(ValueError):
            build_overload_arrivals(tc2_chip(), 5.0, 2.0, 3.0)

    def test_counters_account_for_every_offered_arrival(self, result):
        run = result.runs[0]
        # Every offered arrival ends exactly one way: admitted (directly
        # or via queue drain), timed out in the queue, still queued at
        # the end, or rejected (ladder or overflow).
        settled = run.admitted + run.queue_timeouts + run.rejected
        still_queued = run.offered - settled
        assert 0 <= still_queued <= run.peak_queue_depth
        assert run.offered > 0
        assert run.admitted > 0
        assert run.peak_queue_depth <= 32  # bounded backpressure
        assert run.audit_violations == 0
        assert run.baseline_audit_violations == 0

    def test_ladder_escalates_and_recovers(self, result):
        run = result.runs[0]
        assert run.ladder_transitions >= 2
        # After the burst the ladder must have walked back down.
        assert run.final_state in (
            AdmissionState.OPEN.value,
            AdmissionState.DEGRADED.value,
        )

    def test_tail_qos_keys(self, result):
        run = result.runs[0]
        for payload in (run.tail_qos, run.baseline_tail_qos, run.admission_latency_s):
            assert set(payload) == {"p50", "p95", "p99"}
        assert 0.0 <= run.tail_qos["p99"] <= 1.0

    def test_report_round_trips(self, result, tmp_path):
        path = write_overload_report(result, out_dir=str(tmp_path))
        table = (tmp_path / "overload_l1.txt").read_text()
        assert "PPM" in table and "p99 miss" in table
        payload = json.loads((tmp_path / "overload_l1.json").read_text())
        assert payload["runs"][0]["governor"] == "PPM"
        assert path.endswith("overload_l1.txt")


class TestParallelEquivalence:
    def test_jobs_do_not_change_results(self, result):
        parallel = run_overload(
            governors=["PPM"],
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            seed=3,
            jobs=2,
        )
        assert parallel.to_json() == result.to_json()


class TestOverloadSoak:
    def test_soak_overlays_faults_and_crowds(self, tmp_path):
        result = run_overload_soak(
            governors=["PPM"], duration_s=25.0, warmup_s=3.0, seed=2
        )
        run = result.runs[0]
        assert run.offered > 0
        assert run.audit_violations == 0
        assert result.windows  # compound faults actually scheduled
        assert result.tdp_w == OVERLOAD_TDP_W
        path = write_overload_soak_report(result, out_dir=str(tmp_path))
        assert "p99 miss" in (tmp_path / "overload_soak_m2.txt").read_text()
        assert path.endswith("overload_soak_m2.txt")
