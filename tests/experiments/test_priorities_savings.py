"""Behaviour tests for the Figure 7 (priorities) and Figure 8 (savings)
experiments, run at reduced length."""

import pytest

from repro.experiments import run_priority_experiment, run_savings_experiment


class TestPriorities:
    @pytest.fixture(scope="class")
    def runs(self):
        equal = run_priority_experiment(1, 1, duration_s=60.0, warmup_s=5.0)
        prio = run_priority_experiment(7, 1, duration_s=60.0, warmup_s=5.0)
        return equal, prio

    def test_equal_priorities_suffer_comparably(self, runs):
        equal, _ = runs
        gap = abs(equal.swaptions_outside - equal.bodytrack_outside)
        assert gap < 0.25
        # The shared core is genuinely contended.
        assert equal.swaptions_outside > 0.1

    def test_priority_shifts_misses_to_low_priority_task(self, runs):
        equal, prio = runs
        assert prio.swaptions_outside < 0.15
        assert prio.swaptions_outside < equal.swaptions_outside
        assert prio.bodytrack_outside >= equal.bodytrack_outside - 0.05
        assert prio.bodytrack_outside > 3 * prio.swaptions_outside

    def test_series_available(self, runs):
        _, prio = runs
        times, rates = prio.series["swaptions_native"]
        assert len(times) == len(rates) > 100

    def test_tasks_share_one_core(self, runs):
        equal, _ = runs
        # Placement pinned both on little.0 and LBT is disabled.
        assert equal.run.inter_migrations == 0
        assert equal.run.intra_migrations == 0


class TestSavings:
    @pytest.fixture(scope="class")
    def result(self):
        return run_savings_experiment(dormant_s=40.0, active_s=60.0, tail_s=20.0)

    def test_dormant_phase_exceeds_goals_and_banks(self, result):
        # x264 runs above its range while dormant...
        assert result.x264_normalized_hr(10.0, 40.0) > 1.03
        # ...and accumulates savings.
        times, savings = result.savings_series
        dormant_peak = max(
            s for t, s in zip(times, savings) if t < result.dormant_s
        )
        assert dormant_peak > 0.0

    def test_savings_drain_in_active_phase(self, result):
        times, savings = result.savings_series
        end_of_dormant = max(
            s for t, s in zip(times, savings) if t < result.dormant_s
        )
        tail = [s for t, s in zip(times, savings) if t > result.dormant_s + 40.0]
        assert tail and min(tail) < 0.25 * end_of_dormant

    def test_active_phase_eventually_below_range(self, result):
        # Once the hoard is gone the surge cannot be financed.
        late_active = result.x264_normalized_hr(
            result.dormant_s + result.active_s - 20.0,
            result.dormant_s + result.active_s,
        )
        assert late_active < 1.0

    def test_savings_finance_early_active_phase(self, result):
        early = result.x264_normalized_hr(
            result.dormant_s + 1.0, result.dormant_s + 10.0
        )
        late = result.x264_normalized_hr(
            result.dormant_s + result.active_s - 20.0,
            result.dormant_s + result.active_s,
        )
        assert early > late
