"""CLI checkpoint/resume/replay verbs, governor validation, atomic reports."""

import os

import pytest

from repro.experiments.campaigns import run_fault_campaign, write_campaign_report
from repro.experiments.cli import build_parser, main


CAMPAIGN_ARGS = [
    "--governors", "PPM",
    "--workload", "m1",
    "--campaign-duration", "10",
    "--campaign-warmup", "2",
    "--intensity", "0.4",
    "--seed", "5",
]


class TestGovernorValidation:
    def test_unknown_governor_exits_nonzero_with_choices(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["campaign", "--fault", "sensor-dropout", "--governors",
                 "PPM,BOGUS", "--campaign-duration", "10"]
            )
        message = str(excinfo.value)
        assert "BOGUS" in message
        assert "PPM" in message and "HPM" in message and "HL" in message

    def test_empty_governor_list_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--fault", "sensor-dropout", "--governors", ", ,"])
        assert "no governors" in str(excinfo.value)

    def test_unknown_fault_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["campaign", "--fault", "nonsense"])
        assert excinfo.value.code != 0
        assert "invalid choice" in capsys.readouterr().err

    def test_campaign_without_fault_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign"])
        assert "--fault" in str(excinfo.value)


class TestCheckpointVerbs:
    def test_checkpoint_resume_replay_round_trip(self, tmp_path, capsys):
        ckpt_dir = os.path.join(str(tmp_path), "ckpt")
        out_dir = os.path.join(str(tmp_path), "results")
        base = ["--fault", "sensor-dropout", *CAMPAIGN_ARGS,
                "--checkpoint-dir", ckpt_dir, "--out", out_dir]
        assert main(["checkpoint", *base]) == 0
        point_dir = os.path.join(ckpt_dir, "point_0-PPM")
        assert os.path.exists(os.path.join(ckpt_dir, "campaign.json"))
        assert any(
            name.startswith("ckpt_0-PPM_") for name in os.listdir(point_dir)
        )
        assert main(["replay", "--checkpoint-dir", ckpt_dir, "--verify"]) == 0
        assert "clean" in capsys.readouterr().out
        assert main(["resume", "--checkpoint-dir", ckpt_dir, "--out", out_dir]) == 0
        assert "report written" in capsys.readouterr().out

    def test_resume_without_checkpoint_dir_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["resume", "--checkpoint-dir", os.path.join(str(tmp_path), "x")])
        assert "checkpoint directory" in str(excinfo.value)

    def test_replay_without_checkpoint_dir_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", "--checkpoint-dir", os.path.join(str(tmp_path), "x")])
        assert "checkpoint directory" in str(excinfo.value)

    def test_resume_empty_checkpoint_dir_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["resume", "--checkpoint-dir", str(tmp_path)])
        assert "resume failed" in str(excinfo.value)

    def test_replay_empty_checkpoint_dir_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", "--checkpoint-dir", str(tmp_path)])
        assert "replay failed" in str(excinfo.value)

    def test_parser_accepts_new_verbs(self):
        parser = build_parser()
        for verb in ("checkpoint", "resume", "replay"):
            args = parser.parse_args([verb])
            assert args.experiment == verb


class TestAtomicReports:
    def test_report_written_atomically_with_no_temp_leftovers(self, tmp_path):
        result = run_fault_campaign(
            "sensor-dropout",
            governors=("PPM",),
            workload="m1",
            duration_s=10.0,
            warmup_s=2.0,
            intensity=0.4,
            seed=5,
        )
        out_dir = os.path.join(str(tmp_path), "fresh")  # created on demand
        path = write_campaign_report(result, out_dir=out_dir)
        assert sorted(os.listdir(out_dir)) == [
            "campaign_sensor-dropout.json",
            "campaign_sensor-dropout.txt",
        ]
        with open(path) as handle:
            assert "Fault campaign: sensor-dropout" in handle.read()
