"""CLI overload verbs and clean path-error handling (no tracebacks)."""

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestPathErrors:
    def test_missing_trace_file_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["overload", "--trace", "/no/such/trace.json"])
        message = str(excinfo.value)
        assert "trace" in message and "/no/such/trace.json" in message
        assert "Traceback" not in message

    def test_invalid_trace_file_exits_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(SystemExit) as excinfo:
            main(["overload", "--trace", str(bad)])
        assert "invalid trace file" in str(excinfo.value)

    def test_unreadable_trace_path_exits_cleanly(self, tmp_path):
        # A directory is unreadable as a file regardless of privileges
        # (chmod-based unreadability is moot when tests run as root).
        with pytest.raises(SystemExit) as excinfo:
            main(["overload", "--trace", str(tmp_path)])
        assert "cannot read trace file" in str(excinfo.value)

    @pytest.mark.parametrize("verb", ["resume", "replay"])
    def test_missing_checkpoint_dir_exits_cleanly(self, verb):
        with pytest.raises(SystemExit) as excinfo:
            main([verb, "--checkpoint-dir", "/no/such/ckpt-dir"])
        message = str(excinfo.value)
        assert "checkpoint directory" in message
        assert "/no/such/ckpt-dir" in message

    def test_empty_checkpoint_dir_reports_no_checkpoints(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["resume", "--checkpoint-dir", str(tmp_path)])
        assert "resume failed" in str(excinfo.value)


class TestOverloadVerbs:
    def test_parser_registers_overload_verbs(self):
        args = build_parser().parse_args(["overload"])
        assert args.multiplier == 3.0
        assert args.overload_duration == 30.0
        assert args.trace is None
        build_parser().parse_args(["overload-soak"])

    def test_overload_verb_runs_and_reports(self, tmp_path, capsys):
        code = main(
            [
                "overload",
                "--governors", "PPM",
                "--overload-duration", "12",
                "--campaign-warmup", "2",
                "--seed", "3",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flash crowd" in out and "report written to" in out
        payload = json.loads((tmp_path / "overload_l1.json").read_text())
        assert payload["runs"][0]["governor"] == "PPM"

    def test_overload_with_trace_modulation(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text(
            json.dumps(
                {
                    "name": "damp",
                    "interpolation": "step",
                    "loop": False,
                    "points": [[0.0, 1.0]],
                }
            )
        )
        code = main(
            [
                "overload",
                "--governors", "PPM",
                "--overload-duration", "12",
                "--campaign-warmup", "2",
                "--seed", "3",
                "--trace", str(trace),
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert "report written to" in capsys.readouterr().out
