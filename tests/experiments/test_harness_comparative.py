"""Tests for the experiment harness and the comparative sweep plumbing.

These run *short* simulations -- they validate structure and wiring, not
the paper's steady-state numbers (the benchmarks regenerate those).
"""

import pytest

from repro.core import PPMGovernor
from repro.experiments import (
    ComparativeResult,
    GOVERNOR_NAMES,
    capped_tdp_w,
    make_governor,
    run_comparative,
    run_system,
    run_workload,
)
from repro.experiments.comparative import figure4, figure5
from repro.governors import HLGovernor, HPMGovernor
from repro.tasks import build_workload


class TestMakeGovernor:
    def test_all_names_construct(self):
        assert isinstance(make_governor("PPM"), PPMGovernor)
        assert isinstance(make_governor("HPM"), HPMGovernor)
        assert isinstance(make_governor("HL"), HLGovernor)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_governor("EAS")

    def test_power_cap_propagates(self):
        ppm = make_governor("PPM", power_cap_w=4.0)
        assert ppm.config.market.wtdp == 4.0
        assert ppm.config.market.wth == pytest.approx(3.5)
        assert make_governor("HPM", power_cap_w=4.0).power_cap_w == 4.0
        assert make_governor("HL", power_cap_w=4.0).power_cap_w == 4.0

    def test_capped_tdp_is_4w(self):
        assert capped_tdp_w() == 4.0


class TestRunSystem:
    def test_result_fields_populated(self):
        tasks = build_workload("l1")
        result = run_system(
            tasks,
            make_governor("PPM"),
            duration_s=3.0,
            warmup_s=1.0,
            governor_name="PPM",
            workload_name="l1",
        )
        assert result.governor == "PPM"
        assert result.workload == "l1"
        assert 0.0 <= result.miss_fraction <= 1.0
        assert result.average_power_w > 0.0
        assert result.peak_power_w >= result.average_power_w
        assert set(result.per_task_below) == {t.name for t in tasks}
        assert result.metrics is None  # not kept by default

    def test_keep_metrics(self):
        tasks = build_workload("l1")[:2]
        result = run_system(
            tasks, make_governor("PPM"), duration_s=1.0, warmup_s=0.0,
            keep_metrics=True,
        )
        assert result.metrics is not None
        assert result.metrics.samples

    def test_placement_hook_applied(self):
        tasks = build_workload("l1")[:2]

        def pin(sim):
            for task in tasks:
                sim.place(task, sim.chip.core("big.0"))

        result = run_system(
            tasks, make_governor("HL"), duration_s=0.05, warmup_s=0.0,
            placement=pin, keep_metrics=True,
        )
        assert result.metrics is not None

    def test_run_workload_smoke(self):
        result = run_workload("l2", "HL", duration_s=1.0, warmup_s=0.2)
        assert result.workload == "l2"


class TestComparativeStructure:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_comparative(
            governors=("PPM", "HL"),
            workloads=("l1", "m2"),
            duration_s=2.0,
            warmup_s=0.5,
        )

    def test_grid_complete(self, sweep):
        assert set(sweep.runs) == {"PPM", "HL"}
        assert set(sweep.runs["PPM"]) == {"l1", "m2"}

    def test_tables(self, sweep):
        miss = sweep.miss_table()
        power = sweep.power_table()
        assert 0.0 <= miss["PPM"]["l1"] <= 1.0
        assert power["HL"]["m2"] > 0.0

    def test_means(self, sweep):
        assert sweep.mean_power("PPM") == pytest.approx(
            sum(r.average_power_w for r in sweep.runs["PPM"].values()) / 2
        )

    def test_improvement_math(self):
        result = ComparativeResult(runs={}, power_cap_w=None)
        result.runs = {
            "PPM": {"x": _fake_run(0.1)},
            "HPM": {"x": _fake_run(0.2)},
        }
        assert result.improvement_over("HPM") == pytest.approx(0.5)

    def test_improvement_with_zero_baseline(self):
        result = ComparativeResult(runs={}, power_cap_w=None)
        result.runs = {"PPM": {"x": _fake_run(0.0)}, "HPM": {"x": _fake_run(0.0)}}
        assert result.improvement_over("HPM") == 0.0


def _fake_run(miss):
    from repro.experiments import RunResult

    return RunResult(
        governor="g",
        workload="x",
        duration_s=1.0,
        miss_fraction=miss,
        mean_miss_fraction=miss,
        average_power_w=1.0,
        peak_power_w=1.0,
        intra_migrations=0,
        inter_migrations=0,
    )


class TestFigureRendering:
    def test_figure4_and_5_reuse_runs(self):
        sweep = run_comparative(
            governors=("PPM",), workloads=("l1",), duration_s=1.0, warmup_s=0.2
        )
        _, text4 = figure4(result=sweep)
        _, text5 = figure5(result=sweep)
        assert "Figure 4" in text4
        assert "Figure 5" in text5
        assert "PPM" in text4
