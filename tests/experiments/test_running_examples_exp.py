"""Tests for the Tables 1-4 running-example harnesses."""

import pytest

from repro.experiments import SingleCoreScenario, table1, table2, table3, table4


class TestTable1:
    def test_reproduces_paper_cells(self):
        scenario, text = table1()
        rows = scenario.rows
        assert rows[0].bids["ta"] == pytest.approx(1.0)
        assert rows[0].supplies == {"ta": pytest.approx(150.0), "tb": pytest.approx(150.0)}
        assert rows[1].bids["ta"] == pytest.approx(1.333, rel=1e-3)
        assert rows[1].bids["tb"] == pytest.approx(0.667, rel=1e-3)
        assert rows[1].supplies["ta"] == pytest.approx(200.0)
        assert rows[1].supplies["tb"] == pytest.approx(100.0)
        assert rows[1].price == pytest.approx(0.00667, rel=1e-2)
        assert "Table 1" in text

    def test_supply_constant_at_300(self):
        scenario, _ = table1()
        assert all(r.core_supply == 300.0 for r in scenario.rows)


class TestTable2:
    def test_inflation_raises_supply_to_400(self):
        scenario, _ = table2()
        rows = scenario.rows
        assert rows[2].price == pytest.approx(0.00889, rel=1e-2)
        assert rows[2].core_supply == 300.0
        assert rows[3].core_supply == 400.0
        assert rows[3].supplies["ta"] == pytest.approx(300.0)
        assert rows[3].supplies["tb"] == pytest.approx(100.0)

    def test_base_price_reset_after_change(self):
        scenario, _ = table2()
        assert scenario.rows[3].base_price == pytest.approx(
            scenario.rows[3].price
        )


class TestTable3:
    def test_state_trajectory(self):
        scenario, _ = table3(rounds=30)
        states = [r.state for r in scenario.rows]
        assert "normal" in states
        assert "threshold" in states
        assert "emergency" in states

    def test_stabilises_at_500_threshold(self):
        scenario, _ = table3(rounds=40)
        final = scenario.rows[-1]
        assert final.state == "threshold"
        assert final.core_supply == 500.0
        assert final.supplies["ta"] == pytest.approx(300.0, rel=0.02)
        assert final.supplies["tb"] == pytest.approx(200.0, rel=0.02)

    def test_allowance_contracted_from_peak(self):
        scenario, _ = table3(rounds=40)
        allowances = [r.allowance for r in scenario.rows]
        assert min(allowances[5:]) < allowances[4]

    def test_savings_drain_for_low_priority(self):
        scenario, _ = table3(rounds=40)
        # In the stable tail tb's savings are pinned near zero (it spends
        # everything and still misses), while ta retains savings.
        final = scenario.rows[-1]
        assert final.savings["tb"] == pytest.approx(0.0, abs=0.05)


class TestTable4:
    def test_conversion_rows(self):
        text = table4()
        assert "900" in text
        assert "1080" in text
        assert "675" in text


class TestScenarioHarness:
    def test_custom_scenario_runs(self):
        scenario = SingleCoreScenario(
            supply_ladder=[100.0, 200.0],
            task_priorities={"x": 1},
        )
        row = scenario.run_round({"x": 50.0})
        assert row.round_index == 1
        assert scenario.as_table("t")
