"""Tests for the Table 7 emulator, the text reporting and the CLI."""

import pytest

from repro.experiments import (
    ConstrainedCoreEmulator,
    TABLE7_CONFIGS,
    measure_overhead,
    table7,
)
from repro.experiments.cli import build_parser, main
from repro.experiments.reporting import format_percent_table, format_table, sparkline


class TestEmulator:
    def test_supply_demand_round_returns_price(self):
        emulator = ConstrainedCoreEmulator(4, 4, 8, seed=1)
        price = emulator.run_supply_demand_round()
        assert price > 0.0

    def test_lbt_invocation_considers_all_candidates(self):
        emulator = ConstrainedCoreEmulator(4, 4, 8, seed=1)
        emulator.run_supply_demand_round()
        _, best_index = emulator.run_lbt_invocation()
        # T x (V-1) candidate mappings.
        assert best_index < 8 * 3

    def test_bids_respect_floor(self):
        emulator = ConstrainedCoreEmulator(2, 2, 4, seed=2)
        for _ in range(20):
            emulator.run_supply_demand_round()
        assert all(t.bid >= emulator.bmin for t in emulator.tasks)


class TestMeasurement:
    def test_point_fields(self):
        point = measure_overhead(2, 4, 8, invocations=2, seed=0)
        assert point.total_tasks == 64
        assert point.avg_overhead_ms > 0.0
        assert point.avg_overhead_pct == pytest.approx(
            100.0 * point.avg_overhead_ms / 190.0
        )

    def test_overhead_grows_with_tasks_and_clusters(self):
        small = measure_overhead(2, 4, 8, invocations=3, seed=0)
        more_tasks = measure_overhead(2, 4, 128, invocations=3, seed=0)
        more_clusters = measure_overhead(64, 4, 8, invocations=3, seed=0)
        assert more_tasks.avg_overhead_ms > small.avg_overhead_ms
        assert more_clusters.avg_overhead_ms > small.avg_overhead_ms

    def test_table7_config_list_matches_paper(self):
        assert (256, 16, 32) in TABLE7_CONFIGS
        assert (2, 4, 8) in TABLE7_CONFIGS

    def test_table7_rendering(self):
        points, text = table7(configs=[(2, 2, 4), (4, 2, 4)], invocations=1)
        assert len(points) == 2
        assert "Table 7" in text


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text

    def test_percent_table(self):
        text = format_percent_table(
            "P", ["w1", "w2"], {"G": {"w1": 0.5, "w2": 0.25}}
        )
        assert "50.0%" in text
        assert "25.0%" in text
        assert "37.5%" in text  # mean column

    def test_sparkline_shape(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_constant_series(self):
        assert set(sparkline([2.0, 2.0, 2.0])) == {"▁"}


class TestCLI:
    def test_parser_accepts_all_experiments(self):
        parser = build_parser()
        for name in ["table1", "table4", "fig4", "fig8", "all"]:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_table_commands_run(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_table4_runs(self, capsys):
        assert main(["table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_table7_runs(self, capsys):
        assert main(["table7", "--invocations", "1"]) == 0
        assert "Table 7" in capsys.readouterr().out
