"""Parallel experiment execution produces byte-identical results.

The process-pool executor is only a wall-clock optimization: every
report, journal and summary must match the serial path exactly.  These
tests run the same sweeps at ``jobs=1`` and ``jobs>=2`` and compare the
full serialized outputs; campaign telemetry journals are additionally
diffed tick-for-tick with the checkpoint/replay differ so a divergence
(should one ever appear) is localized to a tick and field, not just a
hash mismatch.
"""

import dataclasses
import json
import os

import pytest

from repro.checkpoint import diff_tick_records, read_journal
from repro.experiments.campaigns import run_fault_campaign
from repro.experiments.comparative import run_comparative
from repro.experiments.parallel import (
    JOBS_ENV_VAR,
    PointSpec,
    execute_points,
    resolve_jobs,
)
from repro.experiments.sweeps import sweep_parameter


class TestResolveJobs:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "4")
        assert resolve_jobs() == 4

    def test_blank_env_var_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "  ")
        assert resolve_jobs() == 1

    @pytest.mark.parametrize("bad", ["zero", "1.5", ""])
    def test_malformed_env_var_raises(self, monkeypatch, bad):
        monkeypatch.setenv(JOBS_ENV_VAR, bad)
        if bad.strip():
            with pytest.raises(ValueError, match=JOBS_ENV_VAR):
                resolve_jobs()
        else:
            assert resolve_jobs() == 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_raises(self, bad):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(bad)


def _square(value):
    return value * value


def _fail(value):
    raise RuntimeError(f"boom on {value}")


class TestExecutePoints:
    def test_results_come_back_in_spec_order(self):
        specs = [
            PointSpec(fn=_square, label=f"sq/{i}", args=(i,))
            for i in range(6)
        ]
        assert execute_points(specs, jobs=1) == [i * i for i in range(6)]
        assert execute_points(specs, jobs=3) == [i * i for i in range(6)]

    def test_parallel_failure_names_the_point(self):
        specs = [
            PointSpec(fn=_square, label="ok", args=(2,)),
            PointSpec(fn=_fail, label="bad-point", args=(3,)),
        ]
        with pytest.raises(RuntimeError, match="bad-point"):
            execute_points(specs, jobs=2)

    def test_serial_failure_is_untouched(self):
        specs = [PointSpec(fn=_fail, label="bad-point", args=(3,))]
        with pytest.raises(RuntimeError, match="^boom on 3$"):
            execute_points(specs, jobs=1)

    def test_empty_spec_list(self):
        assert execute_points([], jobs=4) == []


def _comparative_payload(result):
    """Full serialized form of a comparative sweep, metrics excluded."""
    return json.dumps(
        {
            gov: {
                wl: {
                    field.name: getattr(run, field.name)
                    for field in dataclasses.fields(run)
                    if field.name != "metrics"
                }
                for wl, run in by_wl.items()
            }
            for gov, by_wl in result.runs.items()
        },
        sort_keys=True,
    )


class TestComparativeEquivalence:
    def test_parallel_sweep_report_is_byte_identical(self):
        kwargs = dict(
            governors=("PPM", "HL"),
            workloads=("l1", "m1"),
            duration_s=4.0,
            warmup_s=1.0,
            power_cap_w=4.0,
        )
        serial = run_comparative(jobs=1, **kwargs)
        parallel = run_comparative(jobs=2, **kwargs)
        assert _comparative_payload(serial) == _comparative_payload(parallel)


class TestSweepEquivalence:
    def test_parameter_sweep_is_identical_in_parallel(self):
        kwargs = dict(
            name="bid_period_s",
            values=(0.1, 0.2),
            workload="m1",
            duration_s=4.0,
            warmup_s=1.0,
        )
        serial = sweep_parameter(jobs=1, **kwargs)
        parallel = sweep_parameter(jobs=2, **kwargs)
        assert [dataclasses.asdict(p) for p in serial.points] == [
            dataclasses.asdict(p) for p in parallel.points
        ]


class TestCampaignEquivalence:
    def test_campaign_report_and_journals_match(self, tmp_path):
        kwargs = dict(
            fault="sensor-dropout",
            governors=("PPM", "HL"),
            workload="m1",
            duration_s=8.0,
            warmup_s=2.0,
            intensity=0.4,
            seed=5,
            checkpoint_interval_s=2.0,
        )
        serial_dir = os.path.join(str(tmp_path), "serial")
        parallel_dir = os.path.join(str(tmp_path), "parallel")
        serial = run_fault_campaign(
            checkpoint_dir=serial_dir, jobs=1, **kwargs
        )
        parallel = run_fault_campaign(
            checkpoint_dir=parallel_dir, jobs=2, **kwargs
        )
        assert serial.to_json() == parallel.to_json()

        # Per-tick telemetry must also be identical; on divergence the
        # replay differ points at the first differing tick and field.
        for point in ("point_0-PPM", "point_1-HL"):
            expected = read_journal(
                os.path.join(serial_dir, point, "journal.json")
            )
            actual = read_journal(
                os.path.join(parallel_dir, point, "journal.json")
            )
            divergence = diff_tick_records(
                expected["records"], actual["records"]
            )
            assert divergence is None, f"{point}: {divergence}"
