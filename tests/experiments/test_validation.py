"""Tests for the claim-validation machinery (cheap checks only; the
comparative claims are exercised by the benchmark suite)."""

import pytest

from repro.experiments.validation import (
    ClaimResult,
    ValidationReport,
    _check_scalability,
    _check_table1,
    _check_table2,
    _check_table3,
)


class TestIndividualChecks:
    def test_table_checks_pass(self):
        assert _check_table1().passed
        assert _check_table2().passed
        assert _check_table3().passed

    def test_scalability_check_passes(self):
        assert _check_scalability().passed

    def test_evidence_strings_populated(self):
        result = _check_table1()
        assert result.claim_id == "T1"
        assert "supplies" in result.evidence


class TestReport:
    def test_report_aggregation(self):
        report = ValidationReport(
            results=[
                ClaimResult("A", "first", True, "x"),
                ClaimResult("B", "second", True, "y"),
            ]
        )
        assert report.passed
        report.results.append(ClaimResult("C", "third", False, "z"))
        assert not report.passed

    def test_table_rendering(self):
        report = ValidationReport(
            results=[ClaimResult("A", "desc", False, "evidence")]
        )
        text = report.as_table()
        assert "FAIL" in text and "desc" in text
