"""Chaos/soak harness and the strict-audit plumbing around it."""

import json
import os

import pytest

from repro.experiments import (
    build_soak_schedule,
    merged_windows,
    run_soak,
    write_soak_report,
)
from repro.experiments.campaigns import SOAK_RECOVERY_TAIL_S
from repro.experiments.cli import build_parser, main
from repro.experiments.harness import run_workload
from repro.faults import THERMAL_FAULTS, FaultKind
from repro.hw import tc2_chip

SOAK_KW = dict(workload="m2", duration_s=25.0, warmup_s=2.0, seed=4)


class TestSoakSchedule:
    def test_too_short_a_soak_is_rejected(self):
        with pytest.raises(ValueError, match="recovery tail"):
            build_soak_schedule(
                duration_s=SOAK_RECOVERY_TAIL_S + 5.0,
                warmup_s=5.0,
                chip=tc2_chip(),
            )

    def test_trains_respect_warmup_and_recovery_tail(self):
        schedule = build_soak_schedule(60.0, 5.0, tc2_chip())
        assert len(schedule) > 0
        assert min(e.start_s for e in schedule) > 5.0
        assert schedule.end_s() <= 60.0 - SOAK_RECOVERY_TAIL_S

    def test_compound_kinds_include_thermal_and_non_thermal(self):
        kinds = {e.kind for e in build_soak_schedule(120.0, 5.0, tc2_chip())}
        assert THERMAL_FAULTS <= kinds
        assert FaultKind.SENSOR_DROPOUT in kinds
        assert FaultKind.DVFS_DROP in kinds

    def test_thermal_model_faults_target_the_fastest_cluster(self):
        schedule = build_soak_schedule(60.0, 5.0, tc2_chip())
        for event in schedule:
            if event.kind in (
                FaultKind.THERMAL_RUNAWAY, FaultKind.COOLING_DEGRADED
            ):
                assert event.target == "big"


class TestMergedWindows:
    def test_overlapping_and_touching_windows_coalesce(self):
        assert merged_windows(
            [(5.0, 8.0), (1.0, 3.0), (2.0, 4.0), (4.0, 4.5)]
        ) == [(1.0, 4.5), (5.0, 8.0)]

    def test_disjoint_windows_pass_through_sorted(self):
        assert merged_windows([(6.0, 7.0), (1.0, 2.0)]) == [
            (1.0, 2.0),
            (6.0, 7.0),
        ]
        assert merged_windows([]) == []


class TestRunSoak:
    def test_short_soak_populates_every_field(self, tmp_path):
        result = run_soak(governors=("PPM",), **SOAK_KW)
        assert result.workload == "m2"
        assert result.windows == merged_windows(
            build_soak_schedule(25.0, 2.0, tc2_chip()).windows()
        )
        (run,) = result.runs
        assert run.governor == "PPM"
        # Soaks always audit and always track thermals.
        assert run.audit_violations == 0
        assert set(run.thermal_cycles) == {"big", "little"}
        assert run.peak_temperature_c > 25.0
        assert run.supervisor  # protection ladder was wired in
        assert run.unrecovered_trips == 0
        assert run.fault_stats["runaway_ticks"] > 0
        assert 0.0 <= run.miss_fraction_in_fault <= 1.0
        assert 0.0 <= run.miss_fraction_outside_fault <= 1.0
        assert run.average_power_w > 0.0
        table = result.as_table()
        assert "PPM" in table and "t>Tcrit" in table

    def test_report_files_round_trip(self, tmp_path):
        result = run_soak(governors=("PPM",), **SOAK_KW)
        path = write_soak_report(result, out_dir=str(tmp_path))
        assert os.path.exists(path)
        payload = json.loads(open(path.replace(".txt", ".json")).read())
        assert payload["workload"] == "m2"
        assert len(payload["runs"]) == 1
        assert payload["runs"][0]["governor"] == "PPM"

    def test_parallel_soak_matches_serial(self):
        serial = run_soak(governors=("PPM", "HPM"), jobs=1, **SOAK_KW)
        parallel = run_soak(governors=("PPM", "HPM"), jobs=2, **SOAK_KW)
        assert serial.to_json() == parallel.to_json()


class TestStrictAudit:
    def test_run_workload_reports_audit_violations(self):
        run = run_workload(
            "m1", "PPM", duration_s=3.0, warmup_s=1.0, strict_audit=True
        )
        assert run.audit_violations == 0  # the books balance

    def test_audit_off_by_default(self):
        run = run_workload("m1", "PPM", duration_s=3.0, warmup_s=1.0)
        assert run.audit_violations == 0  # nothing audited, nothing flagged


class TestSoakCLI:
    def test_soak_is_an_extra_command(self):
        from repro.experiments.cli import _COMMANDS, _EXTRA_COMMANDS

        assert "soak" in _EXTRA_COMMANDS
        assert "soak" not in _COMMANDS

    def test_parser_accepts_soak_flags(self):
        args = build_parser().parse_args(
            ["soak", "--soak-duration", "30", "--strict-audit"]
        )
        assert args.soak_duration == pytest.approx(30.0)
        assert args.strict_audit is True
        assert build_parser().parse_args(["fig4"]).strict_audit is False

    def test_cli_soak_end_to_end(self, tmp_path, capsys):
        code = main(
            [
                "soak",
                "--governors",
                "PPM",
                "--soak-duration",
                "20",
                "--campaign-warmup",
                "2",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Chaos soak" in out
        assert os.path.exists(tmp_path / "soak_m2.txt")
        assert os.path.exists(tmp_path / "soak_m2.json")
