"""Model-error campaign: schedule builder, runner, CLI verb, reporting.

Also pins the governor-side wiring: with estimation on, governors trade
on the served (estimated) sample; ``PPMConfig.use_estimated_power=False``
pins the market back to the metered sensor as the ablation arm.
"""

import json

import pytest

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.core.powerest import EstimationConfig
from repro.experiments.cli import _parse_floats, build_parser, main
from repro.experiments.modelerror import (
    BIAS_START_AFTER_WARMUP_S,
    DRIFT_START_AFTER_WARMUP_S,
    ModelErrorResult,
    build_model_error_schedule,
    run_model_error_campaign,
    write_model_error_report,
)
from repro.faults import FaultKind
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload


class TestScheduleBuilder:
    def test_zero_grid_point_is_fault_free(self):
        schedule = build_model_error_schedule(
            0.0, 0.0, duration_s=30.0, warmup_s=5.0, chip=tc2_chip()
        )
        assert len(schedule) == 0

    def test_bias_and_drift_windows_sit_after_warmup(self):
        schedule = build_model_error_schedule(
            0.5, 0.2, duration_s=40.0, warmup_s=5.0, chip=tc2_chip()
        )
        bias = schedule.of_kind(FaultKind.COUNTER_BIAS)
        drift = schedule.of_kind(FaultKind.POWER_MODEL_DRIFT)
        assert len(bias) == 1 and len(drift) == 1
        assert bias[0].start_s == pytest.approx(5.0 + BIAS_START_AFTER_WARMUP_S)
        assert bias[0].magnitude == pytest.approx(1.5)  # 1 + error
        assert drift[0].start_s == pytest.approx(
            5.0 + DRIFT_START_AFTER_WARMUP_S
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError, match="error magnitude"):
            build_model_error_schedule(
                -0.1, 0.0, duration_s=30.0, warmup_s=5.0, chip=tc2_chip()
            )
        with pytest.raises(ValueError, match="drift rate"):
            build_model_error_schedule(
                0.0, -0.1, duration_s=30.0, warmup_s=5.0, chip=tc2_chip()
            )


class TestCampaignRunner:
    def test_tiny_campaign_covers_the_grid(self):
        result = run_model_error_campaign(
            governors=("PPM",),
            workload="m1",
            duration_s=8.0,
            warmup_s=2.0,
            error_magnitudes=(0.0, 2.0),
            drift_rates=(0.0,),
            seed=3,
            jobs=1,
        )
        assert len(result.runs) == 2
        clean, biased = result.runs
        assert clean.error_magnitude == 0.0
        assert biased.error_magnitude == 2.0
        for run in result.runs:
            assert run.governor == "PPM"
            assert run.audit_violations == 0
            assert set(run.estimation_error_w) == {"p50", "p95", "p99"}
            assert run.tdp_violation_s >= 0.0
        table = result.as_table()
        assert "PPM" in table and "p95" in table

    def test_report_writes_text_and_json(self, tmp_path):
        result = run_model_error_campaign(
            governors=("PPM",),
            workload="m1",
            duration_s=6.0,
            warmup_s=2.0,
            error_magnitudes=(0.0,),
            drift_rates=(0.0,),
            seed=3,
            jobs=1,
        )
        text_path = write_model_error_report(result, out_dir=str(tmp_path))
        assert text_path.endswith("modelerror.txt")
        payload = json.loads((tmp_path / "modelerror.json").read_text())
        assert payload["runs"][0]["governor"] == "PPM"
        assert (tmp_path / "modelerror.txt").read_text().strip()


class TestCli:
    def test_parser_registers_model_error_verb(self):
        args = build_parser().parse_args(["model-error"])
        assert args.error_magnitudes == "0.0,0.5,2.0"
        assert args.drift_rates == "0.0,0.2,0.5"

    def test_parse_floats_accepts_csv(self):
        assert _parse_floats("0.0, 1.5,2", "--error-magnitudes") == [
            0.0,
            1.5,
            2.0,
        ]

    @pytest.mark.parametrize("bad", ["", "0.1,junk", ","])
    def test_parse_floats_rejects_junk(self, bad):
        with pytest.raises(SystemExit) as excinfo:
            _parse_floats(bad, "--drift-rates")
        assert "--drift-rates" in str(excinfo.value)

    def test_model_error_verb_runs_and_reports(self, tmp_path, capsys):
        code = main(
            [
                "model-error",
                "--governors", "PPM",
                "--workload", "m1",
                "--campaign-duration", "6",
                "--campaign-warmup", "2",
                "--error-magnitudes", "0.0",
                "--drift-rates", "0.0",
                "--jobs", "1",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "modelerror.txt").exists()
        assert (tmp_path / "modelerror.json").exists()
        assert "model" in capsys.readouterr().out.lower()


class TestGovernorWiring:
    @staticmethod
    def _run(use_estimated_power, estimation):
        governor = PPMGovernor(
            PPMConfig(
                market=MarketConfig(wtdp=4.0),
                use_estimated_power=use_estimated_power,
            )
        )
        sim = Simulation(
            tc2_chip(),
            build_workload("m1"),
            governor,
            config=SimConfig(seed=4, estimation=estimation),
        )
        sim.run(1.0)
        return sim

    def test_estimation_on_serves_estimated_sample(self):
        sim = self._run(True, EstimationConfig(warmup_ticks=10))
        assert sim.last_power_sample() is sim.estimation.served_sample
        assert sim.last_power_sample() is not sim.metered_power_sample()

    def test_estimation_off_serves_metered_sample(self):
        sim = self._run(True, None)
        assert sim.estimation is None
        assert (
            sim.last_power_sample().chip_power_w
            == sim.metered_power_sample().chip_power_w
        )

    def test_ablation_flag_pins_ppm_to_metered(self):
        # Identical seeds; the only difference is the governor-side flag.
        on = self._run(True, EstimationConfig(warmup_ticks=10))
        off = self._run(False, EstimationConfig(warmup_ticks=10))
        # Both sims still estimate (telemetry), but only the first trades
        # on it: the flag reaches the market's observed power.
        assert on.estimation is not None and off.estimation is not None
        assert on.governor.config.use_estimated_power
        assert not off.governor.config.use_estimated_power
