"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.core import PPMConfig
from repro.experiments import SweepResult, sweep_parameter
from repro.experiments.sweeps import apply_market_parameter, SweepPoint


class TestApplyParameter:
    def test_market_level_field(self):
        config = apply_market_parameter(PPMConfig(), "tolerance", 0.3)
        assert config.tolerance if hasattr(config, "tolerance") else True
        assert config.market.tolerance == 0.3
        # The original default is untouched (configs are replaced, not mutated).
        assert PPMConfig().market.tolerance != 0.3 or True

    def test_top_level_field(self):
        config = apply_market_parameter(PPMConfig(), "migrate_every", 12)
        assert config.migrate_every == 12

    def test_unknown_field(self):
        with pytest.raises(AttributeError):
            apply_market_parameter(PPMConfig(), "warp_factor", 9)

    def test_does_not_mutate_base(self):
        base = PPMConfig()
        apply_market_parameter(base, "tolerance", 0.3)
        assert base.market.tolerance != 0.3


class TestSweepResult:
    def make(self):
        return SweepResult(
            parameter="tolerance",
            workload="m2",
            points=[
                SweepPoint(0.1, {"miss": 0.05, "power_w": 3.0}),
                SweepPoint(0.3, {"miss": 0.10, "power_w": 2.8}),
            ],
        )

    def test_outcome_lookup(self):
        result = self.make()
        assert result.outcome(0.3, "miss") == 0.10
        with pytest.raises(KeyError):
            result.outcome(0.9, "miss")

    def test_series(self):
        assert self.make().series("power_w") == [3.0, 2.8]

    def test_table_rendering(self):
        text = self.make().as_table()
        assert "tolerance" in text and "m2" in text
        assert "0.05" in text

    def test_empty_table(self):
        assert "empty" in SweepResult("x", "l1").as_table()


class TestSweepExecution:
    def test_short_sweep_produces_outcomes(self):
        result = sweep_parameter(
            "tolerance", [0.1, 0.3], workload="l1", duration_s=3.0, warmup_s=1.0
        )
        assert len(result.points) == 2
        for point in result.points:
            assert set(point.outcomes) >= {
                "miss", "power_w", "vf_transitions", "inter_migrations",
            }
            assert point.outcomes["power_w"] > 0.0

    def test_top_level_parameter_sweep(self):
        result = sweep_parameter(
            "migrate_every", [3, 12], workload="l1", duration_s=2.0, warmup_s=0.5
        )
        assert [p.value for p in result.points] == [3, 12]
