"""Property tests: incremental indices always match a from-scratch rebuild.

The placement layer and the market both keep incremental per-core task
indices on the tick hot path, updated on every place/migrate/remove
instead of rebuilt.  Each class carries its own oracle
(``index_consistent`` / ``core_index_consistent``) comparing the
incremental state against a fresh rebuild from the authoritative map;
here hypothesis drives random operation sequences and asserts the oracle
after every step, so any drift is reported with the shrunk op sequence
that caused it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.market import Market
from repro.hw import tc2_chip
from repro.sim.placement import Placement
from repro.tasks import random_tasks

N_TASKS = 8

# An op is (kind, task_index, core_index); indices wrap around whatever
# is currently available so every generated sequence is valid.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["place", "remove", "hotplug", "snapshot"]),
        st.integers(min_value=0, max_value=N_TASKS - 1),
        st.integers(min_value=0, max_value=31),
    ),
    max_size=60,
)


def _cores(chip):
    return [core for cluster in chip.clusters for core in cluster.cores]


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_placement_index_matches_rebuild(ops):
    chip = tc2_chip()
    placement = Placement(chip)
    tasks = random_tasks(N_TASKS, seed=3)
    cores = _cores(chip)
    for kind, task_i, core_i in ops:
        task = tasks[task_i]
        if kind == "place":  # first placement or a migration
            placement.place(task, cores[core_i % len(cores)])
        elif kind == "remove" and placement.is_placed(task):
            placement.remove(task)
        elif kind == "hotplug":
            cluster = chip.clusters[core_i % len(chip.clusters)]
            if cluster.powered:
                cluster.power_down()
            else:
                cluster.power_up()
        assert placement.index_consistent()
    assert placement.placed_count() == sum(
        1 for task in tasks if placement.is_placed(task)
    )


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_market_core_index_matches_rebuild(ops):
    market = Market()
    core_ids = []
    for cluster_i in range(2):
        ids = [f"c{cluster_i}.{core_i}" for core_i in range(2)]
        market.add_cluster(f"cluster{cluster_i}", ids, [100.0, 200.0, 400.0])
        core_ids.extend(ids)
    in_market = set()
    for kind, task_i, core_i in ops:
        task_id = f"t{task_i}"
        core_id = core_ids[core_i % len(core_ids)]
        if kind == "place":
            if task_id in in_market:
                market.move_task(task_id, core_id)
            else:
                market.add_task(task_id, priority=1 + task_i % 8, core_id=core_id)
                in_market.add(task_id)
        elif kind == "remove" and task_id in in_market:
            market.remove_task(task_id)
            in_market.discard(task_id)
        elif kind == "snapshot":
            # A restore rebuilds the index from the snapshot payload;
            # round-tripping must land in a consistent state too.
            market.restore_state(market.snapshot_state())
        assert market.core_index_consistent()
    for task_id in in_market:
        assert market.core_of(task_id) in core_ids
