"""Sync-barrier contract: lazy materialisation is unobservable.

The columnar engine keeps the NumPy columns authoritative and only
materialises the ``Task`` object view at observation boundaries
(:meth:`ColumnarSimulation.sync`).  Three promises are held here:

* **interleaving property** -- any interleaving of governor-, fault-,
  telemetry- and checkpoint-style observations, at any ticks, sees
  *identical* values whether the engine writes through eagerly on every
  tick or materialises lazily at the barrier (hypothesis-generated
  observation plans, exact equality);
* **poison mode** -- with ``REPRO_COLUMNAR_SYNC=poison`` a deliberately
  unsynchronised read of a hot ``Task`` attribute raises
  :class:`PoisonedStateError`, and the same read succeeds (with the
  eager-mode value) after a barrier;
* **barrier laziness** -- lazy mode actually skips flushes: a run with
  no extra observations performs fewer barrier flushes than one
  observed every tick.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import tick_records
from repro.checkpoint.snapshot import snapshot_simulation
from repro.experiments.harness import make_governor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.sim.columnar import ColumnarSimulation, PoisonedStateError
from repro.tasks import random_tasks

_HOT_ATTRS = (
    "total_beats",
    "total_work_pu_s",
    "last_supply_pus",
    "last_consumed_pus",
    "last_demand_pus",
)


def _make(sync_mode, *, n_tasks=6, seed=11):
    sim = Simulation(
        tc2_chip(),
        random_tasks(n_tasks, seed=seed),
        make_governor("PPM", power_cap_w=8.0),
        config=SimConfig(seed=seed, metrics_warmup_s=0.0, engine="columnar"),
    )
    assert type(sim) is ColumnarSimulation
    sim.sync_mode = sync_mode
    return sim


# -- observation actions: each uses a real observation API ------------------


def _observe_governor(sim):
    """What a governor hook sees: hot task attrs behind the barrier."""
    sim.sync()
    return [
        (t.name,) + tuple(getattr(t, a) for a in _HOT_ATTRS)
        for t in sim.tasks
    ]


def _observe_fault(sim):
    """What the fault injector sees: heart rates and load tracking."""
    sim.sync()
    rates = [(t.name, t.hrm.heart_rate()) for t in sim.tasks]
    loads = [(t.name, v) for t, v in sim.load_tracker._load.items()]
    return rates, loads


def _observe_telemetry(sim):
    """Materialise the telemetry column buffers mid-run."""
    records = tick_records(sim.metrics)
    return len(records), (records[-1] if records else None)


def _observe_checkpoint(sim):
    """Checkpoint barrier: the full JSON-safe snapshot."""
    return snapshot_simulation(sim)


_ACTIONS = {
    "governor": _observe_governor,
    "fault": _observe_fault,
    "telemetry": _observe_telemetry,
    "checkpoint": _observe_checkpoint,
}

_N_TICKS = 24


def _run_plan(sync_mode, plan):
    """Step a sim tick-by-tick, observing per the plan; returns evidence."""
    by_tick = defaultdict(list)
    for tick, action in plan:
        by_tick[tick].append(action)
    sim = _make(sync_mode)
    observed = []
    for tick in range(_N_TICKS):
        sim.step()
        for action in by_tick.get(tick, ()):
            observed.append((tick, action, _ACTIONS[action](sim)))
    sim.sync()
    observed.append(("end", "governor", _observe_governor(sim)))
    observed.append(("end", "telemetry", _observe_telemetry(sim)))
    return sim, observed


@settings(max_examples=12, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=_N_TICKS - 1),
            st.sampled_from(sorted(_ACTIONS)),
        ),
        max_size=8,
    )
)
def test_interleaved_observations_eager_vs_lazy(plan):
    plan = sorted(plan)
    sim_eager, seen_eager = _run_plan("eager", plan)
    sim_lazy, seen_lazy = _run_plan("lazy", plan)
    # Every observation -- wherever the plan put it -- is bit-identical.
    assert seen_eager == seen_lazy
    # And the runs themselves did not diverge: full telemetry matches.
    assert tick_records(sim_eager.metrics) == tick_records(sim_lazy.metrics)


def test_lazy_mode_defers_flushes():
    """Lazy mode must actually skip work, not just match eager output."""
    plan_quiet = []
    plan_noisy = [(t, "governor") for t in range(_N_TICKS)]
    sim_quiet, _ = _run_plan("lazy", plan_quiet)
    sim_noisy, _ = _run_plan("lazy", plan_noisy)
    assert sim_quiet.sync_count < sim_noisy.sync_count


def test_poison_mode_catches_unsynchronised_read():
    sim = _make("poison")
    sim.step()
    sim.step()
    task = sim.tasks[0]
    with pytest.raises(PoisonedStateError):
        float(task.total_beats)
    with pytest.raises(PoisonedStateError):
        float(task.last_supply_pus)
    # The barrier clears the poison and lands the true values: the same
    # reads now succeed and match an eager twin of the run.
    sim.sync()
    twin = _make("eager")
    twin.step()
    twin.step()
    twin.sync()
    for mine, theirs in zip(sim.tasks, twin.tasks):
        for attr in _HOT_ATTRS:
            assert getattr(mine, attr) == getattr(theirs, attr)
