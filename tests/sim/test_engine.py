"""Unit and integration tests for the simulation engine."""

import pytest

from repro.governors import BaseGovernor, MaxFrequencyGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


def make_sim(tasks, governor=None, dt=0.01, auto_gate=True, warmup=0.0):
    return Simulation(
        tc2_chip(),
        tasks,
        governor or BaseGovernor(),
        config=SimConfig(dt=dt, auto_power_gate=auto_gate, metrics_warmup_s=warmup),
    )


class TestRunLoop:
    def test_run_advances_time_in_ticks(self):
        sim = make_sim([make_task("swaptions", "l")])
        sim.run(0.1)
        assert sim.now == pytest.approx(0.1)
        assert sim.tick_index == 10

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_sim([]).run(-1.0)

    def test_zero_dt_rejected(self):
        with pytest.raises(ValueError):
            make_sim([], dt=0.0)

    def test_metrics_recorded_every_tick(self):
        sim = make_sim([make_task("swaptions", "l")])
        sim.run(0.05)
        assert len(sim.metrics.samples) == 5


class TestPlacementDefaults:
    def test_new_tasks_land_on_little(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task])
        sim.run(0.01)
        assert sim.placement.core_of(task).cluster.cluster_id == "little"

    def test_tasks_spread_over_little_cores(self):
        tasks = [make_task("swaptions", "l") for _ in range(3)]
        sim = make_sim(tasks)
        sim.run(0.01)
        cores = {sim.placement.core_of(t).core_id for t in tasks}
        assert cores == {"little.0", "little.1", "little.2"}

    def test_governor_place_task_hook_wins(self):
        class PinToBig(BaseGovernor):
            def place_task(self, sim, task):
                sim.place(task, sim.chip.core("big.0"))

        task = make_task("swaptions", "l")
        sim = make_sim([task], governor=PinToBig())
        sim.run(0.01)
        assert sim.placement.core_of(task).core_id == "big.0"


class TestPowerGating:
    def test_empty_cluster_powered_down(self):
        sim = make_sim([make_task("swaptions", "l")])
        sim.run(0.02)
        assert not sim.chip.cluster("big").powered
        assert sim.chip.cluster("little").powered

    def test_cluster_powers_up_when_task_arrives(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task])
        sim.run(0.02)
        sim.migrate(task, sim.chip.core("big.0"))
        sim.run(0.02)
        assert sim.chip.cluster("big").powered
        assert not sim.chip.cluster("little").powered

    def test_hold_keeps_cluster_down(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task])
        sim.run(0.02)
        sim.migrate(task, sim.chip.core("big.0"))
        sim.power_down(sim.chip.cluster("big"), hold=True)
        sim.run(0.02)
        assert not sim.chip.cluster("big").powered
        sim.power_up(sim.chip.cluster("big"))
        sim.run(0.02)
        assert sim.chip.cluster("big").powered

    def test_gating_can_be_disabled(self):
        sim = make_sim([make_task("swaptions", "l")], auto_gate=False)
        sim.run(0.02)
        assert sim.chip.cluster("big").powered


class TestDispatch:
    def test_task_makes_progress(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task], governor=MaxFrequencyGovernor())
        sim.run(1.0)
        assert task.total_beats > 0
        assert task.observed_heart_rate() > 0

    def test_frozen_task_receives_nothing(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task])
        task.frozen_until = 10.0
        sim.run(0.1)
        assert task.total_beats == 0.0
        assert task.last_supply_pus == 0.0

    def test_explicit_allocation_respected(self):
        a = make_task("swaptions", "l", task_name="a")
        b = make_task("swaptions", "l", task_name="b")
        sim = make_sim([a, b])
        sim.run(0.01)  # place both
        core = sim.placement.core_of(a)
        sim.place(b, core)  # co-locate
        sim.set_allocation(a, 100.0)
        sim.set_allocation(b, 200.0)
        sim.run(0.01)
        assert a.last_supply_pus == pytest.approx(100.0)
        assert b.last_supply_pus == pytest.approx(200.0)

    def test_utilization_reflects_consumption(self):
        task = make_task("swaptions", "l")  # demand 420 PUs
        sim = make_sim([task], governor=MaxFrequencyGovernor())
        sim.run(1.0)
        core = sim.placement.core_of(task)
        # At 1000 MHz the work-limited task cannot saturate the core.
        assert 0.1 < core.utilization < 1.0


class TestTaskLifecycleInEngine:
    def test_task_arrival_mid_run(self):
        late = make_task("swaptions", "l", start_time=0.05)
        sim = make_sim([late])
        sim.run(0.04)
        assert not sim.placement.is_placed(late)
        sim.run(0.04)
        assert sim.placement.is_placed(late)

    def test_task_departure_releases_core(self):
        brief = make_task("swaptions", "l", duration=0.05)
        sim = make_sim([brief])
        sim.run(0.02)
        assert sim.placement.is_placed(brief)
        sim.run(0.1)
        assert not sim.placement.is_placed(brief)
        # Both clusters empty -> everything gated off.
        assert not sim.chip.cluster("little").powered

    def test_weights_api(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task])
        sim.set_weight(task, 3.0)
        assert sim.weight_of(task) == 3.0
        assert sim.allocation_of(task) is None
        sim.set_allocation(task, 50.0)
        assert sim.allocation_of(task) == 50.0
        sim.clear_allocation(task)
        assert sim.allocation_of(task) is None


class TestGovernorInteraction:
    def test_prepare_called_once(self):
        calls = []

        class Probe(BaseGovernor):
            def prepare(self, sim):
                calls.append("prepare")

            def on_tick(self, sim):
                calls.append("tick")

        sim = make_sim([make_task("swaptions", "l")], governor=Probe())
        sim.run(0.03)
        assert calls.count("prepare") == 1
        assert calls.count("tick") == 3

    def test_dvfs_request_goes_through_regulator(self):
        task = make_task("swaptions", "l")
        sim = make_sim([task], governor=MaxFrequencyGovernor())
        sim.run(0.05)
        little = sim.chip.cluster("little")
        assert little.frequency_mhz == little.vf_table.max_level.frequency_mhz


class TestConfigValidation:
    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(metrics_warmup_s=-0.1)

    def test_negative_sensor_noise_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(sensor_noise_std_w=-0.5)

    def test_boundary_values_accepted(self):
        SimConfig(metrics_warmup_s=0.0, sensor_noise_std_w=0.0)


class TestSeedStreams:
    def test_derive_stream_seed_is_deterministic_and_stream_scoped(self):
        from repro.sim import derive_stream_seed

        assert derive_stream_seed(1, "a") == derive_stream_seed(1, "a")
        assert derive_stream_seed(1, "a") != derive_stream_seed(1, "b")
        assert derive_stream_seed(1, "a") != derive_stream_seed(2, "a")
        assert derive_stream_seed(None, "a") is None

    def test_sensor_noise_reproducible_across_runs(self):
        def powers(seed):
            sim = Simulation(
                tc2_chip(),
                [make_task("swaptions", "l")],
                BaseGovernor(),
                config=SimConfig(sensor_noise_std_w=0.3, seed=seed),
            )
            return [s.chip_power_w for s in sim.run(0.3).samples]

        assert powers(21) == powers(21)
        assert powers(21) != powers(22)


class TestAuditWiring:
    def test_audit_flag_attaches_nonstrict_auditor_to_ppm(self):
        from repro.core import PPMGovernor

        sim = Simulation(
            tc2_chip(),
            [make_task("swaptions", "l")],
            PPMGovernor(),
            config=SimConfig(audit=True),
        )
        metrics = sim.run(0.5)
        assert sim.auditor is not None
        assert not sim.auditor.strict
        assert sim.auditor.rounds_audited > 0
        assert metrics.audit_violation_count() == 0  # healthy run is clean

    def test_audit_off_by_default_and_for_marketless_governors(self):
        sim = make_sim([make_task("swaptions", "l")])
        sim.run(0.1)
        assert sim.auditor is None
        plain = Simulation(
            tc2_chip(),
            [make_task("swaptions", "l")],
            BaseGovernor(),
            config=SimConfig(audit=True),
        )
        plain.run(0.1)
        assert plain.auditor is None  # no market to audit

    def test_audit_violations_surface_in_metrics(self):
        from repro.core import PPMGovernor

        governor = PPMGovernor()
        sim = Simulation(
            tc2_chip(),
            [make_task("swaptions", "l")],
            governor,
            config=SimConfig(audit=True),
        )
        sim.run(0.5)
        # Corrupt an invariant behind the market's back -- after the
        # round settles, so settlement cannot heal it before the audit
        # runs.  The per-round audit must catch and timestamp it.
        real_round = governor.market.run_round

        def corrupting(obs):
            result = real_round(obs)
            agent = next(iter(governor.market.tasks.values()))
            agent.wallet.savings = -5.0
            return result

        governor.market.run_round = corrupting
        sim.run(0.2)
        assert sim.metrics.audit_violation_count() > 0
        assert all(v.startswith("t=") for v in sim.metrics.audit_violations)
        assert any("I3" in v for v in sim.metrics.audit_violations)
