"""Unit tests for the metrics collector."""

import pytest

from repro.sim import MetricsCollector
from repro.tasks import make_task


def record_tick(collector, t, power, tasks_with_rates):
    """Helper: force each task's HRM to a given rate, then record."""
    for task, rate in tasks_with_rates:
        task.hrm.reset()
        task.hrm.record(t, 0.0)
        task.hrm.record(t + 0.1, rate * 0.1)
    collector.record(
        time_s=t,
        chip_power_w=power,
        cluster_power_w={"big": power / 2, "little": power / 2},
        cluster_frequency_mhz={"big": 1000.0, "little": 500.0},
        tasks=[task for task, _ in tasks_with_rates],
    )


@pytest.fixture
def task():
    return make_task("x264", "l", task_name="enc")  # nominal 30 hb/s


class TestMissMetrics:
    def test_any_task_miss_fraction(self, task):
        other = make_task("swaptions", "l", task_name="sw")  # nominal 10
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 3.0, [(task, 30.0), (other, 10.0)])
        record_tick(collector, 1.0, 3.0, [(task, 20.0), (other, 10.0)])  # enc below
        record_tick(collector, 2.0, 3.0, [(task, 30.0), (other, 5.0)])  # sw below
        record_tick(collector, 3.0, 3.0, [(task, 30.0), (other, 10.0)])
        assert collector.any_task_miss_fraction() == pytest.approx(0.5)

    def test_per_task_fractions(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 30.0)])  # in range
        record_tick(collector, 1.0, 1.0, [(task, 20.0)])  # below
        record_tick(collector, 2.0, 1.0, [(task, 40.0)])  # above (outside only)
        assert collector.task_below_fraction("enc") == pytest.approx(1 / 3)
        assert collector.task_outside_range_fraction("enc") == pytest.approx(2 / 3)

    def test_warmup_excluded(self, task):
        collector = MetricsCollector(warmup_s=5.0)
        record_tick(collector, 0.0, 1.0, [(task, 5.0)])  # warm-up: below, ignored
        record_tick(collector, 6.0, 1.0, [(task, 30.0)])
        assert collector.any_task_miss_fraction() == 0.0
        assert collector.task_below_fraction("enc") == 0.0

    def test_mean_miss_fraction(self, task):
        other = make_task("swaptions", "l", task_name="sw")
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 20.0), (other, 10.0)])
        record_tick(collector, 1.0, 1.0, [(task, 20.0), (other, 10.0)])
        assert collector.mean_miss_fraction() == pytest.approx(0.5)

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.any_task_miss_fraction() == 0.0
        assert collector.average_power_w() == 0.0
        assert collector.task_below_fraction("nope") == 0.0


class TestPowerMetrics:
    def test_average_and_peak(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 2.0, [(task, 30.0)])
        record_tick(collector, 1.0, 4.0, [(task, 30.0)])
        assert collector.average_power_w() == pytest.approx(3.0)
        assert collector.peak_power_w() == pytest.approx(4.0)

    def test_time_above_power(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        for t, p in [(0.0, 3.0), (1.0, 5.0), (2.0, 4.5), (3.0, 2.0)]:
            record_tick(collector, t, p, [(task, 30.0)])
        assert collector.time_above_power(4.0) == pytest.approx(0.5)

    def test_average_cluster_frequency(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 30.0)])
        assert collector.average_cluster_frequency_mhz("big") == 1000.0
        assert collector.average_cluster_frequency_mhz("nope") == 0.0


class TestSeries:
    def test_heart_rate_series(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 30.0)])
        record_tick(collector, 1.0, 1.0, [(task, 15.0)])
        times, rates = collector.heart_rate_series("enc")
        assert times == [0.0, 1.0]
        assert rates == pytest.approx([30.0, 15.0])

    def test_normalised_series(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 30.0)])
        _, rates = collector.heart_rate_series("enc", normalize_by=30.0)
        assert rates == pytest.approx([1.0])

    def test_power_and_frequency_series(self, task):
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 2.5, [(task, 30.0)])
        times, powers = collector.power_series()
        assert (times, powers) == ([0.0], [2.5])
        _, freqs = collector.frequency_series("little")
        assert freqs == [500.0]

    def test_task_names_in_first_seen_order(self, task):
        other = make_task("swaptions", "l", task_name="sw")
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 30.0)])
        record_tick(collector, 1.0, 1.0, [(task, 30.0), (other, 10.0)])
        assert collector.task_names() == ["enc", "sw"]


class TestTailQoS:
    def test_percentile_nearest_rank(self):
        values = [0.1, 0.4, 0.2, 0.3]
        assert MetricsCollector.percentile(values, 0.0) == 0.1
        assert MetricsCollector.percentile(values, 50.0) == 0.2
        assert MetricsCollector.percentile(values, 75.0) == 0.3
        assert MetricsCollector.percentile(values, 99.0) == 0.4
        assert MetricsCollector.percentile(values, 100.0) == 0.4
        assert MetricsCollector.percentile([], 99.0) == 0.0
        with pytest.raises(ValueError):
            MetricsCollector.percentile(values, 101.0)

    def test_violation_fraction_percentiles(self, task):
        other = make_task("swaptions", "l", task_name="sw")  # nominal 10
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 30.0), (other, 10.0)])  # 0/2
        record_tick(collector, 1.0, 1.0, [(task, 20.0), (other, 10.0)])  # 1/2
        record_tick(collector, 2.0, 1.0, [(task, 20.0), (other, 5.0)])  # 2/2
        tail = collector.violation_fraction_percentiles()
        assert tail["p50"] == pytest.approx(0.5)
        assert tail["p99"] == pytest.approx(1.0)

    def test_violation_population_filter_skips_dead_ticks(self, task):
        other = make_task("swaptions", "l", task_name="sw")
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 20.0)])  # 'sw' not alive
        record_tick(collector, 1.0, 1.0, [(task, 30.0), (other, 5.0)])
        only_sw = collector.violation_fraction_percentiles(["sw"])
        assert only_sw["p50"] == pytest.approx(1.0)  # tick 0 skipped
        both = collector.violation_fraction_percentiles(["enc", "sw"])
        assert both["p99"] == pytest.approx(1.0)  # tick 0: 1/1 below
        assert both["p50"] == pytest.approx(0.5)  # tick 1: 1/2 below

    def test_task_below_percentiles(self, task):
        other = make_task("swaptions", "l", task_name="sw")
        collector = MetricsCollector(warmup_s=0.0)
        record_tick(collector, 0.0, 1.0, [(task, 20.0), (other, 10.0)])
        record_tick(collector, 1.0, 1.0, [(task, 30.0), (other, 10.0)])
        tail = collector.task_below_percentiles()
        assert tail["p99"] == pytest.approx(0.5)  # enc below half the time
        assert tail["p50"] == pytest.approx(0.0)  # sw never below
