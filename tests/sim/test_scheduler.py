"""Unit tests for per-core supply dispatch."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import compute_grants
from repro.tasks import make_task


def tasks(n):
    return [make_task("swaptions", "l") for _ in range(n)]


class TestExplicitAllocations:
    def test_honoured_exactly_when_they_fit(self):
        a, b = tasks(2)
        grants = compute_grants(1000.0, [a, b], {a: 300.0, b: 500.0}, {})
        assert grants[a] == 300.0
        assert grants[b] == 500.0

    def test_scaled_down_when_oversubscribed(self):
        a, b = tasks(2)
        grants = compute_grants(600.0, [a, b], {a: 400.0, b: 800.0}, {})
        assert grants[a] == pytest.approx(200.0)
        assert grants[b] == pytest.approx(400.0)

    def test_negative_allocation_treated_as_zero(self):
        (a,) = tasks(1)
        grants = compute_grants(500.0, [a], {a: -10.0}, {})
        assert grants[a] == 0.0


class TestWeightedPool:
    def test_equal_weights_split_evenly(self):
        a, b = tasks(2)
        grants = compute_grants(900.0, [a, b], {}, {})
        assert grants[a] == pytest.approx(450.0)
        assert grants[b] == pytest.approx(450.0)

    def test_weights_respected(self):
        a, b = tasks(2)
        grants = compute_grants(900.0, [a, b], {}, {a: 2.0, b: 1.0})
        assert grants[a] == pytest.approx(600.0)
        assert grants[b] == pytest.approx(300.0)

    def test_pool_gets_leftover_after_explicit(self):
        a, b = tasks(2)
        grants = compute_grants(1000.0, [a, b], {a: 400.0}, {})
        assert grants[a] == 400.0
        assert grants[b] == pytest.approx(600.0)

    def test_all_zero_weights_fall_back_to_even_split(self):
        a, b = tasks(2)
        grants = compute_grants(800.0, [a, b], {}, {a: 0.0, b: 0.0})
        assert grants[a] == grants[b] == pytest.approx(400.0)


class TestEdgeCases:
    def test_no_tasks(self):
        assert compute_grants(500.0, [], {}, {}) == {}

    def test_zero_supply(self):
        a, b = tasks(2)
        grants = compute_grants(0.0, [a, b], {a: 100.0}, {})
        assert grants == {a: 0.0, b: 0.0}

    def test_negative_supply_rejected(self):
        with pytest.raises(ValueError):
            compute_grants(-1.0, [], {}, {})

    def test_no_leftover_for_pool_when_explicit_saturates(self):
        a, b = tasks(2)
        grants = compute_grants(500.0, [a, b], {a: 500.0}, {})
        assert grants[a] == 500.0
        assert grants[b] == 0.0


class TestInvariants:
    @given(
        st.floats(min_value=0, max_value=5000),
        st.lists(st.floats(min_value=0, max_value=2000), min_size=0, max_size=5),
        st.lists(st.floats(min_value=0, max_value=5), min_size=0, max_size=5),
    )
    def test_grants_bounded_by_supply_and_non_negative(
        self, supply, allocations, weights
    ):
        all_tasks = tasks(len(allocations) + len(weights))
        explicit = dict(zip(all_tasks, allocations))
        weighted = dict(zip(all_tasks[len(allocations):], weights))
        grants = compute_grants(supply, all_tasks, explicit, weighted)
        assert all(g >= 0.0 for g in grants.values())
        assert sum(grants.values()) <= supply + 1e-6
        assert set(grants) == set(all_tasks)
