"""Differential equivalence: columnar engine vs reference object engine.

The columnar tick engine (:mod:`repro.sim.columnar`) promises *bit-exact*
telemetry: every per-tick record, every task attribute, every load-tracker
entry (including dict insertion order) must match the per-object reference
loop.  These tests hold it to that promise two ways:

* six pinned golden scenarios -- the same configurations the determinism
  golden digests pin -- run under both engines and compared tick-by-tick,
  failing with the *first divergent tick* and the fields that differ;
* hypothesis-generated configurations sweeping task mixes, governors,
  sensor noise, thermal tracking and estimated-power operation, so any
  columnar fast path that is only exercised under an odd combination
  still gets differential coverage.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import tick_records
from repro.core.powerest import EstimationConfig
from repro.experiments.campaigns import CAMPAIGN_FAULTS, build_campaign_schedule
from repro.experiments.harness import make_governor
from repro.faults import FaultInjector
from repro.hw import tc2_chip
from repro.hw.thermal import ThermalConfig
from repro.sim import SimConfig, Simulation
from repro.sim.columnar import ColumnarSimulation
from repro.tasks import build_workload, random_tasks


def _build(engine, *, workload, governor, seed, noise_w, fault, duration_s,
           thermal=None, estimation=None, power_cap_w=10.0):
    chip = tc2_chip()
    tasks = (
        random_tasks(workload[1], seed=workload[2])
        if workload[0] == "random"
        else build_workload(workload[1])
    )
    sim = Simulation(
        chip,
        tasks,
        make_governor(governor, power_cap_w=power_cap_w),
        config=SimConfig(
            seed=seed,
            metrics_warmup_s=1.0,
            audit=True,
            sensor_noise_std_w=noise_w,
            thermal=thermal,
            estimation=estimation,
            engine=engine,
        ),
    )
    if fault is not None:
        schedule = build_campaign_schedule(
            CAMPAIGN_FAULTS[fault], duration_s + 6.0, 1.0, 0.4, chip
        )
        FaultInjector(sim, schedule).attach()
    sim.run(duration_s)
    return sim


def _first_divergence(a, b):
    """Index + field names of the first differing tick record, or None."""
    ra, rb = tick_records(a.metrics), tick_records(b.metrics)
    if len(ra) != len(rb):
        return min(len(ra), len(rb)), ["<record count: %d vs %d>" % (len(ra), len(rb))]
    for k, (x, y) in enumerate(zip(ra, rb)):
        if x != y:
            fields = [key for key in x if x[key] != y.get(key)]
            return k, fields
    return None


def _assert_equivalent(obj, col, label):
    assert type(obj) is Simulation and type(col) is ColumnarSimulation
    div = _first_divergence(obj, col)
    if div is not None:
        tick, fields = div
        ra, rb = tick_records(obj.metrics), tick_records(col.metrics)
        detail = ""
        if tick < len(ra) and tick < len(rb):
            for f in fields:
                detail += "\n  %s: object=%r columnar=%r" % (
                    f, ra[tick].get(f), rb[tick].get(f))
        pytest.fail(
            "%s: telemetry diverged at tick %d, fields %s%s"
            % (label, tick, fields, detail)
        )
    # Load-tracker dict must match including insertion order -- the object
    # engine's dispatch order is part of the contract.
    la = [(t.name, v) for t, v in obj.load_tracker._load.items()]
    lb = [(t.name, v) for t, v in col.load_tracker._load.items()]
    assert la == lb, "%s: load-tracker dict diverged" % label
    for ta, tb in zip(obj.tasks, col.tasks):
        for attr in ("total_beats", "total_work_pu_s", "last_supply_pus",
                     "last_consumed_pus", "last_demand_pus", "frozen_until",
                     "migrations"):
            va, vb = getattr(ta, attr), getattr(tb, attr)
            assert va == vb, "%s: %s.%s %r vs %r" % (label, ta.name, attr, va, vb)
        assert list(ta.hrm._samples) == list(tb.hrm._samples), (
            "%s: %s hrm samples diverged" % (label, ta.name))


# The same six configurations the golden telemetry digests pin
# (tests/sim/test_determinism.py) -- governor, workload, seed,
# duration_s, noise_w, fault.
GOLDEN_SCENARIOS = [
    ("PPM", ("named", "m1"), 17, 4.0, 0.05, None),
    ("PPM", ("named", "m2"), 17, 6.0, 0.0, None),
    ("HPM", ("named", "m1"), 17, 4.0, 0.0, None),
    ("HL", ("named", "l1"), 17, 4.0, 0.0, None),
    ("PPM", ("named", "m1"), 17, 6.0, 0.0, "sensor-dropout"),
    ("PPM", ("named", "m1"), 5, 6.0, 0.0, "hotplug"),
]


class TestGoldenScenarioEquivalence:
    @pytest.mark.parametrize(
        "governor,workload,seed,duration_s,noise_w,fault",
        GOLDEN_SCENARIOS,
        ids=lambda v: str(v),
    )
    def test_engines_agree(self, governor, workload, seed, duration_s,
                           noise_w, fault):
        kw = dict(workload=workload, governor=governor, seed=seed,
                  noise_w=noise_w, fault=fault, duration_s=duration_s)
        obj = _build("object", **kw)
        col = _build("columnar", **kw)
        label = "%s/%s/seed=%d/fault=%s" % (governor, workload[1], seed, fault)
        _assert_equivalent(obj, col, label)


class TestManyTasksEquivalence:
    """The perf-bench shape itself: random task mixes at several sizes."""

    @pytest.mark.parametrize("n", [4, 17, 50])
    def test_random_mix(self, n):
        kw = dict(workload=("random", n, 7), governor="PPM", seed=7,
                  noise_w=0.0, fault=None, duration_s=3.0, power_cap_w=8.0)
        obj = _build("object", **kw)
        col = _build("columnar", **kw)
        _assert_equivalent(obj, col, "random/n=%d" % n)


# Hypothesis sweep.  Short runs keep each example cheap; the space still
# crosses governor x workload x noise x thermal x estimation x fault.
_CONFIGS = st.fixed_dictionaries({
    "governor": st.sampled_from(["PPM", "HPM", "HL"]),
    "workload": st.one_of(
        st.sampled_from([("named", "m1"), ("named", "m2"), ("named", "l1")]),
        st.tuples(st.just("random"),
                  st.integers(min_value=1, max_value=12),
                  st.integers(min_value=0, max_value=9)),
    ),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "noise_w": st.sampled_from([0.0, 0.05]),
    "fault": st.sampled_from([None, "sensor-dropout", "hotplug"]),
    "thermal": st.sampled_from([None, "default"]),
    "estimation": st.sampled_from([None, "default"]),
    "duration_s": st.sampled_from([1.5, 2.0]),
})


class TestHypothesisEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(cfg=_CONFIGS)
    def test_generated_config(self, cfg):
        kw = dict(
            workload=tuple(cfg["workload"]),
            governor=cfg["governor"],
            seed=cfg["seed"],
            noise_w=cfg["noise_w"],
            fault=cfg["fault"],
            duration_s=cfg["duration_s"],
            thermal=ThermalConfig() if cfg["thermal"] else None,
            estimation=EstimationConfig() if cfg["estimation"] else None,
        )
        obj = _build("object", **kw)
        col = _build("columnar", **kw)
        _assert_equivalent(obj, col, repr(cfg))


class TestMetricsSamplesMatchExactly:
    """Full dataclass compare (not just tick_records projection)."""

    def test_sample_dataclasses_identical(self):
        kw = dict(workload=("random", 17, 7), governor="PPM", seed=7,
                  noise_w=0.0, fault=None, duration_s=3.0, power_cap_w=8.0)
        obj = _build("object", **kw)
        col = _build("columnar", **kw)
        sa, sb = obj.metrics.samples, col.metrics.samples
        assert len(sa) == len(sb)
        for k, (x, y) in enumerate(zip(sa, sb)):
            assert asdict(x) == asdict(y), "sample %d diverged" % k
