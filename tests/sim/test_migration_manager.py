"""Unit tests for migration execution with measured costs."""

import pytest

from repro.hw import tc2_chip
from repro.sim import MigrationManager, Placement
from repro.tasks import make_task


@pytest.fixture
def setup():
    chip = tc2_chip()
    placement = Placement(chip)
    manager = MigrationManager(placement=placement)
    task = make_task("swaptions", "l")
    placement.place(task, chip.core("little.0"))
    return chip, placement, manager, task


class TestMigrate:
    def test_moves_and_freezes(self, setup):
        chip, placement, manager, task = setup
        record = manager.migrate(task, chip.core("big.0"), now=1.0)
        assert placement.core_of(task).core_id == "big.0"
        assert task.frozen_until == pytest.approx(1.0 + record.cost_s)
        assert record.inter_cluster
        assert 1.88e-3 <= record.cost_s <= 2.16e-3
        assert task.migrations == 1

    def test_intra_cluster_is_cheap(self, setup):
        chip, placement, manager, task = setup
        record = manager.migrate(task, chip.core("little.2"), now=0.0)
        assert not record.inter_cluster
        assert record.cost_s < 2e-4

    def test_big_to_little_cost(self, setup):
        chip, placement, manager, task = setup
        manager.migrate(task, chip.core("big.0"), now=0.0)
        record = manager.migrate(task, chip.core("little.1"), now=10.0)
        assert 3.54e-3 <= record.cost_s <= 3.83e-3

    def test_freeze_never_shrinks(self, setup):
        chip, placement, manager, task = setup
        task.frozen_until = 99.0
        manager.migrate(task, chip.core("big.0"), now=1.0)
        assert task.frozen_until == 99.0

    def test_same_core_rejected(self, setup):
        chip, placement, manager, task = setup
        with pytest.raises(ValueError):
            manager.migrate(task, chip.core("little.0"), now=0.0)

    def test_unplaced_task_rejected(self, setup):
        chip, placement, manager, _ = setup
        loose = make_task("x264", "l")
        with pytest.raises(ValueError):
            manager.migrate(loose, chip.core("big.0"), now=0.0)


class TestAccounting:
    def test_counts(self, setup):
        chip, placement, manager, task = setup
        manager.migrate(task, chip.core("little.1"), now=0.0)
        manager.migrate(task, chip.core("big.0"), now=1.0)
        manager.migrate(task, chip.core("big.1"), now=2.0)
        intra, inter = manager.counts()
        assert (intra, inter) == (2, 1)

    def test_counts_by_task(self, setup):
        chip, placement, manager, task = setup
        other = make_task("x264", "l")
        placement.place(other, chip.core("little.1"))
        manager.migrate(task, chip.core("big.0"), now=0.0)
        manager.migrate(other, chip.core("little.2"), now=0.0)
        manager.migrate(other, chip.core("little.1"), now=1.0)
        by_task = manager.counts_by_task()
        assert by_task[task.name] == 1
        assert by_task[other.name] == 2

    def test_history_records_endpoints(self, setup):
        chip, placement, manager, task = setup
        manager.migrate(task, chip.core("big.1"), now=3.0)
        record = manager.history[-1]
        assert record.source_core == "little.0"
        assert record.destination_core == "big.1"
        assert record.time_s == 3.0
        assert record.task_name == task.name
