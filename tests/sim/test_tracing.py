"""Unit and integration tests for event tracing."""

import json

import pytest

from repro.governors import BaseGovernor, MaxFrequencyGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation, TraceEvent, Tracer, attach_tracer
from repro.tasks import make_task


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(1.0, "dvfs", "big", to_index=3)
        tracer.record(2.0, "migration", "t1", inter_cluster=True)
        assert len(tracer) == 2
        assert tracer.count("dvfs") == 1
        assert tracer.events(kind="migration")[0].subject == "t1"
        assert tracer.events(since=1.5)[0].kind == "migration"
        assert tracer.events(subject="big")[0].detail["to_index"] == 3

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "k", "s")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.events()[0].time_s == 3.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_jsonl_roundtrip(self):
        tracer = Tracer()
        tracer.record(0.5, "dvfs", "little", to_mhz=700.0)
        lines = tracer.to_jsonl().splitlines()
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "dvfs"
        assert parsed["detail"]["to_mhz"] == 700.0

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.record(0.0, "a", "b")
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 1
        assert json.loads(path.read_text())["kind"] == "a"


class TestAttachTracer:
    def test_dvfs_events_traced(self):
        task = make_task("swaptions", "l")
        sim = Simulation(tc2_chip(), [task], MaxFrequencyGovernor(), config=SimConfig())
        tracer = attach_tracer(sim)
        sim.run(0.1)
        dvfs = tracer.events(kind="dvfs")
        assert dvfs
        assert dvfs[0].subject in {"big", "little"}

    def test_migration_events_traced(self):
        task = make_task("swaptions", "l")
        sim = Simulation(tc2_chip(), [task], BaseGovernor(), config=SimConfig())
        tracer = attach_tracer(sim)
        sim.run(0.02)
        sim.migrate(task, sim.chip.core("big.0"))
        events = tracer.events(kind="migration")
        assert len(events) == 1
        assert events[0].detail["inter_cluster"] is True
        assert events[0].detail["destination"] == "big.0"

    def test_power_gating_traced(self):
        task = make_task("swaptions", "l")
        sim = Simulation(tc2_chip(), [task], BaseGovernor(), config=SimConfig())
        tracer = attach_tracer(sim)
        sim.run(0.05)  # big cluster auto-gates off (no tasks)
        gates = tracer.events(kind="power_gate", subject="big")
        assert gates and gates[0].detail["powered"] is False

    def test_noop_requests_not_traced(self):
        sim = Simulation(tc2_chip(), [], BaseGovernor(), config=SimConfig())
        tracer = attach_tracer(sim)
        sim.request_level(sim.chip.cluster("big"), 0)  # already there
        assert tracer.count("dvfs") == 0
