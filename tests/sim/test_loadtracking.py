"""Unit tests for PELT-style load tracking."""

import pytest

from repro.sim import LoadTracker
from repro.tasks import make_task


class TestRunnableFraction:
    def test_starved_task_is_fully_runnable(self):
        assert LoadTracker.runnable_fraction(0.0, 100.0) == 1.0

    def test_undersupplied_task_is_fully_runnable(self):
        assert LoadTracker.runnable_fraction(50.0, 100.0) == 1.0

    def test_oversupplied_task_runs_partially(self):
        assert LoadTracker.runnable_fraction(200.0, 100.0) == 0.5

    def test_no_demand_means_idle(self):
        assert LoadTracker.runnable_fraction(100.0, 0.0) == 0.0


class TestDecay:
    def test_first_observation_adopted_directly(self):
        tracker = LoadTracker()
        task = make_task("x264", "l")
        load = tracker.update(task, granted_pus=100.0, demand_pus=50.0, dt=0.01)
        assert load == pytest.approx(0.5)

    def test_converges_to_new_level(self):
        tracker = LoadTracker(halflife_s=0.032)
        task = make_task("x264", "l")
        tracker.update(task, 100.0, 100.0, dt=0.01)  # load 1.0
        for _ in range(100):
            tracker.update(task, 100.0, 25.0, dt=0.01)
        assert tracker.load(task) == pytest.approx(0.25, abs=0.01)

    def test_halflife_semantics(self):
        tracker = LoadTracker(halflife_s=0.1)
        task = make_task("x264", "l")
        tracker.update(task, 100.0, 100.0, dt=0.01)  # start at 1.0
        # One halflife of zero-load observations halves the distance to 0.
        for _ in range(10):
            tracker.update(task, 100.0, 0.0, dt=0.01)
        assert tracker.load(task) == pytest.approx(0.5, abs=0.02)

    def test_unknown_task_reads_zero(self):
        assert LoadTracker().load(make_task("x264", "l")) == 0.0

    def test_forget(self):
        tracker = LoadTracker()
        task = make_task("x264", "l")
        tracker.update(task, 0.0, 10.0, dt=0.01)
        tracker.forget(task)
        assert tracker.load(task) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTracker(halflife_s=0.0)
        with pytest.raises(ValueError):
            LoadTracker().update(make_task("x264", "l"), 1.0, 1.0, dt=0.0)

    def test_load_stays_in_unit_interval(self):
        tracker = LoadTracker()
        task = make_task("x264", "l")
        for granted, demand in [(0, 10), (100, 5), (50, 500), (10, 0)] * 10:
            load = tracker.update(task, float(granted), float(demand), dt=0.02)
            assert 0.0 <= load <= 1.0
