"""Determinism guarantees the checkpoint/replay machinery is built on."""

import hashlib

import pytest

from repro.checkpoint import canonical_json, tick_records
from repro.experiments.campaigns import CAMPAIGN_FAULTS, build_campaign_schedule
from repro.experiments.harness import make_governor
from repro.faults import FaultInjector
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.sim.engine import derive_stream_seed
from repro.tasks import build_workload


class TestDeriveStreamSeed:
    def test_golden_values(self):
        # Pinned: a change here silently invalidates every existing
        # checkpoint fingerprint and recorded journal.
        assert derive_stream_seed(42, "sensor") == 6935261270320191380
        assert derive_stream_seed(42, "faults") == 13671575012066434554
        assert derive_stream_seed(1, "sensor") == 5678669057500712095

    def test_none_passes_through(self):
        assert derive_stream_seed(None, "sensor") is None

    def test_streams_are_distinct_under_one_seed(self):
        streams = ["sensor", "faults", "noise", "placement", "workload"]
        derived = {derive_stream_seed(7, stream) for stream in streams}
        assert len(derived) == len(streams)

    def test_seeds_are_distinct_within_one_stream(self):
        derived = {derive_stream_seed(seed, "sensor") for seed in range(50)}
        assert len(derived) == 50

    def test_stable_across_calls(self):
        assert derive_stream_seed(99, "x") == derive_stream_seed(99, "x")


def _run(seed, fault=None, duration_s=4.0, noise_w=0.0, governor="PPM",
         workload="m1"):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload(workload),
        make_governor(governor, power_cap_w=10.0),
        config=SimConfig(
            seed=seed,
            metrics_warmup_s=1.0,
            audit=True,
            sensor_noise_std_w=noise_w,
        ),
    )
    if fault is not None:
        schedule = build_campaign_schedule(
            CAMPAIGN_FAULTS[fault], duration_s + 6.0, 1.0, 0.4, chip
        )
        FaultInjector(sim, schedule).attach()
    sim.run(duration_s)
    return sim


class TestRunDeterminism:
    def test_same_seed_is_tick_for_tick_identical(self):
        first = _run(seed=17, noise_w=0.05)
        second = _run(seed=17, noise_w=0.05)
        assert tick_records(first.metrics) == tick_records(second.metrics)
        assert first.energy.total_energy_j == second.energy.total_energy_j
        assert first.migrations.counts() == second.migrations.counts()

    def test_same_seed_identical_under_fault_schedule(self):
        first = _run(seed=17, fault="sensor-dropout", duration_s=6.0)
        second = _run(seed=17, fault="sensor-dropout", duration_s=6.0)
        assert tick_records(first.metrics) == tick_records(second.metrics)

    def test_different_seeds_diverge(self):
        # The engine seed only feeds stochastic components, so give the
        # sensor some noise for the seed to act on.
        first = _run(seed=17, noise_w=0.05)
        second = _run(seed=18, noise_w=0.05)
        assert tick_records(first.metrics) != tick_records(second.metrics)


def _telemetry_digest(sim):
    payload = canonical_json(tick_records(sim.metrics))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# Pinned sha256 digests of the full per-tick telemetry stream
# (canonical_json over tick_records).  These fail if ANY floating-point
# operation in the tick loop changes order or association -- the
# guarantee the hot-path optimizations are held to.  If a digest changes
# on purpose (a deliberate model change), re-pin it and say so in the
# commit message; checkpoints and journals recorded before the change
# will no longer replay cleanly.
GOLDEN_DIGESTS = {
    ("PPM", "m1", 17, 4.0, 0.05, None):
        "08e2421dd86da185a95d02e567666bec272a274e4a59eaa8f2a73bd5078773e9",
    ("PPM", "m2", 17, 6.0, 0.0, None):
        "0ad8cbd70e7babd5af0a223de384bdb58e525dec4bc3ff35c61a8363447e1fac",
    ("HPM", "m1", 17, 4.0, 0.0, None):
        "081c6c2cc0ffacef7e576cf69e21c5278c758f645f75bab259929c94062545fe",
    ("HL", "l1", 17, 4.0, 0.0, None):
        "c75b8e161205b017a91aef91b2a60aa0f50ea6fedc25f4a5e07091ecad1e8830",
    ("PPM", "m1", 17, 6.0, 0.0, "sensor-dropout"):
        "2d7d8e5673b5f7e7e63035da6c3a14859e40ece73332b36c62d00ff4ac7434bd",
    ("PPM", "m1", 5, 6.0, 0.0, "hotplug"):
        "e28591b8daf7448bfe1c1cc33b17f47a0e24afca928c65d97ac2cc40e55bf2a5",
}


class TestGoldenTelemetryDigests:
    @pytest.mark.parametrize(
        "governor,workload,seed,duration_s,noise_w,fault",
        sorted(GOLDEN_DIGESTS, key=str),
    )
    def test_digest_matches_pin(
        self, governor, workload, seed, duration_s, noise_w, fault
    ):
        sim = _run(
            seed=seed,
            fault=fault,
            duration_s=duration_s,
            noise_w=noise_w,
            governor=governor,
            workload=workload,
        )
        key = (governor, workload, seed, duration_s, noise_w, fault)
        assert _telemetry_digest(sim) == GOLDEN_DIGESTS[key]
