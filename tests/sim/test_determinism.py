"""Determinism guarantees the checkpoint/replay machinery is built on."""

import pytest

from repro.checkpoint import tick_records
from repro.experiments.campaigns import CAMPAIGN_FAULTS, build_campaign_schedule
from repro.experiments.harness import make_governor
from repro.faults import FaultInjector
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.sim.engine import derive_stream_seed
from repro.tasks import build_workload


class TestDeriveStreamSeed:
    def test_golden_values(self):
        # Pinned: a change here silently invalidates every existing
        # checkpoint fingerprint and recorded journal.
        assert derive_stream_seed(42, "sensor") == 6935261270320191380
        assert derive_stream_seed(42, "faults") == 13671575012066434554
        assert derive_stream_seed(1, "sensor") == 5678669057500712095

    def test_none_passes_through(self):
        assert derive_stream_seed(None, "sensor") is None

    def test_streams_are_distinct_under_one_seed(self):
        streams = ["sensor", "faults", "noise", "placement", "workload"]
        derived = {derive_stream_seed(7, stream) for stream in streams}
        assert len(derived) == len(streams)

    def test_seeds_are_distinct_within_one_stream(self):
        derived = {derive_stream_seed(seed, "sensor") for seed in range(50)}
        assert len(derived) == 50

    def test_stable_across_calls(self):
        assert derive_stream_seed(99, "x") == derive_stream_seed(99, "x")


def _run(seed, fault=None, duration_s=4.0, noise_w=0.0):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload("m1"),
        make_governor("PPM", power_cap_w=10.0),
        config=SimConfig(
            seed=seed,
            metrics_warmup_s=1.0,
            audit=True,
            sensor_noise_std_w=noise_w,
        ),
    )
    if fault is not None:
        schedule = build_campaign_schedule(
            CAMPAIGN_FAULTS[fault], duration_s + 6.0, 1.0, 0.4, chip
        )
        FaultInjector(sim, schedule).attach()
    sim.run(duration_s)
    return sim


class TestRunDeterminism:
    def test_same_seed_is_tick_for_tick_identical(self):
        first = _run(seed=17, noise_w=0.05)
        second = _run(seed=17, noise_w=0.05)
        assert tick_records(first.metrics) == tick_records(second.metrics)
        assert first.energy.total_energy_j == second.energy.total_energy_j
        assert first.migrations.counts() == second.migrations.counts()

    def test_same_seed_identical_under_fault_schedule(self):
        first = _run(seed=17, fault="sensor-dropout", duration_s=6.0)
        second = _run(seed=17, fault="sensor-dropout", duration_s=6.0)
        assert tick_records(first.metrics) == tick_records(second.metrics)

    def test_different_seeds_diverge(self):
        # The engine seed only feeds stochastic components, so give the
        # sensor some noise for the seed to act on.
        first = _run(seed=17, noise_w=0.05)
        second = _run(seed=18, noise_w=0.05)
        assert tick_records(first.metrics) != tick_records(second.metrics)
