"""Unit tests for the task-to-core placement registry."""

import pytest

from repro.hw import tc2_chip
from repro.sim import Placement
from repro.tasks import make_task


@pytest.fixture
def chip():
    return tc2_chip()


@pytest.fixture
def placement(chip):
    return Placement(chip)


def task(priority=1):
    return make_task("swaptions", "l", priority=priority)


class TestPlacement:
    def test_unplaced_task(self, placement):
        t = task()
        assert placement.core_of(t) is None
        assert placement.cluster_of(t) is None
        assert not placement.is_placed(t)

    def test_place_and_lookup(self, placement, chip):
        t = task()
        core = chip.core("little.1")
        placement.place(t, core)
        assert placement.core_of(t) is core
        assert placement.cluster_of(t).cluster_id == "little"
        assert t in placement.tasks_on_core(core)
        assert t in placement.tasks_on_cluster(chip.cluster("little"))
        assert placement.all_tasks() == [t]

    def test_replace_moves_between_cores(self, placement, chip):
        t = task()
        placement.place(t, chip.core("little.0"))
        placement.place(t, chip.core("big.1"))
        assert placement.tasks_on_core(chip.core("little.0")) == []
        assert placement.core_of(t).core_id == "big.1"

    def test_remove(self, placement, chip):
        t = task()
        placement.place(t, chip.core("big.0"))
        placement.remove(t)
        assert not placement.is_placed(t)
        assert placement.tasks_on_core(chip.core("big.0")) == []

    def test_remove_unplaced_is_noop(self, placement):
        placement.remove(task())


class TestPrioritySums:
    def test_sums_at_all_levels(self, placement, chip):
        t1, t2, t3 = task(2), task(3), task(5)
        placement.place(t1, chip.core("little.0"))
        placement.place(t2, chip.core("little.0"))
        placement.place(t3, chip.core("big.0"))
        assert placement.priority_sum_core(chip.core("little.0")) == 5
        assert placement.priority_sum_cluster(chip.cluster("little")) == 5
        assert placement.priority_sum_cluster(chip.cluster("big")) == 5
        assert placement.priority_sum_chip() == 10


class TestQueries:
    def test_empty_clusters(self, placement, chip):
        assert {c.cluster_id for c in placement.empty_clusters()} == {"big", "little"}
        placement.place(task(), chip.core("big.0"))
        assert [c.cluster_id for c in placement.empty_clusters()] == ["little"]

    def test_least_loaded_core_by_demand(self, placement, chip):
        heavy = make_task("tracking", "f")
        light = make_task("blackscholes", "l")
        placement.place(heavy, chip.core("little.0"))
        placement.place(light, chip.core("little.1"))
        best = placement.least_loaded_core(chip.cluster("little").cores, t=0.0)
        assert best.core_id == "little.2"

    def test_least_loaded_core_exclude(self, placement, chip):
        heavy = make_task("tracking", "f")
        placement.place(heavy, chip.core("little.0"))
        best = placement.least_loaded_core(
            [chip.core("little.0"), chip.core("little.1")], t=0.0, exclude=heavy
        )
        # With the heavy task excluded both cores are empty; first minimum wins.
        assert best.core_id in {"little.0", "little.1"}

    def test_least_loaded_requires_candidates(self, placement):
        with pytest.raises(ValueError):
            placement.least_loaded_core([], t=0.0)
