"""Engine-level thermal tracking: stepping, sensing, recording, ceilings."""

import pytest

from repro.governors import MaxFrequencyGovernor, OndemandGovernor
from repro.hw import ThermalConfig, ThermalParams, tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task

FAST_PARAMS = ThermalParams(resistance_k_per_w=6.0, capacitance_j_per_k=0.1)


def _sim(tasks, governor=None, thermal=None, **config):
    return Simulation(
        tc2_chip(),
        tasks,
        governor or MaxFrequencyGovernor(),
        config=SimConfig(thermal=thermal, **config),
    )


def _fast_thermal(**kwargs):
    chip = tc2_chip()
    return ThermalConfig(
        params={c.cluster_id: FAST_PARAMS for c in chip.clusters}, **kwargs
    )


class TestThermalOffByDefault:
    def test_disabled_leaves_no_thermal_state(self):
        sim = _sim(build_workload("m2"))
        metrics = sim.run(0.3)
        assert sim.thermal is None
        assert sim.thermal_sensor is None
        assert sim.cycle_counters == {}
        assert sim.time_over_tcrit_s == 0.0
        assert all(s.cluster_temperature_c is None for s in metrics.samples)

    def test_config_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            SimConfig(thermal="hot")


class TestThermalStepping:
    def test_true_temperatures_recorded_every_tick(self):
        sim = _sim(build_workload("m2"), thermal=_fast_thermal())
        metrics = sim.run(1.0)
        temps = [s.cluster_temperature_c for s in metrics.samples]
        assert all(t is not None and set(t) == {"big", "little"} for t in temps)
        # A loaded cluster warms monotonically from ambient at the start.
        little = [t["little"] for t in temps]
        assert little[-1] > little[0] >= 25.0

    def test_time_over_tcrit_counts_true_excursions(self):
        thermal = _fast_thermal(tcrit_c=26.0)  # trivially exceeded
        sim = _sim(build_workload("m2"), thermal=thermal)
        sim.run(0.5)
        assert sim.time_over_tcrit_s > 0.2

    def test_cycle_counters_track_every_cluster(self):
        sim = _sim(build_workload("m2"), thermal=_fast_thermal())
        sim.run(0.3)
        assert set(sim.cycle_counters) == {"big", "little"}

    def test_sensor_noise_is_seed_deterministic(self):
        def trace(seed):
            sim = _sim(
                build_workload("m2"),
                thermal=_fast_thermal(sensor_noise_std_c=0.5),
                seed=seed,
            )
            sim.run(0.3)
            return sim.last_thermal_sample().cluster_temperature_c

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_sensed_sample_differs_from_truth_under_noise(self):
        sim = _sim(
            build_workload("m2"),
            thermal=_fast_thermal(sensor_noise_std_c=0.5),
            seed=3,
        )
        metrics = sim.run(0.3)
        sensed = sim.last_thermal_sample().cluster_temperature_c
        truth = metrics.samples[-1].cluster_temperature_c
        assert sensed != truth  # metrics record physics, not the sensor


class TestLevelCeilings:
    def test_request_level_clamps_to_ceiling(self):
        sim = _sim([])
        big = sim.chip.cluster("big")
        sim.set_level_ceiling(big, 2)
        sim.request_level(big, big.vf_table.max_index)
        assert big.regulator.target_index == 2

    def test_set_ceiling_forces_running_cluster_down(self):
        sim = _sim([])
        big = sim.chip.cluster("big")
        sim.request_level(big, big.vf_table.max_index)
        sim.set_level_ceiling(big, 1)
        assert big.regulator.target_index == 1

    def test_step_level_respects_ceiling(self):
        sim = _sim([])
        big = sim.chip.cluster("big")
        sim.set_level_ceiling(big, 1)
        for _ in range(big.vf_table.max_index + 2):
            sim.step_level(big, +1)
        assert big.regulator.target_index == 1

    def test_clear_ceiling_restores_full_range(self):
        sim = _sim([])
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        sim.set_level_ceiling(big, 1)
        sim.clear_level_ceiling(big)
        assert sim.level_ceiling_of("big") is None
        sim.request_level(big, top)
        assert big.regulator.target_index == top

    def test_ondemand_governor_cannot_outvote_ceiling(self):
        sim = _sim(
            [make_task("x264", "l"), make_task("h264", "s")],
            governor=OndemandGovernor(),
        )
        big = sim.chip.cluster("big")
        sim.set_level_ceiling(big, 1)
        sim.run(0.5)  # busy tasks would push frequency to the top
        assert big.regulator.target_index <= 1
