"""Tests for the fault-campaign harness and its CLI wiring."""

import json
import os

import pytest

from repro.experiments import (
    CAMPAIGN_FAULTS,
    build_campaign_schedule,
    run_fault_campaign,
    write_campaign_report,
)
from repro.experiments.cli import build_parser, main
from repro.faults import FaultKind
from repro.hw import tc2_chip


class TestScheduleBuilder:
    def test_windows_start_after_warmup_and_leave_recovery_room(self):
        schedule = build_campaign_schedule(
            FaultKind.SENSOR_DROPOUT,
            duration_s=40.0,
            warmup_s=5.0,
            intensity=0.3,
            chip=tc2_chip(),
        )
        windows = schedule.windows()
        assert windows
        assert min(start for start, _ in windows) >= 5.0
        assert schedule.end_s() < 40.0  # recovery is observable
        total = sum(end - start for start, end in windows)
        assert total == pytest.approx(0.3 * 8.0 * len(windows))

    def test_cluster_faults_target_the_fastest_cluster(self):
        chip = tc2_chip()
        schedule = build_campaign_schedule(
            FaultKind.HOTPLUG, 40.0, 5.0, 0.3, chip
        )
        assert all(e.target == "big" for e in schedule)
        sensor = build_campaign_schedule(
            FaultKind.SENSOR_STUCK, 40.0, 5.0, 0.3, chip
        )
        assert all(e.target is None for e in sensor)

    def test_intensity_bounds_enforced(self):
        for bad in (0.0, -0.1, 0.9):
            with pytest.raises(ValueError):
                build_campaign_schedule(
                    FaultKind.SENSOR_DROPOUT, 40.0, 5.0, bad, tc2_chip()
                )

    def test_every_cli_fault_name_is_buildable(self):
        for kind in CAMPAIGN_FAULTS.values():
            schedule = build_campaign_schedule(kind, 40.0, 5.0, 0.3, tc2_chip())
            assert len(schedule) > 0


class TestCampaignRuns:
    def test_unknown_fault_and_governor_rejected(self):
        with pytest.raises(ValueError, match="valid kinds:.*sensor-dropout"):
            run_fault_campaign("meteor-strike")
        with pytest.raises(KeyError):
            run_fault_campaign(
                "sensor-dropout", governors=("NOPE",), duration_s=10.0
            )

    def test_short_campaign_collects_comparable_runs(self, tmp_path):
        result = run_fault_campaign(
            "sensor-stuck",
            governors=("PPM", "HPM"),
            duration_s=12.0,
            warmup_s=2.0,
            intensity=0.25,
            seed=3,
        )
        assert [run.governor for run in result.runs] == ["PPM", "HPM"]
        for run in result.runs:
            assert run.fault_stats["sensor_stuck_reads"] > 0
            assert 0.0 <= run.miss_fraction_in_fault <= 1.0
            assert 0.0 <= run.miss_fraction_outside_fault <= 1.0
            assert run.average_power_w > 0.0
            assert run.tdp_violation_s >= 0.0
        # Every governor replayed the same windows.
        assert result.windows == list(
            build_campaign_schedule(
                FaultKind.SENSOR_STUCK, 12.0, 2.0, 0.25, tc2_chip()
            ).windows()
        )
        table = result.as_table()
        assert "sensor-stuck" in table and "PPM" in table and "HPM" in table
        path = write_campaign_report(result, out_dir=str(tmp_path))
        assert os.path.exists(path)
        payload = json.loads(
            open(path.replace(".txt", ".json")).read()
        )
        assert payload["fault"] == "sensor-stuck"
        assert len(payload["runs"]) == 2


class TestCLI:
    def test_campaign_requires_fault(self):
        args = build_parser().parse_args(["campaign"])
        assert args.fault is None
        with pytest.raises(SystemExit):
            main(["campaign"])

    def test_campaign_choices_cover_all_single_chip_kinds(self):
        """--fault offers every kind except the fleet tier's, which only
        the 'fleet' verb can inject (worker processes, not one sim)."""
        from repro.faults import FLEET_FAULTS

        parser = build_parser()
        action = next(a for a in parser._actions if a.dest == "fault")
        assert sorted(action.choices) == sorted(
            k.value for k in FaultKind if k not in FLEET_FAULTS
        )
        assert not set(action.choices) & {k.value for k in FLEET_FAULTS}

    def test_campaign_excluded_from_all(self):
        from repro.experiments.cli import _COMMANDS, _EXTRA_COMMANDS

        assert "campaign" in _EXTRA_COMMANDS
        assert "campaign" not in _COMMANDS

    def test_cli_campaign_end_to_end(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--fault",
                "heartbeat-loss",
                "--governors",
                "PPM",
                "--campaign-duration",
                "10",
                "--campaign-warmup",
                "2",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heartbeat-loss" in out
        assert os.path.exists(tmp_path / "campaign_heartbeat-loss.txt")
