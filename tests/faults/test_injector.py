"""Integration tests for the fault injector against the live engine.

Every fault kind is driven through a real simulation; assertions check
both the injected failure (the fault is visible) and the engine-level
containment (nothing crashes, accounting stays finite).
"""

import math

import pytest

from repro.faults import FaultInjector, FaultKind, single_fault
from repro.governors import MaxFrequencyGovernor
from repro.hw import tc2_chip
from repro.hw.sensors import SensorReadError
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task


def _sim(tasks, governor=None, **config):
    return Simulation(
        tc2_chip(),
        tasks,
        governor or MaxFrequencyGovernor(),
        config=SimConfig(**config),
    )


def _samples_between(metrics, start, end):
    return [s for s in metrics.samples if start <= s.time_s < end]


class TestSensorFaults:
    def test_dropout_raises_from_sensor_and_engine_substitutes(self):
        sim = _sim([make_task("x264", "l")], sensor_noise_std_w=0.2, seed=11)
        schedule = single_fault(FaultKind.SENSOR_DROPOUT, 0.5, 0.3)
        injector = FaultInjector(sim, schedule).attach()
        metrics = sim.run(1.2)
        # The wrapped sensor raised for every tick of the window ...
        dropouts = injector.stats()["sensor_dropouts"]
        assert 25 <= dropouts <= 31
        assert sim.sensor_read_failures == dropouts
        # ... and the engine served the last good reading instead: the
        # metrics stream has no gap and stays frozen over the window,
        # while the noisy readings outside it keep varying.
        window = _samples_between(metrics, 0.52, 0.78)
        assert len({s.chip_power_w for s in window}) == 1
        outside = _samples_between(metrics, 0.85, 1.2)
        assert len({s.chip_power_w for s in outside}) > 1
        assert all(math.isfinite(s.chip_power_w) for s in metrics.samples)

    def test_dropout_from_first_tick_yields_zero_power(self):
        sim = _sim([make_task("x264", "l")], seed=11)
        FaultInjector(sim, single_fault(FaultKind.SENSOR_DROPOUT, 0.0, 0.2)).attach()
        metrics = sim.run(0.1)
        # No good sample ever existed: the engine substitutes zeros
        # rather than fabricating a reading.
        assert all(s.chip_power_w == 0.0 for s in metrics.samples)

    def test_stuck_sensor_repeats_last_reading(self):
        sim = _sim([make_task("x264", "l")], sensor_noise_std_w=0.2, seed=5)
        schedule = single_fault(FaultKind.SENSOR_STUCK, 0.5, 0.3)
        injector = FaultInjector(sim, schedule).attach()
        metrics = sim.run(1.2)
        window = {s.chip_power_w for s in _samples_between(metrics, 0.5, 0.8)}
        outside = {s.chip_power_w for s in _samples_between(metrics, 0.8, 1.2)}
        assert len(window) == 1  # bit-identical stale register
        assert len(outside) > 1  # noise resumes after the window
        assert injector.stats()["sensor_stuck_reads"] > 0

    def test_cluster_targeted_stuck_freezes_only_that_cluster(self):
        tasks = build_workload("m2")
        sim = _sim(tasks, sensor_noise_std_w=0.2, seed=5)
        schedule = single_fault(FaultKind.SENSOR_STUCK, 0.5, 0.3, target="big")
        FaultInjector(sim, schedule).attach()
        metrics = sim.run(1.0)
        window = _samples_between(metrics, 0.51, 0.8)
        big = {s.cluster_power_w["big"] for s in window}
        little = {s.cluster_power_w["little"] for s in window}
        assert len(big) == 1
        assert len(little) > 1
        # Chip total is re-summed from the doctored cluster readings.
        for s in window:
            assert s.chip_power_w == pytest.approx(sum(s.cluster_power_w.values()))

    def test_spike_multiplies_power_by_magnitude(self):
        sim = _sim([make_task("x264", "l")], seed=3)
        schedule = single_fault(FaultKind.SENSOR_SPIKE, 0.5, 0.2, magnitude=4.0)
        injector = FaultInjector(sim, schedule).attach()
        metrics = sim.run(1.0)
        spiked = [s.chip_power_w for s in _samples_between(metrics, 0.51, 0.7)]
        clean = [s.chip_power_w for s in _samples_between(metrics, 0.75, 1.0)]
        assert min(spiked) > 2.0 * (sum(clean) / len(clean))
        assert injector.stats()["sensor_spikes"] > 0


class TestActuationFaults:
    def test_dvfs_drop_loses_requests_until_window_closes(self):
        sim = _sim([make_task("x264", "l"), make_task("h264", "s")])
        schedule = single_fault(FaultKind.DVFS_DROP, 0.0, 0.5, target="big")
        injector = FaultInjector(sim, schedule).attach()
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        sim.run(0.4)
        assert big.regulator.target_index != top  # writes were eaten
        assert injector.stats()["dvfs_dropped"] > 0
        sim.run(0.4)  # window closed; the governor re-requests every tick
        assert big.regulator.target_index == top

    def test_dvfs_delay_applies_requests_late(self):
        sim = _sim([make_task("x264", "l"), make_task("h264", "s")])
        schedule = single_fault(
            FaultKind.DVFS_DELAY, 0.0, 0.2, target="big", delay_ticks=10
        )
        injector = FaultInjector(sim, schedule).attach()
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        sim.run(0.05)  # 5 ticks: first request still in flight
        assert big.regulator.target_index != top
        sim.run(0.25)
        assert big.regulator.target_index == top  # delivered ~10 ticks in
        assert injector.stats()["dvfs_delayed"] > 0

    def test_untargeted_dvfs_drop_affects_all_clusters(self):
        sim = _sim([make_task("x264", "l"), make_task("h264", "s")])
        FaultInjector(sim, single_fault(FaultKind.DVFS_DROP, 0.0, 10.0)).attach()
        sim.run(0.5)
        for cluster in sim.chip.clusters:
            assert cluster.regulator.target_index != cluster.vf_table.max_index

    def test_migration_fault_returns_failed_record_in_place(self):
        task = make_task("x264", "l")
        sim = _sim([task])
        schedule = single_fault(FaultKind.MIGRATION_FAIL, 0.0, 5.0, target=task.name)
        injector = FaultInjector(sim, schedule).attach()
        sim.run(0.1)
        source = sim.placement.core_of(task)
        destination = sim.chip.cluster("big").cores[0]
        assert source is not destination
        record = sim.migrate(task, destination)
        assert record.failed
        assert sim.placement.core_of(task) is source  # did not move
        assert sim.failed_migrations == 1
        assert injector.stats()["migrations_failed"] == 1


class TestHeartbeatFaults:
    def test_lost_heartbeats_collapse_observed_rate_not_progress(self):
        task = make_task("x264", "l")
        sim = _sim([task])
        schedule = single_fault(FaultKind.HEARTBEAT_LOSS, 1.0, 1.0, target=task.name)
        injector = FaultInjector(sim, schedule).attach()
        sim.run(1.0)
        rate_before = task.observed_heart_rate()
        beats_before = task.total_beats
        sim.run(0.95)  # deep inside the loss window
        assert task.total_beats > beats_before  # work continued
        assert task.observed_heart_rate() < 0.5 * rate_before  # monitor blind
        assert injector.stats()["heartbeats_lost"] > 0
        sim.run(1.5)  # window over: monitor sees fresh beats again
        assert task.observed_heart_rate() > 0.5 * rate_before


class TestHotplugFaults:
    def test_unplug_evicts_and_replug_restores(self):
        tasks = build_workload("m2")
        sim = _sim(tasks)
        schedule = single_fault(FaultKind.HOTPLUG, 0.5, 0.5, target="big")
        injector = FaultInjector(sim, schedule).attach()
        sim.run(0.8)  # mid-window
        assert "big" in sim.offline_clusters
        assert not sim.chip.cluster("big").powered
        for task in sim.active_tasks():
            core = sim.placement.core_of(task)
            assert core is not None
            assert core.cluster.cluster_id == "little"
        sim.run(0.5)  # past the window
        assert "big" not in sim.offline_clusters
        stats = injector.stats()
        assert stats["unplugs"] == 1
        assert stats["replugs"] == 1

    def test_unplugged_cluster_rejects_control(self):
        sim = _sim(build_workload("m2"))
        FaultInjector(sim, single_fault(FaultKind.HOTPLUG, 0.0, 5.0, target="big")).attach()
        sim.run(0.1)
        big = sim.chip.cluster("big")
        sim.power_up(big)
        assert not big.powered  # power-up refused while offline
        record = sim.migrate(sim.active_tasks()[0], big.cores[0])
        assert record.failed
        with pytest.raises(ValueError):
            sim.place(sim.active_tasks()[0], big.cores[0])

    def test_empty_cluster_unplug_still_counts(self):
        # m2's little-heavy placement can leave big empty; unplug must
        # be observable regardless of displaced tasks.
        sim = _sim([make_task("swaptions", "l")])
        injector = FaultInjector(
            sim, single_fault(FaultKind.HOTPLUG, 0.2, 0.3, target="big")
        ).attach()
        sim.run(1.0)
        assert injector.stats()["unplugs"] == 1
        assert injector.stats()["replugs"] == 1

    def test_overlapping_windows_replug_once_at_the_end(self):
        sim = _sim(build_workload("m2"))
        schedule = single_fault(FaultKind.HOTPLUG, 0.2, 0.6, target="big").extended(
            single_fault(FaultKind.HOTPLUG, 0.4, 0.8, target="big").events
        )
        injector = FaultInjector(sim, schedule).attach()
        sim.run(1.0)  # first window closed, second still open
        assert "big" in sim.offline_clusters
        sim.run(0.5)
        assert "big" not in sim.offline_clusters
        assert injector.stats()["unplugs"] == 1  # second window found it out
        assert injector.stats()["replugs"] == 1


class TestInjectorLifecycle:
    def test_attach_twice_rejected(self):
        sim = _sim([])
        injector = FaultInjector(sim, single_fault(FaultKind.SENSOR_DROPOUT, 0.0, 1.0))
        injector.attach()
        with pytest.raises(RuntimeError):
            injector.attach()

    def test_stats_keys_cover_all_fault_kinds(self):
        sim = _sim([])
        injector = FaultInjector(sim, single_fault(FaultKind.SENSOR_DROPOUT, 0.0, 1.0))
        injector.attach()
        stats = injector.stats()
        assert set(stats) == {
            "sensor_dropouts",
            "sensor_stuck_reads",
            "sensor_spikes",
            "dvfs_dropped",
            "dvfs_delayed",
            "migrations_failed",
            "heartbeats_lost",
            "unplugs",
            "replugs",
            "cooling_degraded_ticks",
            "runaway_ticks",
            "thermal_stuck_reads",
            "drift_ticks",
            "counter_bias_reads",
            "counter_dropout_reads",
        }
        assert all(v == 0 for v in stats.values())

    def test_empty_schedule_is_transparent(self):
        from repro.faults import FaultSchedule

        baseline = _sim([make_task("x264", "l")], seed=9)
        baseline_metrics = baseline.run(1.0)
        injected = _sim([make_task("x264", "l")], seed=9)
        FaultInjector(injected, FaultSchedule()).attach()
        injected_metrics = injected.run(1.0)
        assert [s.chip_power_w for s in injected_metrics.samples] == [
            s.chip_power_w for s in baseline_metrics.samples
        ]
