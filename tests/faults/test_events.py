"""Unit tests for the fault taxonomy, events and schedules."""

import pytest

from repro.faults import (
    CLUSTER_FAULTS,
    TASK_FAULTS,
    THERMAL_FAULTS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    parse_fault_kind,
    periodic_faults,
    random_faults,
    single_fault,
)


class TestFaultEvent:
    def test_window_bounds_are_half_open(self):
        event = FaultEvent(FaultKind.SENSOR_DROPOUT, start_s=1.0, duration_s=2.0)
        assert event.end_s == pytest.approx(3.0)
        assert not event.active_at(0.999)
        assert event.active_at(1.0)  # start inclusive
        assert event.active_at(2.999)
        assert not event.active_at(3.0)  # end exclusive
        assert event.window == (1.0, 3.0)

    def test_target_matching(self):
        scoped = FaultEvent(FaultKind.HOTPLUG, 0.0, 1.0, target="big")
        assert scoped.matches("big")
        assert not scoped.matches("little")
        assert scoped.matches(None)  # wildcard query hits scoped events
        wild = FaultEvent(FaultKind.SENSOR_SPIKE, 0.0, 1.0)
        assert wild.matches("anything")
        assert wild.matches(None)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_s": -0.1, "duration_s": 1.0},
            {"start_s": 0.0, "duration_s": 0.0},
            {"start_s": 0.0, "duration_s": -1.0},
            {"start_s": 0.0, "duration_s": 1.0, "magnitude": -1.0},
            {"start_s": 0.0, "duration_s": 1.0, "magnitude": float("nan")},
            {"start_s": 0.0, "duration_s": 1.0, "magnitude": float("inf")},
            {"start_s": 0.0, "duration_s": 1.0, "delay_ticks": 0},
        ],
    )
    def test_invalid_events_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.SENSOR_SPIKE, **kwargs)

    def test_taxonomy_partitions_targeted_kinds(self):
        assert CLUSTER_FAULTS.isdisjoint(TASK_FAULTS)
        assert FaultKind.HOTPLUG in CLUSTER_FAULTS
        assert FaultKind.MIGRATION_FAIL in TASK_FAULTS
        # Every kind has a distinct CLI spelling.
        values = [kind.value for kind in FaultKind]
        assert len(values) == len(set(values))

    def test_thermal_kinds_are_cluster_scoped(self):
        assert THERMAL_FAULTS <= CLUSTER_FAULTS
        assert THERMAL_FAULTS == {
            FaultKind.THERMAL_SENSOR_STUCK,
            FaultKind.COOLING_DEGRADED,
            FaultKind.THERMAL_RUNAWAY,
        }
        assert THERMAL_FAULTS.isdisjoint(TASK_FAULTS)


class TestParseFaultKind:
    def test_parses_every_cli_spelling(self):
        for kind in FaultKind:
            assert parse_fault_kind(kind.value) is kind

    def test_unknown_kind_names_all_valid_ones(self):
        with pytest.raises(ValueError) as excinfo:
            parse_fault_kind("melted")
        message = str(excinfo.value)
        assert "'melted'" in message
        for kind in FaultKind:
            assert kind.value in message


class TestFaultSchedule:
    def test_events_are_sorted_and_immutable(self):
        late = FaultEvent(FaultKind.SENSOR_STUCK, 5.0, 1.0)
        early = FaultEvent(FaultKind.SENSOR_DROPOUT, 1.0, 1.0)
        schedule = FaultSchedule([late, early])
        assert schedule.events == (early, late)
        assert len(schedule) == 2
        assert list(schedule) == [early, late]

    def test_active_filters_kind_time_and_subject(self):
        schedule = FaultSchedule(
            [
                FaultEvent(FaultKind.DVFS_DROP, 1.0, 2.0, target="big"),
                FaultEvent(FaultKind.SENSOR_DROPOUT, 2.0, 2.0),
            ]
        )
        assert schedule.active(0.5, FaultKind.DVFS_DROP) is None
        assert schedule.active(1.5, FaultKind.DVFS_DROP, "big") is not None
        assert schedule.active(1.5, FaultKind.DVFS_DROP, "little") is None
        assert schedule.active(1.5, FaultKind.SENSOR_DROPOUT) is None
        assert schedule.active(2.5, FaultKind.SENSOR_DROPOUT) is not None

    def test_windows_end_and_extension(self):
        schedule = single_fault(FaultKind.HOTPLUG, 2.0, 3.0, target="big")
        assert schedule.windows() == [(2.0, 5.0)]
        assert schedule.windows(FaultKind.HOTPLUG, target="big") == [(2.0, 5.0)]
        assert schedule.windows(FaultKind.SENSOR_SPIKE) == []
        assert schedule.end_s() == pytest.approx(5.0)
        extended = schedule.extended(
            [FaultEvent(FaultKind.SENSOR_SPIKE, 6.0, 1.0, magnitude=2.0)]
        )
        assert len(extended) == 2
        assert len(schedule) == 1  # original untouched
        assert extended.end_s() == pytest.approx(7.0)
        assert FaultSchedule().end_s() == 0.0


class TestBuilders:
    def test_periodic_spacing_and_horizon(self):
        schedule = periodic_faults(
            FaultKind.SENSOR_DROPOUT,
            period_s=5.0,
            duration_s=1.0,
            until_s=20.0,
            start_s=2.0,
        )
        starts = [e.start_s for e in schedule]
        assert starts == [2.0, 7.0, 12.0, 17.0]
        assert all(e.duration_s == 1.0 for e in schedule)

    def test_periodic_rejects_overlap(self):
        with pytest.raises(ValueError):
            periodic_faults(
                FaultKind.SENSOR_DROPOUT, period_s=1.0, duration_s=2.0, until_s=5.0
            )
        with pytest.raises(ValueError):
            periodic_faults(
                FaultKind.SENSOR_DROPOUT, period_s=0.0, duration_s=0.0, until_s=5.0
            )

    def test_random_faults_deterministic_in_seed(self):
        a = random_faults(
            FaultKind.MIGRATION_FAIL,
            rate_hz=0.5,
            mean_duration_s=1.0,
            horizon_s=60.0,
            seed=42,
            targets=("t0", "t1"),
        )
        b = random_faults(
            FaultKind.MIGRATION_FAIL,
            rate_hz=0.5,
            mean_duration_s=1.0,
            horizon_s=60.0,
            seed=42,
            targets=("t0", "t1"),
        )
        assert a.events == b.events
        assert len(a) > 0
        assert all(0.0 <= e.start_s < 60.0 for e in a)
        assert all(e.target in ("t0", "t1") for e in a)
        c = random_faults(
            FaultKind.MIGRATION_FAIL,
            rate_hz=0.5,
            mean_duration_s=1.0,
            horizon_s=60.0,
            seed=43,
            targets=("t0", "t1"),
        )
        assert c.events != a.events

    def test_random_faults_validates_rates(self):
        with pytest.raises(ValueError):
            random_faults(FaultKind.SENSOR_SPIKE, 0.0, 1.0, 10.0, seed=1)
        with pytest.raises(ValueError):
            random_faults(FaultKind.SENSOR_SPIKE, 1.0, 0.0, 10.0, seed=1)
