"""Thermal fault injection against the live engine.

The acceptance scenario of the thermal protection subsystem: a
thermal-runaway fault drives the trip ladder through every rung *in
order* (warn -> throttle -> shed -> trip) and the system fully recovers
once the fault window closes.  Plus the two quieter thermal kinds:
degraded cooling (hotter steady state, slower response) and a stuck
thermal zone (a supervisor blind to a melting cluster).
"""

import pytest

from repro.core.resilience import ThermalState
from repro.faults import FaultInjector, FaultKind, single_fault
from repro.governors import MaxFrequencyGovernor
from repro.hw import ThermalConfig, ThermalParams, ThermalProtectionConfig, tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task

#: tau = 0.6 s and a fault-free big-cluster steady state below WARN, so
#: ladder engagements inside short test runs are fault-driven only.
FAST_PARAMS = ThermalParams(resistance_k_per_w=6.0, capacitance_j_per_k=0.1)

UPWARD_ORDER = ["warn", "throttle", "shed", "trip"]


def _thermal_sim(tasks, protection=None, **config):
    chip = tc2_chip()
    thermal = ThermalConfig(
        params={c.cluster_id: FAST_PARAMS for c in chip.clusters},
        protection=protection,
    )
    return Simulation(
        chip,
        tasks,
        MaxFrequencyGovernor(),
        config=SimConfig(thermal=thermal, **config),
    )


def _load_big(sim):
    """Move one task onto the big cluster so it actually dissipates heat."""
    sim.run(0.05)  # initial placement happens on the first tick
    task = sim.active_tasks()[0]
    big = sim.chip.cluster("big")
    if sim.placement.core_of(task).cluster.cluster_id != "big":
        record = sim.migrate(task, big.cores[0])
        assert not record.failed


def _upward(transitions, cluster_id):
    states = [s.value for s in ThermalState]
    return [
        new for _, cid, old, new in transitions
        if cid == cluster_id and states.index(new) > states.index(old)
    ]


class TestThermalRunaway:
    def test_ladder_engages_in_order_and_fully_recovers(self):
        """The PR's acceptance scenario, driven through the injector."""
        sim = _thermal_sim(
            build_workload("m2"), protection=ThermalProtectionConfig()
        )
        schedule = single_fault(
            FaultKind.THERMAL_RUNAWAY, 0.5, 1.5, target="big", magnitude=30.0
        )
        injector = FaultInjector(sim, schedule).attach()
        supervisor = sim.thermal_supervisor

        sim.run(2.0)  # fault window is open: [0.5, 2.0)
        assert supervisor.state_of("big") is ThermalState.TRIP
        assert "big" in sim.offline_clusters
        assert _upward(supervisor.transitions, "big") == UPWARD_ORDER
        assert injector.stats()["runaway_ticks"] > 0

        sim.run(3.0)  # window closed: heat source gone, cluster cools
        assert supervisor.state_of("big") is ThermalState.NORMAL
        assert "big" not in sim.offline_clusters
        assert supervisor.recoveries == 1
        assert supervisor.unrecovered_trips == 0
        assert sim.level_ceiling_of("big") is None
        # Every displaced task is back in service on some online core.
        for task in sim.active_tasks():
            assert sim.placement.core_of(task) is not None

    def test_runaway_without_protection_just_heats(self):
        sim = _thermal_sim(build_workload("m2"))
        schedule = single_fault(
            FaultKind.THERMAL_RUNAWAY, 0.2, 1.0, target="big", magnitude=30.0
        )
        FaultInjector(sim, schedule).attach()
        sim.run(1.2)
        assert sim.thermal_supervisor is None
        assert "big" not in sim.offline_clusters
        assert sim.time_over_tcrit_s > 0.0


class TestCoolingDegraded:
    def test_degraded_window_runs_hotter_then_recovers(self):
        sim = _thermal_sim([make_task("x264", "l"), make_task("h264", "s")])
        schedule = single_fault(
            FaultKind.COOLING_DEGRADED, 2.0, 2.0, target="big", magnitude=3.0
        )
        injector = FaultInjector(sim, schedule).attach()
        _load_big(sim)
        metrics = sim.run(7.0 - sim.now)

        def temp_at(t):
            sample = min(metrics.samples, key=lambda s: abs(s.time_s - t))
            return sample.cluster_temperature_c["big"]

        before = temp_at(1.9)
        hottest = max(
            s.cluster_temperature_c["big"]
            for s in metrics.samples
            if 2.0 <= s.time_s < 4.0
        )
        after = temp_at(6.9)
        # Tripled resistance: the over-ambient delta heads toward 3x.
        assert hottest > before + 0.5 * (before - 25.0)
        # Factor restored at window close: back near the old steady state.
        assert after == pytest.approx(before, abs=3.0)
        assert injector.stats()["cooling_degraded_ticks"] > 0


class TestThermalSensorStuck:
    def test_stuck_zone_blinds_the_supervisor(self):
        """True temperature exceeds Tcrit but the ladder never moves."""
        sim = _thermal_sim(
            build_workload("m2"), protection=ThermalProtectionConfig()
        )
        schedule = single_fault(
            FaultKind.THERMAL_SENSOR_STUCK, 0.3, 3.0
        ).extended(
            single_fault(
                FaultKind.THERMAL_RUNAWAY, 0.5, 1.5, target="big", magnitude=30.0
            ).events
        )
        injector = FaultInjector(sim, schedule).attach()
        sim.run(2.0)
        assert sim.time_over_tcrit_s > 0.0  # physics melted on
        assert sim.thermal_supervisor.trips == 0  # ...but nobody saw it
        assert sim.thermal_supervisor.state_of("big") is ThermalState.NORMAL
        assert injector.stats()["thermal_stuck_reads"] > 0

    def test_targeted_stuck_freezes_one_cluster_reading(self):
        sim = _thermal_sim(build_workload("m2"))
        schedule = single_fault(
            FaultKind.THERMAL_SENSOR_STUCK, 0.5, 1.0, target="big"
        )
        FaultInjector(sim, schedule).attach()
        _load_big(sim)
        sim.run(0.6 - sim.now)
        frozen = sim.last_thermal_sample().cluster_temperature_c["big"]
        little_then = sim.last_thermal_sample().cluster_temperature_c["little"]
        sim.run(0.8)  # still warming from ambient, temps are moving
        inside = sim.last_thermal_sample()
        assert inside.cluster_temperature_c["big"] == frozen
        assert inside.cluster_temperature_c["little"] != little_then
        sim.run(0.3)  # window closed: big's reading tracks again
        assert sim.last_thermal_sample().cluster_temperature_c["big"] != frozen


class TestAttachValidation:
    def test_thermal_faults_require_thermal_tracking(self):
        sim = Simulation(
            tc2_chip(), [], MaxFrequencyGovernor(), config=SimConfig()
        )
        for kind in (
            FaultKind.THERMAL_RUNAWAY,
            FaultKind.COOLING_DEGRADED,
            FaultKind.THERMAL_SENSOR_STUCK,
        ):
            injector = FaultInjector(
                sim, single_fault(kind, 0.0, 1.0, target="big")
            )
            with pytest.raises(ValueError):
                injector.attach()

    def test_non_thermal_faults_attach_without_thermal(self):
        sim = Simulation(
            tc2_chip(), [], MaxFrequencyGovernor(), config=SimConfig()
        )
        FaultInjector(
            sim, single_fault(FaultKind.SENSOR_DROPOUT, 0.0, 1.0)
        ).attach()
        sim.run(0.1)  # no crash, thermal stays disabled
        assert sim.thermal is None
