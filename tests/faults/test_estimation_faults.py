"""Estimated-power fault kinds: counter bias/dropout and model drift.

Checks the taxonomy registration (satellite b), the injector's guard
against counter faults without an estimation pipeline, the per-cluster
counter corruption, the power-model drift ramp, and byte-identity when
no window ever opens.
"""

import pytest

from repro.checkpoint.replay import tick_records
from repro.core.powerest import EstimationConfig
from repro.faults import (
    CLUSTER_FAULTS,
    COUNTER_FAULTS,
    TASK_FAULTS,
    THERMAL_FAULTS,
    FaultInjector,
    FaultKind,
    parse_fault_kind,
    single_fault,
)
from repro.faults.events import _KIND_SPECS
from repro.governors import MaxFrequencyGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload


def _sim(estimation=True, seed=9, **config):
    return Simulation(
        tc2_chip(),
        build_workload("m1"),
        MaxFrequencyGovernor(),
        config=SimConfig(
            seed=seed,
            estimation=EstimationConfig(warmup_ticks=10) if estimation else None,
            **config,
        ),
    )


class TestTaxonomyRegistration:
    def test_every_kind_has_a_spec(self):
        assert set(_KIND_SPECS) == set(FaultKind)

    def test_new_kinds_in_derived_groupings(self):
        assert COUNTER_FAULTS == {
            FaultKind.COUNTER_BIAS,
            FaultKind.COUNTER_DROPOUT,
        }
        assert COUNTER_FAULTS <= CLUSTER_FAULTS
        assert FaultKind.POWER_MODEL_DRIFT in CLUSTER_FAULTS
        assert FaultKind.POWER_MODEL_DRIFT not in COUNTER_FAULTS
        assert COUNTER_FAULTS.isdisjoint(TASK_FAULTS)
        assert COUNTER_FAULTS.isdisjoint(THERMAL_FAULTS)

    def test_parse_error_names_new_kinds(self):
        with pytest.raises(ValueError) as excinfo:
            parse_fault_kind("bitrot")
        message = str(excinfo.value)
        for spelling in ("counter-bias", "counter-dropout", "power-model-drift"):
            assert spelling in message

    def test_new_spellings_parse(self):
        assert parse_fault_kind("counter-bias") is FaultKind.COUNTER_BIAS
        assert parse_fault_kind("counter-dropout") is FaultKind.COUNTER_DROPOUT
        assert (
            parse_fault_kind("power-model-drift") is FaultKind.POWER_MODEL_DRIFT
        )


class TestAttachGuard:
    def test_counter_fault_without_estimation_rejected(self):
        sim = _sim(estimation=False)
        schedule = single_fault(FaultKind.COUNTER_BIAS, 0.5, 0.3, magnitude=3.0)
        with pytest.raises(ValueError, match="no estimation pipeline"):
            FaultInjector(sim, schedule).attach()

    def test_drift_without_estimation_is_allowed(self):
        # Drift corrupts the physical draw, not the counters; it is
        # meaningful even when nobody estimates.
        sim = _sim(estimation=False)
        schedule = single_fault(
            FaultKind.POWER_MODEL_DRIFT, 0.2, 0.3, target="big", magnitude=1.0
        )
        injector = FaultInjector(sim, schedule).attach()
        sim.run(0.6)
        assert injector.stats()["drift_ticks"] > 0


class TestCounterFaults:
    def test_dropout_zeroes_targeted_cluster_only(self):
        sim = _sim()
        schedule = single_fault(
            FaultKind.COUNTER_DROPOUT, 0.3, 0.2, target="big"
        )
        injector = FaultInjector(sim, schedule).attach()
        sim.run(0.6)
        stats = injector.stats()
        assert stats["counter_dropout_reads"] > 0
        assert stats["counter_bias_reads"] == 0
        sample = sim.estimation.last_counter_sample
        totals = sample.cluster_totals(sim.chip)
        assert totals["little"]["active_cycles"] >= 0.0  # untouched path

    def test_dropout_reads_zero_during_window(self):
        sim = _sim()
        schedule = single_fault(
            FaultKind.COUNTER_DROPOUT, 0.3, 10.0, target="big"
        )
        FaultInjector(sim, schedule).attach()
        sim.run(0.6)  # ends mid-window
        sample = sim.estimation.last_counter_sample
        for core in sim.chip.cluster("big").cores:
            assert all(
                v == 0.0 for v in sample.core_counters[core.core_id].values()
            )

    def test_bias_scales_counters_by_magnitude(self):
        clean = _sim()
        clean.run(0.6)
        biased = _sim()
        schedule = single_fault(
            FaultKind.COUNTER_BIAS, 0.3, 10.0, target="big", magnitude=3.0
        )
        injector = FaultInjector(biased, schedule).attach()
        biased.run(0.6)
        assert injector.stats()["counter_bias_reads"] > 0
        clean_sample = clean.estimation.last_counter_sample
        biased_sample = biased.estimation.last_counter_sample
        # Inner emitter sampled first => identical RNG stream, so the
        # biased read is exactly magnitude x the clean read.
        for core in clean.chip.cluster("big").cores:
            for name, value in clean_sample.core_counters[
                core.core_id
            ].items():
                assert biased_sample.core_counters[core.core_id][
                    name
                ] == pytest.approx(3.0 * value)

    def test_inactive_counter_fault_is_byte_identical(self):
        baseline = _sim()
        base_metrics = baseline.run(0.5)
        faulty = _sim()
        # Window opens long after the run ends: wrapper present, inert.
        schedule = single_fault(
            FaultKind.COUNTER_BIAS, 100.0, 1.0, target="big", magnitude=3.0
        )
        FaultInjector(faulty, schedule).attach()
        fault_metrics = faulty.run(0.5)
        assert tick_records(base_metrics) == tick_records(fault_metrics)


class TestPowerModelDrift:
    def test_drift_ramps_power_up(self):
        clean = _sim(estimation=False)
        clean_metrics = clean.run(1.0)
        drifted = _sim(estimation=False)
        # m1 runs on the little cluster; big is power-gated (0 W), so
        # drift must target the cluster that actually draws power.
        schedule = single_fault(
            FaultKind.POWER_MODEL_DRIFT, 0.2, 0.6, target="little", magnitude=2.0
        )
        FaultInjector(drifted, schedule).attach()
        drift_metrics = drifted.run(1.0)

        def mean_power(metrics, start, end):
            window = [
                s.chip_power_w
                for s in metrics.samples
                if start <= s.time_s < end
            ]
            return sum(window) / len(window)

        # Late in the window the ramp approaches 1+magnitude on 'big'.
        assert mean_power(drift_metrics, 0.6, 0.8) > mean_power(
            clean_metrics, 0.6, 0.8
        ) * 1.3
        # After the window closes the factor resets to 1.0.
        assert mean_power(drift_metrics, 0.85, 1.0) == pytest.approx(
            mean_power(clean_metrics, 0.85, 1.0), rel=0.05
        )

    def test_drift_factor_resets_after_window(self):
        sim = _sim(estimation=False)
        schedule = single_fault(
            FaultKind.POWER_MODEL_DRIFT, 0.2, 0.3, target="little", magnitude=2.0
        )
        FaultInjector(sim, schedule).attach()
        sim.run(0.8)
        assert sim.chip.cluster("little").drift_factor == 1.0

    def test_inactive_drift_is_byte_identical(self):
        baseline = _sim(estimation=False)
        base_metrics = baseline.run(0.5)
        drifted = _sim(estimation=False)
        schedule = single_fault(
            FaultKind.POWER_MODEL_DRIFT, 100.0, 1.0, target="big", magnitude=2.0
        )
        FaultInjector(drifted, schedule).attach()
        drift_metrics = drifted.run(0.5)
        assert tick_records(base_metrics) == tick_records(drift_metrics)
