"""The KindSpec registry: every fault kind is classified, loudly.

The registry is the single source of truth for what each fault kind
targets and which runtime tier it needs; derived sets (thermal faults,
counter faults, fleet faults, campaign-eligible kinds) are computed from
it, so an unregistered kind must fail at import time -- not silently
fall out of a hand-maintained list.
"""

import pytest

from repro.faults import (
    CLUSTER_FAULTS,
    COUNTER_FAULTS,
    FLEET_FAULTS,
    TASK_FAULTS,
    THERMAL_FAULTS,
    FaultKind,
    parse_fault_kind,
)
from repro.faults.events import _KIND_SPECS


def test_every_kind_is_registered():
    """Adding a FaultKind without a KindSpec must be impossible to miss."""
    assert set(_KIND_SPECS) == set(FaultKind)


def test_unregistered_kind_fails_at_import():
    """The registry's completeness check is live, not decorative."""
    from repro.faults import events

    removed = _KIND_SPECS.pop(FaultKind.WORKER_KILL)
    try:
        with pytest.raises(RuntimeError, match="worker-kill"):
            events._check_registry_complete()
    finally:
        _KIND_SPECS[FaultKind.WORKER_KILL] = removed


def test_fleet_kinds_are_registered_and_derived():
    fleet_values = {kind.value for kind in FLEET_FAULTS}
    assert fleet_values == {"worker-kill", "worker-stall", "worker-msg-loss"}
    for kind in FLEET_FAULTS:
        assert _KIND_SPECS[kind].requires == "fleet"
        assert _KIND_SPECS[kind].targets == "chip"


def test_fleet_kinds_never_leak_into_single_chip_sets():
    for derived in (CLUSTER_FAULTS, TASK_FAULTS, THERMAL_FAULTS, COUNTER_FAULTS):
        assert not (derived & FLEET_FAULTS)


def test_campaign_kinds_exclude_fleet_kinds():
    from repro.experiments.campaigns import CAMPAIGN_FAULTS

    assert set(CAMPAIGN_FAULTS.values()) == set(FaultKind) - FLEET_FAULTS


def test_single_chip_campaign_refuses_fleet_kind():
    from repro.experiments.campaigns import run_fault_campaign

    with pytest.raises(ValueError, match="fleet"):
        run_fault_campaign("worker-kill")


def test_parse_fault_kind_knows_fleet_kinds():
    assert parse_fault_kind("worker-stall") is FaultKind.WORKER_STALL


def test_parse_fault_kind_error_names_every_kind():
    with pytest.raises(ValueError) as excinfo:
        parse_fault_kind("made-up-kind")
    message = str(excinfo.value)
    for kind in FaultKind:
        assert kind.value in message


def test_fleet_event_rejects_single_chip_kind():
    from repro.fleet import FleetFaultEvent

    with pytest.raises(ValueError, match="not a fleet fault kind"):
        FleetFaultEvent(
            kind=FaultKind.SENSOR_DROPOUT, epoch=0, chip_id="chip00"
        )


def test_fleet_fault_spec_parsing_errors():
    from repro.fleet import parse_fleet_fault

    event = parse_fleet_fault("worker-msg-loss@2:chip03:4")
    assert event.count == 4 and event.epoch == 2 and event.chip_id == "chip03"
    event = parse_fleet_fault("worker-stall@1:chip00:12.5")
    assert event.stall_s == 12.5
    for bad in (
        "worker-kill",  # no @
        "worker-kill@x:chip00",  # non-integer epoch
        "worker-kill@1",  # missing chip id
        "worker-stall@1:chip00:soon",  # non-numeric parameter
        "sensor-dropout@1:chip00",  # single-chip kind in fleet syntax
    ):
        with pytest.raises(ValueError):
            parse_fleet_fault(bad)
