"""Property-based robustness tests (hypothesis).

Whatever sensor faults we throw at the stack, two things must hold: the
recorded power stream stays physical (finite, non-negative) and the QoS
accounting stays well-defined (fractions in [0, 1]).  The scenarios are
deliberately short -- the properties are about state corruption, which
shows up within a few hundred ticks or not at all.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task

_SENSOR_KINDS = (
    FaultKind.SENSOR_DROPOUT,
    FaultKind.SENSOR_STUCK,
    FaultKind.SENSOR_SPIKE,
)

_DURATION_S = 2.5

sensor_events = st.builds(
    FaultEvent,
    kind=st.sampled_from(_SENSOR_KINDS),
    start_s=st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
    duration_s=st.floats(0.05, 2.0, allow_nan=False, allow_infinity=False),
    magnitude=st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
)

sensor_schedules = st.lists(sensor_events, min_size=1, max_size=3).map(
    FaultSchedule
)


def _run(schedule, seed=0, noise=0.1):
    governor = PPMGovernor(PPMConfig(market=MarketConfig(wtdp=4.0)))
    sim = Simulation(
        tc2_chip(),
        [make_task("x264", "l"), make_task("h264", "s")],
        governor,
        config=SimConfig(seed=seed, sensor_noise_std_w=noise),
    )
    FaultInjector(sim, schedule).attach()
    metrics = sim.run(_DURATION_S)
    return sim, governor, metrics


@settings(max_examples=15, deadline=None)
@given(schedule=sensor_schedules, seed=st.integers(0, 2**16))
def test_sensor_faults_never_corrupt_power_or_metrics(schedule, seed):
    sim, governor, metrics = _run(schedule, seed=seed)
    for sample in metrics.samples:
        assert math.isfinite(sample.chip_power_w)
        assert sample.chip_power_w >= 0.0
        for watts in sample.cluster_power_w.values():
            assert math.isfinite(watts) and watts >= 0.0
    miss = metrics.any_task_miss_fraction()
    assert 0.0 <= miss <= 1.0
    for task_name in ("x264", "h264"):
        assert 0.0 <= metrics.task_below_fraction(task_name) <= 1.0
    # The market's books stay solvent under every sensor-fault schedule.
    for agent in governor.market.tasks.values():
        assert math.isfinite(agent.bid)
        assert agent.wallet.savings >= -1e-9


@settings(max_examples=10, deadline=None)
@given(
    start=st.floats(0.0, 1.0, allow_nan=False),
    duration=st.floats(0.1, 5.0, allow_nan=False),
    seed=st.integers(0, 2**16),
)
def test_dropout_of_any_length_falls_back_instead_of_crashing(
    start, duration, seed
):
    schedule = FaultSchedule(
        [FaultEvent(FaultKind.SENSOR_DROPOUT, start, duration)]
    )
    sim, governor, metrics = _run(schedule, seed=seed)
    # The run completed (no SensorReadError escaped) and when the window
    # overlapped ticks, the engine counted and substituted every one.
    overlap = max(0.0, min(start + duration, _DURATION_S) - start)
    if overlap > 0.1:
        assert sim.sensor_read_failures > 0
        assert governor.sensor_guard is not None
    assert len(metrics.samples) == int(round(_DURATION_S / sim.dt))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_fault_runs_are_deterministic(seed):
    schedule = FaultSchedule(
        [
            FaultEvent(FaultKind.SENSOR_STUCK, 0.5, 0.5),
            FaultEvent(FaultKind.SENSOR_SPIKE, 1.2, 0.4, magnitude=3.0),
        ]
    )
    _, _, first = _run(schedule, seed=seed)
    _, _, second = _run(schedule, seed=seed)
    assert [s.chip_power_w for s in first.samples] == [
        s.chip_power_w for s in second.samples
    ]
