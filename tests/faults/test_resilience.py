"""Tests for the governor resilience layer.

Units first (detector, backoff, supervisor, watchdog, market recovery
guard), then full-stack scenarios: PPM surviving total sensor loss,
degrading to safe mode when the market freezes, re-issuing dropped DVFS
writes and failed migrations, and the hot-unplug/replug acceptance
scenario (tasks re-placed, books clean, QoS restored within bounded
time).
"""

import math

import pytest

from repro.core import (
    BackoffRetry,
    DVFSSupervisor,
    MarketAuditor,
    MarketConfig,
    MarketWatchdog,
    PPMConfig,
    PPMGovernor,
    ResilienceConfig,
    StaleSensorDetector,
    WatchdogState,
)
from repro.core.market import Market
from repro.faults import FaultInjector, FaultKind, single_fault
from repro.hw import tc2_chip
from repro.hw.sensors import SensorSample
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload


def _sample(watts: float) -> SensorSample:
    return SensorSample(
        chip_power_w=watts,
        cluster_power_w={"big": watts},
        cluster_frequency_mhz={"big": 1000.0},
        cluster_voltage_v={"big": 1.0},
    )


class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stale_reads": 1},
            {"spike_factor": 1.0},
            {"retry_initial_rounds": 0},
            {"retry_initial_rounds": 8, "retry_max_rounds": 4},
            {"watchdog_failures": 0},
            {"divergence_rounds": 0},
            {"recovery_rounds": 0},
            {"safe_level_index": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_defaults_valid(self):
        ResilienceConfig()


class TestStaleSensorDetector:
    def test_dropout_before_any_good_sample_is_zero(self):
        detector = StaleSensorDetector()
        trusted = detector.observe(None)
        assert trusted.chip_power_w == 0.0
        assert detector.dropouts == 1

    def test_dropout_serves_last_good(self):
        detector = StaleSensorDetector()
        good = _sample(2.0)
        assert detector.observe(good) is good
        assert detector.observe(None) is good
        assert detector.suspect_reads == 1

    def test_stuck_detection_needs_bit_identical_repeats(self):
        detector = StaleSensorDetector(stale_reads=3)
        frozen = _sample(2.5)
        detector.observe(frozen)
        for _ in range(2):
            assert detector.observe(frozen) is frozen  # still plausible
            assert detector.stuck == 0
        # One more identical reading crosses the threshold.  The fallback
        # is the last good sample -- the stuck value itself, so a
        # genuinely constant power draw is served unchanged.
        assert detector.observe(frozen) is frozen
        assert detector.stuck == 1
        # A changing reading clears the streak.
        moving = _sample(2.501)
        assert detector.observe(moving) is moving
        assert detector.observe(moving) is moving
        assert detector.stuck == 1

    def test_spike_rejected_against_rolling_median(self):
        detector = StaleSensorDetector(spike_factor=3.0)
        for watts in (1.0, 1.1, 0.9, 1.05, 1.0):
            detector.observe(_sample(watts))
        spike = detector.observe(_sample(10.0))
        assert spike.chip_power_w == pytest.approx(1.0)  # last good served
        assert detector.spikes == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5])
    def test_nonphysical_readings_always_rejected(self, bad):
        detector = StaleSensorDetector()
        good = _sample(1.5)
        detector.observe(good)
        assert detector.observe(_sample(bad)) is good

    def test_healthy_stream_passes_through_untouched(self):
        detector = StaleSensorDetector()
        for i in range(50):
            sample = _sample(1.0 + 0.01 * (i % 7))
            assert detector.observe(sample) is sample
        assert detector.suspect_reads == 0


class TestBackoffRetry:
    def test_backoff_doubles_and_caps(self):
        retry = BackoffRetry(initial_rounds=1, max_rounds=4)
        assert retry.should_attempt("k", 0)
        retry.record_failure("k", 0)  # next at 1, backoff 2
        assert not retry.should_attempt("k", 0)
        assert retry.should_attempt("k", 1)
        retry.record_failure("k", 1)  # next at 3, backoff 4
        assert not retry.should_attempt("k", 2)
        retry.record_failure("k", 3)  # next at 7, backoff capped at 4
        retry.record_failure("k", 7)  # next at 11: cap holds
        assert not retry.should_attempt("k", 10)
        assert retry.should_attempt("k", 11)
        assert retry.retries == 4

    def test_success_resets_key(self):
        retry = BackoffRetry(initial_rounds=2, max_rounds=8)
        retry.record_failure("k", 0)
        assert retry.pending() == 1
        retry.record_success("k")
        assert retry.pending() == 0
        assert retry.should_attempt("k", 0)


class TestDVFSSupervisor:
    def _make(self):
        sim = Simulation(
            tc2_chip(), [], _NullGovernor(), config=SimConfig()
        )
        return sim, DVFSSupervisor(BackoffRetry(1, 8))

    def test_request_forwards_and_clamps(self):
        sim, supervisor = self._make()
        big = sim.chip.cluster("big")
        supervisor.request(sim, big, 999)
        assert big.regulator.target_index == big.vf_table.max_index

    def test_verify_reissues_dropped_requests(self):
        sim, supervisor = self._make()
        big = sim.chip.cluster("big")
        top = big.vf_table.max_index
        original = sim.request_level
        sim.request_level = lambda cluster, index: True  # cpufreq eats writes
        supervisor.request(sim, big, top)
        assert big.regulator.target_index != top
        assert supervisor.verify(sim, round_no=1) == 1  # re-issued, still lost
        sim.request_level = original  # actuation path heals
        assert supervisor.verify(sim, round_no=3) == 1
        assert big.regulator.target_index == top
        assert supervisor.verify(sim, round_no=4) == 0  # acknowledged
        assert supervisor.reissues == 2

    def test_verify_skips_offline_clusters(self):
        sim, supervisor = self._make()
        big = sim.chip.cluster("big")
        sim.request_level = lambda cluster, index: True
        supervisor.request(sim, big, big.vf_table.max_index)
        sim.hotplug_out(big)
        assert supervisor.verify(sim, round_no=1) == 0


class TestMarketWatchdog:
    def test_trips_after_consecutive_failures(self):
        watchdog = MarketWatchdog(ResilienceConfig(watchdog_failures=3))
        assert not watchdog.record_failure()
        assert not watchdog.record_failure()
        assert watchdog.record_failure()
        assert watchdog.in_safe_mode
        assert watchdog.trips == 1

    def test_completed_round_resets_failure_streak(self):
        watchdog = MarketWatchdog(ResilienceConfig(watchdog_failures=2))
        watchdog.record_failure()
        watchdog.record_round(chip_power_w=1.0, wtdp=4.0)
        assert not watchdog.record_failure()  # streak restarted
        assert not watchdog.in_safe_mode

    def test_nonfinite_round_results_trip_immediately(self):
        watchdog = MarketWatchdog()
        tripped = watchdog.record_round(
            chip_power_w=1.0, wtdp=None, prices={"big": float("nan")}
        )
        assert tripped and watchdog.in_safe_mode
        assert "non-finite" in watchdog.trip_reasons[0]

    def test_divergence_needs_a_sustained_streak(self):
        watchdog = MarketWatchdog(
            ResilienceConfig(divergence_factor=1.5, divergence_rounds=3)
        )
        assert not watchdog.record_round(chip_power_w=10.0, wtdp=4.0)
        assert not watchdog.record_round(chip_power_w=10.0, wtdp=4.0)
        watchdog.record_round(chip_power_w=1.0, wtdp=4.0)  # streak broken
        assert not watchdog.record_round(chip_power_w=10.0, wtdp=4.0)
        assert not watchdog.record_round(chip_power_w=10.0, wtdp=4.0)
        assert watchdog.record_round(chip_power_w=10.0, wtdp=4.0)

    def test_recovery_requires_consecutive_healthy_rounds(self):
        watchdog = MarketWatchdog(
            ResilienceConfig(watchdog_failures=1, recovery_rounds=3)
        )
        watchdog.record_failure()
        assert watchdog.in_safe_mode
        watchdog.record_safe_round(healthy=True)
        watchdog.record_safe_round(healthy=True)
        watchdog.record_safe_round(healthy=False)  # resets the count
        watchdog.record_safe_round(healthy=True)
        watchdog.record_safe_round(healthy=True)
        assert watchdog.record_safe_round(healthy=True)
        assert watchdog.state is WatchdogState.HEALTHY


class TestMarketRemovalGuard:
    def _market(self):
        market = Market(MarketConfig())
        market.add_cluster("c", ["c.0", "c.1"], [10.0, 20.0])
        market.add_task("a", 1, "c.0")
        market.add_task("b", 1, "c.1")
        return market

    def test_corrupted_allowance_restored_on_removal(self):
        market = self._market()
        market.chip.allowance = float("nan")
        market.remove_task("a")
        assert math.isfinite(market.chip.allowance)
        assert market.chip.allowance >= market.config.bmin * len(market.tasks)

    def test_allowance_floor_enforced_for_survivors(self):
        market = self._market()
        market.chip.allowance = 0.0
        market.remove_task("a")
        assert market.chip.allowance >= market.config.bmin

    def test_last_task_removal_leaves_empty_market(self):
        market = self._market()
        market.remove_task("a")
        market.remove_task("b")
        assert not market.tasks


class _NullGovernor:
    def prepare(self, sim):
        pass

    def on_tick(self, sim):
        pass


# ----------------------------------------------------------------------
# Full-stack scenarios
# ----------------------------------------------------------------------
def _ppm_sim(tasks, governor=None, **config):
    governor = governor or PPMGovernor(PPMConfig(market=MarketConfig(wtdp=4.0)))
    sim = Simulation(tc2_chip(), tasks, governor, config=SimConfig(**config))
    return sim, governor


class TestPPMUnderFaults:
    def test_total_sensor_dropout_degrades_but_never_crashes(self):
        sim, governor = _ppm_sim(
            build_workload("m2"), metrics_warmup_s=2.0, seed=4
        )
        FaultInjector(sim, single_fault(FaultKind.SENSOR_DROPOUT, 0.0, 1e9)).attach()
        metrics = sim.run(10.0)
        assert sim.sensor_read_failures > 0
        assert governor.sensor_guard is not None
        # The market kept trading on the fallback reading.
        assert governor.last_round is not None
        assert metrics.any_task_miss_fraction() < 0.9
        assert all(math.isfinite(s.chip_power_w) for s in metrics.samples)

    def test_dropped_dvfs_writes_are_reissued(self):
        sim, governor = _ppm_sim(build_workload("m2"), seed=4)
        schedule = single_fault(FaultKind.DVFS_DROP, 0.5, 2.0)
        injector = FaultInjector(sim, schedule).attach()
        sim.run(5.0)
        assert injector.stats()["dvfs_dropped"] > 0
        assert governor.dvfs_supervisor is not None
        assert governor.dvfs_supervisor.reissues > 0
        # After the window the read-back matches what the market wants.
        supervisor = governor.dvfs_supervisor
        for cluster_id, level in supervisor._desired.items():
            cluster = sim.chip.cluster(cluster_id)
            if cluster.powered:
                assert cluster.regulator.target_index == level

    def test_failed_migrations_are_retried_after_fault_clears(self):
        from repro.core.estimation import MappingEstimate
        from repro.core.lbt import MoveDecision

        governor = PPMGovernor(
            PPMConfig(
                market=MarketConfig(wtdp=4.0),
                enable_load_balancing=False,
                enable_migration=False,
            )
        )
        sim, governor = _ppm_sim(build_workload("m2"), governor=governor, seed=4)
        sim.run(1.0)
        task = next(iter(governor._tasks_by_id.values()))
        source = sim.placement.core_of(task)
        target_cluster = "big" if source.cluster.cluster_id == "little" else "little"
        target = sim.chip.cluster(target_cluster).cores[0]
        FaultInjector(
            sim, single_fault(FaultKind.MIGRATION_FAIL, 0.0, 2.0, target=task.name)
        ).attach()
        empty = MappingEstimate(ratios={}, bids={}, levels={})
        decision = MoveDecision(
            task_id=task.name,
            source_core_id=source.core_id,
            target_core_id=target.core_id,
            mode="performance",
            current=empty,
            candidate=empty,
        )
        governor._execute_move(sim, decision)
        assert sim.placement.core_of(task) is source  # blocked by the fault
        assert task.name in governor._pending_moves
        sim.run(3.0)  # fault window closes at t=2; backoff retries after
        assert sim.placement.core_of(task) is target
        assert task.name not in governor._pending_moves
        assert governor.market.core_of(task.name) == target.core_id

    def test_frozen_market_degrades_to_safe_mode_and_recovers(self):
        sim, governor = _ppm_sim(build_workload("m2"), seed=4)
        sim.run(2.0)
        assert not governor.in_safe_mode
        healthy_round = governor.last_round

        def frozen(obs):
            raise RuntimeError("bid round wedged")

        governor.market.run_round = frozen
        for _ in range(40):  # step until the failure streak trips the dog
            sim.run(0.1)
            if governor.in_safe_mode:
                break
        # Watchdog tripped; every powered cluster parked at the safe floor.
        assert governor.in_safe_mode
        assert governor.safe_mode_entries >= 1
        assert governor.watchdog.trips >= 1
        safe = governor.config.resilience.safe_level_index
        for cluster in sim.chip.clusters:
            if cluster.powered:
                assert cluster.regulator.target_index == safe
        # Allocations were dropped: the dispatcher is on fair shares.
        assert all(
            sim.allocation_of(task) is None for task in sim.active_tasks()
        )
        del governor.market.run_round  # the market heals
        sim.run(3.0)
        assert not governor.in_safe_mode  # recovered after sustained health
        assert governor.last_round is not healthy_round  # trading again
        assert governor.watchdog.state is WatchdogState.HEALTHY

    def test_without_resilience_a_frozen_market_raises(self):
        governor = PPMGovernor(
            PPMConfig(market=MarketConfig(wtdp=4.0), resilience=None)
        )
        sim, governor = _ppm_sim(build_workload("m2"), governor=governor)
        sim.run(1.0)

        def frozen(obs):
            raise RuntimeError("bid round wedged")

        governor.market.run_round = frozen
        with pytest.raises(RuntimeError):
            sim.run(1.0)


class TestHotplugRecovery:
    """The acceptance scenario: lose the big cluster, get everything back."""

    def test_unplug_replug_replaces_tasks_and_restores_qos(self):
        sim, governor = _ppm_sim(
            build_workload("m2"), metrics_warmup_s=2.0, seed=4, audit=True
        )
        schedule = single_fault(FaultKind.HOTPLUG, 6.0, 4.0, target="big")
        injector = FaultInjector(sim, schedule).attach()
        sim.run(8.0)  # mid-outage
        assert "big" in sim.offline_clusters
        # Every task kept running: all re-placed onto the little cluster
        # and still present in the market's books.
        for task in sim.active_tasks():
            core = sim.placement.core_of(task)
            assert core is not None and core.cluster.cluster_id == "little"
            assert task.name in governor.market.tasks
        metrics = sim.run(16.0)  # replug at t=10, then recovery
        assert injector.stats() == {
            **injector.stats(),
            "unplugs": 1,
            "replugs": 1,
        }
        assert "big" not in sim.offline_clusters
        # The governor moved work back: big is powered and populated.
        placed_clusters = {
            sim.placement.core_of(task).cluster.cluster_id
            for task in sim.active_tasks()
        }
        assert "big" in placed_clusters
        # QoS is restored within bounded time of the replug.
        recovery = metrics.recovery_time_s(after_s=10.0, settle_s=0.5, dt=sim.dt)
        assert recovery is not None and recovery < 10.0
        # The books survived: no audit violation after the replug settled.
        settled = 10.0 + recovery
        late_violations = [
            v
            for v in metrics.audit_violations
            if float(v.split(":")[0][2:]) > settled
        ]
        assert late_violations == []
        # And a fresh strict audit of the final state is clean.
        report = MarketAuditor(governor.market, strict=False).audit_now()
        assert report.ok, report.violations
