"""Tests for trace-driven phase behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.tasks import DemandTrace, SinusoidalPhases, record_trace


def make_trace(interpolation="step", loop=False):
    return DemandTrace(
        [(0.0, 1.0), (10.0, 0.5), (20.0, 1.5)],
        interpolation=interpolation,
        loop=loop,
        name="t",
    )


class TestValidation:
    def test_needs_points(self):
        with pytest.raises(ValueError):
            DemandTrace([])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            DemandTrace([(0.0, 1.0), (0.0, 2.0)])

    def test_positive_multipliers(self):
        with pytest.raises(ValueError):
            DemandTrace([(0.0, 0.0)])

    def test_interpolation_name(self):
        with pytest.raises(ValueError):
            DemandTrace([(0.0, 1.0)], interpolation="cubic")


class TestReplay:
    def test_step_holds_values(self):
        trace = make_trace("step")
        assert trace.multiplier_at(5.0) == 1.0
        assert trace.multiplier_at(10.0) == 0.5
        assert trace.multiplier_at(15.0) == 0.5

    def test_linear_ramps(self):
        trace = make_trace("linear")
        assert trace.multiplier_at(5.0) == pytest.approx(0.75)
        assert trace.multiplier_at(15.0) == pytest.approx(1.0)

    def test_before_and_after_clamped(self):
        trace = make_trace()
        assert trace.multiplier_at(-3.0) == 1.0
        assert trace.multiplier_at(99.0) == 1.5

    def test_loop_wraps(self):
        trace = make_trace("step", loop=True)
        assert trace.multiplier_at(25.0) == trace.multiplier_at(5.0)

    def test_duration(self):
        assert make_trace().duration_s == 20.0

    @given(st.floats(min_value=-50, max_value=200, allow_nan=False))
    def test_multiplier_always_within_trace_range(self, t):
        trace = make_trace("linear", loop=True)
        assert 0.5 - 1e-9 <= trace.multiplier_at(t) <= 1.5 + 1e-9


class TestSerialisation:
    def test_json_roundtrip(self):
        trace = make_trace("linear", loop=True)
        clone = DemandTrace.from_json(trace.to_json())
        for t in [0.0, 3.3, 12.7, 19.9, 31.0]:
            assert clone.multiplier_at(t) == pytest.approx(trace.multiplier_at(t))
        assert clone.name == "t"

    def test_file_roundtrip(self, tmp_path):
        trace = make_trace()
        path = trace.write(str(tmp_path / "trace.json"))
        clone = DemandTrace.read(path)
        assert clone.multiplier_at(15.0) == trace.multiplier_at(15.0)


class TestRecording:
    def test_records_a_live_source(self):
        source = SinusoidalPhases(period_s=8.0, amplitude=0.3)
        trace = record_trace(
            source.multiplier_at, duration_s=16.0, sample_period_s=0.25,
            interpolation="linear",
        )
        for t in [1.0, 4.5, 11.0]:
            assert trace.multiplier_at(t) == pytest.approx(
                source.multiplier_at(t), abs=0.03
            )

    def test_recorded_trace_drives_a_task(self):
        from repro.tasks import BenchmarkProfile, Task, default_hr_range

        trace = DemandTrace([(0.0, 1.0), (5.0, 2.0)], interpolation="step")
        profile = BenchmarkProfile(
            name="traced", input_label="t", nominal_hr=10.0,
            hr_range=default_hr_range(10.0),
            cost_pu_s_per_beat_by_type={"A7": 10.0},
            phases=trace,
        )
        task = Task(profile=profile)
        assert task.true_demand_pus("A7", 1.0) == pytest.approx(100.0)
        assert task.true_demand_pus("A7", 6.0) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            record_trace(lambda t: 1.0, duration_s=0.0)


class TestOdroidPreset:
    def test_four_plus_four(self):
        from repro.hw import odroid_xu3_chip

        chip = odroid_xu3_chip()
        assert len(chip.cluster("big").cores) == 4
        assert len(chip.cluster("little").cores) == 4

    def test_ppm_runs_on_odroid(self):
        from repro.core import PPMGovernor
        from repro.hw import odroid_xu3_chip
        from repro.sim import SimConfig, Simulation
        from repro.tasks import build_workload

        sim = Simulation(
            odroid_xu3_chip(), build_workload("m2"), PPMGovernor(),
            config=SimConfig(metrics_warmup_s=2.0),
        )
        metrics = sim.run(8.0)
        # Twice the LITTLE capacity: m2 is comfortable on this chip.
        assert metrics.any_task_miss_fraction() < 0.6
