"""Unit tests for the Table 5 benchmark suite and Table 6 workload sets."""

import pytest

from repro.hw import tc2_chip
from repro.tasks import (
    BENCHMARK_SPECS,
    WORKLOAD_ORDER,
    WORKLOAD_SETS,
    WorkloadClass,
    build_workload,
    classify_workload,
    little_capacity_pus,
    make_profile,
    make_task,
    workload_intensity,
)


class TestBenchmarkSuite:
    def test_every_spec_builds_a_profile(self):
        for (name, input_label) in BENCHMARK_SPECS:
            profile = make_profile(name, input_label)
            assert profile.nominal_demand_pus("A7") > 0
            assert profile.nominal_demand_pus("A15") > 0

    def test_eight_distinct_benchmarks(self):
        assert len({name for name, _ in BENCHMARK_SPECS}) == 8

    def test_input_codes_resolve(self):
        assert make_profile("swaptions", "l").input_label == "large"
        assert make_profile("h264", "fo").input_label == "foreman"
        assert make_profile("texture", "v").input_label == "vga"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            make_profile("doom", "native")
        with pytest.raises(KeyError):
            make_profile("swaptions", "gigantic")

    def test_a15_speedup_in_expected_band(self):
        for (name, input_label) in BENCHMARK_SPECS:
            profile = make_profile(name, input_label)
            speedup = profile.speedup("A15", "A7")
            assert 1.6 <= speedup <= 2.1, (name, input_label, speedup)

    def test_a7_demand_matches_spec(self):
        for (name, input_label), spec in BENCHMARK_SPECS.items():
            profile = make_profile(name, input_label)
            assert profile.nominal_demand_pus("A7") == pytest.approx(
                spec.demand_a7_pus
            )

    def test_phase_offset_staggers_instances(self):
        a = make_profile("bodytrack", "native", phase_offset_s=0.0)
        b = make_profile("bodytrack", "native", phase_offset_s=5.0)
        assert a.phases.multiplier_at(0.0) != b.phases.multiplier_at(0.0)

    def test_swaptions_is_steady(self):
        profile = make_profile("swaptions", "native")
        assert profile.phases.multiplier_at(3.0) == profile.phases.multiplier_at(17.0)

    def test_make_task_sets_priority_and_name(self):
        task = make_task("x264", "n", priority=3, task_name="enc")
        assert task.priority == 3
        assert task.name == "enc"


class TestWorkloadSets:
    def test_nine_sets_of_six_tasks(self):
        assert set(WORKLOAD_SETS) == set(WORKLOAD_ORDER)
        for set_id in WORKLOAD_ORDER:
            assert len(build_workload(set_id)) == 6

    def test_unknown_set_raises(self):
        with pytest.raises(KeyError):
            build_workload("xxl")

    def test_task_names_carry_set_id(self):
        tasks = build_workload("m2")
        assert all(t.name.startswith("m2.") for t in tasks)

    def test_priorities_uniform_by_default(self):
        # Comparative-study setting: equal priorities everywhere.
        assert all(t.priority == 1 for t in build_workload("h1"))
        assert all(t.priority == 4 for t in build_workload("h1", priority=4))

    def test_intensity_classification_matches_paper_classes(self):
        chip = tc2_chip()
        for set_id in WORKLOAD_ORDER:
            tasks = build_workload(set_id)
            expected = {"l": "light", "m": "medium", "h": "heavy"}[set_id[0]]
            assert classify_workload(tasks, chip) == expected, set_id

    def test_intensity_formula(self):
        chip = tc2_chip()
        tasks = build_workload("l1")
        capacity = little_capacity_pus(chip)
        total = sum(t.profile.nominal_demand_pus("A7") for t in tasks)
        assert workload_intensity(tasks, chip) == pytest.approx(
            (total - capacity) / capacity
        )

    def test_little_capacity_is_three_thousand(self):
        assert little_capacity_pus(tc2_chip()) == pytest.approx(3000.0)

    def test_little_capacity_requires_a7(self):
        from repro.hw import synthetic_chip

        with pytest.raises(ValueError):
            little_capacity_pus(synthetic_chip(2, 2, seed=0))

    def test_class_boundaries(self):
        wc = WorkloadClass()
        assert wc.classify(-0.1) == "light"
        assert wc.classify(0.0) == "light"
        assert wc.classify(0.15) == "medium"
        assert wc.classify(0.30) == "medium"
        assert wc.classify(0.31) == "heavy"

    def test_intensity_ordering_light_to_heavy(self):
        chip = tc2_chip()
        values = [
            workload_intensity(build_workload(s), chip) for s in WORKLOAD_ORDER
        ]
        lights, mediums, heavies = values[:3], values[3:6], values[6:]
        assert max(lights) <= min(mediums)
        assert max(mediums) <= min(heavies)
