"""Unit tests for heart-rate -> demand conversion (paper Table 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.tasks import HeartRateRange, demand_for_range, demand_from_heart_rate, demand_from_load


class TestTable4Values:
    """The paper's worked conversions with target = 27 hb/s."""

    def test_phase1_undersupplied(self):
        # 500 PUs at 15 hb/s -> needs 900 PUs.
        assert demand_from_heart_rate(27.0, 500.0, 15.0) == pytest.approx(900.0)

    def test_phase2_half_utilisation(self):
        # 800 MHz at 50% utilisation = 400 PUs at 10 hb/s -> 1080 PUs.
        assert demand_from_heart_rate(27.0, 400.0, 10.0) == pytest.approx(1080.0)

    def test_phase3_oversupplied_lowers_demand(self):
        # 1000 PUs at 40 hb/s -> only 675 PUs needed.
        assert demand_from_heart_rate(27.0, 1000.0, 40.0) == pytest.approx(675.0)


class TestEdgeCases:
    def test_zero_rate_returns_fallback(self):
        assert demand_from_heart_rate(27.0, 500.0, 0.0, fallback_pus=333.0) == 333.0

    def test_zero_supply_returns_fallback(self):
        assert demand_from_heart_rate(27.0, 0.0, 10.0, fallback_pus=42.0) == 42.0

    def test_non_positive_target_rejected(self):
        with pytest.raises(ValueError):
            demand_from_heart_rate(0.0, 500.0, 10.0)

    def test_range_wrapper_uses_midpoint(self):
        r = HeartRateRange(24.0, 30.0)
        assert demand_for_range(r, 500.0, 15.0) == pytest.approx(900.0)

    @given(
        st.floats(min_value=1, max_value=100),
        st.floats(min_value=1, max_value=5000),
        st.floats(min_value=0.1, max_value=200),
    )
    def test_conversion_is_exact_fixed_point(self, target, supply, rate):
        """Supplying the converted demand at proportional speed hits target."""
        demand = demand_from_heart_rate(target, supply, rate)
        # Task speed is proportional to supply: rate' = rate * demand/supply.
        achieved = rate * demand / supply
        assert achieved == pytest.approx(target, rel=1e-9)


class TestLoadProxy:
    def test_fully_runnable_task_wants_headroom(self):
        assert demand_from_load(1.0, 400.0, headroom=1.5) == pytest.approx(600.0)

    def test_partial_runnable_scales_down(self):
        assert demand_from_load(0.5, 400.0) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            demand_from_load(1.5, 400.0)
        with pytest.raises(ValueError):
            demand_from_load(0.5, 400.0, headroom=0.0)
