"""Tests for the online cross-core-type demand estimator (future work)."""

import pytest

from repro.tasks import OnlineDemandEstimator


def feed(estimator, task, core_type, demand, n=15):
    for _ in range(n):
        estimator.observe(task, core_type, demand)


class TestObservation:
    def test_untrusted_until_min_samples(self):
        est = OnlineDemandEstimator(min_samples=5)
        est.observe("t", "A7", 400.0)
        assert est.known_demand("t", "A7") is None
        feed(est, "t", "A7", 400.0, n=5)
        assert est.known_demand("t", "A7") == pytest.approx(400.0)

    def test_ewma_tracks_changes(self):
        est = OnlineDemandEstimator(alpha=0.5, min_samples=1)
        feed(est, "t", "A7", 400.0, n=3)
        feed(est, "t", "A7", 800.0, n=20)
        assert est.known_demand("t", "A7") == pytest.approx(800.0, rel=0.01)

    def test_non_positive_demand_ignored(self):
        est = OnlineDemandEstimator(min_samples=1)
        est.observe("t", "A7", 0.0)
        assert est.known_demand("t", "A7") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineDemandEstimator(default_speedup=0.0)
        with pytest.raises(ValueError):
            OnlineDemandEstimator(alpha=0.0)


class TestSpeedupLearning:
    def test_prior_before_any_observation(self):
        est = OnlineDemandEstimator(default_speedup=1.8)
        assert est.speedup("A15", "A7") == pytest.approx(1.8)

    def test_learns_from_visited_types(self):
        est = OnlineDemandEstimator(min_samples=5)
        feed(est, "t", "A7", 600.0)
        feed(est, "t", "A15", 300.0)
        assert est.speedup("A15", "A7") == pytest.approx(2.0, rel=0.05)
        assert est.speedup("A7", "A15") == pytest.approx(0.5, rel=0.05)

    def test_population_prior_transfers_across_tasks(self):
        est = OnlineDemandEstimator(min_samples=5)
        feed(est, "veteran", "A7", 600.0)
        feed(est, "veteran", "A15", 300.0)
        # A task that has never visited A15 benefits from the population.
        demand = est.estimate_demand(
            "rookie",
            target_type="A15",
            current_type="A7",
            current_demand_pus=900.0,
            target_is_faster=True,
        )
        assert demand == pytest.approx(450.0, rel=0.05)


class TestEstimateDemand:
    def test_prior_based_estimate(self):
        est = OnlineDemandEstimator(default_speedup=2.0)
        up = est.estimate_demand("t", "A15", "A7", 800.0, target_is_faster=True)
        down = est.estimate_demand("t", "A7", "A15", 400.0, target_is_faster=False)
        assert up == pytest.approx(400.0)
        assert down == pytest.approx(800.0)

    def test_own_history_preferred_and_phase_scaled(self):
        est = OnlineDemandEstimator(min_samples=5)
        feed(est, "t", "A7", 600.0)
        feed(est, "t", "A15", 240.0)  # personal speedup 2.5x
        # Live demand doubled by a phase: the prediction scales with it.
        demand = est.estimate_demand("t", "A15", "A7", 1200.0, target_is_faster=True)
        assert demand == pytest.approx(480.0, rel=0.05)


class TestGovernorIntegration:
    def test_online_mode_runs_and_migrates(self):
        from repro.core import PPMConfig, PPMGovernor
        from repro.hw import tc2_chip
        from repro.sim import SimConfig, Simulation
        from repro.tasks import build_workload

        tasks = build_workload("h3")
        governor = PPMGovernor(PPMConfig(online_estimation=True))
        sim = Simulation(tc2_chip(), tasks, governor, config=SimConfig(metrics_warmup_s=5.0))
        metrics = sim.run(15.0)
        assert governor.online_estimator is not None
        # The estimator has learned this workload's A7 demands.
        assert any(
            governor.online_estimator.known_demand(t.name, "A7") is not None
            for t in tasks
        )
        # Heavy set still forces promotion to big without profile tables.
        assert sim.migrations.counts()[1] >= 1
        assert metrics.any_task_miss_fraction() < 0.9
