"""Unit tests for the random task generator (Table 7 inputs)."""

import pytest

from repro.tasks import random_profile, random_task_records, random_tasks


class TestRandomTasks:
    def test_count(self):
        assert len(random_tasks(10, seed=1)) == 10
        assert random_tasks(0, seed=1) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_tasks(-1)

    def test_demands_in_paper_range(self):
        for task in random_tasks(50, seed=2, demand_range=(10.0, 50.0)):
            demand = task.profile.nominal_demand_pus("*")
            assert 10.0 - 1e-9 <= demand <= 50.0 + 1e-9

    def test_priorities_in_range(self):
        for task in random_tasks(50, seed=3, priority_range=(1, 8)):
            assert 1 <= task.priority <= 8

    def test_seed_determinism(self):
        a = random_tasks(5, seed=42)
        b = random_tasks(5, seed=42)
        for ta, tb in zip(a, b):
            assert ta.priority == tb.priority
            assert ta.profile.nominal_demand_pus("*") == tb.profile.nominal_demand_pus("*")

    def test_multiple_core_types_have_speedups(self):
        import random

        profile = random_profile(
            random.Random(7), "p", core_types=("A7", "A15")
        )
        assert 1.5 <= profile.speedup("A15", "A7") <= 2.0


class TestRandomRecords:
    def test_fields_in_ranges(self):
        records = random_task_records(100, seed=9)
        for r in records:
            assert 10.0 <= r.demand_pus <= 50.0
            assert 10.0 <= r.supply_pus <= 50.0
            assert 1 <= r.priority <= 8
            assert 0.5 <= r.bid <= 2.0

    def test_names_unique(self):
        records = random_task_records(20, seed=5)
        assert len({r.name for r in records}) == 20
