"""Unit tests for phase traces."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.tasks import ConstantPhase, PiecewisePhases, SinusoidalPhases, SquareWavePhases


class TestConstantPhase:
    def test_default_is_one(self):
        assert ConstantPhase().multiplier_at(123.4) == 1.0

    def test_custom_multiplier(self):
        assert ConstantPhase(0.5).multiplier_at(0.0) == 0.5


class TestPiecewisePhases:
    def test_segments_in_order(self):
        trace = PiecewisePhases([(10.0, 0.5), (20.0, 1.5)])
        assert trace.multiplier_at(5.0) == 0.5
        assert trace.multiplier_at(10.0) == 1.5
        assert trace.multiplier_at(29.9) == 1.5

    def test_past_end_holds_last_segment(self):
        trace = PiecewisePhases([(10.0, 0.5), (20.0, 1.5)])
        assert trace.multiplier_at(1000.0) == 1.5

    def test_repeat_wraps(self):
        trace = PiecewisePhases([(10.0, 0.5), (10.0, 1.5)], repeat=True)
        assert trace.multiplier_at(25.0) == 0.5
        assert trace.multiplier_at(35.0) == 1.5

    def test_negative_time_clamps_to_start(self):
        trace = PiecewisePhases([(10.0, 0.7), (10.0, 1.3)])
        assert trace.multiplier_at(-5.0) == 0.7

    def test_total_duration(self):
        assert PiecewisePhases([(10.0, 1.0), (5.0, 2.0)]).total_duration == 15.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewisePhases([])

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            PiecewisePhases([(0.0, 1.0)])


class TestSinusoidalPhases:
    def test_oscillates_around_one(self):
        trace = SinusoidalPhases(period_s=10.0, amplitude=0.2)
        assert trace.multiplier_at(0.0) == pytest.approx(1.0)
        assert trace.multiplier_at(2.5) == pytest.approx(1.2)
        assert trace.multiplier_at(7.5) == pytest.approx(0.8)

    def test_offset_shifts_phase(self):
        base = SinusoidalPhases(period_s=10.0, amplitude=0.2)
        shifted = SinusoidalPhases(period_s=10.0, amplitude=0.2, offset_s=2.5)
        assert shifted.multiplier_at(0.0) == pytest.approx(base.multiplier_at(2.5))

    def test_periodicity(self):
        trace = SinusoidalPhases(period_s=7.0, amplitude=0.3)
        assert trace.multiplier_at(3.0) == pytest.approx(trace.multiplier_at(3.0 + 7.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            SinusoidalPhases(period_s=0.0, amplitude=0.1)
        with pytest.raises(ValueError):
            SinusoidalPhases(period_s=1.0, amplitude=1.0)

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_multiplier_stays_positive(self, t):
        trace = SinusoidalPhases(period_s=13.0, amplitude=0.4)
        assert 0.6 - 1e-9 <= trace.multiplier_at(t) <= 1.4 + 1e-9


class TestSquareWavePhases:
    def test_high_then_low(self):
        trace = SquareWavePhases(period_s=10.0, low=0.5, high=1.5, duty=0.3)
        assert trace.multiplier_at(1.0) == 1.5
        assert trace.multiplier_at(5.0) == 0.5

    def test_wraps(self):
        trace = SquareWavePhases(period_s=10.0, low=0.5, high=1.5, duty=0.5)
        assert trace.multiplier_at(12.0) == 1.5
        assert trace.multiplier_at(17.0) == 0.5

    def test_negative_time(self):
        trace = SquareWavePhases(period_s=10.0, low=0.5, high=1.5, duty=0.5)
        assert trace.multiplier_at(-2.0) in (0.5, 1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SquareWavePhases(period_s=-1.0, low=0.5, high=1.5)
        with pytest.raises(ValueError):
            SquareWavePhases(period_s=1.0, low=0.5, high=1.5, duty=1.0)
