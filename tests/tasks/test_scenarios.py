"""Tests for Poisson arrival scenarios."""

import pytest

from repro.tasks import ScenarioConfig, peak_concurrency, poisson_workload


class TestConfigValidation:
    def test_defaults_valid(self):
        ScenarioConfig()

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(lifetime_range_s=(5.0, 1.0))
        with pytest.raises(ValueError):
            ScenarioConfig(initial_tasks=-1)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = poisson_workload(seed=42)
        b = poisson_workload(seed=42)
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.start_time for t in a] == [t.start_time for t in b]

    def test_initial_tasks_start_at_zero(self):
        tasks = poisson_workload(ScenarioConfig(initial_tasks=3, arrival_rate_hz=0.0), seed=1)
        assert len(tasks) == 3
        assert all(t.start_time == 0.0 for t in tasks)

    def test_arrivals_within_horizon(self):
        config = ScenarioConfig(duration_s=30.0, arrival_rate_hz=0.5)
        tasks = poisson_workload(config, seed=7)
        for task in tasks:
            assert 0.0 <= task.start_time < 30.0
            assert task.duration is not None
            lo, hi = config.lifetime_range_s
            assert lo <= task.duration <= hi

    def test_rate_scales_population(self):
        low = poisson_workload(ScenarioConfig(arrival_rate_hz=0.1, duration_s=100.0), seed=3)
        high = poisson_workload(ScenarioConfig(arrival_rate_hz=1.0, duration_s=100.0), seed=3)
        assert len(high) > len(low)

    def test_catalogue_restriction(self):
        config = ScenarioConfig(catalogue=[("swaptions", "large")], arrival_rate_hz=0.3)
        tasks = poisson_workload(config, seed=5)
        assert all(t.profile.name == "swaptions" for t in tasks)

    def test_priorities_within_bounds(self):
        tasks = poisson_workload(ScenarioConfig(priority_range=(2, 4)), seed=9)
        assert all(2 <= t.priority <= 4 for t in tasks)


class TestPeakConcurrency:
    def test_empty(self):
        assert peak_concurrency([]) == 0

    def test_counts_overlap(self):
        from repro.tasks import make_task

        tasks = [
            make_task("swaptions", "l", start_time=0.0, duration=10.0),
            make_task("x264", "l", start_time=5.0, duration=10.0),
            make_task("h264", "s", start_time=20.0, duration=5.0),
        ]
        assert peak_concurrency(tasks) == 2


class TestEndToEndChurn:
    def test_ppm_survives_a_poisson_scenario(self):
        from repro.core import PPMGovernor
        from repro.hw import tc2_chip
        from repro.sim import SimConfig, Simulation

        tasks = poisson_workload(
            ScenarioConfig(duration_s=15.0, arrival_rate_hz=0.4, initial_tasks=2),
            seed=11,
        )
        governor = PPMGovernor()
        sim = Simulation(tc2_chip(), tasks, governor, config=SimConfig())
        sim.run(25.0)
        # Market bookkeeping survived the churn.
        alive = {t.name for t in sim.active_tasks()}
        assert set(governor.market.tasks) == alive
