"""Unit tests for the HRM infrastructure."""

import pytest
from hypothesis import given, strategies as st

from repro.tasks import HeartRateMonitor, HeartRateRange


class TestHeartRateRange:
    def test_target_is_midpoint(self):
        assert HeartRateRange(24.0, 30.0).target_hr == 27.0

    def test_contains(self):
        r = HeartRateRange(24.0, 30.0)
        assert r.contains(24.0)
        assert r.contains(27.0)
        assert r.contains(30.0)
        assert not r.contains(23.9)
        assert not r.contains(30.1)

    def test_contains_tolerates_float_noise_at_bounds(self):
        r = HeartRateRange(0.95, 1.05)
        assert r.contains(1.05 * (1 + 1e-12))
        assert r.contains(0.95 * (1 - 1e-12))

    def test_below(self):
        r = HeartRateRange(24.0, 30.0)
        assert r.below(23.0)
        assert not r.below(24.0)
        assert not r.below(40.0)

    def test_scaled(self):
        r = HeartRateRange(24.0, 30.0).scaled(0.5)
        assert (r.min_hr, r.max_hr) == (12.0, 15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartRateRange(0.0, 10.0)
        with pytest.raises(ValueError):
            HeartRateRange(10.0, 5.0)


class TestHeartRateMonitor:
    def test_no_samples_reads_zero(self):
        assert HeartRateMonitor().heart_rate() == 0.0

    def test_single_sample_reads_zero(self):
        hrm = HeartRateMonitor()
        hrm.record(0.0, 0.0)
        assert hrm.heart_rate() == 0.0

    def test_constant_rate(self):
        hrm = HeartRateMonitor(window_s=1.0)
        for i in range(11):
            hrm.record(i * 0.1, i * 3.0)  # 30 beats/s
        assert hrm.heart_rate() == pytest.approx(30.0)

    def test_window_trims_old_samples(self):
        hrm = HeartRateMonitor(window_s=0.5)
        # 10 hb/s for 1 s, then 40 hb/s for 0.5 s -> window sees only 40.
        t, beats = 0.0, 0.0
        for _ in range(10):
            t += 0.1
            beats += 1.0
            hrm.record(t, beats)
        for _ in range(5):
            t += 0.1
            beats += 4.0
            hrm.record(t, beats)
        assert hrm.heart_rate() == pytest.approx(40.0, rel=0.05)

    def test_time_must_be_non_decreasing(self):
        hrm = HeartRateMonitor()
        hrm.record(1.0, 5.0)
        with pytest.raises(ValueError):
            hrm.record(0.5, 6.0)

    def test_reset(self):
        hrm = HeartRateMonitor()
        hrm.record(0.0, 0.0)
        hrm.record(1.0, 10.0)
        hrm.reset()
        assert hrm.heart_rate() == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            HeartRateMonitor(window_s=0.0)

    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_measured_rate_matches_generation_rate(self, rate):
        hrm = HeartRateMonitor(window_s=1.0)
        for i in range(20):
            hrm.record(i * 0.1, i * 0.1 * rate)
        assert hrm.heart_rate() == pytest.approx(rate, rel=1e-6)

    def test_rate_never_negative_with_monotone_beats(self):
        hrm = HeartRateMonitor(window_s=0.3)
        beats = 0.0
        for i in range(50):
            beats += (i % 5) * 0.2
            hrm.record(i * 0.05, beats)
            assert hrm.heart_rate() >= 0.0
