"""Arrival streams: seed determinism, interleaving independence, validation.

The overload experiments' serial-vs-``--jobs N`` guarantee rests on the
stream being a pure function of ``(config, seed, trace)`` -- these are
the property tests that pin that down.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import tc2_chip
from repro.tasks import (
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    ArrivalRecord,
    ArrivalStream,
    DemandTrace,
    nominal_demand_a7_pus,
    sustainable_rate_hz,
)

HORIZON_S = 30.0


def make_config(process="poisson", **overrides) -> ArrivalConfig:
    defaults = {"process": process, "rate_hz": 2.0}
    if process == "mmpp":
        defaults["mmpp_rates"] = (1.0, 6.0)
        defaults["mmpp_dwell_s"] = 2.0
    elif process == "flash-crowd":
        defaults.update(
            burst_rate_hz=8.0, burst_start_s=5.0, burst_duration_s=5.0
        )
    defaults.update(overrides)
    return ArrivalConfig(**defaults)


def drain(stream: ArrivalStream, until_s: float = HORIZON_S, step_s: float = 0.01):
    """Pop the stream tick by tick, like the engine does.

    Time comes from the tick index (``i * step_s``), matching the
    engine's clock; accumulating ``t += step_s`` drifts by float error
    and can end the loop one poll early, dropping arrivals that land in
    the final sliver before ``until_s``.
    """
    records = []
    for i in range(int(round(until_s / step_s)) + 1):
        records.append(stream.pop_due(i * step_s))
    return [r for batch in records for r in batch]


class TestSeedDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        process=st.sampled_from(ARRIVAL_PROCESSES),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.5, max_value=8.0),
    )
    def test_same_seed_same_stream(self, process, seed, rate):
        config = make_config(process, rate_hz=rate)
        first = drain(ArrivalStream(config, seed), step_s=0.5)
        second = drain(ArrivalStream(config, seed), step_s=0.5)
        assert first == second

    @settings(max_examples=20, deadline=None)
    @given(
        process=st.sampled_from(ARRIVAL_PROCESSES),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_pop_granularity_does_not_change_the_stream(self, process, seed):
        """The serial vs ``--jobs N`` guarantee at the stream level: how
        often the engine polls must not affect which arrivals exist."""
        config = make_config(process)
        fine = drain(ArrivalStream(config, seed), step_s=0.01)
        coarse = drain(ArrivalStream(config, seed), step_s=1.0)
        one_shot = ArrivalStream(config, seed).pop_due(HORIZON_S)
        assert fine == coarse == one_shot

    def test_different_seeds_differ(self):
        config = make_config()
        a = ArrivalStream(config, 1).pop_due(HORIZON_S)
        b = ArrivalStream(config, 2).pop_due(HORIZON_S)
        assert a != b

    @settings(max_examples=10, deadline=None)
    @given(
        process=st.sampled_from(ARRIVAL_PROCESSES),
        seed=st.integers(min_value=0, max_value=2**31),
        cut=st.floats(min_value=1.0, max_value=HORIZON_S - 1.0),
    )
    def test_snapshot_restore_resumes_identically(self, process, seed, cut):
        config = make_config(process)
        reference = ArrivalStream(config, seed)
        head = reference.pop_due(cut)
        state = json.loads(json.dumps(reference.snapshot_state()))
        resumed = ArrivalStream(config, seed)
        resumed.pop_due(cut)  # advance to the cut the normal way
        resumed.restore_state(state)
        assert reference.pop_due(HORIZON_S) == resumed.pop_due(HORIZON_S)
        assert head == ArrivalStream(config, seed).pop_due(cut)


class TestStreamShape:
    def test_arrivals_are_ordered_and_named_uniquely(self):
        records = ArrivalStream(make_config(), 7).pop_due(HORIZON_S)
        times = [r.arrival_s for r in records]
        assert times == sorted(times)
        assert len({r.name for r in records}) == len(records)

    def test_flash_crowd_bursts_raise_the_rate(self):
        config = make_config("flash-crowd", rate_hz=1.0, burst_rate_hz=20.0)
        records = ArrivalStream(config, 3).pop_due(HORIZON_S)
        in_burst = [r for r in records if 5.0 <= r.arrival_s < 10.0]
        outside = [r for r in records if not 5.0 <= r.arrival_s < 10.0]
        # 5 s of burst at 20x the base rate dominates 25 s of base rate.
        assert len(in_burst) > len(outside)

    def test_trace_modulation_scales_the_rate(self):
        config = make_config(rate_hz=4.0)
        trace = DemandTrace([(0.0, 0.1), (HORIZON_S, 0.1)])
        plain = ArrivalStream(config, 5).pop_due(HORIZON_S)
        damped = ArrivalStream(config, 5, trace=trace).pop_due(HORIZON_S)
        assert len(damped) < len(plain) / 2

    def test_sustainable_rate_matches_littles_law(self):
        config = make_config()
        chip = tc2_chip()
        rate = sustainable_rate_hz(chip, config)
        capacity = sum(c.max_capacity_pus for c in chip.clusters)
        offered = rate * config.mean_lifetime_s() * config.mean_demand_a7_pus()
        assert offered == pytest.approx(capacity)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"process": "laplace"},
            {"rate_hz": 0.0},
            {"rate_hz": math.inf},
            {"process": "mmpp", "mmpp_rates": (1.0,)},
            {"process": "mmpp", "mmpp_rates": (1.0, -2.0)},
            {"process": "mmpp", "mmpp_rates": (1.0, 2.0), "mmpp_dwell_s": 0.0},
            {"process": "diurnal", "diurnal_depth": 1.5},
            {"process": "diurnal", "diurnal_period_s": 0.0},
            {"process": "flash-crowd", "burst_rate_hz": 0.5, "burst_duration_s": 1.0},
            {"lifetime_s": (0.0, 2.0)},
            {"lifetime_s": (3.0, 2.0)},
            {"priorities": ()},
            {"priorities": (0,)},
            {"catalogue": ()},
            {"catalogue": (("nosuch", "l"),)},
            {"hrm_window_s": 0.0},
            {"max_phase_offset_s": -1.0},
        ],
    )
    def test_bad_configs_raise(self, overrides):
        base = {"process": "poisson", "rate_hz": 1.0}
        if overrides.get("process") == "flash-crowd":
            base.update(burst_rate_hz=2.0, burst_duration_s=1.0)
        base.update(overrides)
        with pytest.raises(ValueError):
            ArrivalConfig(**base)

    def test_flash_crowd_period_must_exceed_duration(self):
        with pytest.raises(ValueError):
            make_config("flash-crowd", burst_period_s=3.0, burst_duration_s=5.0)


class TestArrivalRecord:
    def record(self, **overrides):
        fields = dict(
            name="arr1.h264_s",
            benchmark="h264",
            input_code="s",
            priority=2,
            arrival_s=3.5,
            lifetime_s=4.0,
            phase_offset_s=1.0,
        )
        fields.update(overrides)
        return ArrivalRecord(**fields)

    def test_json_round_trip(self):
        record = self.record()
        assert ArrivalRecord.from_json_dict(record.to_json_dict()) == record

    def test_materialize_marks_and_scales(self):
        record = self.record()
        full = record.materialize(start_time_s=3.5)
        degraded = record.materialize(start_time_s=3.5, qos_factor=0.5)
        assert full.from_arrival and degraded.from_arrival
        assert full.start_time == 3.5
        assert full.duration == 4.0
        assert degraded.profile.hr_range.min_hr == pytest.approx(
            0.5 * full.profile.hr_range.min_hr
        )

    def test_materialize_rejects_bad_qos(self):
        with pytest.raises(ValueError):
            self.record().materialize(start_time_s=0.0, qos_factor=0.0)
        with pytest.raises(ValueError):
            self.record().materialize(start_time_s=0.0, qos_factor=1.5)

    def test_nominal_demand_matches_catalogue(self):
        assert self.record().nominal_demand_a7_pus() == nominal_demand_a7_pus(
            "h264", "s"
        )
