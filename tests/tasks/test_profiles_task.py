"""Unit tests for benchmark profiles and the task runtime model."""

import pytest
from hypothesis import given, strategies as st

from repro.tasks import (
    ANY_CORE_TYPE,
    BenchmarkProfile,
    ConstantPhase,
    PiecewisePhases,
    Task,
    default_hr_range,
)


def make_profile(work_limit=1.1, phases=None, nominal_hr=30.0, cost_a7=20.0):
    return BenchmarkProfile(
        name="bench",
        input_label="test",
        nominal_hr=nominal_hr,
        hr_range=default_hr_range(nominal_hr),
        cost_pu_s_per_beat_by_type={"A7": cost_a7, "A15": cost_a7 / 2.0},
        phases=phases or ConstantPhase(),
        work_limit_factor=work_limit,
    )


class TestBenchmarkProfile:
    def test_label(self):
        assert make_profile().label == "bench_test"

    def test_cost_lookup_per_type(self):
        p = make_profile(cost_a7=20.0)
        assert p.cost_pu_s_per_beat("A7") == 20.0
        assert p.cost_pu_s_per_beat("A15") == 10.0

    def test_phase_multiplier_scales_cost(self):
        assert make_profile().cost_pu_s_per_beat("A7", 1.5) == 30.0

    def test_unknown_type_raises_without_wildcard(self):
        with pytest.raises(KeyError):
            make_profile().cost_pu_s_per_beat("RISCV")

    def test_wildcard_fallback(self):
        p = BenchmarkProfile(
            name="b",
            input_label="i",
            nominal_hr=10.0,
            hr_range=default_hr_range(10.0),
            cost_pu_s_per_beat_by_type={ANY_CORE_TYPE: 5.0},
        )
        assert p.cost_pu_s_per_beat("whatever") == 5.0

    def test_nominal_demand(self):
        p = make_profile(nominal_hr=30.0, cost_a7=20.0)
        assert p.nominal_demand_pus("A7") == pytest.approx(600.0)

    def test_speedup(self):
        assert make_profile().speedup("A15", "A7") == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="b", input_label="i", nominal_hr=0.0,
                hr_range=default_hr_range(10.0),
                cost_pu_s_per_beat_by_type={"A7": 1.0},
            )
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="b", input_label="i", nominal_hr=10.0,
                hr_range=default_hr_range(10.0),
                cost_pu_s_per_beat_by_type={},
            )
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="b", input_label="i", nominal_hr=10.0,
                hr_range=default_hr_range(10.0),
                cost_pu_s_per_beat_by_type={"A7": -1.0},
            )
        with pytest.raises(ValueError):
            make_profile(work_limit=0.5)

    def test_default_hr_range_width(self):
        r = default_hr_range(30.0)
        assert r.min_hr == pytest.approx(28.5)
        assert r.max_hr == pytest.approx(31.5)


class TestTaskLifecycle:
    def test_priority_validated(self):
        with pytest.raises(ValueError):
            Task(profile=make_profile(), priority=0)

    def test_names_unique_by_default(self):
        a, b = Task(make_profile()), Task(make_profile())
        assert a.name != b.name

    def test_is_active_window(self):
        t = Task(make_profile(), start_time=5.0, duration=10.0)
        assert not t.is_active(4.9)
        assert t.is_active(5.0)
        assert t.is_active(14.9)
        assert not t.is_active(15.0)

    def test_forever_task(self):
        t = Task(make_profile())
        assert t.is_active(1e9)

    def test_local_time_clamped(self):
        t = Task(make_profile(), start_time=10.0)
        assert t.local_time(5.0) == 0.0
        assert t.local_time(12.0) == 2.0


class TestTaskExecution:
    def test_consume_generates_heartbeats(self):
        t = Task(make_profile(cost_a7=20.0))  # 20 PU-s per beat
        consumed = t.consume(granted_pus=400.0, core_type="A7", t=0.0, dt=1.0)
        assert consumed == pytest.approx(400.0)
        assert t.total_beats == pytest.approx(20.0)
        assert t.last_supply_pus == 400.0
        assert t.last_consumed_pus == pytest.approx(400.0)

    def test_work_limit_caps_consumption(self):
        # demand = 30 hb/s * 20 PU-s = 600 PUs; limit 1.1 -> 660.
        t = Task(make_profile(work_limit=1.1, cost_a7=20.0))
        consumed = t.consume(granted_pus=1000.0, core_type="A7", t=0.0, dt=1.0)
        assert consumed == pytest.approx(660.0)
        assert t.last_supply_pus == 1000.0

    def test_unlimited_task_consumes_everything(self):
        t = Task(make_profile(work_limit=None))
        assert t.consume(5000.0, "A7", 0.0, 1.0) == pytest.approx(5000.0)

    def test_faster_core_type_yields_more_beats(self):
        little = Task(make_profile(work_limit=None))
        big = Task(make_profile(work_limit=None))
        little.consume(400.0, "A7", 0.0, 1.0)
        big.consume(400.0, "A15", 0.0, 1.0)
        assert big.total_beats == pytest.approx(2 * little.total_beats)

    def test_observed_heart_rate_converges(self):
        t = Task(make_profile(cost_a7=20.0), hrm_window_s=0.5)
        for i in range(100):
            t.consume(600.0, "A7", i * 0.01, 0.01)  # exactly the demand
        assert t.observed_heart_rate() == pytest.approx(30.0, rel=0.01)

    def test_idle_tick_freezes_progress(self):
        t = Task(make_profile())
        t.consume(600.0, "A7", 0.0, 0.5)
        beats = t.total_beats
        t.idle_tick(0.5, 0.5)
        assert t.total_beats == beats
        assert t.last_supply_pus == 0.0

    def test_phase_raises_demand(self):
        t = Task(make_profile(phases=PiecewisePhases([(10.0, 1.0), (10.0, 2.0)])))
        assert t.true_demand_pus("A7", 5.0) == pytest.approx(600.0)
        assert t.true_demand_pus("A7", 15.0) == pytest.approx(1200.0)

    def test_consume_validation(self):
        t = Task(make_profile())
        with pytest.raises(ValueError):
            t.consume(-1.0, "A7", 0.0, 1.0)
        with pytest.raises(ValueError):
            t.consume(1.0, "A7", 0.0, 0.0)

    @given(st.floats(min_value=0, max_value=2000))
    def test_consumed_never_exceeds_grant(self, grant):
        t = Task(make_profile(work_limit=1.1))
        assert t.consume(grant, "A7", 0.0, 0.1) <= grant + 1e-9
