"""Unit tests for chip presets."""

import pytest

from repro.hw import synthetic_chip, tc2_chip


class TestTC2:
    def test_custom_core_counts(self):
        chip = tc2_chip(big_cores=4, little_cores=4)
        assert len(chip.cluster("big").cores) == 4
        assert len(chip.cluster("little").cores) == 4

    def test_ladders_strictly_ascending(self):
        for cluster in tc2_chip().clusters:
            freqs = list(cluster.vf_table.frequencies_mhz)
            assert freqs == sorted(freqs)
            assert len(set(freqs)) == len(freqs)

    def test_voltages_non_decreasing_with_frequency(self):
        for cluster in tc2_chip().clusters:
            volts = [l.voltage_v for l in cluster.vf_table]
            assert volts == sorted(volts)


class TestSynthetic:
    def test_shape(self):
        chip = synthetic_chip(8, 4, seed=0)
        assert len(chip.clusters) == 8
        assert all(len(c.cores) == 4 for c in chip.clusters)

    def test_max_supplies_in_requested_range(self):
        chip = synthetic_chip(32, 2, seed=5, max_supply_range=(350.0, 3000.0))
        for cluster in chip.clusters:
            assert 350.0 <= cluster.max_supply_pus <= 3000.0

    def test_seed_determinism(self):
        a = synthetic_chip(4, 2, seed=11)
        b = synthetic_chip(4, 2, seed=11)
        for ca, cb in zip(a.clusters, b.clusters):
            assert ca.max_supply_pus == cb.max_supply_pus

    def test_different_seeds_differ(self):
        a = synthetic_chip(4, 2, seed=1)
        b = synthetic_chip(4, 2, seed=2)
        assert any(
            ca.max_supply_pus != cb.max_supply_pus
            for ca, cb in zip(a.clusters, b.clusters)
        )

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            synthetic_chip(0, 4)
        with pytest.raises(ValueError):
            synthetic_chip(4, 0)

    def test_level_count(self):
        chip = synthetic_chip(2, 2, seed=3, n_levels=6)
        assert all(len(c.vf_table) == 6 for c in chip.clusters)
