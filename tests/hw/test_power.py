"""Unit tests for the analytic power model and its TC2 calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import (
    A7_POWER,
    A15_POWER,
    CorePowerParams,
    PowerModel,
    TC2_TDP_W,
    a7_vf_table,
    a15_vf_table,
)
from repro.hw.vf import VFLevel

PARAMS = CorePowerParams(k_dyn=1e-3, k_static=0.2, uncore_w=0.1)
LEVEL = VFLevel(1000.0, 1.0)


class TestCorePower:
    def test_idle_core_pays_only_leakage(self):
        assert PARAMS.core_power_w(LEVEL, 0.0) == pytest.approx(0.2)

    def test_full_utilisation(self):
        expected = 1e-3 * 1.0 * 1000.0 + 0.2
        assert PARAMS.core_power_w(LEVEL, 1.0) == pytest.approx(expected)

    def test_power_scales_linearly_with_utilisation(self):
        half = PARAMS.core_power_w(LEVEL, 0.5)
        full = PARAMS.core_power_w(LEVEL, 1.0)
        idle = PARAMS.core_power_w(LEVEL, 0.0)
        assert half == pytest.approx((full + idle) / 2)

    def test_utilisation_clamped_to_unit_interval(self):
        assert PARAMS.core_power_w(LEVEL, 1.7) == PARAMS.core_power_w(LEVEL, 1.0)
        assert PARAMS.core_power_w(LEVEL, -0.3) == PARAMS.core_power_w(LEVEL, 0.0)

    def test_voltage_squared_dependence(self):
        low = PARAMS.core_power_w(VFLevel(1000.0, 0.5), 1.0)
        high = PARAMS.core_power_w(VFLevel(1000.0, 1.0), 1.0)
        dyn_low = low - PARAMS.k_static * 0.5
        dyn_high = high - PARAMS.k_static * 1.0
        assert dyn_high == pytest.approx(4 * dyn_low)

    @given(st.floats(min_value=0, max_value=1))
    def test_power_is_monotone_in_utilisation(self, u):
        assert PARAMS.core_power_w(LEVEL, u) <= PARAMS.core_power_w(LEVEL, 1.0)
        assert PARAMS.core_power_w(LEVEL, u) >= PARAMS.core_power_w(LEVEL, 0.0)


class TestClusterPower:
    def test_uncore_counted_once(self):
        model = PowerModel()
        one = model.cluster_power_w(PARAMS, LEVEL, [0.0])
        two = model.cluster_power_w(PARAMS, LEVEL, [0.0, 0.0])
        assert two - one == pytest.approx(PARAMS.k_static * LEVEL.voltage_v)

    def test_powered_down_cluster_is_zero(self):
        model = PowerModel()
        assert model.cluster_power_w(PARAMS, LEVEL, [1.0, 1.0], powered=False) == 0.0

    def test_max_cluster_power(self):
        model = PowerModel()
        assert model.max_cluster_power_w(PARAMS, LEVEL, 3) == pytest.approx(
            model.cluster_power_w(PARAMS, LEVEL, [1.0, 1.0, 1.0])
        )


class TestTC2Calibration:
    """The paper's measured envelope: A7 ~2 W, A15 ~6 W, TDP 8 W."""

    def test_little_cluster_peaks_near_two_watts(self):
        model = PowerModel()
        watts = model.max_cluster_power_w(A7_POWER, a7_vf_table().max_level, 3)
        assert 1.7 <= watts <= 2.3

    def test_big_cluster_peaks_near_six_watts(self):
        model = PowerModel()
        watts = model.max_cluster_power_w(A15_POWER, a15_vf_table().max_level, 2)
        assert 5.4 <= watts <= 6.6

    def test_chip_peak_below_platform_tdp(self):
        model = PowerModel()
        total = model.max_cluster_power_w(
            A7_POWER, a7_vf_table().max_level, 3
        ) + model.max_cluster_power_w(A15_POWER, a15_vf_table().max_level, 2)
        assert total <= TC2_TDP_W * 1.05

    def test_big_costs_more_per_pu_than_little(self):
        model = PowerModel()
        big = model.max_cluster_power_w(A15_POWER, a15_vf_table().max_level, 2)
        little = model.max_cluster_power_w(A7_POWER, a7_vf_table().max_level, 3)
        big_per_pu = big / (2 * a15_vf_table().max_level.supply_pus)
        little_per_pu = little / (3 * a7_vf_table().max_level.supply_pus)
        assert big_per_pu > 1.5 * little_per_pu
