"""Unit tests for the RC thermal model and cycle counting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hw import (
    ThermalConfig,
    ThermalCycleCounter,
    ThermalModel,
    ThermalParams,
    ThermalProtectionConfig,
    track_thermals,
)


class TestThermalParams:
    def test_steady_state(self):
        params = ThermalParams(resistance_k_per_w=10.0, ambient_c=25.0)
        assert params.steady_state_c(5.0) == pytest.approx(75.0)

    def test_time_constant(self):
        params = ThermalParams(resistance_k_per_w=9.0, capacitance_j_per_k=0.35)
        assert params.time_constant_s == pytest.approx(3.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalParams(resistance_k_per_w=0.0)
        with pytest.raises(ValueError):
            ThermalParams(capacitance_j_per_k=-1.0)


class TestThermalModel:
    def test_starts_at_ambient(self):
        model = ThermalModel(["big"], params={"big": ThermalParams(ambient_c=25.0)})
        assert model.temperature_c("big") == 25.0

    def test_heats_toward_steady_state(self):
        params = ThermalParams(resistance_k_per_w=10.0, capacitance_j_per_k=0.1)
        model = ThermalModel(["c"], params={"c": params})
        for _ in range(1000):
            model.step({"c": 4.0}, dt=0.05)
        assert model.temperature_c("c") == pytest.approx(65.0, abs=0.5)

    def test_cools_back_to_ambient(self):
        params = ThermalParams(resistance_k_per_w=10.0, capacitance_j_per_k=0.1)
        model = ThermalModel(["c"], params={"c": params}, initial_c=80.0)
        for _ in range(1000):
            model.step({"c": 0.0}, dt=0.05)
        assert model.temperature_c("c") == pytest.approx(25.0, abs=0.5)

    def test_exponential_time_constant(self):
        params = ThermalParams(resistance_k_per_w=10.0, capacitance_j_per_k=0.1)
        model = ThermalModel(["c"], params={"c": params})
        model.step({"c": 4.0}, dt=params.time_constant_s)  # one tau, one step
        expected = 65.0 + (25.0 - 65.0) * math.exp(-1.0)
        assert model.temperature_c("c") == pytest.approx(expected)

    def test_stable_for_huge_dt(self):
        model = ThermalModel(["c"])
        model.step({"c": 6.0}, dt=1e6)
        assert model.temperature_c("c") == pytest.approx(
            ThermalParams().steady_state_c(6.0)
        )

    def test_missing_power_means_idle(self):
        model = ThermalModel(["a", "b"], initial_c=50.0)
        model.step({"a": 3.0}, dt=0.1)
        assert model.temperature_c("b") < 50.0

    def test_max_temperature(self):
        model = ThermalModel(["a", "b"])
        model.step({"a": 6.0, "b": 1.0}, dt=1.0)
        assert model.max_temperature_c() == model.temperature_c("a")

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel([])
        with pytest.raises(ValueError):
            ThermalModel(["c"]).step({}, dt=0.0)

    @given(st.floats(min_value=0, max_value=10))
    def test_temperature_bounded_by_steady_state(self, power):
        params = ThermalParams()
        model = ThermalModel(["c"], params={"c": params})
        for _ in range(50):
            model.step({"c": power}, dt=0.1)
            assert (
                params.ambient_c - 1e-9
                <= model.temperature_c("c")
                <= params.steady_state_c(power) + 1e-9
            )

    @given(
        st.floats(min_value=0.0, max_value=150.0),
        st.floats(min_value=0.0, max_value=15.0),
        st.lists(
            st.floats(min_value=1e-4, max_value=100.0), min_size=1, max_size=30
        ),
    )
    def test_never_overshoots_steady_state(self, initial_c, power, dts):
        """For constant power the trace stays between T0 and T_ss.

        The exact-exponential integrator is monotone toward the steady
        state for any step size -- no dt, however large or ragged, may
        produce an overshoot (the instability Euler integration has).
        """
        params = ThermalParams()
        model = ThermalModel(["c"], params={"c": params}, initial_c=initial_c)
        steady = params.steady_state_c(power)
        low, high = min(initial_c, steady), max(initial_c, steady)
        previous = initial_c
        for dt in dts:
            temp = model.step({"c": power}, dt)["c"]
            assert low - 1e-9 <= temp <= high + 1e-9
            # ... and monotonically approaches the steady state.
            assert abs(temp - steady) <= abs(previous - steady) + 1e-9
            previous = temp

    def test_resistance_factor_raises_steady_state(self):
        params = ThermalParams(resistance_k_per_w=10.0)
        model = ThermalModel(["c"], params={"c": params})
        model.set_resistance_factor("c", 3.0)
        model.step({"c": 4.0}, dt=1e6)  # settle
        assert model.temperature_c("c") == pytest.approx(25.0 + 4.0 * 30.0)
        assert model.resistance_factor("c") == 3.0

    def test_power_injection_adds_unaccounted_heat(self):
        params = ThermalParams(resistance_k_per_w=10.0)
        model = ThermalModel(["c"], params={"c": params})
        model.set_power_injection("c", 2.0)
        model.step({"c": 1.0}, dt=1e6)
        assert model.temperature_c("c") == pytest.approx(25.0 + 3.0 * 10.0)
        assert model.power_injection_w("c") == 2.0

    def test_fault_seam_validation(self):
        model = ThermalModel(["c"])
        with pytest.raises(ValueError):
            model.set_resistance_factor("c", 0.0)
        with pytest.raises(ValueError):
            model.set_resistance_factor("c", math.inf)
        with pytest.raises(ValueError):
            model.set_power_injection("c", -1.0)

    def test_snapshot_roundtrip_is_bit_exact(self):
        model = ThermalModel(["a", "b"])
        model.set_resistance_factor("a", 2.0)
        model.set_power_injection("b", 1.5)
        for _ in range(7):
            model.step({"a": 3.0, "b": 1.0}, dt=0.03)
        clone = ThermalModel(["a", "b"])
        clone.restore_state(model.snapshot_state())
        for _ in range(5):
            assert model.step({"a": 2.0, "b": 4.0}, dt=0.01) == clone.step(
                {"a": 2.0, "b": 4.0}, dt=0.01
            )


class TestCycleCounter:
    def test_no_cycles_for_monotone_trace(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [25, 30, 35, 40, 45]:
            counter.update(float(t))
        assert counter.cycles == 0

    def test_counts_large_reversals(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [25, 40, 30, 40, 30]:
            counter.update(float(t))
        assert counter.cycles == 3

    def test_ignores_small_ripple(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [40.0, 41.0, 39.5, 41.0, 40.0, 41.5]:
            counter.update(t)
        assert counter.cycles == 0

    def test_exact_threshold_touch_counts(self):
        # A reversal of exactly threshold_k is a cycle (>=, not >).
        counter = ThermalCycleCounter(threshold_k=3.0)
        counter.update(40.0)
        counter.update(37.0)  # down exactly 3.0
        assert counter.cycles == 1
        counter.update(40.0)  # back up exactly 3.0
        assert counter.cycles == 2

    def test_just_below_threshold_never_counts(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [40.0, 37.1, 40.0, 37.1, 40.0]:
            counter.update(t)
        assert counter.cycles == 0

    def test_single_sample_spike_counts_once(self):
        # One hot sample and straight back: exactly one reversal.
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [40.0, 48.0, 40.0, 40.0, 40.0]:
            counter.update(t)
        assert counter.cycles == 1

    def test_single_sample_spike_below_threshold_is_ignored(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [40.0, 42.0, 40.0, 40.0]:
            counter.update(t)
        assert counter.cycles == 0

    def test_first_sample_establishes_baseline_without_cycling(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        assert counter.update(90.0) == 0
        assert counter.update(25.0) == 1  # huge drop is still one cycle

    def test_snapshot_roundtrip_preserves_direction(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [25.0, 40.0, 30.0]:  # mid-stream, trending down
            counter.update(t)
        clone = ThermalCycleCounter(threshold_k=3.0)
        clone.restore_state(counter.snapshot_state())
        for t in [28.0, 40.0, 25.0]:
            assert counter.update(t) == clone.update(t)
        assert counter.cycles == clone.cycles


class TestThermalConfigs:
    def test_protection_thresholds_must_ascend(self):
        with pytest.raises(ValueError):
            ThermalProtectionConfig(warn_c=80.0, throttle_c=70.0)
        with pytest.raises(ValueError):
            ThermalProtectionConfig(shed_c=96.0, trip_c=95.0)

    def test_protection_knob_validation(self):
        with pytest.raises(ValueError):
            ThermalProtectionConfig(hysteresis_k=0.0)
        with pytest.raises(ValueError):
            ThermalProtectionConfig(check_period_s=0.0)
        with pytest.raises(ValueError):
            ThermalProtectionConfig(warn_surcharge=-0.1)

    def test_thermal_config_validation(self):
        with pytest.raises(ValueError):
            ThermalConfig(sensor_noise_std_c=-1.0)
        with pytest.raises(ValueError):
            ThermalConfig(cycle_threshold_k=0.0)
        assert ThermalConfig().protection is None


class TestTrackThermals:
    def test_replay_produces_traces_and_counts(self):
        series = [(0.1, {"big": 6.0, "little": 1.0})] * 100
        traces, cycles = track_thermals(series, ["big", "little"])
        assert len(traces["big"]) == 100
        assert traces["big"][-1] > traces["little"][-1]
        assert cycles == {"big": 0, "little": 0}

    def test_oscillating_power_causes_cycles(self):
        series = []
        for i in range(200):
            watts = 6.0 if (i // 25) % 2 == 0 else 0.5
            series.append((0.5, {"c": watts}))
        _, cycles = track_thermals(series, ["c"], cycle_threshold_k=3.0)
        assert cycles["c"] >= 4
