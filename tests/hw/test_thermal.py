"""Unit tests for the RC thermal model and cycle counting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hw import ThermalCycleCounter, ThermalModel, ThermalParams, track_thermals


class TestThermalParams:
    def test_steady_state(self):
        params = ThermalParams(resistance_k_per_w=10.0, ambient_c=25.0)
        assert params.steady_state_c(5.0) == pytest.approx(75.0)

    def test_time_constant(self):
        params = ThermalParams(resistance_k_per_w=9.0, capacitance_j_per_k=0.35)
        assert params.time_constant_s == pytest.approx(3.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalParams(resistance_k_per_w=0.0)
        with pytest.raises(ValueError):
            ThermalParams(capacitance_j_per_k=-1.0)


class TestThermalModel:
    def test_starts_at_ambient(self):
        model = ThermalModel(["big"], params={"big": ThermalParams(ambient_c=25.0)})
        assert model.temperature_c("big") == 25.0

    def test_heats_toward_steady_state(self):
        params = ThermalParams(resistance_k_per_w=10.0, capacitance_j_per_k=0.1)
        model = ThermalModel(["c"], params={"c": params})
        for _ in range(1000):
            model.step({"c": 4.0}, dt=0.05)
        assert model.temperature_c("c") == pytest.approx(65.0, abs=0.5)

    def test_cools_back_to_ambient(self):
        params = ThermalParams(resistance_k_per_w=10.0, capacitance_j_per_k=0.1)
        model = ThermalModel(["c"], params={"c": params}, initial_c=80.0)
        for _ in range(1000):
            model.step({"c": 0.0}, dt=0.05)
        assert model.temperature_c("c") == pytest.approx(25.0, abs=0.5)

    def test_exponential_time_constant(self):
        params = ThermalParams(resistance_k_per_w=10.0, capacitance_j_per_k=0.1)
        model = ThermalModel(["c"], params={"c": params})
        model.step({"c": 4.0}, dt=params.time_constant_s)  # one tau, one step
        expected = 65.0 + (25.0 - 65.0) * math.exp(-1.0)
        assert model.temperature_c("c") == pytest.approx(expected)

    def test_stable_for_huge_dt(self):
        model = ThermalModel(["c"])
        model.step({"c": 6.0}, dt=1e6)
        assert model.temperature_c("c") == pytest.approx(
            ThermalParams().steady_state_c(6.0)
        )

    def test_missing_power_means_idle(self):
        model = ThermalModel(["a", "b"], initial_c=50.0)
        model.step({"a": 3.0}, dt=0.1)
        assert model.temperature_c("b") < 50.0

    def test_max_temperature(self):
        model = ThermalModel(["a", "b"])
        model.step({"a": 6.0, "b": 1.0}, dt=1.0)
        assert model.max_temperature_c() == model.temperature_c("a")

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel([])
        with pytest.raises(ValueError):
            ThermalModel(["c"]).step({}, dt=0.0)

    @given(st.floats(min_value=0, max_value=10))
    def test_temperature_bounded_by_steady_state(self, power):
        params = ThermalParams()
        model = ThermalModel(["c"], params={"c": params})
        for _ in range(50):
            model.step({"c": power}, dt=0.1)
            assert (
                params.ambient_c - 1e-9
                <= model.temperature_c("c")
                <= params.steady_state_c(power) + 1e-9
            )


class TestCycleCounter:
    def test_no_cycles_for_monotone_trace(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [25, 30, 35, 40, 45]:
            counter.update(float(t))
        assert counter.cycles == 0

    def test_counts_large_reversals(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [25, 40, 30, 40, 30]:
            counter.update(float(t))
        assert counter.cycles == 3

    def test_ignores_small_ripple(self):
        counter = ThermalCycleCounter(threshold_k=3.0)
        for t in [40.0, 41.0, 39.5, 41.0, 40.0, 41.5]:
            counter.update(t)
        assert counter.cycles == 0


class TestTrackThermals:
    def test_replay_produces_traces_and_counts(self):
        series = [(0.1, {"big": 6.0, "little": 1.0})] * 100
        traces, cycles = track_thermals(series, ["big", "little"])
        assert len(traces["big"]) == 100
        assert traces["big"][-1] > traces["little"][-1]
        assert cycles == {"big": 0, "little": 0}

    def test_oscillating_power_causes_cycles(self):
        series = []
        for i in range(200):
            watts = 6.0 if (i // 25) % 2 == 0 else 0.5
            series.append((0.5, {"c": watts}))
        _, cycles = track_thermals(series, ["c"], cycle_threshold_k=3.0)
        assert cycles["c"] >= 4
