"""Tests for power-model calibration utilities."""

import pytest

from repro.hw import (
    A7_POWER,
    A15_POWER,
    CalibrationTarget,
    a7_vf_table,
    a15_vf_table,
    energy_per_pu_w,
    fit_power_params,
    verify_calibration,
)
from repro.hw.vf import VFLevel


class TestFit:
    def test_fit_hits_target_exactly(self):
        target = CalibrationTarget(
            max_power_w=6.0,
            n_cores=2,
            top_level=VFLevel(1200.0, 1.2),
            dynamic_fraction=0.8,
            uncore_w=0.2,
        )
        params = fit_power_params(target)
        ok, measured = verify_calibration(
            params,
            a15_vf_table(),
            n_cores=2,
            expected_max_w=6.0,
            tolerance=0.01,
        )
        assert ok, measured

    def test_dynamic_fraction_respected(self):
        target = CalibrationTarget(
            max_power_w=4.0, n_cores=2, top_level=VFLevel(1000.0, 1.0),
            dynamic_fraction=0.6, uncore_w=0.0,
        )
        params = fit_power_params(target)
        dynamic = params.k_dyn * 1.0 * 1000.0
        static = params.k_static * 1.0
        assert dynamic / (dynamic + static) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            CalibrationTarget(max_power_w=0.1, n_cores=1,
                              top_level=VFLevel(500, 1.0), uncore_w=0.2)
        with pytest.raises(ValueError):
            CalibrationTarget(max_power_w=2.0, n_cores=1,
                              top_level=VFLevel(500, 1.0), dynamic_fraction=1.0)
        with pytest.raises(ValueError):
            CalibrationTarget(max_power_w=2.0, n_cores=0,
                              top_level=VFLevel(500, 1.0))


class TestShippedPresets:
    def test_tc2_presets_verify_against_paper_envelope(self):
        ok_little, w_little = verify_calibration(
            A7_POWER, a7_vf_table(), 3, expected_max_w=2.0, tolerance=0.15
        )
        ok_big, w_big = verify_calibration(
            A15_POWER, a15_vf_table(), 2, expected_max_w=6.0, tolerance=0.15
        )
        assert ok_little, w_little
        assert ok_big, w_big

    def test_energy_per_pu_ranks_little_cheaper(self):
        little = energy_per_pu_w(A7_POWER, a7_vf_table(), 3)
        big = energy_per_pu_w(A15_POWER, a15_vf_table(), 2)
        assert little < big

    def test_energy_per_pu_level_argument(self):
        low = energy_per_pu_w(A15_POWER, a15_vf_table(), 2, level_index=0)
        high = energy_per_pu_w(A15_POWER, a15_vf_table(), 2)
        assert low != high
