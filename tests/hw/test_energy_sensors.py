"""Unit tests for energy metering and the hwmon-style sensors."""

import pytest

from repro.hw import EnergyMeter, PowerSensor, tc2_chip


class TestEnergyMeter:
    def test_integrates_power_over_time(self):
        meter = EnergyMeter()
        meter.record({"big": 2.0, "little": 1.0}, dt=0.5)
        meter.record({"big": 2.0, "little": 1.0}, dt=0.5)
        assert meter.total_energy_j == pytest.approx(3.0)
        assert meter.cluster_energy_j("big") == pytest.approx(2.0)
        assert meter.elapsed_s == pytest.approx(1.0)

    def test_average_power(self):
        meter = EnergyMeter()
        meter.record({"c": 4.0}, dt=1.0)
        meter.record({"c": 2.0}, dt=1.0)
        assert meter.average_power_w == pytest.approx(3.0)

    def test_average_power_empty_is_zero(self):
        assert EnergyMeter().average_power_w == 0.0

    def test_unknown_cluster_energy_is_zero(self):
        assert EnergyMeter().cluster_energy_j("nope") == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter().record({"c": 1.0}, dt=-0.1)

    def test_reset(self):
        meter = EnergyMeter()
        meter.record({"c": 1.0}, dt=1.0)
        meter.reset()
        assert meter.total_energy_j == 0.0
        assert meter.elapsed_s == 0.0


class TestPowerSensor:
    def test_noiseless_sample_matches_model(self):
        chip = tc2_chip()
        for core in chip.cores:
            core.utilization = 0.5
        sensor = PowerSensor(chip)
        sample = sensor.sample()
        assert sample.chip_power_w == pytest.approx(chip.total_power_w())
        assert set(sample.cluster_power_w) == {"big", "little"}
        assert sample.cluster_frequency_mhz["big"] == chip.cluster("big").frequency_mhz

    def test_last_sample_cached(self):
        chip = tc2_chip()
        sensor = PowerSensor(chip)
        assert sensor.last_sample is None
        sample = sensor.sample()
        assert sensor.last_sample is sample

    def test_noise_is_reproducible_with_seed(self):
        chip = tc2_chip()
        for core in chip.cores:
            core.utilization = 1.0
        a = PowerSensor(chip, noise_std_w=0.2, seed=7).sample()
        b = PowerSensor(chip, noise_std_w=0.2, seed=7).sample()
        assert a.chip_power_w == pytest.approx(b.chip_power_w)

    def test_noise_never_negative(self):
        chip = tc2_chip()
        chip.cluster("big").power_down()
        chip.cluster("little").power_down()
        sensor = PowerSensor(chip, noise_std_w=5.0, seed=3)
        for _ in range(50):
            sample = sensor.sample()
            assert all(w >= 0.0 for w in sample.cluster_power_w.values())

    def test_powered_down_cluster_reads_zero_voltage(self):
        chip = tc2_chip()
        chip.cluster("big").power_down()
        sample = PowerSensor(chip).sample()
        assert sample.cluster_voltage_v["big"] == 0.0
        assert sample.cluster_power_w["big"] == 0.0
