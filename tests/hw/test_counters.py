"""Unit tests for the synthetic performance-counter emitter."""

import pytest

from repro.hw import (
    COUNTER_NAMES,
    CounterConfig,
    CounterEmitter,
    tc2_chip,
)


def emitter(seed=7, **kwargs):
    chip = tc2_chip()
    return chip, CounterEmitter(chip, CounterConfig(**kwargs), seed)


def warm_chip(chip, utilization=0.6):
    for core in chip.iter_cores():
        core.utilization = utilization


class TestCounterConfigValidation:
    def test_defaults_are_valid(self):
        CounterConfig()

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError, match="noise_scale must be non-negative"):
            CounterConfig(noise_scale=-0.1)

    def test_cross_talk_range(self):
        with pytest.raises(ValueError, match="cross_talk"):
            CounterConfig(cross_talk=1.0)
        with pytest.raises(ValueError, match="cross_talk"):
            CounterConfig(cross_talk=-0.01)

    def test_stall_fraction_range(self):
        with pytest.raises(ValueError, match="stall_fraction"):
            CounterConfig(stall_fraction=1.5)

    def test_ipc_base_positive(self):
        with pytest.raises(ValueError, match="ipc_base"):
            CounterConfig(ipc_base=0.0)

    def test_ipc_droop_range(self):
        with pytest.raises(ValueError, match="ipc_droop"):
            CounterConfig(ipc_droop=1.2)


class TestCounterEmitter:
    def test_sample_covers_every_core(self):
        chip, em = emitter()
        warm_chip(chip)
        sample = em.sample(0.0, 0.01)
        core_ids = {core.core_id for core in chip.iter_cores()}
        assert set(sample.core_counters) == core_ids
        for counters in sample.core_counters.values():
            assert set(counters) == set(COUNTER_NAMES)

    def test_deterministic_across_instances(self):
        (chip_a, a), (chip_b, b) = emitter(seed=11), emitter(seed=11)
        warm_chip(chip_a)
        warm_chip(chip_b)
        for tick in range(20):
            sa = a.sample(tick * 0.01, 0.01)
            sb = b.sample(tick * 0.01, 0.01)
            assert sa.core_counters == sb.core_counters

    def test_seed_changes_samples(self):
        (chip_a, a), (chip_b, b) = emitter(seed=1), emitter(seed=2)
        warm_chip(chip_a)
        warm_chip(chip_b)
        assert (
            a.sample(0.0, 0.01).core_counters
            != b.sample(0.0, 0.01).core_counters
        )

    def test_busier_cores_cycle_more(self):
        chip, em = emitter(noise_scale=0.0, cross_talk=0.0)
        busy, idle = chip.cores[0], chip.cores[1]
        busy.utilization = 0.9
        idle.utilization = 0.1
        sample = em.sample(0.0, 0.01)
        assert (
            sample.core_counters[busy.core_id]["active_cycles"]
            > sample.core_counters[idle.core_id]["active_cycles"]
        )

    def test_gated_cluster_reads_pure_idle(self):
        chip, em = emitter()
        warm_chip(chip)
        chip.cluster("big").power_down()
        sample = em.sample(0.0, 0.01)
        for core in chip.cluster("big").cores:
            counters = sample.core_counters[core.core_id]
            assert counters["active_cycles"] == 0.0
            assert counters["instr_proxy"] == 0.0
            assert counters["mem_stall"] == 0.0
            assert counters["idle_s"] == pytest.approx(0.01)

    def test_gated_cluster_draws_no_rng(self):
        """Power gating must not consume randomness, or gating on/off
        would shift every later sample and break replay."""
        chip, em = emitter(seed=3)
        warm_chip(chip)
        for cluster in chip.clusters:
            cluster.power_down()
        before = em.rng_state()
        em.sample(0.0, 0.01)
        assert em.rng_state() == before

    def test_cross_talk_bleeds_between_cores(self):
        chip_clean, clean = emitter(noise_scale=0.0, cross_talk=0.0)
        chip_leaky, leaky = emitter(noise_scale=0.0, cross_talk=0.5)
        chip_clean.cores[0].utilization = 1.0  # big.0 busy, rest idle
        chip_leaky.cores[0].utilization = 1.0
        sample_clean = clean.sample(0.0, 0.01)
        sample_leaky = leaky.sample(0.0, 0.01)
        victim = chip_clean.cluster("big").cores[1].core_id
        assert sample_clean.core_counters[victim]["active_cycles"] == 0.0
        assert sample_leaky.core_counters[victim]["active_cycles"] > 0.0

    def test_counters_never_negative(self):
        chip, em = emitter(noise_scale=5.0)  # absurd noise still clamps
        warm_chip(chip, utilization=0.2)
        for tick in range(50):
            sample = em.sample(tick * 0.01, 0.01)
            for counters in sample.core_counters.values():
                assert all(v >= 0.0 for v in counters.values())

    def test_cluster_totals_sum_cores(self):
        chip, em = emitter()
        warm_chip(chip)
        sample = em.sample(0.0, 0.01)
        totals = sample.cluster_totals(chip)
        for cluster in chip.clusters:
            for name in COUNTER_NAMES:
                expected = sum(
                    sample.core_counters[c.core_id][name]
                    for c in cluster.cores
                )
                assert totals[cluster.cluster_id][name] == pytest.approx(
                    expected
                )

    def test_rng_state_roundtrip(self):
        chip, em = emitter(seed=5)
        warm_chip(chip)
        em.sample(0.0, 0.01)
        state = em.rng_state()
        a = em.sample(0.01, 0.01)
        em.set_rng_state(state)
        b = em.sample(0.01, 0.01)
        assert a.core_counters == b.core_counters
