"""Unit tests for V-F levels and tables."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import VFLevel, VFTable, vf_table_from_pairs


def make_table():
    return vf_table_from_pairs([(350, 0.85), (500, 0.9), (800, 1.0), (1000, 1.05)])


class TestVFLevel:
    def test_supply_equals_frequency(self):
        assert VFLevel(700.0, 0.95).supply_pus == 700.0

    def test_str_is_human_readable(self):
        assert "700" in str(VFLevel(700.0, 0.95))


class TestVFTableConstruction:
    def test_levels_sorted_ascending(self):
        table = VFTable([VFLevel(1000, 1.05), VFLevel(350, 0.85)])
        assert [l.frequency_mhz for l in table] == [350, 1000]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VFTable([])

    def test_duplicate_frequency_rejected(self):
        with pytest.raises(ValueError):
            VFTable([VFLevel(500, 0.9), VFLevel(500, 1.0)])

    def test_len_and_getitem(self):
        table = make_table()
        assert len(table) == 4
        assert table[0].frequency_mhz == 350
        assert table[-1].frequency_mhz == 1000

    def test_min_max_levels(self):
        table = make_table()
        assert table.min_level.frequency_mhz == 350
        assert table.max_level.frequency_mhz == 1000
        assert table.max_index == 3


class TestVFTableLookups:
    def test_index_of_frequency(self):
        assert make_table().index_of_frequency(800) == 2

    def test_index_of_unknown_frequency_raises(self):
        with pytest.raises(KeyError):
            make_table().index_of_frequency(666)

    def test_clamp_index(self):
        table = make_table()
        assert table.clamp_index(-5) == 0
        assert table.clamp_index(99) == 3
        assert table.clamp_index(2) == 2

    def test_step_clamps_at_both_ends(self):
        table = make_table()
        assert table.step(0, -1) == 0
        assert table.step(3, +1) == 3
        assert table.step(1, +1) == 2

    def test_supply_at(self):
        assert make_table().supply_at(1) == 500


class TestIndexForDemand:
    def test_exact_match(self):
        assert make_table().index_for_demand(500) == 1

    def test_rounds_up_between_levels(self):
        # 600 PUs sits between 500 and 800 -> next level up (paper 3.2.4).
        assert make_table().index_for_demand(600) == 2

    def test_below_minimum_gives_lowest(self):
        assert make_table().index_for_demand(10) == 0

    def test_above_maximum_saturates(self):
        assert make_table().index_for_demand(5000) == 3

    def test_zero_demand(self):
        assert make_table().index_for_demand(0) == 0

    @given(st.floats(min_value=0, max_value=2000, allow_nan=False))
    def test_chosen_level_covers_demand_or_is_max(self, demand):
        table = make_table()
        index = table.index_for_demand(demand)
        if index < table.max_index:
            assert table.supply_at(index) >= demand
        if index > 0:
            # The level below would not have covered the demand.
            assert table.supply_at(index - 1) < demand
