"""Unit tests for the DVFS regulator."""

import pytest

from repro.hw import DVFSRegulator, vf_table_from_pairs


def make_regulator(latency=0.001):
    table = vf_table_from_pairs([(350, 0.85), (500, 0.9), (800, 1.0), (1000, 1.05)])
    return DVFSRegulator(table=table, level_index=0, transition_latency_s=latency)


class TestRequests:
    def test_request_starts_transition(self):
        reg = make_regulator()
        assert reg.request(2)
        assert reg.in_transition
        assert reg.target_index == 2
        assert reg.level_index == 0  # not yet applied

    def test_request_same_level_is_noop(self):
        reg = make_regulator()
        assert not reg.request(0)
        assert not reg.in_transition

    def test_request_clamps_out_of_range(self):
        reg = make_regulator()
        reg.request(99)
        assert reg.target_index == 3

    def test_step_relative_to_target(self):
        reg = make_regulator()
        reg.step(+1)
        reg.step(+1)  # retargets the pending transition
        assert reg.target_index == 2

    def test_step_down_at_bottom_is_noop(self):
        reg = make_regulator()
        assert not reg.step(-1)


class TestTransitions:
    def test_transition_applies_after_latency(self):
        reg = make_regulator(latency=0.003)
        reg.request(1)
        assert not reg.tick(0.001)
        assert not reg.tick(0.001)
        assert reg.tick(0.001)  # completes exactly here
        assert reg.level_index == 1
        assert not reg.in_transition

    def test_tick_without_pending_returns_false(self):
        reg = make_regulator()
        assert not reg.tick(0.01)

    def test_retarget_does_not_restart_clock(self):
        reg = make_regulator(latency=0.002)
        reg.request(1)
        reg.tick(0.001)
        reg.request(3)  # retarget mid-flight
        assert reg.tick(0.001)
        assert reg.level_index == 3

    def test_transitions_counter(self):
        reg = make_regulator()
        reg.request(1)
        reg.tick(0.002)
        reg.request(2)
        reg.tick(0.002)
        assert reg.transitions == 2

    def test_force_level_cancels_pending(self):
        reg = make_regulator()
        reg.request(3)
        reg.force_level(1)
        assert reg.level_index == 1
        assert not reg.in_transition
        assert not reg.tick(1.0)

    def test_initial_index_clamped(self):
        table = vf_table_from_pairs([(350, 0.85), (500, 0.9)])
        reg = DVFSRegulator(table=table, level_index=10)
        assert reg.level_index == 1
