"""Unit tests for the measured migration-cost model."""

import pytest

from repro.hw import CostRange, MigrationCostModel, tc2_chip, synthetic_chip


class TestCostRange:
    def test_endpoints(self):
        r = CostRange(1e-3, 2e-3)
        assert r.at_fraction(1.0) == pytest.approx(1e-3)
        assert r.at_fraction(0.0) == pytest.approx(2e-3)

    def test_midpoint(self):
        r = CostRange(1e-3, 2e-3)
        assert r.at_fraction(0.5) == pytest.approx(1.5e-3)

    def test_fraction_clamped(self):
        r = CostRange(1e-3, 2e-3)
        assert r.at_fraction(7.0) == pytest.approx(1e-3)
        assert r.at_fraction(-1.0) == pytest.approx(2e-3)


class TestTC2Costs:
    """Ranges measured on the board (paper section 5.1)."""

    def setup_method(self):
        self.chip = tc2_chip()
        self.model = MigrationCostModel()
        self.big = self.chip.cluster("big")
        self.little = self.chip.cluster("little")

    def test_within_big_cluster(self):
        cost = self.model.cost_s(self.big, self.big)
        assert 54e-6 <= cost <= 105e-6

    def test_within_little_cluster(self):
        cost = self.model.cost_s(self.little, self.little)
        assert 71e-6 <= cost <= 167e-6

    def test_little_to_big(self):
        cost = self.model.cost_s(self.little, self.big)
        assert 1.88e-3 <= cost <= 2.16e-3

    def test_big_to_little_is_most_expensive(self):
        down = self.model.cost_s(self.big, self.little)
        up = self.model.cost_s(self.little, self.big)
        assert 3.54e-3 <= down <= 3.83e-3
        assert down > up

    def test_higher_destination_frequency_lowers_cost(self):
        slow = self.model.cost_s(self.little, self.big)  # big at min level
        self.big.regulator.force_level(self.big.vf_table.max_index)
        fast = self.model.cost_s(self.little, self.big)
        assert fast < slow
        assert fast == pytest.approx(1.88e-3)

    def test_is_inter_cluster(self):
        assert self.model.is_inter_cluster(self.big, self.little)
        assert not self.model.is_inter_cluster(self.big, self.big)


class TestFallbacks:
    def test_unknown_types_use_defaults(self):
        chip = synthetic_chip(3, 2, seed=1)
        model = MigrationCostModel()
        a, b = chip.clusters[0], chip.clusters[1]
        inter = model.cost_s(a, b)
        intra = model.cost_s(a, a)
        assert 0 < intra < inter
        assert inter <= 4e-3
