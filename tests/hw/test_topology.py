"""Unit tests for cores, clusters and the chip."""

import pytest

from repro.hw import Chip, Cluster, CorePowerParams, PowerModel, tc2_chip, vf_table_from_pairs

PARAMS = CorePowerParams(k_dyn=1e-3, k_static=0.2, uncore_w=0.1)


def make_cluster(n_cores=2, cluster_id="c0"):
    return Cluster(
        cluster_id=cluster_id,
        core_type="A7",
        n_cores=n_cores,
        vf_table=vf_table_from_pairs([(350, 0.85), (500, 0.9), (1000, 1.05)]),
        power_params=PARAMS,
    )


class TestCluster:
    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            make_cluster(n_cores=0)

    def test_starts_at_lowest_level(self):
        assert make_cluster().frequency_mhz == 350

    def test_supply_and_capacity(self):
        cluster = make_cluster(n_cores=3)
        cluster.regulator.force_level(2)
        assert cluster.supply_pus == 1000
        assert cluster.capacity_pus == 3000
        assert cluster.max_supply_pus == 1000
        assert cluster.max_capacity_pus == 3000

    def test_power_down_zeroes_supply_and_utilization(self):
        cluster = make_cluster()
        cluster.cores[0].utilization = 0.7
        cluster.power_down()
        assert cluster.supply_pus == 0.0
        assert cluster.frequency_mhz == 0.0
        assert cluster.cores[0].utilization == 0.0
        assert cluster.power_w(PowerModel()) == 0.0
        cluster.power_up()
        assert cluster.supply_pus == 350

    def test_core_ids_namespaced_by_cluster(self):
        cluster = make_cluster(cluster_id="little")
        assert [c.core_id for c in cluster.cores] == ["little.0", "little.1"]

    def test_core_supply_follows_cluster(self):
        cluster = make_cluster()
        core = cluster.cores[0]
        assert core.supply_pus == 350
        cluster.regulator.force_level(1)
        assert core.supply_pus == 500
        assert core.max_supply_pus == 1000


class TestChip:
    def test_requires_clusters(self):
        with pytest.raises(ValueError):
            Chip(name="empty", clusters=[])

    def test_duplicate_cluster_ids_rejected(self):
        with pytest.raises(ValueError):
            Chip(name="dup", clusters=[make_cluster(), make_cluster()])

    def test_lookup_by_id(self):
        chip = tc2_chip()
        assert chip.cluster("big").core_type == "A15"
        assert chip.core("little.2").cluster.cluster_id == "little"

    def test_cores_enumeration(self):
        chip = tc2_chip()
        assert len(chip.cores) == 5
        assert len(list(chip.iter_cores())) == 5

    def test_total_supply_sums_cluster_supplies(self):
        chip = tc2_chip()
        expected = sum(c.supply_pus for c in chip.clusters)
        assert chip.total_supply_pus() == expected

    def test_total_power_sums_cluster_power(self):
        chip = tc2_chip()
        for core in chip.cores:
            core.utilization = 1.0
        total = chip.total_power_w()
        assert total == pytest.approx(
            chip.cluster_power_w("big") + chip.cluster_power_w("little")
        )
        assert total > 0

    def test_tick_reports_completed_transitions(self):
        chip = tc2_chip(transition_latency_s=0.001)
        chip.cluster("big").regulator.request(3)
        changed = chip.tick(0.002)
        assert changed == ["big"]
        assert chip.tick(0.002) == []


class TestTC2Preset:
    def test_shape(self):
        chip = tc2_chip()
        big, little = chip.cluster("big"), chip.cluster("little")
        assert len(big.cores) == 2 and big.core_type == "A15"
        assert len(little.cores) == 3 and little.core_type == "A7"

    def test_frequency_ranges(self):
        chip = tc2_chip()
        assert chip.cluster("big").vf_table.min_level.frequency_mhz == 500
        assert chip.cluster("big").vf_table.max_level.frequency_mhz == 1200
        assert chip.cluster("little").vf_table.min_level.frequency_mhz == 350
        assert chip.cluster("little").vf_table.max_level.frequency_mhz == 1000
