"""The perf-bench regression gate: comparison logic, not timings.

Scenario wall-clock measurement is exercised by the benchmark suite
itself; these tests cover the CI-facing decision logic in
``scripts/run_perf_bench.py`` with synthetic reports, so the gate's
behaviour (pass, fail, schema guard, new-scenario tolerance) is pinned
without running a single simulation.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts",
    "run_perf_bench.py",
)
_spec = importlib.util.spec_from_file_location("run_perf_bench", _SCRIPT)
perf_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_bench)


def _report(wall_s, quick=True, schema=perf_bench.SCHEMA_VERSION):
    return {
        "schema_version": schema,
        "quick": quick,
        "scenarios": {name: {"wall_s": value} for name, value in wall_s.items()},
    }


class TestCheckRegressions:
    def test_within_budget_passes(self):
        failures = perf_bench.check_regressions(
            _report({"single_point": 1.2}), _report({"single_point": 1.0}), 0.25
        )
        assert failures == []

    def test_regression_beyond_budget_fails_with_numbers(self):
        failures = perf_bench.check_regressions(
            _report({"single_point": 1.3}), _report({"single_point": 1.0}), 0.25
        )
        assert len(failures) == 1
        assert "single_point" in failures[0]
        assert "1.300" in failures[0] and "1.250" in failures[0]

    def test_new_scenario_without_baseline_is_tolerated(self):
        failures = perf_bench.check_regressions(
            _report({"single_point": 1.0, "brand_new": 9.0}),
            _report({"single_point": 1.0}),
            0.25,
        )
        assert failures == []

    def test_schema_mismatch_is_rejected(self):
        with pytest.raises(SystemExit, match="schema_version"):
            perf_bench.check_regressions(
                _report({"single_point": 1.0}),
                _report({"single_point": 1.0}, schema=0),
                0.25,
            )

    def test_quick_full_mismatch_is_rejected(self):
        with pytest.raises(SystemExit, match="quick"):
            perf_bench.check_regressions(
                _report({"single_point": 1.0}, quick=True),
                _report({"single_point": 1.0}, quick=False),
                0.25,
            )


class TestScenarioSelection:
    def test_default_is_canonical_order(self):
        assert perf_bench.select_scenarios(None) == perf_bench.SCENARIO_ORDER

    def test_subset_keeps_canonical_order(self):
        chosen = perf_bench.select_scenarios("many_tasks, single_point")
        assert chosen == ["single_point", "many_tasks"]

    def test_unknown_scenario_is_actionable(self):
        with pytest.raises(SystemExit, match="nonsense"):
            perf_bench.select_scenarios("nonsense")
