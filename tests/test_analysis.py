"""Tests for the analysis package (stats + export)."""

import json

import pytest

from repro.analysis import (
    comparative_to_csv,
    comparative_to_json,
    comparative_to_records,
    dominance_count,
    pairwise_improvements,
    relative_improvement,
    run_result_to_dict,
    summarize,
    write_comparative,
)
from repro.experiments import ComparativeResult, RunResult


def fake_run(governor="PPM", workload="l1", miss=0.1, power=3.0):
    return RunResult(
        governor=governor,
        workload=workload,
        duration_s=10.0,
        miss_fraction=miss,
        mean_miss_fraction=miss / 2,
        average_power_w=power,
        peak_power_w=power + 1,
        intra_migrations=2,
        inter_migrations=1,
        per_task_below={"a": miss},
        per_task_outside={"a": miss * 2},
    )


def fake_comparative():
    return ComparativeResult(
        runs={
            "PPM": {"l1": fake_run("PPM", "l1", 0.1), "m2": fake_run("PPM", "m2", 0.2)},
            "HL": {"l1": fake_run("HL", "l1", 0.3), "m2": fake_run("HL", "m2", 0.6)},
        },
        power_cap_w=4.0,
    )


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.stdev == 0.0
        assert s.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_brackets_mean(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        lo, hi = s.confidence95()
        assert lo < s.mean < hi

    def test_relative_improvement(self):
        assert relative_improvement(0.5, 0.25) == pytest.approx(0.5)
        assert relative_improvement(0.5, 0.75) == pytest.approx(-0.5)
        assert relative_improvement(0.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            relative_improvement(0.0, 0.1)

    def test_pairwise_improvements(self):
        metrics = {"PPM": [0.1, 0.2], "HPM": [0.2, 0.4], "HL": [0.5, 0.7]}
        imp = pairwise_improvements(metrics)
        assert imp["HPM"] == pytest.approx(0.5)
        assert imp["HL"] == pytest.approx(1 - 0.15 / 0.6)
        with pytest.raises(KeyError):
            pairwise_improvements({"HL": [0.1]})

    def test_dominance_count(self):
        metrics = {"PPM": [0.1, 0.5], "HL": [0.3, 0.4]}
        assert dominance_count(metrics) == {"HL": 1}
        with pytest.raises(ValueError):
            dominance_count({"PPM": [0.1], "HL": [0.1, 0.2]})


class TestExport:
    def test_run_result_to_dict(self):
        record = run_result_to_dict(fake_run())
        assert record["governor"] == "PPM"
        assert record["per_task_below"] == {"a": 0.1}

    def test_records_include_cap(self):
        records = comparative_to_records(fake_comparative())
        assert len(records) == 4
        assert all(r["power_cap_w"] == 4.0 for r in records)

    def test_json_parses(self):
        payload = json.loads(comparative_to_json(fake_comparative()))
        assert len(payload) == 4

    def test_csv_has_header_and_rows(self):
        text = comparative_to_csv(fake_comparative())
        lines = text.strip().splitlines()
        assert lines[0].startswith("governor,workload")
        assert len(lines) == 5

    def test_write_comparative(self, tmp_path):
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        write_comparative(fake_comparative(), str(json_path))
        write_comparative(fake_comparative(), str(csv_path))
        assert json.loads(json_path.read_text())
        assert csv_path.read_text().count("\n") >= 4
        with pytest.raises(ValueError):
            write_comparative(fake_comparative(), str(tmp_path / "out.txt"))
