"""Cross-governor sanity orderings on short runs.

The benchmark suite checks the paper's quantitative shapes at full
duration; these tests pin the *unconditional* orderings that must hold
even on short runs -- the cheap canaries for a broken governor.
"""

import pytest

from repro.core import PPMGovernor
from repro.governors import (
    EASGovernor,
    HLGovernor,
    HPMGovernor,
    MaxFrequencyGovernor,
    PowersaveGovernor,
)
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task


def run(governor, workload="m2", duration=8.0):
    sim = Simulation(
        tc2_chip(),
        build_workload(workload),
        governor,
        config=SimConfig(metrics_warmup_s=2.0),
    )
    metrics = sim.run(duration)
    return metrics, sim


class TestStaticBounds:
    def test_powersave_cheapest_maxfreq_most_capable(self):
        power_ps, _ = run(PowersaveGovernor())[0].average_power_w(), None
        metrics_max, _ = run(MaxFrequencyGovernor())
        assert power_ps < metrics_max.average_power_w()

    def test_powersave_misses_most(self):
        miss_ps = run(PowersaveGovernor())[0].mean_miss_fraction()
        miss_max = run(MaxFrequencyGovernor())[0].mean_miss_fraction()
        assert miss_ps >= miss_max

    def test_every_governor_above_the_powersave_floor(self):
        # Note: max-frequency is *not* a power ceiling here -- it has no
        # placement policy, so it never wakes the big cluster, while the
        # dynamic governors spend power on big to actually serve QoS.
        floor = run(PowersaveGovernor())[0].average_power_w()
        for governor in (PPMGovernor(), HPMGovernor(), HLGovernor(), EASGovernor()):
            power = run(governor)[0].average_power_w()
            assert power >= floor * 0.9, type(governor).__name__


class TestDynamicGovernorsEarnTheirKeep:
    def test_ppm_beats_powersave_qos_at_fraction_of_maxfreq_power(self):
        metrics_ppm, _ = run(PPMGovernor())
        miss_ps = run(PowersaveGovernor())[0].mean_miss_fraction()
        assert metrics_ppm.mean_miss_fraction() < miss_ps

    def test_all_governors_make_progress(self):
        for governor in (
            PPMGovernor(), HPMGovernor(), HLGovernor(), EASGovernor(),
            PowersaveGovernor(), MaxFrequencyGovernor(),
        ):
            chip = tc2_chip()
            task = make_task("h264", "s")
            sim = Simulation(chip, [task], governor, config=SimConfig())
            sim.run(3.0)
            assert task.total_beats > 0, type(governor).__name__


class TestEnergyPerBeat:
    def test_metric_computes(self):
        metrics, sim = run(PPMGovernor(), duration=6.0)
        energy = metrics.energy_per_beat_mj(sim.tasks, dt=sim.dt)
        assert 0.0 < energy < float("inf")

    def test_no_work_is_infinite(self):
        from repro.sim import MetricsCollector

        collector = MetricsCollector(warmup_s=0.0)
        task = make_task("h264", "s")
        assert collector.energy_per_beat_mj([task], dt=0.01) == float("inf")

    def test_ppm_more_efficient_than_maxfreq_like_for_like(self):
        # Same single task, same core, so the comparison is purely about
        # the operating point the governor chooses.
        def energy_per_beat(governor):
            chip = tc2_chip()
            task = make_task("h264", "s")
            sim = Simulation(chip, [task], governor,
                             config=SimConfig(metrics_warmup_s=2.0))
            sim.place(task, chip.cluster("little").cores[0])
            metrics = sim.run(8.0)
            return metrics.energy_per_beat_mj([task], dt=sim.dt)

        from repro.core import PPMConfig

        ppm = energy_per_beat(PPMGovernor(PPMConfig(
            enable_load_balancing=False, enable_migration=False)))
        mx = energy_per_beat(MaxFrequencyGovernor())
        assert ppm < mx
