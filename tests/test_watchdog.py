"""The CI smoke-script watchdog: fires hard, cancels clean.

The firing path is exercised through a real subprocess (it must
``os._exit`` with the distinct watchdog status and leave a thread dump
in stderr); everything else -- env override, validation, arming
discipline -- is plain unit territory.
"""

import subprocess
import sys

import pytest

from repro.watchdog import (
    TIMEOUT_ENV,
    WATCHDOG_EXIT_STATUS,
    WallClockWatchdog,
    resolve_timeout_s,
)


def test_default_budget_passes_through(monkeypatch):
    monkeypatch.delenv(TIMEOUT_ENV, raising=False)
    assert resolve_timeout_s(300) == 300.0


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv(TIMEOUT_ENV, "45.5")
    assert resolve_timeout_s(300) == 45.5


@pytest.mark.parametrize("raw", ["soon", "", "-3", "0"])
def test_bad_env_override_is_a_clean_exit(monkeypatch, raw):
    monkeypatch.setenv(TIMEOUT_ENV, raw)
    with pytest.raises(SystemExit, match=TIMEOUT_ENV):
        resolve_timeout_s(300)


def test_context_manager_cancels_on_exit():
    with WallClockWatchdog(3600, label="unit") as watchdog:
        timer = watchdog._timer
        assert timer is not None and timer.daemon
    assert watchdog._timer is None
    timer.join(timeout=5.0)  # cancelled timer threads exit promptly
    assert not timer.is_alive()


def test_double_arm_is_refused():
    watchdog = WallClockWatchdog(3600).start()
    try:
        with pytest.raises(RuntimeError, match="already armed"):
            watchdog.start()
    finally:
        watchdog.cancel()


def test_cancel_is_idempotent():
    watchdog = WallClockWatchdog(3600).start()
    watchdog.cancel()
    watchdog.cancel()  # must not raise


def test_expiry_hard_exits_with_thread_dump():
    """A wedged guarded body cannot outlive the budget."""
    program = (
        "import time\n"
        "from repro.watchdog import WallClockWatchdog\n"
        "with WallClockWatchdog(0.3, label='wedged drill'):\n"
        "    time.sleep(60)\n"
        "print('unreachable')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert result.returncode == WATCHDOG_EXIT_STATUS
    assert "wedged drill" in result.stderr
    assert "Thread" in result.stderr or "File" in result.stderr  # stack dump
    assert "unreachable" not in result.stdout


def test_completion_inside_budget_exits_normally():
    program = (
        "from repro.watchdog import WallClockWatchdog\n"
        "with WallClockWatchdog(30, label='quick'):\n"
        "    pass\n"
        "print('done')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert result.returncode == 0
    assert "done" in result.stdout
