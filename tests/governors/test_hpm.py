"""Unit and behaviour tests for the HPM (hierarchical PID) baseline."""

import pytest

from repro.governors import HPMGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


def make_sim(tasks, governor=None, dt=0.01):
    return Simulation(
        tc2_chip(), tasks, governor or HPMGovernor(), config=SimConfig(dt=dt)
    )


class TestResourceControl:
    def test_allocation_converges_near_demand(self):
        task = make_task("multicnt", "v")  # 280 PUs on A7, mild phases
        sim = make_sim([task])
        sim.run(5.0)
        alloc = sim.allocation_of(task)
        assert alloc is not None
        demand = task.true_demand_pus("A7", sim.now)
        assert alloc == pytest.approx(demand, rel=0.4)

    def test_heart_rate_held_in_range_for_feasible_task(self):
        task = make_task("multicnt", "v")
        sim = make_sim([task])
        sim.run(8.0)
        hr = task.observed_heart_rate()
        assert task.hr_range.min_hr * 0.9 <= hr <= task.hr_range.max_hr * 1.15


class TestFrequencyControl:
    def test_frequency_covers_allocations(self):
        task = make_task("tracking", "v")  # 720 PUs
        sim = make_sim([task])
        sim.run(5.0)
        assert sim.chip.cluster("little").frequency_mhz >= 700.0

    def test_light_load_keeps_low_frequency(self):
        task = make_task("multicnt", "v")
        sim = make_sim([task])
        sim.run(5.0)
        assert sim.chip.cluster("little").frequency_mhz <= 600.0


class TestTDPLoop:
    def test_power_brought_under_cap(self):
        tasks = [make_task("tracking", "f", task_name=f"t{i}") for i in range(4)]
        governor = HPMGovernor(power_cap_w=4.0)
        sim = make_sim(tasks, governor=governor)
        sim.run(10.0)
        recent = [s.chip_power_w for s in sim.metrics.samples[-300:]]
        assert sum(recent) / len(recent) <= 4.2

    def test_caps_released_when_headroom_returns(self):
        brief = make_task("tracking", "f", task_name="burst", duration=4.0)
        keeper = make_task("multicnt", "v", task_name="keeper")
        governor = HPMGovernor(power_cap_w=4.0)
        sim = make_sim([brief, keeper], governor=governor)
        sim.run(10.0)
        # After the burst leaves, caps relax (dict empties or rises to max).
        caps = governor._freq_caps
        for cluster_id, cap in caps.items():
            table = sim.chip.cluster(cluster_id).vf_table
            assert cap >= 0


class TestNaiveLBT:
    def test_unsatisfied_task_migrates_to_big(self):
        # Unsatisfiable on little even at max frequency.
        task = make_task("tracking", "f")
        sim = make_sim([task])
        sim.run(5.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "big"

    def test_oversatisfied_task_returns_to_little(self):
        task = make_task("multicnt", "v")
        sim = make_sim([task])
        sim.run(0.05)
        sim.migrate(task, sim.chip.core("big.0"))
        sim.run(6.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "little"

    def test_load_balance_spreads_within_cluster(self):
        tasks = [make_task("multicnt", "v", task_name=f"t{i}") for i in range(2)]
        sim = make_sim(tasks)
        sim.run(0.01)
        sim.place(tasks[1], sim.placement.core_of(tasks[0]))
        sim.run(2.0)
        cores = {sim.placement.core_of(t).core_id for t in tasks}
        assert len(cores) == 2
