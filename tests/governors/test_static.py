"""Tests for the static (powersave/userspace) governors."""

import pytest

from repro.governors import PowersaveGovernor, UserspaceGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


class TestPowersave:
    def test_pins_lowest_level(self):
        task = make_task("tracking", "f")  # would love more supply
        sim = Simulation(tc2_chip(), [task], PowersaveGovernor(), config=SimConfig())
        sim.run(1.0)
        little = sim.chip.cluster("little")
        assert little.frequency_mhz == little.vf_table.min_level.frequency_mhz

    def test_is_the_power_floor(self):
        from repro.governors import MaxFrequencyGovernor

        def run(governor):
            task = make_task("tracking", "f")
            sim = Simulation(
                tc2_chip(), [task], governor, config=SimConfig(metrics_warmup_s=0.5)
            )
            return sim.run(3.0).average_power_w()

        assert run(PowersaveGovernor()) < run(MaxFrequencyGovernor())


class TestUserspace:
    def test_holds_requested_levels(self):
        task = make_task("swaptions", "l")
        governor = UserspaceGovernor({"little": 3})
        sim = Simulation(tc2_chip(), [task], governor, config=SimConfig())
        sim.run(0.5)
        little = sim.chip.cluster("little")
        assert little.level_index == 3

    def test_set_level_takes_effect(self):
        task = make_task("swaptions", "l")
        governor = UserspaceGovernor({"little": 1})
        sim = Simulation(tc2_chip(), [task], governor, config=SimConfig())
        sim.run(0.2)
        governor.set_level("little", 5)
        sim.run(0.2)
        assert sim.chip.cluster("little").level_index == 5

    def test_out_of_range_levels_clamped(self):
        task = make_task("swaptions", "l")
        governor = UserspaceGovernor({"little": 99})
        sim = Simulation(tc2_chip(), [task], governor, config=SimConfig())
        sim.run(0.2)
        little = sim.chip.cluster("little")
        assert little.level_index == little.vf_table.max_index

    def test_unlisted_clusters_untouched(self):
        task = make_task("swaptions", "l")
        governor = UserspaceGovernor({})
        sim = Simulation(tc2_chip(), [task], governor, config=SimConfig())
        sim.run(0.2)
        assert sim.chip.cluster("little").level_index == 0
