"""Unit tests for PID controller and governor scaffolding."""

import pytest

from repro.governors import (
    BaseGovernor,
    MaxFrequencyGovernor,
    PIDController,
    PeriodicAction,
    cluster_utilization,
)
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


class TestPID:
    def test_pure_proportional(self):
        pid = PIDController(kp=2.0)
        assert pid.update(1.5, dt=0.1) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0)
        pid.update(1.0, dt=0.5)
        assert pid.update(1.0, dt=0.5) == pytest.approx(1.0)

    def test_derivative(self):
        pid = PIDController(kp=0.0, kd=1.0)
        pid.update(1.0, dt=0.1)
        assert pid.update(2.0, dt=0.1) == pytest.approx(10.0)

    def test_output_clamped(self):
        pid = PIDController(kp=10.0, output_limits=(-1.0, 1.0))
        assert pid.update(5.0, dt=0.1) == 1.0
        assert pid.update(-5.0, dt=0.1) == -1.0

    def test_integral_anti_windup(self):
        pid = PIDController(kp=0.0, ki=1.0, integral_limits=(-2.0, 2.0))
        for _ in range(100):
            out = pid.update(1.0, dt=1.0)
        assert out == pytest.approx(2.0)

    def test_reset(self):
        pid = PIDController(kp=1.0, ki=1.0)
        pid.update(3.0, dt=1.0)
        pid.reset()
        assert pid.update(0.0, dt=1.0) == 0.0

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            PIDController(kp=1.0).update(1.0, dt=0.0)


class TestPeriodicAction:
    def test_fires_immediately_then_at_period(self):
        action = PeriodicAction(period_s=1.0)
        assert action.due(0.0)
        assert not action.due(0.5)
        assert action.due(1.0)
        assert not action.due(1.5)

    def test_start_offset(self):
        action = PeriodicAction(period_s=1.0, start_at_s=5.0)
        assert not action.due(4.0)
        assert action.due(5.0)

    def test_period_validation(self):
        with pytest.raises(ValueError):
            PeriodicAction(period_s=0.0)


class TestScaffolding:
    def test_max_frequency_governor_pins_top_levels(self):
        task = make_task("swaptions", "l")
        sim = Simulation(
            tc2_chip(), [task], MaxFrequencyGovernor(), config=SimConfig(dt=0.01)
        )
        sim.run(0.1)
        little = sim.chip.cluster("little")
        assert little.frequency_mhz == little.vf_table.max_level.frequency_mhz

    def test_cluster_utilization_reports_busiest_core(self):
        chip = tc2_chip()
        sim = Simulation(chip, [], BaseGovernor(), config=SimConfig())
        chip.cluster("big").cores[0].utilization = 0.3
        chip.cluster("big").cores[1].utilization = 0.9
        assert cluster_utilization(sim)["big"] == 0.9
