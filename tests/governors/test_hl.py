"""Unit and behaviour tests for the HL (Linaro big.LITTLE MP) baseline."""

import pytest

from repro.governors import HLGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


def make_sim(tasks, governor=None, dt=0.01):
    return Simulation(
        tc2_chip(), tasks, governor or HLGovernor(), config=SimConfig(dt=dt)
    )


class TestThresholds:
    def test_validation(self):
        with pytest.raises(ValueError):
            HLGovernor(up_threshold=0.5, down_threshold=0.6)
        with pytest.raises(ValueError):
            HLGovernor(up_threshold=1.5)


class TestMigrationPolicy:
    def test_starved_task_promoted_to_big(self):
        # Demand beyond the little core even at max frequency.
        task = make_task("tracking", "f")  # 1100 PUs on A7
        sim = make_sim([task])
        sim.run(2.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "big"

    def test_light_task_stays_on_little(self):
        task = make_task("multicnt", "v")  # 280 PUs
        sim = make_sim([task])
        sim.run(3.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "little"

    def test_quiet_task_demoted_from_big(self):
        # A task tiny enough that even at big's lowest level its tracked
        # load sits below the demotion threshold (0.3 x 500 PUs = 150).
        from repro.tasks import BenchmarkProfile, default_hr_range
        from repro.tasks.task import Task

        profile = BenchmarkProfile(
            name="tiny",
            input_label="t",
            nominal_hr=10.0,
            hr_range=default_hr_range(10.0),
            cost_pu_s_per_beat_by_type={"A7": 18.0, "A15": 9.0},  # 90 PUs on big
        )
        task = Task(profile=profile)
        sim = make_sim([task])
        sim.run(0.05)
        sim.migrate(task, sim.chip.core("big.0"))
        sim.run(3.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "little"


class TestPowerCap:
    def test_cap_trips_and_evacuates_big(self):
        tasks = [make_task("tracking", "f", task_name=f"t{i}") for i in range(4)]
        governor = HLGovernor(power_cap_w=4.0)
        sim = make_sim(tasks, governor=governor)
        sim.run(5.0)
        assert governor.capped
        assert not sim.chip.cluster("big").powered
        for task in tasks:
            assert sim.placement.core_of(task).cluster.cluster_id == "little"

    def test_no_promotion_after_cap(self):
        tasks = [make_task("tracking", "f", task_name=f"t{i}") for i in range(4)]
        governor = HLGovernor(power_cap_w=4.0)
        sim = make_sim(tasks, governor=governor)
        sim.run(5.0)
        intercluster_before = sim.migrations.counts()[1]
        sim.run(2.0)
        # Once capped, no further inter-cluster traffic.
        assert sim.migrations.counts()[1] == intercluster_before

    def test_uncapped_by_default(self):
        governor = HLGovernor()
        sim = make_sim([make_task("tracking", "f")], governor=governor)
        sim.run(1.0)
        assert not governor.capped


class TestBalance:
    def test_idle_core_pulled_onto(self):
        tasks = [
            make_task("multicnt", "v", task_name="a"),
            make_task("multicnt", "v", task_name="b"),
        ]
        sim = make_sim(tasks)
        sim.run(0.01)
        # Stack both on one core, then let the balancer spread them.
        sim.place(tasks[1], sim.placement.core_of(tasks[0]))
        sim.run(1.0)
        cores = {sim.placement.core_of(t).core_id for t in tasks}
        assert len(cores) == 2

    def test_balancer_does_not_ping_pong(self):
        tasks = [make_task("multicnt", "v", task_name=f"t{i}") for i in range(3)]
        sim = make_sim(tasks)
        sim.run(5.0)
        intra, _ = sim.migrations.counts()
        # A stable assignment exists; the balancer must find a fixed point.
        assert intra < 20
