"""Unit tests for the ondemand DVFS governor."""

import pytest

from repro.governors import OndemandDVFS, OndemandGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import make_task


def make_sim(tasks, governor=None):
    return Simulation(
        tc2_chip(), tasks, governor or OndemandGovernor(), config=SimConfig(dt=0.01)
    )


class TestOndemandDVFS:
    def test_races_to_max_on_high_utilisation(self):
        # An unsatisfiable task keeps the core busy -> ondemand jumps to max.
        task = make_task("tracking", "f")  # 1100 PUs on A7
        sim = make_sim([task])
        sim.run(0.5)
        little = sim.chip.cluster("little")
        assert little.frequency_mhz == little.vf_table.max_level.frequency_mhz

    def test_scales_down_on_low_utilisation(self):
        task = make_task("multicnt", "v")  # ~280 PUs
        sim = make_sim([task])
        sim.run(0.3)  # first races up (boot utilisation is high)
        sim.run(3.0)
        little = sim.chip.cluster("little")
        # 280/0.8 = 350 -> the bottom level suffices.
        assert little.frequency_mhz <= 500.0

    def test_sampling_period_respected(self):
        dvfs = OndemandDVFS(sampling_period_s=0.5)
        task = make_task("tracking", "f")
        sim = make_sim([task], governor=OndemandGovernor(sampling_period_s=0.5))
        sim.run(0.3)
        little = sim.chip.cluster("little")
        # Only one sample so far (t=0, before any utilisation observed).
        assert little.regulator.transitions <= 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OndemandDVFS(up_threshold=0.0)
        with pytest.raises(ValueError):
            OndemandDVFS(up_threshold=1.5)

    def test_powered_down_cluster_ignored(self):
        task = make_task("multicnt", "v")
        sim = make_sim([task])
        sim.run(0.5)
        assert not sim.chip.cluster("big").powered  # auto-gated, untouched
