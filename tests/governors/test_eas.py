"""Tests for the EAS/schedutil extension baseline."""

import pytest

from repro.governors import EASGovernor
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task


def make_sim(tasks, governor=None):
    return Simulation(
        tc2_chip(), tasks, governor or EASGovernor(),
        config=SimConfig(metrics_warmup_s=2.0),
    )


class TestConstruction:
    def test_margin_validated(self):
        with pytest.raises(ValueError):
            EASGovernor(margin=0.9)


class TestPlacement:
    def test_light_task_placed_on_little(self):
        task = make_task("multicnt", "v")
        sim = make_sim([task])
        sim.run(1.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "little"

    def test_unfittable_task_lands_on_big(self):
        task = make_task("tracking", "f")  # 1100 PU > any little core
        sim = make_sim([task])
        sim.run(2.0)
        assert sim.placement.core_of(task).cluster.cluster_id == "big"


class TestSchedutil:
    def test_frequency_tracks_load_with_margin(self):
        task = make_task("tracking", "v")  # ~720 PU
        sim = make_sim([task])
        sim.run(3.0)
        little = sim.chip.cluster("little")
        # 720 * 1.25 = 900 -> the 900 or 1000 MHz level.
        assert little.frequency_mhz >= 900.0

    def test_idleish_cluster_runs_low(self):
        task = make_task("multicnt", "v")  # ~280 PU -> 350 with margin
        sim = make_sim([task])
        sim.run(3.0)
        assert sim.chip.cluster("little").frequency_mhz <= 500.0


class TestBehaviour:
    def test_cheaper_than_maxfreq_on_light_load(self):
        from repro.governors import MaxFrequencyGovernor

        def power(governor):
            tasks = [make_task("multicnt", "v"), make_task("h264", "s")]
            sim = make_sim(tasks, governor)
            return sim.run(8.0).average_power_w()

        # schedutil parks the LITTLE cluster far below max frequency;
        # at this load the saving is mostly dynamic power.
        assert power(EASGovernor()) < 0.9 * power(MaxFrequencyGovernor())

    def test_serves_medium_workload(self):
        sim = make_sim(build_workload("m2"))
        metrics = sim.run(15.0)
        # EAS has no QoS notion, but with its margin the medium set is
        # mostly servable.
        assert metrics.mean_miss_fraction() < 0.5

    def test_one_move_per_invocation(self):
        sim = make_sim(build_workload("h3"))
        sim.run(0.25)
        intra, inter = sim.migrations.counts()
        # Placement period 0.1 s: at most ~3 rebalance moves by now, plus
        # none from elsewhere.
        assert intra + inter <= 3
