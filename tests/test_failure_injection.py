"""Failure-injection and robustness tests across the whole stack.

The paper's system lives in a hostile environment: noisy sensors, task
churn, saturated chips.  These tests drive the full simulator through
those conditions and require the framework to stay sane (no crashes, no
corrupted accounting, graceful degradation).
"""

import pytest

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.faults import FaultInjector, FaultKind, single_fault
from repro.governors import HLGovernor, HPMGovernor
from repro.hw import synthetic_chip, tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload, make_task, random_tasks


class TestSensorNoise:
    def test_ppm_survives_noisy_power_readings(self):
        tasks = build_workload("m2")
        sim = Simulation(
            tc2_chip(),
            tasks,
            PPMGovernor(PPMConfig(market=MarketConfig(wtdp=4.0))),
            config=SimConfig(sensor_noise_std_w=0.4, seed=7, metrics_warmup_s=5.0),
        )
        metrics = sim.run(20.0)
        # Noise costs some QoS but the system keeps functioning.
        assert metrics.any_task_miss_fraction() < 0.9
        assert metrics.average_power_w() > 0.0

    def test_noise_does_not_break_baselines(self):
        for governor in (HPMGovernor(power_cap_w=4.0), HLGovernor(power_cap_w=4.0)):
            sim = Simulation(
                tc2_chip(),
                build_workload("l1"),
                governor,
                config=SimConfig(sensor_noise_std_w=0.4, seed=3),
            )
            sim.run(5.0)


class TestTaskChurn:
    def test_staggered_arrivals_and_departures(self):
        tasks = []
        for i, (name, code) in enumerate(
            [("swaptions", "l"), ("x264", "l"), ("bodytrack", "l"), ("h264", "s")]
        ):
            tasks.append(
                make_task(
                    name,
                    code,
                    task_name=f"churn{i}",
                    start_time=i * 2.0,
                    duration=8.0,
                )
            )
        governor = PPMGovernor()
        sim = Simulation(tc2_chip(), tasks, governor, config=SimConfig())
        sim.run(20.0)
        # All gone: market empty, clusters gated off.
        assert not governor.market.tasks
        assert all(not c.powered for c in sim.chip.clusters)

    def test_single_tick_task_lifetime(self):
        blip = make_task("swaptions", "l", start_time=0.1, duration=0.01)
        keeper = make_task("x264", "l")
        sim = Simulation(tc2_chip(), [blip, keeper], PPMGovernor(), config=SimConfig())
        sim.run(1.0)
        assert keeper.total_beats > 0

    def test_empty_task_set(self):
        sim = Simulation(tc2_chip(), [], PPMGovernor(), config=SimConfig())
        metrics = sim.run(1.0)
        assert metrics.any_task_miss_fraction() == 0.0
        assert all(not c.powered for c in sim.chip.clusters)


class TestSaturation:
    def test_wildly_oversubscribed_chip(self):
        # 18 demanding tasks on 5 cores: nothing can be satisfied.
        tasks = [
            make_task("tracking", "f", task_name=f"storm{i}", phase_offset_s=i * 1.7)
            for i in range(18)
        ]
        governor = PPMGovernor(PPMConfig(market=MarketConfig(wtdp=4.0)))
        sim = Simulation(
            tc2_chip(), tasks, governor, config=SimConfig(metrics_warmup_s=5.0)
        )
        metrics = sim.run(15.0)
        # Misses are inevitable; the cap and the accounting are not.
        recent = [s.chip_power_w for s in sim.metrics.samples[-300:]]
        assert sum(recent) / len(recent) < 4.5
        for agent in governor.market.tasks.values():
            assert agent.bid >= governor.config.market.bmin - 1e-12
            assert agent.wallet.savings >= -1e-9

    def test_single_task_on_many_cluster_chip(self):
        chip = synthetic_chip(8, 2, seed=13)
        tasks = random_tasks(1, seed=5, demand_range=(100.0, 200.0))
        sim = Simulation(chip, tasks, PPMGovernor(), config=SimConfig())
        sim.run(5.0)
        powered = [c for c in chip.clusters if c.powered]
        assert len(powered) == 1  # everything else gated off


class TestFaultRecovery:
    """Faults must be transient: QoS after the window returns to the
    level seen before it, not to a degraded plateau."""

    def test_churn_recovers_after_sensor_dropout(self):
        # Task churn *during* a blind sensor: arrivals and departures
        # while the market trades on fallback readings.  The TDP leaves
        # headroom, so pre-fault QoS is the reachable equilibrium again.
        tasks = build_workload("m2") + [
            make_task(
                "swaptions", "l", task_name="visitor", start_time=9.0, duration=4.0
            )
        ]
        governor = PPMGovernor(PPMConfig(market=MarketConfig(wtdp=6.0)))
        sim = Simulation(
            tc2_chip(),
            tasks,
            governor,
            config=SimConfig(metrics_warmup_s=3.0, seed=7),
        )
        schedule = single_fault(FaultKind.SENSOR_DROPOUT, 8.0, 4.0)
        FaultInjector(sim, schedule).attach()
        metrics = sim.run(24.0)
        before = metrics.miss_fraction_in_windows([(3.0, 8.0)])
        after = metrics.miss_fraction_in_windows([(16.0, 24.0)])
        assert after <= before + 0.1  # post-fault QoS matches pre-fault
        assert metrics.recovery_time_s(after_s=12.0, settle_s=0.5, dt=sim.dt) is not None

    def test_saturated_chip_recovers_from_big_cluster_outage(self):
        # Six demanding tasks and a hot-unplugged big cluster: misses
        # saturate during the outage, then the governor claws most of
        # the QoS back on replug.  (Full return to the pre-fault miss
        # level is placement-history dependent under saturation, so the
        # bound is against the outage, not the pre-fault optimum.)
        tasks = [
            make_task("x264", "n", task_name=f"storm{i}", phase_offset_s=i * 1.7)
            for i in range(6)
        ]
        governor = PPMGovernor()
        sim = Simulation(
            tc2_chip(), tasks, governor, config=SimConfig(metrics_warmup_s=3.0)
        )
        schedule = single_fault(FaultKind.HOTPLUG, 8.0, 3.0, target="big")
        injector = FaultInjector(sim, schedule).attach()
        metrics = sim.run(24.0)
        assert injector.stats()["unplugs"] == 1
        assert injector.stats()["replugs"] == 1
        before = metrics.miss_fraction_in_windows([(3.0, 8.0)])
        during = metrics.miss_fraction_in_windows([(8.0, 11.0)])
        after = metrics.miss_fraction_in_windows([(16.0, 24.0)])
        assert during >= before  # losing big cores cannot help
        assert after <= 0.5 * during  # most of the loss is recovered
        # The displaced tasks made it back onto the big cluster ...
        clusters = {
            sim.placement.core_of(task).cluster.cluster_id
            for task in sim.active_tasks()
        }
        assert clusters == {"big", "little"}
        # ... and the market's books survived the churn of evictions.
        for agent in governor.market.tasks.values():
            assert agent.bid >= governor.config.market.bmin - 1e-12
            assert agent.wallet.savings >= -1e-9


class TestExtremeConfigs:
    def test_tiny_tdp_drives_all_levels_to_minimum(self):
        # A 1 W budget sits below the hardware floor: the best the market
        # can do is park every powered cluster at its lowest level.
        tasks = build_workload("l1")
        governor = PPMGovernor(
            PPMConfig(market=MarketConfig(wtdp=1.0, wth=0.8))
        )
        sim = Simulation(tc2_chip(), tasks, governor, config=SimConfig())
        sim.run(10.0)
        for cluster in sim.chip.clusters:
            if cluster.powered:
                assert cluster.level_index == 0
        recent = [s.chip_power_w for s in sim.metrics.samples[-200:]]
        assert sum(recent) / len(recent) < 2.0

    def test_zero_savings_cap(self):
        tasks = build_workload("l2")
        governor = PPMGovernor(
            PPMConfig(market=MarketConfig(savings_cap_fraction=0.0))
        )
        sim = Simulation(tc2_chip(), tasks, governor, config=SimConfig())
        sim.run(5.0)
        assert all(
            a.wallet.savings == pytest.approx(0.0, abs=1e-9)
            for a in governor.market.tasks.values()
        )

    def test_single_core_chip(self):
        from repro.hw import Chip, Cluster, CorePowerParams, vf_table_from_pairs

        chip = Chip(
            name="uni",
            clusters=[
                Cluster(
                    cluster_id="solo",
                    core_type="A7",
                    n_cores=1,
                    vf_table=vf_table_from_pairs([(350, 0.85), (700, 0.95), (1000, 1.05)]),
                    power_params=CorePowerParams(k_dyn=4.5e-4, k_static=0.13, uncore_w=0.11),
                )
            ],
        )
        task = make_task("x264", "l")
        sim = Simulation(chip, [task], PPMGovernor(), config=SimConfig(metrics_warmup_s=2.0))
        metrics = sim.run(10.0)
        assert metrics.task_below_fraction(task.name) < 0.5
