#!/usr/bin/env python
"""CI crash-recovery drill: SIGKILL a campaign mid-run, resume, compare.

Launches a checkpointing fault campaign as a subprocess, waits for the
first checkpoint file to appear, kills the process with SIGKILL (no
cleanup handlers run -- the atomic write discipline is what is on
trial), resumes from the surviving checkpoints, and asserts the resumed
campaign's report is byte-identical to an uninterrupted run's.

The drill runs three times: once serially, once with ``--jobs 2`` so
two governor points are checkpointing *concurrently* into their own
``point_<index>-<governor>/`` subdirectories when the SIGKILL lands --
the parallel-safety property the per-point layout exists for -- and
once timed to land *mid checkpoint interval* under the lazy sync mode:
right after a checkpoint (whose barrier just materialised the object
view) plus a fraction of the observed checkpoint cadence, so the
columnar columns have crossed epoch boundaries that the next
checkpoint barrier has not yet flushed.  Crash recovery must replay
from the last *written* checkpoint; unflushed column state dying with
the process is exactly what the drill proves harmless.

``--engine columnar|object`` pins every subprocess (reference, victim,
resume, replay) to one tick engine through the ``REPRO_ENGINE``
environment variable; the engine is not part of the checkpoint
fingerprint, so the drill proves crash recovery for whichever engine
is under test.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.watchdog import WallClockWatchdog  # noqa: E402

#: Hard wall-clock budget; a hung drill (e.g. a victim subprocess that
#: never checkpoints) exits 2 with thread stacks instead of stalling the
#: CI job (override: REPRO_SMOKE_TIMEOUT_S).
WALL_BUDGET_S = 1200.0

FAULT = "sensor-dropout"
CAMPAIGN_ARGS = [
    "--fault", FAULT,
    "--governors", "PPM,HL",
    "--workload", "m1",
    "--campaign-duration", "12",
    "--campaign-warmup", "2",
    "--intensity", "0.4",
    "--seed", "5",
    "--checkpoint-interval", "1",
]


def campaign_command(checkpoint_dir, out_dir, jobs=None):
    command = [
        sys.executable, "-m", "repro.experiments.cli", "checkpoint",
        *CAMPAIGN_ARGS,
        "--checkpoint-dir", checkpoint_dir,
        "--out", out_dir,
    ]
    if jobs is not None:
        command += ["--jobs", str(jobs)]
    return command


def find_checkpoints(directory):
    """All checkpoint files under the campaign directory (point subdirs)."""
    found = []
    for root, _dirs, files in os.walk(directory):
        for name in files:
            if name.startswith("ckpt_"):
                found.append(os.path.relpath(os.path.join(root, name), directory))
    return found


def wait_for_checkpoint(directory, min_streams=1, timeout_s=120.0):
    """Block until checkpoints exist in ``min_streams`` point directories."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        names = find_checkpoints(directory)
        streams = {os.path.dirname(name) for name in names}
        if len(streams) >= min_streams:
            return names
        time.sleep(0.05)
    raise SystemExit(
        f"checkpoints in {min_streams} point dir(s) did not appear under "
        f"{directory!r} within {timeout_s}s"
    )


def wait_for_new_checkpoint(directory, prior_count, timeout_s=120.0):
    """Block until the checkpoint count exceeds ``prior_count``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        names = find_checkpoints(directory)
        if len(names) > prior_count:
            return names
        time.sleep(0.02)
    raise SystemExit(
        f"no checkpoint beyond the first {prior_count} appeared under "
        f"{directory!r} within {timeout_s}s"
    )


def read_report(out_dir):
    path = os.path.join(out_dir, f"campaign_{FAULT}.json")
    with open(path) as handle:
        return json.load(handle)


def run_drill(workdir, env, reference, jobs, min_streams, mid_interval=False):
    """One kill-resume cycle; returns True when the reports match."""
    tag = f"jobs{jobs or 1}" + ("-midint" if mid_interval else "")
    ckpt_dir = os.path.join(workdir, f"ckpt-{tag}")
    victim_out = os.path.join(workdir, f"victim-{tag}")
    victim_env = env
    if mid_interval:
        # Pin the victim to lazy barriers even if the surrounding CI job
        # exported another mode: the point is to die holding column
        # state the next checkpoint barrier never got to materialise.
        victim_env = dict(env)
        victim_env["REPRO_COLUMNAR_SYNC"] = "lazy"
    # The victim gets its own session (= its own process group) and the
    # SIGKILL goes to the whole group: with --jobs its pool workers are
    # separate processes, and killing only the parent would orphan them
    # -- still writing checkpoints, blocked forever on the dead pool's
    # task queue, and holding any inherited pipes open.  Killing the
    # group is also the honest crash model: a dying machine takes the
    # workers down with the parent.
    victim = subprocess.Popen(
        campaign_command(ckpt_dir, victim_out, jobs=jobs),
        env=victim_env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        seen = wait_for_checkpoint(ckpt_dir, min_streams=min_streams)
        if mid_interval:
            # A checkpoint just landed, so its sync barrier just ran.
            # Measure the checkpoint cadence, then sleep a fraction of
            # it: the tick loop will have crossed epoch boundaries
            # (placement-driven column rebuilds land every few ticks)
            # whose state the *next* barrier has not flushed when the
            # SIGKILL arrives.
            start = time.monotonic()
            seen = wait_for_new_checkpoint(ckpt_dir, len(seen))
            cadence = time.monotonic() - start
            time.sleep(min(2.0, max(0.05, 0.4 * cadence)))
    finally:
        if victim.poll() is None:
            try:
                os.killpg(victim.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        victim.wait()
    print(f"[{tag}] killed campaign after checkpoint(s): {sorted(seen)}")
    if os.path.exists(os.path.join(victim_out, f"campaign_{FAULT}.json")):
        raise SystemExit(
            "victim finished before the kill; lower the checkpoint "
            "interval or raise the campaign duration"
        )

    # Resume from whatever survived and compare reports.
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments.cli", "resume",
            "--checkpoint-dir", ckpt_dir,
            "--checkpoint-interval", "1",
            "--out", victim_out,
        ],
        check=True, env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, text=True,
    )
    print(f"[{tag}] " + resume.stdout.strip().splitlines()[-1])
    resumed = read_report(victim_out)
    if resumed != reference:
        print(f"[{tag}] resumed campaign report differs from uninterrupted run:")
        print(json.dumps(reference, indent=2, sort_keys=True)[:2000])
        print("--- vs resumed ---")
        print(json.dumps(resumed, indent=2, sort_keys=True)[:2000])
        return False

    # The replayed checkpoints must also verify divergence-free.
    subprocess.run(
        [
            sys.executable, "-m", "repro.experiments.cli", "replay",
            "--checkpoint-dir", ckpt_dir, "--verify",
        ],
        check=True, env=env, cwd=REPO_ROOT,
    )
    print(f"[{tag}] kill-resume drill passed")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine", choices=("columnar", "object"), default=None,
        help="pin every subprocess (reference, victim, resume, replay) to "
             "one tick engine via REPRO_ENGINE (default: engine default)",
    )
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="kill-resume-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    if args.engine is not None:
        env["REPRO_ENGINE"] = args.engine
        print(f"engine pinned to {args.engine} for all drill subprocesses")
    try:
        # Reference: the same campaign, never interrupted.
        ref_out = os.path.join(workdir, "reference")
        subprocess.run(
            campaign_command(os.path.join(workdir, "ref-ckpt"), ref_out),
            check=True, env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
        )
        reference = read_report(ref_out)

        # Serial victim: killed at its first checkpoint.
        if not run_drill(workdir, env, reference, jobs=None, min_streams=1):
            return 1
        # Parallel victim: two governor points checkpointing concurrently
        # into their own subdirectories when the SIGKILL lands.
        if not run_drill(workdir, env, reference, jobs=2, min_streams=2):
            return 1
        # Mid-interval victim: killed between an epoch boundary and the
        # next checkpoint barrier, with unflushed lazy column state.
        if not run_drill(
            workdir, env, reference, jobs=None, min_streams=1,
            mid_interval=True,
        ):
            return 1
        print("kill-resume drills passed: resumed reports match uninterrupted run")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    with WallClockWatchdog(WALL_BUDGET_S, label="kill-resume drill"):
        sys.exit(main())
