#!/usr/bin/env python
"""CI crash-recovery drill: SIGKILL a campaign mid-run, resume, compare.

Launches a checkpointing fault campaign as a subprocess, waits for the
first checkpoint file to appear, kills the process with SIGKILL (no
cleanup handlers run -- the atomic write discipline is what is on
trial), resumes from the surviving checkpoints, and asserts the resumed
campaign's report is byte-identical to an uninterrupted run's.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

FAULT = "sensor-dropout"
CAMPAIGN_ARGS = [
    "--fault", FAULT,
    "--governors", "PPM,HL",
    "--workload", "m1",
    "--campaign-duration", "12",
    "--campaign-warmup", "2",
    "--intensity", "0.4",
    "--seed", "5",
    "--checkpoint-interval", "1",
]


def campaign_command(checkpoint_dir, out_dir):
    return [
        sys.executable, "-m", "repro.experiments.cli", "checkpoint",
        *CAMPAIGN_ARGS,
        "--checkpoint-dir", checkpoint_dir,
        "--out", out_dir,
    ]


def wait_for_checkpoint(directory, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.isdir(directory):
            names = [n for n in os.listdir(directory) if n.startswith("ckpt_")]
            if names:
                return names
        time.sleep(0.05)
    raise SystemExit(
        f"no checkpoint appeared under {directory!r} within {timeout_s}s"
    )


def read_report(out_dir):
    path = os.path.join(out_dir, f"campaign_{FAULT}.json")
    with open(path) as handle:
        return json.load(handle)


def main():
    workdir = tempfile.mkdtemp(prefix="kill-resume-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    try:
        # 1. Reference: the same campaign, never interrupted.
        ref_out = os.path.join(workdir, "reference")
        subprocess.run(
            campaign_command(os.path.join(workdir, "ref-ckpt"), ref_out),
            check=True, env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
        )
        reference = read_report(ref_out)

        # 2. Victim: same campaign, SIGKILLed at its first checkpoint.
        ckpt_dir = os.path.join(workdir, "ckpt")
        victim_out = os.path.join(workdir, "victim")
        victim = subprocess.Popen(
            campaign_command(ckpt_dir, victim_out),
            env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
        )
        try:
            seen = wait_for_checkpoint(ckpt_dir)
        finally:
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait()
        print(f"killed campaign after checkpoint(s): {sorted(seen)}")
        if os.path.exists(os.path.join(victim_out, f"campaign_{FAULT}.json")):
            raise SystemExit(
                "victim finished before the kill; lower the checkpoint "
                "interval or raise the campaign duration"
            )

        # 3. Resume from whatever survived and compare reports.
        resume = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.cli", "resume",
                "--checkpoint-dir", ckpt_dir,
                "--checkpoint-interval", "1",
                "--out", victim_out,
            ],
            check=True, env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, text=True,
        )
        print(resume.stdout.strip().splitlines()[-1])
        resumed = read_report(victim_out)
        if resumed != reference:
            print("resumed campaign report differs from uninterrupted run:")
            print(json.dumps(reference, indent=2, sort_keys=True)[:2000])
            print("--- vs resumed ---")
            print(json.dumps(resumed, indent=2, sort_keys=True)[:2000])
            return 1

        # 4. The replayed checkpoints must also verify divergence-free.
        subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.cli", "replay",
                "--checkpoint-dir", ckpt_dir, "--verify",
            ],
            check=True, env=env, cwd=REPO_ROOT,
        )
        print("kill-resume drill passed: resumed report matches uninterrupted run")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
