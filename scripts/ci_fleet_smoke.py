#!/usr/bin/env python
"""CI fleet smoke: the multi-chip runtime must survive murder and amnesia.

Three drills against an 8-chip fleet with a shared grid power budget:

1. **Determinism** -- the identical fault-free campaign run twice must
   produce byte-identical reports (the fleet's results depend only on
   its config, never on process scheduling).
2. **Supervisor SIGKILL + resume** -- a campaign launched as a
   subprocess is SIGKILLed (whole process group, no cleanup handlers)
   once its manifest records progress; its workers must self-terminate
   (zero orphans), and resuming from the manifest must complete the
   campaign with a report byte-identical to an uninterrupted run's.
3. **Worker faults** -- a campaign with injected worker SIGKILLs, a
   wedged worker (stall) and dropped result messages must detect every
   fault, restart from per-chip checkpoints, keep the budget audit
   clean (conservation through every degraded epoch), and still bring
   every chip to the final epoch.

After every drill the process table is scanned (via each process's
``REPRO_FLEET_RUN_ID`` environment marker) for orphaned workers.

Exits 0 on success, 1 with a diagnostic on any violation; the wall-clock
watchdog exits 2 if the smoke itself wedges.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.checkpoint import fleet_manifest_path, read_fleet_manifest  # noqa: E402
from repro.experiments.fleet import (  # noqa: E402
    resume_fleet_campaign,
    run_fleet_campaign,
)
from repro.fleet import FLEET_ENV_MARKER, RetryPolicy  # noqa: E402
from repro.watchdog import WallClockWatchdog  # noqa: E402

#: Hard wall-clock budget; a hung fleet (deadlocked pipe, stuck worker)
#: exits 2 with thread stacks instead of stalling the CI job
#: (override: REPRO_SMOKE_TIMEOUT_S).
WALL_BUDGET_S = 1500.0

CHIPS = 8
EPOCHS = 5
EPOCH_S = 0.3

#: Short detection timeouts so injected stalls are cheap to wait out.
RETRY = RetryPolicy(attempts=2, timeout_s=5.0, backoff=2.0, max_timeout_s=10.0)


def fleet_workers(fleet_dir):
    """PIDs of live workers stamped with this fleet's environment marker."""
    marker = f"{FLEET_ENV_MARKER}={os.path.realpath(fleet_dir)}".encode()
    pids = []
    for name in os.listdir("/proc"):
        if not name.isdigit():
            continue
        try:
            with open(f"/proc/{name}/environ", "rb") as handle:
                environ = handle.read()
        except OSError:
            continue
        if marker in environ.split(b"\0"):
            pids.append(int(name))
    return pids


def assert_no_orphans(fleet_dir, tag, grace_s=30.0):
    """Workers must vanish on their own within ``grace_s`` of fleet death."""
    deadline = time.monotonic() + grace_s
    while time.monotonic() < deadline:
        orphans = fleet_workers(fleet_dir)
        if not orphans:
            print(f"[{tag}] zero orphaned workers")
            return True
        time.sleep(0.5)
    print(f"[{tag}] FAIL: orphaned worker pids {orphans} outlived the fleet")
    for pid in orphans:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    return False


def report_bytes(result):
    return json.dumps(result.report, sort_keys=True).encode()


def gate(result, tag, expect_restarts=0):
    """Common pass criteria: complete, audit-clean, expected recoveries."""
    failures = []
    if not result.all_chips_complete():
        completed = {
            cid: chip["completed_epochs"]
            for cid, chip in result.report["chips"].items()
        }
        failures.append(f"not every chip completed all epochs: {completed}")
    if result.audit_violations:
        failures.append(
            f"budget audit violations: {result.audit_violations}"
        )
    if result.total_restarts < expect_restarts:
        failures.append(
            f"expected at least {expect_restarts} worker restart(s), "
            f"saw {result.total_restarts}"
        )
    for line in failures:
        print(f"[{tag}] FAIL: {line}")
    if not failures:
        print(
            f"[{tag}] ok: {result.epochs_completed} epochs, "
            f"{result.total_restarts} restart(s), audit clean"
        )
    return not failures


def drill_determinism(workdir):
    tag = "determinism"
    runs = []
    for i in range(2):
        fleet_dir = os.path.join(workdir, f"det-{i}")
        result = run_fleet_campaign(
            chips=CHIPS, epochs=EPOCHS, epoch_s=EPOCH_S,
            fleet_dir=fleet_dir, retry=RETRY,
        )
        if not gate(result, f"{tag}-{i}"):
            return False
        if not assert_no_orphans(fleet_dir, f"{tag}-{i}"):
            return False
        runs.append(report_bytes(result))
    if runs[0] != runs[1]:
        print(f"[{tag}] FAIL: two identical fault-free campaigns diverged")
        return False
    print(f"[{tag}] byte-identical reports across runs")
    return True


def wait_for_progress(fleet_dir, min_epochs=1, timeout_s=300.0):
    """Block until the fleet manifest records ``min_epochs`` epochs."""
    manifest_path = fleet_manifest_path(fleet_dir)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(manifest_path):
            try:
                if read_fleet_manifest(manifest_path).epochs_completed >= min_epochs:
                    return True
            except Exception:
                pass  # mid-write or mid-rename; retry
        time.sleep(0.2)
    return False


def drill_supervisor_kill(workdir):
    tag = "supervisor-kill"
    # Reference: the identical campaign, never interrupted.
    reference = run_fleet_campaign(
        chips=CHIPS, epochs=EPOCHS, epoch_s=EPOCH_S,
        fleet_dir=os.path.join(workdir, "kill-ref"), retry=RETRY,
    )
    if not gate(reference, f"{tag}-reference"):
        return False

    # Victim: the same campaign via the CLI, SIGKILLed mid-flight.
    fleet_dir = os.path.join(workdir, "kill-victim")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "fleet",
            "--fleet-chips", str(CHIPS), "--fleet-epochs", str(EPOCHS),
            "--epoch-duration", str(EPOCH_S), "--fleet-timeout", "5.0",
            "--fleet-dir", fleet_dir,
            "--out", os.path.join(workdir, "kill-victim-out"),
        ],
        env=env, cwd=REPO_ROOT, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        if not wait_for_progress(fleet_dir, min_epochs=1):
            print(f"[{tag}] FAIL: victim never recorded an epoch")
            return False
        try:
            os.killpg(victim.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # victim finished everything first; resume is a no-op
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
    killed_at = read_fleet_manifest(fleet_manifest_path(fleet_dir)).epochs_completed
    print(f"[{tag}] victim SIGKILLed at {killed_at}/{EPOCHS} recorded epochs")

    # The murdered supervisor's workers must self-terminate...
    if not assert_no_orphans(fleet_dir, f"{tag}-post-kill"):
        return False
    # ...and the resumed fleet must finish byte-identically.  The CLI's
    # retry knobs live in the manifest, so resume sees the same config.
    resumed = resume_fleet_campaign(fleet_dir)
    if not gate(resumed, f"{tag}-resumed"):
        return False
    if not assert_no_orphans(fleet_dir, f"{tag}-resumed"):
        return False
    ref_bytes = report_bytes(reference)
    res_bytes = report_bytes(resumed)
    if ref_bytes != res_bytes:
        # The reference ran in-process with RETRY; the victim ran with
        # the CLI's retry flags.  Identity excludes retry, so only the
        # config echo may differ -- compare with configs normalised.
        ref = json.loads(ref_bytes)
        res = json.loads(res_bytes)
        ref["config"].pop("retry", None)
        res["config"].pop("retry", None)
        if json.dumps(ref, sort_keys=True) != json.dumps(res, sort_keys=True):
            print(f"[{tag}] FAIL: resumed report diverged from reference")
            return False
    print(f"[{tag}] resumed report byte-identical to uninterrupted run")
    return True


def drill_worker_faults(workdir):
    tag = "worker-faults"
    fleet_dir = os.path.join(workdir, "faults")
    result = run_fleet_campaign(
        chips=CHIPS, epochs=EPOCHS, epoch_s=EPOCH_S,
        fleet_dir=fleet_dir, retry=RETRY,
        faults=[
            "worker-kill@1:chip02",
            "worker-kill@2:chip05",
            "worker-stall@2:chip00:3600",
            "worker-msg-loss@3:chip07:1",
        ],
    )
    # Two SIGKILLs + one hard stall must each force a restart; the
    # dropped message must be recovered in-band (retry + idempotent
    # cache), so it contributes no restart.
    if not gate(result, tag, expect_restarts=3):
        return False
    injected = result.report["faults_injected"]
    if injected.get("worker-kill") != 2 or injected.get("worker-stall") != 1 \
            or injected.get("worker-msg-loss") != 1:
        print(f"[{tag}] FAIL: injection counts off: {injected}")
        return False
    if not assert_no_orphans(fleet_dir, tag):
        return False
    print(f"[{tag}] all faults detected, all chips recovered to final epoch")
    return True


def main():
    workdir = tempfile.mkdtemp(prefix="fleet-smoke-")
    try:
        for drill in (drill_determinism, drill_supervisor_kill, drill_worker_faults):
            if not drill(workdir):
                return 1
        print("fleet smoke passed: determinism, supervisor kill-resume, "
              "worker-fault recovery all clean")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    with WallClockWatchdog(WALL_BUDGET_S, label="fleet smoke"):
        sys.exit(main())
