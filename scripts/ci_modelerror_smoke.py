#!/usr/bin/env python
"""CI model-error smoke: estimated-power operation must fail safe.

Runs every governor over a small error-magnitude x drift-rate grid with
the counter-based power estimator in the loop, then asserts the
guarantees the estimated-power subsystem promises:

* bounded TDP overshoot: even with badly biased counters or a drifting
  power model, no run spends more than a tolerance fraction of the
  measured window above the cap (the supervisor's freeze -> margin ->
  fallback ladder bounds the damage);
* no silent divergence: every estimation-error percentile is finite, and
  any run whose p95 estimation error blows past the divergence threshold
  must show supervisor activity (transitions) rather than a still-trusted
  broken model;
* zero market-invariant violations across the whole grid.

It also sanity-checks that the drift arm actually degrades the estimator
(some run leaves the HEALTHY state) so a mistuned grid cannot pass
vacuously.

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import math
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.modelerror import run_model_error_campaign  # noqa: E402
from repro.watchdog import WallClockWatchdog  # noqa: E402

DURATION_S = 20.0
WARMUP_S = 3.0

#: Hard wall-clock budget; a hung sweep exits 2 with thread stacks
#: instead of stalling the CI job (override: REPRO_SMOKE_TIMEOUT_S).
WALL_BUDGET_S = 900.0
ERROR_MAGNITUDES = (0.0, 2.0)
DRIFT_RATES = (0.0, 0.5)
#: Fraction of the measured window a run may spend above the cap.  The
#: drift fault physically raises the draw, so some overshoot while the
#: governor chases the ramp is expected; spending most of the window hot
#: means the fallback never re-anchored control to the metered sensor.
TDP_TOLERANCE_FRACTION = 0.5
#: p95 estimation error above which the supervisor must have reacted.
DIVERGENCE_W = 1.5


def main() -> int:
    result = run_model_error_campaign(
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        error_magnitudes=ERROR_MAGNITUDES,
        drift_rates=DRIFT_RATES,
    )
    print(result.as_table())
    print()
    failures = []
    measured_s = DURATION_S - WARMUP_S
    degraded_somewhere = False
    for run in result.runs:
        label = (
            f"{run.governor} (error={run.error_magnitude}, "
            f"drift={run.drift_rate_per_s}/s)"
        )
        if any(
            not math.isfinite(v) for v in run.estimation_error_w.values()
        ):
            failures.append(
                f"{label}: non-finite estimation-error percentile "
                f"{run.estimation_error_w} -- the estimator diverged "
                "numerically"
            )
        if run.tdp_violation_s > TDP_TOLERANCE_FRACTION * measured_s:
            failures.append(
                f"{label}: {run.tdp_violation_s:.2f}s above the cap out of "
                f"{measured_s:.0f}s measured (tolerance "
                f"{TDP_TOLERANCE_FRACTION:.0%}) -- overshoot is not bounded"
            )
        if run.audit_violations != 0:
            failures.append(
                f"{label}: {run.audit_violations} market-invariant "
                "violations under model error"
            )
        p95 = run.estimation_error_w.get("p95", 0.0)
        if p95 > DIVERGENCE_W and not run.estimator_transitions:
            failures.append(
                f"{label}: p95 estimation error {p95:.2f} W with zero "
                "supervisor transitions -- a diverged model is still "
                "trusted"
            )
        if run.estimator_state != "healthy" or run.estimator_transitions:
            degraded_somewhere = True
    if not degraded_somewhere:
        failures.append(
            "no run ever left the HEALTHY estimator state -- the grid is "
            "not exercising the degradation ladder"
        )
    if failures:
        print("MODEL-ERROR SMOKE FAILED:")
        for line in failures:
            print("  -", line)
        return 1
    print(
        "model-error smoke passed: overshoot bounded, percentiles finite, "
        "divergence supervised, zero audit violations"
    )
    return 0


if __name__ == "__main__":
    with WallClockWatchdog(WALL_BUDGET_S, label="model-error smoke"):
        sys.exit(main())
