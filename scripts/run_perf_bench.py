#!/usr/bin/env python
"""Performance-regression benchmark runner.

Runs the ``benchmarks/perf`` scenarios, writes a schema-versioned
``BENCH_<date>.json`` at the repository root, and -- when given a
baseline file -- fails with a nonzero exit if any scenario's ``wall_s``
regressed by more than ``--max-regression`` (25% by default).

Typical uses::

    # Full run, writes BENCH_<today>.json at the repo root.
    python scripts/run_perf_bench.py

    # CI smoke: short scenarios, gate against the committed baseline.
    python scripts/run_perf_bench.py --quick \
        --baseline BENCH_2026-08-06.json --max-regression 0.25

Wall-clock numbers are only comparable on similar hardware; the gate is
meant for CI runners benchmarking against a baseline produced on the
same runner class, or for before/after comparisons on one machine.
Counters and ratios (ticks/s, speedup, report-identity) are portable.
"""

import argparse
import datetime
import json
import math
import multiprocessing
import os
import platform
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from benchmarks.perf import SCENARIO_ORDER, run_scenario  # noqa: E402

SCHEMA_VERSION = 1


def build_parser():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="short scenario variants (CI smoke; seconds instead of minutes)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the parallel_sweep scenario "
             "(default: CPU count, at least 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="repetitions per scenario; best-of-N wall time is reported "
             "(default 3: single runs on shared VMs are noise-dominated)",
    )
    parser.add_argument(
        "--scenarios", default=None,
        help="comma-separated subset to run (default: all, in canonical order)",
    )
    parser.add_argument(
        "--output", default=None,
        help="result path (default: BENCH_<date>.json at the repo root)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="prior BENCH_*.json to gate against; regressions fail the run",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional wall_s slowdown vs the baseline (default 0.25)",
    )
    return parser


def select_scenarios(spec):
    if spec is None:
        return list(SCENARIO_ORDER)
    chosen = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in chosen if name not in SCENARIO_ORDER]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {unknown}; available: {SCENARIO_ORDER}"
        )
    return [name for name in SCENARIO_ORDER if name in chosen]


def scaling_fit(scenarios):
    """Least-squares exponent of wall-per-tick growth with task count.

    Uses every scenario reporting both ``tasks`` and ``ticks_per_s``
    (the ``many_tasks`` family).  Fits ``log(wall_per_tick) = a +
    e * log(tasks)``; ``e`` near 0 means per-tick cost is flat in the
    population, 1 means linear, 2 quadratic.  Needs at least two sizes;
    returns None otherwise.
    """
    points = sorted(
        (metrics["tasks"], 1.0 / metrics["ticks_per_s"])
        for metrics in scenarios.values()
        if metrics.get("tasks") and metrics.get("ticks_per_s")
    )
    sizes = sorted({p[0] for p in points})
    if len(sizes) < 2:
        return None
    logs = [(math.log(n), math.log(w)) for n, w in points]
    mean_x = sum(x for x, _ in logs) / len(logs)
    mean_y = sum(y for _, y in logs) / len(logs)
    sxx = sum((x - mean_x) ** 2 for x, _ in logs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in logs)
    exponent = sxy / sxx
    return {
        "tasks": [n for n, _ in points],
        "wall_per_tick_s": [w for _, w in points],
        "exponent": exponent,
    }


def check_regressions(report, baseline, max_regression):
    """Compare wall_s per scenario; returns a list of failure strings."""
    if baseline.get("schema_version") != report["schema_version"]:
        raise SystemExit(
            "baseline schema_version "
            f"{baseline.get('schema_version')!r} does not match "
            f"{report['schema_version']!r}; regenerate the baseline"
        )
    if bool(baseline.get("quick")) != report["quick"]:
        raise SystemExit(
            "baseline quick mode does not match this run; "
            "compare --quick runs only against --quick baselines"
        )
    failures = []
    for name, metrics in report["scenarios"].items():
        old = baseline.get("scenarios", {}).get(name)
        if old is None or "wall_s" not in old:
            continue  # new scenario: nothing to compare against
        limit = old["wall_s"] * (1.0 + max_regression)
        if metrics["wall_s"] > limit:
            failures.append(
                f"{name}: wall_s {metrics['wall_s']:.3f}s exceeds "
                f"{limit:.3f}s (baseline {old['wall_s']:.3f}s "
                f"+{max_regression:.0%})"
            )
    return failures


def main(argv=None):
    args = build_parser().parse_args(argv)
    cpu_count = multiprocessing.cpu_count()
    jobs = args.jobs if args.jobs is not None else max(2, cpu_count)
    if jobs < 1:
        raise SystemExit(f"--jobs must be positive, got {jobs}")

    scenarios = {}
    for name in select_scenarios(args.scenarios):
        print(f"[perf] running {name} ({'quick' if args.quick else 'full'})...")
        metrics = run_scenario(
            name, quick=args.quick, jobs=jobs, repeats=args.repeats
        )
        scenarios[name] = metrics
        summary = ", ".join(
            f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(metrics.items())
        )
        print(f"[perf] {name}: {summary}")

    scaling = scaling_fit(scenarios)
    if scaling is not None:
        pairs = ", ".join(
            f"n={n}: {w * 1e3:.2f} ms/tick"
            for n, w in zip(scaling["tasks"], scaling["wall_per_tick_s"])
        )
        print(
            f"[perf] scaling: {pairs}; "
            f"wall-per-tick exponent {scaling['exponent']:.2f} "
            f"(0=flat, 1=linear in tasks)"
        )

    report = {
        "schema_version": SCHEMA_VERSION,
        "scaling": scaling,
        "created": datetime.date.today().isoformat(),
        "quick": bool(args.quick),
        "jobs": jobs,
        "repeats": args.repeats,
        "cpu_count": cpu_count,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
    }

    output = args.output or os.path.join(
        REPO_ROOT, f"BENCH_{report['created']}.json"
    )
    tmp = output + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, output)
    print(f"[perf] results written to {output}")

    sweep = scenarios.get("parallel_sweep")
    if sweep is not None and not sweep["reports_identical"]:
        print("[perf] FAIL: parallel sweep report differs from serial")
        return 1

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures = check_regressions(report, baseline, args.max_regression)
        if failures:
            print(f"[perf] FAIL: regression vs {args.baseline}:")
            for line in failures:
                print(f"[perf]   {line}")
            return 1
        print(f"[perf] no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
