#!/usr/bin/env python
"""CI overload smoke: a flash crowd must degrade gracefully, not melt.

Runs every governor through a short flash crowd at 3x the sustainable
arrival rate -- the market-based admission ladder against an
admit-everything baseline on the *identical* stream -- then asserts the
guarantees the overload subsystem promises:

* no admission-ladder deadlock: after the burst's recovery tail the
  ladder must have walked back down to OPEN or DEGRADED (a controller
  pinned at SHED/REJECT on a calm system is stuck);
* bounded queue growth: the peak queue depth never exceeds the
  configured capacity (bounded backpressure is the whole point);
* zero market-invariant violations in both the admission and the
  baseline runs; and
* graceful degradation: the admitted population's p99 heart-rate
  violation fraction is strictly better than the no-admission-control
  baseline's for every governor.

It also sanity-checks that the crowd actually overloaded the chip (the
ladder escalated at least once and something was queued, shed or
rejected) so a mistuned arrival rate cannot pass vacuously.

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import AdmissionConfig, AdmissionState  # noqa: E402
from repro.experiments.overload import run_overload  # noqa: E402
from repro.watchdog import WallClockWatchdog  # noqa: E402

DURATION_S = 30.0
WARMUP_S = 3.0

#: Hard wall-clock budget; a hung run exits 2 with thread stacks
#: instead of stalling the CI job (override: REPRO_SMOKE_TIMEOUT_S).
WALL_BUDGET_S = 900.0
CALM_STATES = (AdmissionState.OPEN.value, AdmissionState.DEGRADED.value)


def main() -> int:
    config = AdmissionConfig()
    result = run_overload(
        duration_s=DURATION_S, warmup_s=WARMUP_S, admission=config
    )
    print(result.as_table())
    print()
    failures = []
    for run in result.runs:
        if run.final_state not in CALM_STATES:
            failures.append(
                f"{run.governor}: ladder deadlocked at {run.final_state!r} "
                "after the recovery tail (expected open/degraded)"
            )
        if run.peak_queue_depth > config.queue_capacity:
            failures.append(
                f"{run.governor}: queue grew to {run.peak_queue_depth} "
                f"entries (capacity {config.queue_capacity}) -- "
                "backpressure is not bounded"
            )
        if run.audit_violations != 0 or run.baseline_audit_violations != 0:
            failures.append(
                f"{run.governor}: market-invariant violations under "
                f"overload (admission {run.audit_violations}, baseline "
                f"{run.baseline_audit_violations})"
            )
        if not run.tail_qos["p99"] < run.baseline_tail_qos["p99"]:
            failures.append(
                f"{run.governor}: admission p99 violation "
                f"{run.tail_qos['p99']:.3f} not better than baseline "
                f"{run.baseline_tail_qos['p99']:.3f} -- no graceful "
                "degradation win"
            )
        if run.ladder_transitions == 0 or (
            run.queued + run.shed_tasks + run.rejected
        ) == 0:
            failures.append(
                f"{run.governor}: the crowd never pressured the ladder "
                "(no transitions or defensive actions) -- the smoke is "
                "not exercising the admission path"
            )
    if failures:
        print("OVERLOAD SMOKE FAILED:")
        for line in failures:
            print("  -", line)
        return 1
    print(
        "overload smoke passed: ladders recovered, queues bounded, zero "
        "audit violations, p99 strictly better than baseline"
    )
    return 0


if __name__ == "__main__":
    with WallClockWatchdog(WALL_BUDGET_S, label="overload smoke"):
        sys.exit(main())
