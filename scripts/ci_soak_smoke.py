#!/usr/bin/env python
"""CI soak smoke: a short compound-fault soak must fully recover.

Runs every governor through a <= 60 s simulated chaos soak -- overlapping
thermal runaway, degraded cooling, stuck thermal zones, power-sensor
dropouts and dropped DVFS writes -- with live thermal tracking, the full
protection ladder and the market auditor checking every round, then
asserts the two invariants the robustness subsystem promises:

* zero unrecovered trips: every cluster the thermal supervisor
  hot-unplugged was replugged once it cooled; and
* zero market-invariant violations: the PPM books stayed consistent
  through every fault window.

It also sanity-checks that the soak actually exercised the ladder (the
thermal faults tripped at least one cluster) so a silently disabled
thermal path cannot pass vacuously.

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.campaigns import run_soak  # noqa: E402
from repro.watchdog import WallClockWatchdog  # noqa: E402

SOAK_DURATION_S = 60.0
WARMUP_S = 5.0

#: Hard wall-clock budget; a hung soak exits 2 with thread stacks
#: instead of stalling the CI job (override: REPRO_SMOKE_TIMEOUT_S).
WALL_BUDGET_S = 1200.0


def main() -> int:
    result = run_soak(duration_s=SOAK_DURATION_S, warmup_s=WARMUP_S)
    print(result.as_table())
    print()
    failures = []
    for run in result.runs:
        if run.unrecovered_trips != 0:
            failures.append(
                f"{run.governor}: {run.unrecovered_trips} cluster(s) still "
                "offline at soak end (trip never recovered)"
            )
        if run.audit_violations != 0:
            failures.append(
                f"{run.governor}: {run.audit_violations} market-invariant "
                "violation(s) under compound faults"
            )
    if not any(run.supervisor.get("trips", 0) > 0 for run in result.runs):
        failures.append(
            "no governor's run tripped the thermal ladder -- the soak is "
            "not exercising the thermal protection path"
        )
    if failures:
        print("SOAK SMOKE FAILED:")
        for line in failures:
            print("  -", line)
        return 1
    print("soak smoke passed: all trips recovered, zero audit violations")
    return 0


if __name__ == "__main__":
    with WallClockWatchdog(WALL_BUDGET_S, label="soak smoke"):
        sys.exit(main())
