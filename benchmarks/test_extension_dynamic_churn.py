"""Extension: churn robustness (the section 3.2.4 scenario, measured).

The paper argues stability when "tasks enter/exit the system" but
evaluates only static sets.  This extension drives a Poisson arrival
process through all three governors and checks the framework's stability
machinery holds up: bounded migrations per task, clean market bookkeeping
and sane QoS for the tasks that could be served.
"""

import pytest

from repro.core import MarketAuditor, PPMGovernor
from repro.experiments.harness import make_governor
from repro.experiments.reporting import format_table
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import ScenarioConfig, poisson_workload

DURATION_S = 60.0
SCENARIO = ScenarioConfig(
    duration_s=45.0,
    arrival_rate_hz=0.25,
    lifetime_range_s=(8.0, 20.0),
    initial_tasks=2,
)


def _run(governor_name):
    tasks = poisson_workload(SCENARIO, seed=29)
    governor = make_governor(governor_name)
    auditor = None
    if isinstance(governor, PPMGovernor):
        auditor = MarketAuditor(governor.market, strict=True)
        original = governor.on_tick

        def audited(sim):
            before = governor.market.rounds_run
            original(sim)
            if governor.market.rounds_run > before:
                auditor.audit_now()

        governor.on_tick = audited  # type: ignore[method-assign]
    sim = Simulation(
        tc2_chip(), tasks, governor, config=SimConfig(metrics_warmup_s=5.0)
    )
    metrics = sim.run(DURATION_S)
    intra, inter = sim.migrations.counts()
    per_task_moves = max((t.migrations for t in tasks), default=0)
    return {
        "governor": governor_name,
        "tasks": len(tasks),
        "mean_miss": metrics.mean_miss_fraction(),
        "power": metrics.average_power_w(),
        "migrations": intra + inter,
        "max_moves_per_task": per_task_moves,
        "audited_rounds": auditor.rounds_audited if auditor else 0,
        "violations": auditor.violation_count if auditor else 0,
    }


def _sweep():
    return [_run(name) for name in ("PPM", "HPM", "HL")]


def test_extension_dynamic_churn(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["governor", "tasks", "mean miss", "power [W]", "migrations",
         "max moves/task", "audited rounds", "violations"],
        [
            [r["governor"], r["tasks"], f"{r['mean_miss']:.3f}",
             f"{r['power']:.2f}", r["migrations"], r["max_moves_per_task"],
             r["audited_rounds"], r["violations"]]
            for r in rows
        ],
        title="Extension: Poisson-churn robustness (45 s arrival window)",
    )
    record("extension_dynamic_churn", text)

    ppm = next(r for r in rows if r["governor"] == "PPM")
    # The market's books stay balanced under churn...
    assert ppm["violations"] == 0
    assert ppm["audited_rounds"] > 500
    # ...and no task is bounced pathologically.
    assert ppm["max_moves_per_task"] <= 20
    assert ppm["mean_miss"] < 0.5
