"""Ablation: the tolerance factor ``delta`` (paper section 3.2.2).

"The lower the value of delta, the faster the response of the cluster
agents.  The faster response results in frequent V-F level transitions,
and hence thermal cycling" -- the sweep records exactly that trade-off:
V-F transition counts against QoS misses for three settings.
"""

import pytest

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.experiments.reporting import format_table
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 60.0
DELTAS = (0.05, 0.15, 0.30)


def _run_delta(delta):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload("m2"),
        PPMGovernor(PPMConfig(market=MarketConfig(tolerance=delta))),
        config=SimConfig(metrics_warmup_s=20.0),
    )
    metrics = sim.run(DURATION_S)
    transitions = sum(c.regulator.transitions for c in chip.clusters)
    return {
        "delta": delta,
        "vf_transitions": transitions,
        "miss": metrics.any_task_miss_fraction(),
        "power": metrics.average_power_w(),
    }


def _sweep():
    return [_run_delta(d) for d in DELTAS]


def test_ablation_tolerance_factor(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["delta", "V-F transitions", "miss fraction", "avg power [W]"],
        [[r["delta"], r["vf_transitions"], r["miss"], f"{r['power']:.2f}"] for r in rows],
        title=f"Ablation: tolerance factor delta on m2 ({DURATION_S:.0f}s)",
    )
    record("ablation_tolerance", text)

    by_delta = {r["delta"]: r for r in rows}
    # A tighter tolerance reacts more -> strictly more V-F transitions
    # than the loosest setting (the thermal-cycling cost the paper warns
    # about).
    assert by_delta[0.05]["vf_transitions"] > by_delta[0.30]["vf_transitions"]
