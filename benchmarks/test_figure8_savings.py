"""Benchmark regenerating Figure 8: savings finance a transient surge.

swaptions and x264 at equal priority on one core.  Reproduced shape
(paper section 5.4): x264 banks allowance during its dormant phase while
exceeding its goals; when the active phase hits it outbids swaptions with
the hoard and sustains performance; once the savings run out "the high
performance demand of x264 cannot be sustained any further".
"""

import pytest

from repro.experiments import figure8


def test_figure8_savings(benchmark, record):
    result, text = benchmark.pedantic(
        figure8,
        kwargs={"dormant_s": 100.0, "active_s": 200.0, "tail_s": 100.0},
        rounds=1,
        iterations=1,
    )
    record("figure8_savings", text)

    dormant = result.x264_normalized_hr(10.0, result.dormant_s)
    early_active = result.x264_normalized_hr(
        result.dormant_s + 1.0, result.dormant_s + 15.0
    )
    late_active = result.x264_normalized_hr(
        result.dormant_s + result.active_s - 30.0,
        result.dormant_s + result.active_s,
    )
    # Dormant: above the goal range while banking.
    assert dormant > 1.03
    # Early active beats late active: the hoard pays for the surge...
    assert early_active > late_active
    # ...and after it drains the demand cannot be met.
    assert late_active < 1.0

    # The savings trace itself: builds up, then collapses.
    times, savings = result.savings_series
    peak = max(s for t, s in zip(times, savings) if t < result.dormant_s + 5)
    tail = [s for t, s in zip(times, savings) if t > result.dormant_s + 150.0]
    assert peak > 0
    assert min(tail) < 0.25 * peak
