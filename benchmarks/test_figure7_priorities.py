"""Benchmark regenerating Figure 7: the effect of task priorities.

Two demanding tasks pinned on one core, LBT disabled.  Reproduced shape:
with equal priorities both spend comparable time outside their goal range
(paper: 29.7% / 31.1%); with swaptions at priority 7 it drops to a few
percent (paper: 7.5%) while bodytrack absorbs the shortfall (paper: 57%).
"""

import pytest

from repro.experiments import figure7

DURATION_S = 300.0


def test_figure7_priorities(benchmark, record):
    equal, prio, text = benchmark.pedantic(
        figure7, kwargs={"duration_s": DURATION_S}, rounds=1, iterations=1
    )
    record("figure7_priorities", text)

    # 7a: equal priorities -> comparable suffering under contention.
    assert abs(equal.swaptions_outside - equal.bodytrack_outside) < 0.25
    assert equal.swaptions_outside > 0.10

    # 7b: priority 7 protects swaptions and sacrifices bodytrack.
    assert prio.swaptions_outside < 0.15
    assert prio.bodytrack_outside > prio.swaptions_outside * 3
    assert prio.swaptions_outside < equal.swaptions_outside
    assert prio.bodytrack_outside >= equal.bodytrack_outside - 0.05
