"""Ablation: tolerance factor vs. thermal cycling (paper section 3.2.2).

The paper justifies a non-trivial delta by warning that fast DVFS
responses cause "thermal cycling, which can be detrimental to ... the
reliability of the hardware", citing Rosing et al.'s reliability work.
The TC2 board gave them no thermal sensors to quantify it; the simulated
substrate does: each run's per-cluster power trace is replayed through
the RC thermal model and the big cluster's thermal cycles are counted.
"""

import pytest

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.experiments.reporting import format_table
from repro.hw import track_thermals, tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 60.0
DELTAS = (0.05, 0.15, 0.30)
DT = 0.01


def _run_delta(delta):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload("m3"),
        PPMGovernor(PPMConfig(market=MarketConfig(tolerance=delta))),
        config=SimConfig(dt=DT, metrics_warmup_s=20.0),
    )
    metrics = sim.run(DURATION_S)
    series = [(DT, s.cluster_power_w) for s in metrics.samples]
    traces, cycles = track_thermals(series, ["big", "little"], cycle_threshold_k=2.0)
    transitions = sum(c.regulator.transitions for c in chip.clusters)
    return {
        "delta": delta,
        "vf_transitions": transitions,
        "big_cycles": cycles["big"],
        "little_cycles": cycles["little"],
        "big_peak_c": max(traces["big"]),
        "miss": metrics.any_task_miss_fraction(),
    }


def _sweep():
    return [_run_delta(d) for d in DELTAS]


def test_ablation_thermal_cycling(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["delta", "V-F transitions", "big cycles", "little cycles",
         "big peak [C]", "miss"],
        [
            [r["delta"], r["vf_transitions"], r["big_cycles"],
             r["little_cycles"], f"{r['big_peak_c']:.1f}", r["miss"]]
            for r in rows
        ],
        title="Ablation: tolerance factor vs thermal cycling (m3, RC model)",
    )
    record("ablation_thermal_cycling", text)

    by_delta = {r["delta"]: r for r in rows}
    # The eager setting transitions more...
    assert by_delta[0.05]["vf_transitions"] > by_delta[0.30]["vf_transitions"]
    # ...and the temperatures stay in a sane mobile-SoC envelope.
    for r in rows:
        assert 25.0 < r["big_peak_c"] < 110.0
