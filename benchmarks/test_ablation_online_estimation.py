"""Ablation: off-line profiles vs. online demand estimation.

The paper's LBT module speculates with off-line-profiled per-core-type
demands and flags their replacement by an online model as future work
(section 3.3).  This sweep runs the same workloads both ways: the online
estimator starts from an architectural prior and learns cross-type
ratios from the migrations it causes.
"""

import pytest

from repro.core import PPMConfig, PPMGovernor
from repro.experiments.reporting import format_table
from repro.hw import tc2_chip
from repro.sim import MetricsCollector, SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 90.0
WARMUP_S = 30.0
WORKLOADS = ("m2", "h3")


def _run(workload, online):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload(workload),
        PPMGovernor(PPMConfig(online_estimation=online)),
        config=SimConfig(metrics_warmup_s=WARMUP_S),
    )
    metrics = sim.run(DURATION_S)
    return {
        "workload": workload,
        "mode": "online" if online else "offline",
        "miss": metrics.any_task_miss_fraction(),
        "power": metrics.average_power_w(),
        "inter_migrations": sim.migrations.counts()[1],
    }


def _sweep():
    rows = []
    for workload in WORKLOADS:
        for online in (False, True):
            rows.append(_run(workload, online))
    return rows


def test_ablation_online_estimation(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["workload", "estimation", "miss", "power [W]", "inter-cluster moves"],
        [
            [r["workload"], r["mode"], r["miss"], f"{r['power']:.2f}",
             r["inter_migrations"]]
            for r in rows
        ],
        title="Ablation: off-line profiling vs online demand estimation",
    )
    record("ablation_online_estimation", text)

    by_key = {(r["workload"], r["mode"]): r for r in rows}
    for workload in WORKLOADS:
        offline = by_key[(workload, "offline")]
        online = by_key[(workload, "online")]
        # The future-work path remains functional: its QoS degradation
        # relative to perfect profiles is bounded.
        assert online["miss"] <= offline["miss"] + 0.25
        assert online["inter_migrations"] >= 1
