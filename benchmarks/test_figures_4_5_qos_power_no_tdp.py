"""Benchmarks regenerating Figures 4 and 5: the unconstrained comparative
study of PPM vs HPM vs HL over the nine workload sets.

Reproduced shape (paper section 5.3):

* Figure 4: PPM misses least on medium/heavy sets; HL degrades sharply
  with intensity.
* Figure 5: HL burns far more power than PPM and HPM (paper: 5.99 W vs
  3.43 W vs 2.96 W); PPM is the most frugal or close to it.

Both figures come from the same sweep, as in the paper; Figure 4's
benchmark carries the cost and Figure 5 renders from the cached result.
"""

import pytest

from repro.experiments import figure4, figure5, run_comparative

DURATION_S = 120.0
WARMUP_S = 30.0

_cache = {}


def _sweep(jobs=None):
    result = run_comparative(duration_s=DURATION_S, warmup_s=WARMUP_S, jobs=jobs)
    _cache["no_tdp"] = result
    return result


def test_figure4_qos_no_tdp(benchmark, record, jobs):
    result = benchmark.pedantic(_sweep, args=(jobs,), rounds=1, iterations=1)
    _, text = figure4(result=result)
    record("figure4_qos_no_tdp", text)

    miss = result.miss_table()
    heavy = ("h1", "h2", "h3")
    medium_heavy = ("m1", "m2", "m3") + heavy
    ppm = sum(miss["PPM"][w] for w in medium_heavy)
    hpm = sum(miss["HPM"][w] for w in medium_heavy)
    hl = sum(miss["HL"][w] for w in medium_heavy)
    # PPM outperforms both baselines on medium+heavy aggregate QoS.
    assert ppm < hpm
    assert ppm < hl
    # HL collapses on the heavy sets.
    assert sum(miss["HL"][w] for w in heavy) / 3 > 0.5


def test_figure5_power_no_tdp(benchmark, record):
    result = _cache.get("no_tdp") or _sweep()
    _, text = benchmark.pedantic(
        lambda: figure5(result=result), rounds=1, iterations=1
    )
    record("figure5_power_no_tdp", text)

    # HL's ondemand + eager big usage burns far more than the others.
    assert result.mean_power("HL") > result.mean_power("PPM") + 0.5
    assert result.mean_power("HL") > result.mean_power("HPM") + 0.5
    # PPM does not pay more power than HPM for its better QoS.
    assert result.mean_power("PPM") <= result.mean_power("HPM") + 0.3
