"""Benchmark regenerating Figure 6: the comparative study under a 4 W TDP.

Reproduced shape (paper section 5.3): tasks meet their reference heart
rate most often under PPM -- the paper reports 34% / 44% improvements in
miss time over HPM / HL.  HL is handicapped structurally: once power
crosses the cap its big cluster is switched off outright.
"""

import pytest

from repro.experiments import figure6

DURATION_S = 120.0
WARMUP_S = 30.0


def test_figure6_qos_tdp_4w(benchmark, record, jobs):
    result, text = benchmark.pedantic(
        figure6,
        kwargs={"duration_s": DURATION_S, "warmup_s": WARMUP_S, "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record("figure6_qos_tdp4w", text)

    # PPM meets the reference ranges more often than both baselines.
    assert result.mean_miss("PPM") < result.mean_miss("HPM")
    assert result.mean_miss("PPM") < result.mean_miss("HL")
    # The improvement over HL is at least the paper's order (>= 30%).
    assert result.improvement_over("HL") >= 0.30

    # Every governor respects the cap on average (PPM oscillates around
    # it in the buffer zone; the baselines clamp below it).
    for governor in ("PPM", "HPM", "HL"):
        assert result.mean_power(governor) <= 4.3
