"""Extension: how does PPM fare against what Linux ships today?

The paper's baselines (HPM, HL) predate mainline energy-aware scheduling;
the novelty of market-based management is precisely that mainstream OSS
went the EAS/schedutil way instead.  This extension experiment adds the
EAS baseline to the comparative sweep on one light, one medium and one
heavy set.

Expected shape: EAS is a strong power manager (schedutil tracks load
tightly) but has no QoS concept, so on contended sets the heartbeat
ranges suffer relative to PPM.
"""

import pytest

from repro.experiments.harness import run_system
from repro.experiments.reporting import format_table
from repro.governors import EASGovernor
from repro.core import PPMGovernor
from repro.tasks import build_workload

WORKLOADS = ("l1", "m2", "h3")
DURATION_S = 90.0
WARMUP_S = 30.0


def _run(workload, governor, name):
    return run_system(
        build_workload(workload),
        governor,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        governor_name=name,
        workload_name=workload,
    )


def _sweep():
    rows = []
    for workload in WORKLOADS:
        rows.append(_run(workload, PPMGovernor(), "PPM"))
        rows.append(_run(workload, EASGovernor(), "EAS"))
    return rows


def test_extension_eas_comparison(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["workload", "governor", "miss", "mean miss", "power [W]", "inter-migrations"],
        [
            [r.workload, r.governor, f"{r.miss_fraction:.3f}",
             f"{r.mean_miss_fraction:.3f}", f"{r.average_power_w:.2f}",
             r.inter_migrations]
            for r in rows
        ],
        title="Extension: PPM vs EAS/schedutil (the modern-Linux policy)",
    )
    record("extension_eas_comparison", text)

    by_key = {(r.workload, r.governor): r for r in rows}
    # On the heavy set, QoS-blind EAS misses more than the market.
    assert (
        by_key[("h3", "PPM")].miss_fraction
        <= by_key[("h3", "EAS")].miss_fraction + 0.05
    )
    # Both are competent power managers on the light set (within 30%).
    light_ppm = by_key[("l1", "PPM")].average_power_w
    light_eas = by_key[("l1", "EAS")].average_power_w
    assert abs(light_ppm - light_eas) / max(light_ppm, light_eas) < 0.5
