"""Ablation: the TDP buffer zone width ``Wtdp - Wth`` (paper 3.2.3).

"With larger buffer zone, the number of oscillations around the TDP
reduces and the stable state is reached quickly, but the chip might be
severely under-utilized.  On the contrary, a smaller buffer zone leads to
frequent oscillations around the TDP, but achieves higher utilization."
"""

import pytest

from repro.core import MarketConfig, PPMConfig, PPMGovernor
from repro.experiments.reporting import format_table
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 60.0
WTDP = 4.0
BUFFERS = (0.2, 0.5, 1.2)


def _tdp_crossings(samples, cap):
    crossings = 0
    above = samples[0] > cap
    for value in samples:
        now_above = value > cap
        if now_above != above:
            crossings += 1
            above = now_above
    return crossings


def _run_buffer(buffer_w):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload("h1"),
        PPMGovernor(
            PPMConfig(market=MarketConfig(wtdp=WTDP, wth=WTDP - buffer_w))
        ),
        config=SimConfig(metrics_warmup_s=20.0),
    )
    metrics = sim.run(DURATION_S)
    powers = [s.chip_power_w for s in metrics.samples if s.time_s >= 20.0]
    return {
        "buffer": buffer_w,
        "crossings": _tdp_crossings(powers, WTDP),
        "avg_power": sum(powers) / len(powers),
        "miss": metrics.any_task_miss_fraction(),
    }


def _sweep():
    return [_run_buffer(b) for b in BUFFERS]


def test_ablation_buffer_zone(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["buffer [W]", "TDP crossings", "avg power [W]", "miss fraction"],
        [
            [r["buffer"], r["crossings"], f"{r['avg_power']:.2f}", r["miss"]]
            for r in rows
        ],
        title=f"Ablation: buffer zone width on h1 under {WTDP:.0f} W TDP",
    )
    record("ablation_buffer_zone", text)

    by_buffer = {r["buffer"]: r for r in rows}
    # A wide buffer parks the chip lower (under-utilisation trade-off).
    assert by_buffer[1.2]["avg_power"] <= by_buffer[0.2]["avg_power"] + 0.15
