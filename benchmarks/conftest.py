"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and writes
the rendered text to ``results/<name>.txt`` so the outputs survive the
run (EXPERIMENTS.md indexes them).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
