"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and writes
the rendered text to ``results/<name>.txt`` so the outputs survive the
run (EXPERIMENTS.md indexes them).

Sweeps honour ``$REPRO_JOBS`` (or ``--repro-jobs``): with N > 1 the
experiment points fan out over a process pool.  Results are identical to
serial runs either way -- parallelism only changes wall-clock time.
"""

import pathlib

import pytest

from repro.experiments.parallel import resolve_jobs

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-jobs", type=int, default=None,
        help="worker processes per experiment sweep "
             "(default: $REPRO_JOBS, else serial)",
    )


@pytest.fixture(scope="session")
def jobs(request):
    """Worker-process count for sweeps: --repro-jobs, else $REPRO_JOBS, else 1."""
    option = request.config.getoption("--repro-jobs")
    return option if option is not None else resolve_jobs()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
