"""Benchmark regenerating Table 7: LBT overhead scaling.

The constrained-core emulation over the paper's configurations, up to 256
clusters x 16 cores x 32 tasks per core (131,072 tasks).  Absolute
milliseconds are machine-dependent (the paper times optimised C on a
350 MHz Cortex-A7); the reproduced properties are the ``T x V`` growth
shape and the order of magnitude relative to the 190 ms interval.
"""

import pytest

from repro.experiments import measure_overhead, table7


def test_table7_scalability(benchmark, record, jobs):
    points, text = benchmark.pedantic(
        table7, kwargs={"invocations": 5, "jobs": jobs}, rounds=1, iterations=1
    )
    record("table7_scalability", text)

    by_config = {(p.clusters, p.cores_per_cluster, p.tasks_per_core): p for p in points}
    # Overhead grows with tasks per core at fixed topology...
    assert (
        by_config[(256, 16, 32)].avg_overhead_ms
        > by_config[(256, 16, 8)].avg_overhead_ms
    )
    # ...and with cluster count at fixed tasks.
    assert (
        by_config[(256, 8, 32)].avg_overhead_ms
        > by_config[(16, 8, 32)].avg_overhead_ms
    )
    # Even the 131,072-task configuration stays a small fraction of the
    # 190 ms migration interval (the paper reports 11.4 ms / 6%).
    assert by_config[(256, 16, 32)].avg_overhead_pct < 25.0


def test_table7_single_point_timing(benchmark):
    """A repeatable micro-benchmark of one mid-size configuration."""
    point = benchmark(measure_overhead, 16, 8, 32, 3, 42)
    assert point.total_tasks == 4096
