"""Performance-regression benchmark suite.

Measures the wall-clock cost of the simulator's hot paths and the
parallel experiment executor, and emits machine-readable results for the
``scripts/run_perf_bench.py`` front end and the CI ``perf-smoke`` gate.
"""

from .scenarios import SCENARIO_ORDER, SCENARIOS, run_scenario

__all__ = ["SCENARIOS", "SCENARIO_ORDER", "run_scenario"]
