"""Perf scenarios: timed workloads covering the simulator's hot paths.

Three scenarios bracket the performance envelope:

* ``single_point`` -- one comparative-study data point (PPM on the m2
  set).  This is the building block every experiment repeats, and the
  scenario the tick-loop optimizations (dispatch fast path, placement
  and market indices, cached power coefficients) are measured by.
* ``parallel_sweep`` -- a small Figure-6-style sweep run serially and
  then through the process-pool executor, verifying the reports are
  identical and recording the parallel speedup.  On a multi-core
  machine the speedup approaches the job count; on a single core it
  records the pool overhead instead.
* ``many_tasks`` -- a 50-task synthetic workload on the TC2 chip, which
  stresses the per-core scheduling, placement-index and market-round
  paths far beyond the paper's 4-6 task sets.  ``many_tasks_1k`` and
  ``many_tasks_10k`` repeat it at 1,000 and 10,000 tasks (short sim
  durations); together the three points let ``run_perf_bench.py`` fit
  the wall-per-tick scaling exponent of the columnar engine.
* ``arrival_churn`` -- a flash-crowd arrival stream behind the
  admission ladder: tasks spawn, retire, queue and get shed all run
  long, which stresses the task-cache invalidation, market add/remove
  and admission-control paths that the fixed-set scenarios never touch.
* ``estimated_power`` -- the single-point run with the counter-based
  power estimator in the loop and a mid-run model-drift fault: every
  tick samples synthetic counters, updates the per-cluster RLS fits and
  walks the supervisor ladder, which prices the estimation subsystem's
  per-tick overhead against the plain metered path.

Every scenario returns flat ``{metric: value}`` dicts so the JSON
emitter and the regression gate stay schema-trivial.  Timed sections use
``time.perf_counter`` around a single full run; callers wanting tighter
error bars pass ``repeats`` > 1 and get the best-of-N wall time, which
is the standard way to strip scheduler noise from a regression signal.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List

from repro.experiments.comparative import run_comparative
from repro.experiments.harness import run_workload
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import random_tasks
from repro.experiments.harness import make_governor

#: Simulated seconds for the full/quick variants of each scenario.
FULL_SINGLE_POINT_S = 120.0
QUICK_SINGLE_POINT_S = 30.0
FULL_SWEEP_S = 20.0
QUICK_SWEEP_S = 8.0
FULL_MANY_TASKS_S = 20.0
QUICK_MANY_TASKS_S = 8.0
FULL_MANY_TASKS_1K_S = 2.0
QUICK_MANY_TASKS_1K_S = 1.0
FULL_MANY_TASKS_10K_S = 2.0
QUICK_MANY_TASKS_10K_S = 1.0
FULL_CHURN_S = 30.0
QUICK_CHURN_S = 15.0
FULL_ESTIMATION_S = 60.0
QUICK_ESTIMATION_S = 20.0


def _timed(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall seconds for ``fn`` (N >= 1)."""
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _comparative_fingerprint(result) -> str:
    """Canonical JSON of a sweep's summary numbers, for equality checks."""
    return json.dumps(
        {
            governor: {
                workload: {
                    "miss": run.miss_fraction,
                    "mean_miss": run.mean_miss_fraction,
                    "avg_w": run.average_power_w,
                    "peak_w": run.peak_power_w,
                    "intra": run.intra_migrations,
                    "inter": run.inter_migrations,
                    "per_task_below": run.per_task_below,
                }
                for workload, run in by_workload.items()
            }
            for governor, by_workload in result.runs.items()
        },
        sort_keys=True,
    )


def single_point(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """One PPM/m2 comparative data point; the tick-loop hot path."""
    duration_s = QUICK_SINGLE_POINT_S if quick else FULL_SINGLE_POINT_S
    warmup_s = duration_s / 4.0
    wall_s = _timed(
        lambda: run_workload(
            "m2", "PPM", duration_s=duration_s, warmup_s=warmup_s
        ),
        repeats,
    )
    ticks = int(round(duration_s / 0.01))
    return {
        "wall_s": wall_s,
        "sim_s": duration_s,
        "ticks": ticks,
        "ticks_per_s": ticks / wall_s,
        "sim_time_ratio": duration_s / wall_s,
    }


def parallel_sweep(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """Serial vs parallel Figure-6-style sweep; checks byte-equality."""
    duration_s = QUICK_SWEEP_S if quick else FULL_SWEEP_S
    governors = ("PPM", "HL") if quick else ("PPM", "HPM", "HL")
    workloads = ("l1", "m1") if quick else ("l1", "m1", "m2")
    kwargs = dict(
        power_cap_w=4.0,
        governors=governors,
        workloads=workloads,
        duration_s=duration_s,
        warmup_s=duration_s / 4.0,
    )
    serial_result = {}
    parallel_result = {}
    serial_s = _timed(
        lambda: serial_result.update(all=run_comparative(jobs=1, **kwargs)),
        repeats,
    )
    parallel_s = _timed(
        lambda: parallel_result.update(all=run_comparative(jobs=jobs, **kwargs)),
        repeats,
    )
    identical = _comparative_fingerprint(
        serial_result["all"]
    ) == _comparative_fingerprint(parallel_result["all"])
    return {
        "points": len(governors) * len(workloads),
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "reports_identical": bool(identical),
        # The regression gate keys off ``wall_s``; for this scenario the
        # guarded quantity is the serial sweep (the parallel time depends
        # on the host's core count, which CI runners vary).
        "wall_s": serial_s,
    }


def _many_tasks_scenario(
    n_tasks: int, duration_s: float, repeats: int
) -> Dict[str, float]:
    """``n_tasks`` synthetic tasks under PPM for ``duration_s`` sim seconds.

    The shared body behind ``many_tasks`` and its 1k/10k variants; the
    task count is the scaling axis the columnar engine is measured on
    (``run_perf_bench.py`` fits the wall-per-tick growth exponent across
    every scenario reporting a ``tasks`` count).
    """

    def run() -> None:
        sim = Simulation(
            tc2_chip(),
            random_tasks(n_tasks, seed=7),
            make_governor("PPM", power_cap_w=8.0),
            config=SimConfig(seed=7, metrics_warmup_s=duration_s / 4.0),
        )
        sim.run(duration_s)

    wall_s = _timed(run, repeats)
    ticks = int(round(duration_s / 0.01))
    return {
        "wall_s": wall_s,
        "sim_s": duration_s,
        "tasks": n_tasks,
        "ticks": ticks,
        "ticks_per_s": ticks / wall_s,
    }


def many_tasks(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """50 synthetic tasks under PPM; stresses index/market scaling."""
    duration_s = QUICK_MANY_TASKS_S if quick else FULL_MANY_TASKS_S
    return _many_tasks_scenario(50, duration_s, repeats)


def many_tasks_1k(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """1,000 tasks: the columnar engine's batched clearing territory.

    Far beyond the paper's 4-6 task sets; the per-tick market and
    dispatch work is array-shaped here, so this point anchors the middle
    of the scaling fit.
    """
    duration_s = QUICK_MANY_TASKS_1K_S if quick else FULL_MANY_TASKS_1K_S
    return _many_tasks_scenario(1000, duration_s, repeats)


def many_tasks_10k(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """10,000 tasks: the Table 7 scale, end to end instead of emulated.

    Still short on sim time relative to the other scenarios -- the
    point's job is to pin the scaling exponent, not to soak -- but long
    enough (>=100 ticks even in quick mode) that a single slow tick or a
    scheduler hiccup cannot swing the measurement; 20-tick runs on a
    +/-25% VM produced exponent estimates too noisy to gate on.
    """
    duration_s = QUICK_MANY_TASKS_10K_S if quick else FULL_MANY_TASKS_10K_S
    return _many_tasks_scenario(10000, duration_s, repeats)


def arrival_churn(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """Flash-crowd arrivals through the admission ladder under PPM.

    Open-ended churn is the tick loop's worst case: every spawn and
    retirement invalidates the task cache and re-touches the market and
    placement indices, and the admission controller re-prices the chip
    every check period.
    """
    from repro.core import AdmissionConfig, AdmissionController, OverloadManager
    from repro.experiments.overload import OVERLOAD_TDP_W, build_overload_arrivals
    from repro.tasks import ArrivalStream, build_workload

    duration_s = QUICK_CHURN_S if quick else FULL_CHURN_S
    counters: Dict[str, float] = {}

    def run() -> None:
        chip = tc2_chip()
        config = build_overload_arrivals(chip, duration_s, duration_s / 4.0)
        sim = Simulation(
            chip,
            build_workload("l1"),
            make_governor("PPM", power_cap_w=OVERLOAD_TDP_W),
            config=SimConfig(seed=7, metrics_warmup_s=duration_s / 4.0),
        )
        manager = OverloadManager(
            ArrivalStream(config, seed=7),
            AdmissionController(AdmissionConfig()),
        ).attach(sim)
        sim.run(duration_s)
        stats = manager.stats()
        counters["offered"] = stats["offered"]
        counters["admitted"] = stats["admitted"]
        counters["shed"] = stats["shed_tasks"]

    wall_s = _timed(run, repeats)
    ticks = int(round(duration_s / 0.01))
    return {
        "wall_s": wall_s,
        "sim_s": duration_s,
        "ticks": ticks,
        "ticks_per_s": ticks / wall_s,
        **counters,
    }


def estimated_power(quick: bool, jobs: int, repeats: int = 1) -> Dict[str, float]:
    """PPM on m2 with the power estimator in the loop plus a drift fault.

    Adds the full estimated-power tick tax on top of ``single_point``:
    counter synthesis with cross-talk, four RLS updates per tick (two
    clusters), supervisor health checks, and the drift fault's
    coefficient walk, which forces the ladder (and its telemetry) to
    actually engage instead of idling in HEALTHY.
    """
    from repro.core.powerest import EstimationConfig
    from repro.faults import FaultInjector, FaultKind, single_fault
    from repro.tasks import build_workload

    duration_s = QUICK_ESTIMATION_S if quick else FULL_ESTIMATION_S
    counters: Dict[str, float] = {}

    def run() -> None:
        sim = Simulation(
            tc2_chip(),
            build_workload("m2"),
            make_governor("PPM", power_cap_w=4.0),
            config=SimConfig(
                seed=7,
                metrics_warmup_s=duration_s / 4.0,
                estimation=EstimationConfig(),
            ),
        )
        schedule = single_fault(
            FaultKind.POWER_MODEL_DRIFT,
            duration_s / 2.0,
            duration_s / 4.0,
            target="big",
            magnitude=3.0,
        )
        FaultInjector(sim, schedule).attach()
        sim.run(duration_s)
        stats = sim.estimation.stats()
        counters["estimator_ticks"] = stats["ticks"]
        counters["supervisor_transitions"] = stats.get(
            "estimator_transitions", 0
        )

    wall_s = _timed(run, repeats)
    ticks = int(round(duration_s / 0.01))
    return {
        "wall_s": wall_s,
        "sim_s": duration_s,
        "ticks": ticks,
        "ticks_per_s": ticks / wall_s,
        **counters,
    }


SCENARIOS: Dict[str, Callable[..., Dict[str, float]]] = {
    "single_point": single_point,
    "parallel_sweep": parallel_sweep,
    "many_tasks": many_tasks,
    "many_tasks_1k": many_tasks_1k,
    "many_tasks_10k": many_tasks_10k,
    "arrival_churn": arrival_churn,
    "estimated_power": estimated_power,
}

#: Canonical execution/reporting order.
SCENARIO_ORDER: List[str] = [
    "single_point",
    "parallel_sweep",
    "many_tasks",
    "many_tasks_1k",
    "many_tasks_10k",
    "arrival_churn",
    "estimated_power",
]


def run_scenario(
    name: str, quick: bool = False, jobs: int = 2, repeats: int = 1
) -> Dict[str, float]:
    """Run one scenario by name; raises KeyError on unknown names."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](quick=quick, jobs=jobs, repeats=repeats)
