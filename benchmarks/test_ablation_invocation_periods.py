"""Ablation: LBT invocation periods (paper section 3.4).

The paper invokes load balancing every 3 bid rounds and migration every 6
(migration across clusters costs 2-4 ms, within a cluster 50-170 us).
The sweep varies the migration multiple: too eager churns tasks across
clusters; too lazy leaves mappings stale.
"""

import pytest

from repro.core import PPMConfig, PPMGovernor
from repro.experiments.reporting import format_table
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

DURATION_S = 60.0
MIGRATE_EVERY = (2, 6, 24)


def _run_period(migrate_every):
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload("m3"),
        PPMGovernor(PPMConfig(migrate_every=migrate_every, migration_cooldown_s=0.0)),
        config=SimConfig(metrics_warmup_s=20.0),
    )
    metrics = sim.run(DURATION_S)
    intra, inter = sim.migrations.counts()
    return {
        "migrate_every": migrate_every,
        "inter_migrations": inter,
        "intra_migrations": intra,
        "miss": metrics.any_task_miss_fraction(),
        "power": metrics.average_power_w(),
    }


def _sweep():
    return [_run_period(m) for m in MIGRATE_EVERY]


def test_ablation_invocation_periods(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["migrate every N rounds", "inter-cluster", "intra-cluster", "miss", "power [W]"],
        [
            [r["migrate_every"], r["inter_migrations"], r["intra_migrations"],
             r["miss"], f"{r['power']:.2f}"]
            for r in rows
        ],
        title=f"Ablation: migration invocation period on m3 ({DURATION_S:.0f}s)",
    )
    record("ablation_invocation_periods", text)

    by_period = {r["migrate_every"]: r for r in rows}
    # The interesting (and initially counter-intuitive) result: eager
    # migration converges to a good mapping quickly and then stops
    # proposing moves, while a lazy migrator keeps reacting to a stale
    # mapping for the whole run -- so laziness costs QoS.
    assert by_period[24]["miss"] >= by_period[2]["miss"]
