"""Ablation: the savings cap fraction (paper section 3.2.3).

"We choose to cap the savings of a task agent ... because large amount of
savings may allow the tasks to keep the system in an emergency state
longer than permissible.  The ideal factor for capping is determined by
the designer" -- the sweep shows how the cap bounds how long a bursty
task can finance its active phase (the Figure 8 mechanism).
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.savings import run_savings_experiment

CAPS = (0.0, 60.0, 400.0)
DORMANT_S = 40.0
ACTIVE_S = 80.0


def _run_cap(cap):
    result = run_savings_experiment(
        dormant_s=DORMANT_S,
        active_s=ACTIVE_S,
        tail_s=20.0,
        savings_cap_fraction=cap,
    )
    early = result.x264_normalized_hr(DORMANT_S + 1.0, DORMANT_S + 12.0)
    late = result.x264_normalized_hr(
        DORMANT_S + ACTIVE_S - 20.0, DORMANT_S + ACTIVE_S
    )
    times, savings = result.savings_series
    peak = max(
        (s for t, s in zip(times, savings) if t < DORMANT_S + 5.0), default=0.0
    )
    return {"cap": cap, "early": early, "late": late, "peak_savings": peak}


def _sweep():
    return [_run_cap(c) for c in CAPS]


def test_ablation_savings_cap(benchmark, record):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["cap fraction", "peak savings [$]", "early-active hr", "late-active hr"],
        [
            [r["cap"], f"{r['peak_savings']:.2f}", f"{r['early']:.3f}", f"{r['late']:.3f}"]
            for r in rows
        ],
        title="Ablation: savings cap fraction (Figure 8 scenario)",
    )
    record("ablation_savings_cap", text)

    by_cap = {r["cap"]: r for r in rows}
    # No savings -> no hoard at all; a larger cap banks more.
    assert by_cap[0.0]["peak_savings"] == pytest.approx(0.0, abs=1e-6)
    assert by_cap[400.0]["peak_savings"] > by_cap[60.0]["peak_savings"]
    # The hoard buys early-active performance relative to the capless run.
    assert by_cap[400.0]["early"] > by_cap[0.0]["early"] + 0.02
