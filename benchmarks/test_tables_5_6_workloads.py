"""Benchmark regenerating the workload definitions (Tables 5 and 6).

Table 5 lists the benchmark suite; Table 6 the nine multiprogrammed sets
with their intensity classification.  The reproduced property is the
classification itself: l* <= 0 < m* <= 0.30 < h*.
"""

from repro.experiments.reporting import format_table
from repro.hw import tc2_chip
from repro.tasks import (
    BENCHMARK_SPECS,
    WORKLOAD_ORDER,
    WORKLOAD_SETS,
    build_workload,
    classify_workload,
    workload_intensity,
)


def _table5_text():
    rows = [
        [spec.name, spec.input_label, f"{spec.demand_a7_pus:.0f}",
         f"{spec.speedup_a15:.2f}", f"{spec.nominal_hr:.0f}"]
        for spec in BENCHMARK_SPECS.values()
    ]
    return format_table(
        ["benchmark", "input", "A7 demand [PU]", "A15 speedup", "target hr [hb/s]"],
        rows,
        title="Table 5: benchmark suite (synthetic profiles)",
    )


def _table6_text():
    chip = tc2_chip()
    rows = []
    for set_id in WORKLOAD_ORDER:
        tasks = build_workload(set_id)
        members = ", ".join(f"{n}_{c}" for n, c in WORKLOAD_SETS[set_id])
        rows.append(
            [
                set_id,
                classify_workload(tasks, chip),
                f"{workload_intensity(tasks, chip):+.3f}",
                members,
            ]
        )
    return format_table(
        ["set", "class", "intensity", "members"],
        rows,
        title="Table 6: workload sets and intensity classification",
    )


def test_table5_benchmark_suite(benchmark, record):
    text = benchmark.pedantic(_table5_text, rounds=1, iterations=1)
    record("table5_benchmarks", text)
    assert "swaptions" in text


def test_table6_workload_intensity(benchmark, record):
    text = benchmark.pedantic(_table6_text, rounds=1, iterations=1)
    record("table6_workload_intensity", text)
    chip = tc2_chip()
    for set_id in WORKLOAD_ORDER:
        expected = {"l": "light", "m": "medium", "h": "heavy"}[set_id[0]]
        assert classify_workload(build_workload(set_id), chip) == expected
