"""Benchmarks regenerating the paper's running examples (Tables 1-4).

These are exact reproductions: Table 1/2 match the paper cell-for-cell,
Table 3 reaches the paper's stable point (threshold state, 500 PUs,
priorities honoured), Table 4 reproduces the demand conversions.
"""

import pytest

from repro.experiments import table1, table2, table3, table4


def test_table1_task_core_dynamics(benchmark, record):
    scenario, text = benchmark.pedantic(table1, rounds=1, iterations=1)
    record("table1_task_core_dynamics", text)
    assert scenario.rows[1].supplies["ta"] == pytest.approx(200.0)
    assert scenario.rows[1].supplies["tb"] == pytest.approx(100.0)


def test_table2_cluster_dynamics(benchmark, record):
    scenario, text = benchmark.pedantic(table2, rounds=1, iterations=1)
    record("table2_cluster_dynamics", text)
    assert scenario.rows[3].core_supply == 400.0
    assert scenario.rows[3].supplies["ta"] == pytest.approx(300.0)


def test_table3_chip_dynamics(benchmark, record):
    scenario, text = benchmark.pedantic(
        table3, kwargs={"rounds": 40}, rounds=1, iterations=1
    )
    record("table3_chip_dynamics", text)
    final = scenario.rows[-1]
    assert final.state == "threshold"
    assert final.core_supply == 500.0


def test_table4_demand_conversion(benchmark, record):
    text = benchmark.pedantic(table4, rounds=1, iterations=1)
    record("table4_demand_conversion", text)
    assert "900" in text and "675" in text
