"""Benchmark harness: paper-figure regenerators plus the perf suite."""
