#!/usr/bin/env python3
"""Power-constrained scheduling: PPM vs the baselines under a 4 W TDP.

The paper's evaluation platform has an 8 W envelope; capping it at 4 W
(Figure 6's setup) forces the governors to ration the big cluster.  This
example runs a heavy workload under all three governors at the cap and
shows how differently they cope:

* PPM oscillates inside the buffer zone just below the cap, favouring
  whatever the market prices highest;
* HPM clamps cluster frequencies with its outer PID loop;
* HL simply switches the big cluster off when it first trips the cap.
"""

from repro.experiments import make_governor
from repro.experiments.reporting import format_table, sparkline
from repro.hw import tc2_chip
from repro.sim import SimConfig, Simulation
from repro.tasks import build_workload

TDP_W = 4.0
DURATION_S = 60.0


def run(governor_name: str):
    chip = tc2_chip()
    tasks = build_workload("h2")
    governor = make_governor(governor_name, power_cap_w=TDP_W)
    sim = Simulation(chip, tasks, governor, config=SimConfig(metrics_warmup_s=20.0))
    metrics = sim.run(DURATION_S)
    _, powers = metrics.power_series()
    return {
        "governor": governor_name,
        "miss": metrics.any_task_miss_fraction(),
        "power": metrics.average_power_w(),
        "peak": metrics.peak_power_w(),
        "over_tdp": metrics.time_above_power(TDP_W),
        "trace": powers,
    }


def main() -> None:
    results = [run(name) for name in ("PPM", "HPM", "HL")]
    print(
        format_table(
            ["governor", "miss %", "avg power [W]", "peak [W]", "time > TDP"],
            [
                [
                    r["governor"],
                    f"{r['miss'] * 100:.1f}",
                    f"{r['power']:.2f}",
                    f"{r['peak']:.2f}",
                    f"{r['over_tdp'] * 100:.1f}%",
                ]
                for r in results
            ],
            title=f"Heavy workload h2 under a {TDP_W:.0f} W TDP ({DURATION_S:.0f}s)",
        )
    )
    print("\nchip power traces (full run):")
    for r in results:
        print(f"  {r['governor']:4s} {sparkline(r['trace'])}")


if __name__ == "__main__":
    main()
