#!/usr/bin/env python3
"""The market's two signature behaviours: priorities and savings.

Re-runs compact versions of the paper's Figures 7 and 8:

1. Two demanding tasks share one core.  Raising one task's priority to 7
   shifts virtually all QoS misses onto the other task.
2. A bursty encoder banks its allowance during a dormant phase and spends
   the hoard to outbid a steady task when its active phase hits -- until
   the wallet runs dry.
"""

from repro.experiments import run_priority_experiment, run_savings_experiment
from repro.experiments.reporting import format_table, sparkline


def priorities() -> None:
    print("=== priorities (Figure 7) ===")
    equal = run_priority_experiment(1, 1, duration_s=120.0)
    prio = run_priority_experiment(7, 1, duration_s=120.0)
    print(
        format_table(
            ["priorities (swaptions:bodytrack)", "swaptions outside", "bodytrack outside"],
            [
                ["1:1", f"{equal.swaptions_outside * 100:.1f}%", f"{equal.bodytrack_outside * 100:.1f}%"],
                ["7:1", f"{prio.swaptions_outside * 100:.1f}%", f"{prio.bodytrack_outside * 100:.1f}%"],
            ],
        )
    )
    print("  7:1 swaptions hr:", sparkline(prio.series["swaptions_native"][1]))
    print("  7:1 bodytrack hr:", sparkline(prio.series["bodytrack_native"][1]))


def savings() -> None:
    print("\n=== savings (Figure 8) ===")
    result = run_savings_experiment(dormant_s=100.0, active_s=150.0, tail_s=50.0)
    d = result.dormant_s
    rows = [
        ["dormant (banking)", f"{result.x264_normalized_hr(10, d):.2f}"],
        ["active, hoard spending", f"{result.x264_normalized_hr(d + 2, d + 15):.2f}"],
        ["active, hoard empty", f"{result.x264_normalized_hr(d + 90, d + 120):.2f}"],
    ]
    print(format_table(["x264 phase", "normalised heart rate"], rows))
    print("  x264 heart rate:", sparkline(result.series["x264_native"][1]))
    print("  x264 savings   :", sparkline(result.savings_series[1]))


if __name__ == "__main__":
    priorities()
    savings()
