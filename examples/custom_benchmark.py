#!/usr/bin/env python3
"""Bring your own application: define a benchmark profile and run it.

Shows the full task-model API: per-core-type costs (the heterogeneity),
a scripted phase trace, a QoS range, and a priority -- then watches the
market route the task and pick V-F levels for it.
"""

from repro import PPMGovernor, SimConfig, Simulation, tc2_chip
from repro.tasks import (
    BenchmarkProfile,
    HeartRateRange,
    PiecewisePhases,
    Task,
    make_task,
)


def main() -> None:
    # A hypothetical AR tracker: 24 fps target, each frame costs 25 mega-
    # cycles on an A7 but only 13 on an A15, with a heavy middle phase.
    profile = BenchmarkProfile(
        name="ar_tracker",
        input_label="demo",
        nominal_hr=24.0,
        hr_range=HeartRateRange(min_hr=22.8, max_hr=25.2),
        cost_pu_s_per_beat_by_type={"A7": 25.0, "A15": 13.0},
        phases=PiecewisePhases([(20.0, 0.8), (20.0, 1.6), (20.0, 1.0)]),
        # A frame-rate-bound tracker self-paces at the top of its range.
        work_limit_factor=1.05,
    )
    tracker = Task(profile=profile, priority=5, name="ar_tracker")
    background = make_task("blackscholes", "l", priority=1, task_name="background")

    chip = tc2_chip()
    sim = Simulation(chip, [tracker, background], PPMGovernor(),
                     config=SimConfig(metrics_warmup_s=5.0))

    print("phase plan: 0-20s light (0.8x), 20-40s heavy (1.6x), 40-60s nominal")
    print(f"{'t':>4s}  {'tracker hr':>10s}  {'core':>9s}  {'little':>7s}  {'big':>5s}  {'W':>5s}")
    for step in range(12):
        sim.run(5.0)
        core = sim.placement.core_of(tracker)
        big = chip.cluster("big")
        little = chip.cluster("little")
        print(
            f"{sim.now:4.0f}  {tracker.observed_heart_rate():10.1f}  "
            f"{core.core_id:>9s}  "
            f"{little.frequency_mhz if little.powered else 0:7.0f}  "
            f"{big.frequency_mhz if big.powered else 0:5.0f}  "
            f"{sim.last_power_sample().chip_power_w:5.2f}"
        )

    metrics = sim.metrics
    print(
        f"\ntracker in range {100 * (1 - metrics.task_outside_range_fraction('ar_tracker')):.0f}% "
        f"of measured time; chip averaged {metrics.average_power_w():.2f} W"
    )


if __name__ == "__main__":
    main()
