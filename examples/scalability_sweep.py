#!/usr/bin/env python3
"""How far does the distributed market scale?  (Table 7's question.)

Emulates the constrained core of ever-larger systems -- up to 256
clusters x 16 cores x 32 tasks per core -- and measures the time one
core spends per 190 ms migration interval on its market bookkeeping and
LBT speculation.  Also runs a real (small) many-cluster simulation on a
synthetic chip to show the framework is not TC2-specific.
"""

from repro import PPMGovernor, SimConfig, Simulation, synthetic_chip
from repro.experiments import measure_overhead
from repro.experiments.reporting import format_table
from repro.tasks import random_tasks


def emulated_sweep() -> None:
    print("=== constrained-core overhead emulation (Table 7) ===")
    rows = []
    for v, c, t in [(2, 4, 8), (16, 8, 32), (64, 16, 32), (256, 16, 32)]:
        point = measure_overhead(v, c, t, invocations=3)
        rows.append(
            [v, c, t, point.total_tasks, f"{point.avg_overhead_ms:.2f}",
             f"{point.avg_overhead_pct:.2f}%"]
        )
    print(
        format_table(
            ["clusters", "cores/cluster", "tasks/core", "total tasks",
             "overhead [ms]", "of 190 ms"],
            rows,
        )
    )


def real_many_cluster_run() -> None:
    print("\n=== PPM on a synthetic 6-cluster chip ===")
    chip = synthetic_chip(n_clusters=6, cores_per_cluster=2, seed=7)
    tasks = random_tasks(18, seed=11, demand_range=(40.0, 260.0))
    sim = Simulation(chip, tasks, PPMGovernor(), config=SimConfig(metrics_warmup_s=5.0))
    metrics = sim.run(20.0)
    print(f"tasks: {len(tasks)} random, clusters: {len(chip.clusters)}")
    print(f"any-task miss: {metrics.any_task_miss_fraction() * 100:.1f}%")
    print(f"avg power   : {metrics.average_power_w():.2f} W")
    for cluster in chip.clusters:
        n = len(sim.placement.tasks_on_cluster(cluster))
        state = f"{cluster.frequency_mhz:5.0f} MHz" if cluster.powered else "  off   "
        print(f"  {cluster.cluster_id:4s} [{state}] {n} tasks")


if __name__ == "__main__":
    emulated_sweep()
    real_many_cluster_run()
