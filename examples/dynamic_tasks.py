#!/usr/bin/env python3
"""A day in the life of a phone: tasks arriving and leaving.

Launches a rolling mix of applications -- a persistent UI-ish task, a
burst of video encoding, a background batch job -- and shows the market
re-pricing, the LBT re-mapping and the clusters gating on and off as the
population changes.  Also demonstrates the tracing API.
"""

from repro import PPMGovernor, SimConfig, Simulation, tc2_chip
from repro.sim import attach_tracer
from repro.tasks import make_task


def main() -> None:
    tasks = [
        # A persistent light task (the "UI").
        make_task("multicnt", "v", priority=5, task_name="ui"),
        # A heavy video encode that arrives at t=10 and runs 25 s.
        make_task("x264", "n", priority=2, task_name="encode",
                  start_time=10.0, duration=25.0),
        # Two batch jobs arriving later, one short, one long.
        make_task("blackscholes", "n", priority=1, task_name="batch_a",
                  start_time=20.0, duration=30.0),
        make_task("swaptions", "n", priority=1, task_name="batch_b",
                  start_time=30.0, duration=25.0),
    ]
    chip = tc2_chip()
    governor = PPMGovernor()
    sim = Simulation(chip, tasks, governor, config=SimConfig(metrics_warmup_s=2.0))
    tracer = attach_tracer(sim)

    print(f"{'t':>4} {'alive':>5} {'little':>7} {'big':>5} {'W':>5}  placements")
    for _ in range(14):
        sim.run(5.0)
        alive = sim.active_tasks()
        little, big = chip.cluster("little"), chip.cluster("big")
        # A task whose start time coincides with the snapshot is placed
        # on the next tick; show it as pending.
        placements = {
            t.name: (core.core_id if (core := sim.placement.core_of(t)) else "...")
            for t in alive
        }
        print(
            f"{sim.now:4.0f} {len(alive):5d} "
            f"{little.frequency_mhz if little.powered else 0:7.0f} "
            f"{big.frequency_mhz if big.powered else 0:5.0f} "
            f"{sim.last_power_sample().chip_power_w:5.2f}  {placements}"
        )

    print("\nevent counts from the tracer:")
    for kind in ("dvfs", "migration", "power_gate"):
        print(f"  {kind:11s}: {tracer.count(kind)}")
    migrations = tracer.events(kind="migration")
    if migrations:
        last = migrations[-1]
        print(
            f"  last migration: {last.subject} "
            f"{last.detail['source']} -> {last.detail['destination']} "
            f"at t={last.time_s:.1f}s"
        )
    print(f"\nui task below its range {sim.metrics.task_below_fraction('ui') * 100:.1f}% of time")


if __name__ == "__main__":
    main()
