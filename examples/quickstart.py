#!/usr/bin/env python3
"""Quickstart: run the price-theory power manager on a big.LITTLE chip.

Builds the TC2 chip model, loads the paper's m2 workload set (six
heartbeat-instrumented benchmarks), runs the PPM governor for 60 simulated
seconds and prints what happened.
"""

from repro import PPMGovernor, SimConfig, Simulation, build_workload, tc2_chip
from repro.tasks import classify_workload, workload_intensity


def main() -> None:
    chip = tc2_chip()  # 2x Cortex-A15 (big) + 3x Cortex-A7 (LITTLE)
    tasks = build_workload("m2")

    print(f"chip: {chip}")
    print(
        f"workload m2: intensity {workload_intensity(tasks, chip):+.2f} "
        f"({classify_workload(tasks, chip)})"
    )
    for task in tasks:
        print(
            f"  {task.name:20s} target {task.target_hr:5.1f} hb/s, "
            f"A7 demand ~{task.profile.nominal_demand_pus('A7'):4.0f} PUs"
        )

    sim = Simulation(chip, tasks, PPMGovernor(), config=SimConfig(metrics_warmup_s=20.0))
    metrics = sim.run(60.0)

    print("\nafter 60 simulated seconds:")
    print(f"  any-task QoS miss : {metrics.any_task_miss_fraction() * 100:5.1f}% of time")
    print(f"  average chip power: {metrics.average_power_w():5.2f} W")
    intra, inter = sim.migrations.counts()
    print(f"  migrations        : {intra} within clusters, {inter} across")
    for cluster in chip.clusters:
        state = f"{cluster.frequency_mhz:.0f} MHz" if cluster.powered else "off"
        mapped = [t.name for t in sim.placement.tasks_on_cluster(cluster)]
        print(f"  {cluster.cluster_id:6s} cluster: {state:9s} tasks: {mapped}")
    print("\nper-task outcome:")
    for task in tasks:
        print(
            f"  {task.name:20s} hr {task.observed_heart_rate():6.1f} "
            f"(range {task.hr_range.min_hr:.1f}-{task.hr_range.max_hr:.1f}), "
            f"below-min {metrics.task_below_fraction(task.name) * 100:4.1f}% of time"
        )


if __name__ == "__main__":
    main()
