"""Crash-consistent file writes: temp file + fsync + atomic rename.

Every durable artefact of a long run -- checkpoints, campaign reports,
replay journals -- goes through :func:`atomic_write_text`, so a crash (or
a SIGKILL from the CI kill/resume job) at any instant leaves either the
previous complete file or the new complete file, never a truncated one.
The pattern is the standard POSIX one: write to a temporary file in the
*same directory* (rename is only atomic within a filesystem), flush and
fsync the data, ``os.replace`` over the destination, then fsync the
directory so the rename itself is durable.
"""

from __future__ import annotations

import os
import tempfile


def fsync_directory(path: str) -> None:
    """Fsync a directory so a rename inside it survives power loss.

    Best-effort: some platforms/filesystems refuse ``open(dir)``; losing
    the directory fsync degrades durability, not atomicity.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> str:
    """Atomically replace ``path`` with ``text``; returns ``path``.

    The destination directory is created if missing.  Readers never see a
    partial file: they observe the old content until the atomic
    ``os.replace``, and the new content after it.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)
    return path
