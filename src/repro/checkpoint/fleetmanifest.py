"""The fleet checkpoint manifest: one file naming a whole fleet's state.

A fleet campaign checkpoints at two levels.  Each chip's worker writes
ordinary per-chip checkpoints through :class:`~repro.checkpoint.manager.
CheckpointManager`; the supervisor then records, after every completed
global epoch, a *manifest* composing those per-chip snapshots with its
own market state (ladders, audit records, epoch rows).  Resuming a fleet
means: read the manifest, respawn every worker from exactly the per-chip
checkpoint the manifest names (never "the latest file" -- a worker may
have checkpointed an epoch the supervisor never acknowledged before a
crash), and restore the supervisor's state verbatim.  A fault-free fleet
resumed this way reproduces the original report byte for byte.

The manifest envelope mirrors the per-chip format: magic marker, schema
version, the fleet's config fingerprint, and a checksummed body --
corrupt or mismatched manifests are refused with the same error
taxonomy as single-chip checkpoints.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .atomicio import atomic_write_text
from .store import (
    CheckpointCorruptError,
    CheckpointFingerprintError,
    CheckpointSchemaError,
    payload_checksum,
    read_checkpoint,
)

#: Bump on any incompatible change to the manifest body layout.
FLEET_MANIFEST_SCHEMA_VERSION = 1

FLEET_MANIFEST_MAGIC = "repro-fleet-manifest"

#: File name of the manifest inside a fleet directory.
FLEET_MANIFEST_NAME = "fleet_manifest.json"


def fleet_manifest_path(fleet_dir: str) -> str:
    return os.path.join(fleet_dir, FLEET_MANIFEST_NAME)


@dataclass
class FleetManifest:
    """A parsed-and-validated fleet manifest."""

    path: str
    fingerprint: str
    epochs_completed: int
    config: Dict[str, Any]
    chips: Dict[str, Dict[str, Any]]
    supervisor: Dict[str, Any]


def write_fleet_manifest(
    fleet_dir: str,
    *,
    fingerprint: str,
    config: Dict[str, Any],
    epochs_completed: int,
    chips: Dict[str, Dict[str, Any]],
    supervisor: Dict[str, Any],
) -> str:
    """Atomically write the fleet manifest; returns its path.

    ``chips`` maps chip id to ``{"checkpoint": <relpath under
    fleet_dir>, "completed_epochs": n, ...}``; ``supervisor`` carries the
    supervisor's own restorable state.  The body is serialised with
    sorted keys so identical fleet states produce identical bytes.
    """
    body = {
        "config": config,
        "epochs_completed": epochs_completed,
        "chips": chips,
        "supervisor": supervisor,
    }
    envelope = {
        "magic": FLEET_MANIFEST_MAGIC,
        "schema_version": FLEET_MANIFEST_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "body_sha256": payload_checksum(body),
        "body": body,
    }
    return atomic_write_text(
        fleet_manifest_path(fleet_dir), json.dumps(envelope, sort_keys=True)
    )


def read_fleet_manifest(
    path: str, expected_fingerprint: Optional[str] = None
) -> FleetManifest:
    """Read and validate one fleet manifest.

    Raises:
        CheckpointCorruptError: unreadable JSON, missing fields, or a
            body checksum mismatch.
        CheckpointSchemaError: manifest schema this code does not speak.
        CheckpointFingerprintError: ``expected_fingerprint`` given and
            different from the file's -- the manifest belongs to a
            different fleet configuration.
    """
    try:
        with open(path, "r") as handle:
            envelope = json.load(handle)
    except OSError as exc:
        raise CheckpointCorruptError(
            f"cannot read fleet manifest {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise CheckpointCorruptError(
            f"fleet manifest {path!r} is not valid JSON ({exc}); the file "
            "is corrupt"
        ) from exc
    if (
        not isinstance(envelope, dict)
        or envelope.get("magic") != FLEET_MANIFEST_MAGIC
    ):
        raise CheckpointCorruptError(
            f"fleet manifest {path!r} is missing the "
            f"{FLEET_MANIFEST_MAGIC!r} magic marker; this is not a fleet "
            "manifest file"
        )
    version = envelope.get("schema_version")
    if version != FLEET_MANIFEST_SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"fleet manifest {path!r} uses schema version {version!r}, but "
            f"this build speaks version {FLEET_MANIFEST_SCHEMA_VERSION}"
        )
    missing = [
        key for key in ("fingerprint", "body_sha256", "body") if key not in envelope
    ]
    if missing:
        raise CheckpointCorruptError(
            f"fleet manifest {path!r} is missing envelope fields {missing}; "
            "the file is corrupt"
        )
    body = envelope["body"]
    actual = payload_checksum(body)
    if actual != envelope["body_sha256"]:
        raise CheckpointCorruptError(
            f"fleet manifest {path!r} fails its body checksum (expected "
            f"{envelope['body_sha256'][:12]}..., got {actual[:12]}...); the "
            "file is corrupt"
        )
    if (
        expected_fingerprint is not None
        and envelope["fingerprint"] != expected_fingerprint
    ):
        raise CheckpointFingerprintError(
            f"fleet manifest {path!r} belongs to a different fleet: its "
            f"fingerprint is {envelope['fingerprint'][:12]}... but the fleet "
            f"being resumed has {expected_fingerprint[:12]}...."
        )
    for key in ("config", "epochs_completed", "chips", "supervisor"):
        if key not in body:
            raise CheckpointCorruptError(
                f"fleet manifest {path!r} body is missing {key!r}"
            )
    return FleetManifest(
        path=path,
        fingerprint=envelope["fingerprint"],
        epochs_completed=int(body["epochs_completed"]),
        config=body["config"],
        chips=body["chips"],
        supervisor=body["supervisor"],
    )


def validate_fleet_manifest(manifest: FleetManifest, fleet_dir: str) -> None:
    """Verify every per-chip checkpoint the manifest points at.

    Each chip's checkpoint file must exist, pass its own envelope
    validation (magic, schema, payload checksum), and agree with the
    manifest on how many epochs that chip has completed.

    Raises:
        CheckpointError: (any subclass) naming the first broken chip.
    """
    for chip_id in sorted(manifest.chips):
        entry = manifest.chips[chip_id]
        relpath = entry.get("checkpoint")
        if not relpath:
            raise CheckpointCorruptError(
                f"fleet manifest names no checkpoint for chip {chip_id!r}"
            )
        envelope = read_checkpoint(os.path.join(fleet_dir, relpath))
        recorded = int(entry.get("completed_epochs", -1))
        actual = envelope.payload.get("extra", {}).get("completed_epochs")
        if actual is None or int(actual) != recorded:
            raise CheckpointCorruptError(
                f"chip {chip_id!r}: manifest records {recorded} completed "
                f"epoch(s) but its checkpoint {relpath!r} carries "
                f"{actual!r}; the manifest and checkpoint disagree"
            )
