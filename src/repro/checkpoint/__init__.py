"""Crash-consistent checkpoint/resume and deterministic replay.

Checkpoints are versioned JSON envelopes written atomically (temp file +
fsync + rename) carrying a config/seed fingerprint and a checksummed
snapshot of the full simulation state -- engine clock and RNG streams,
chip/DVFS state, task progress and placement, market prices and budgets,
governor internals, and any attached fault injector.  ``resume_from``
restores one onto a freshly rebuilt simulation; ``replay_from_checkpoint``
re-runs from a checkpoint and diffs per-tick telemetry against the
original run's journal to localize the first divergent tick.
"""

from .atomicio import atomic_write_text, fsync_directory
from .fleetmanifest import (
    FLEET_MANIFEST_MAGIC,
    FLEET_MANIFEST_NAME,
    FLEET_MANIFEST_SCHEMA_VERSION,
    FleetManifest,
    fleet_manifest_path,
    read_fleet_manifest,
    validate_fleet_manifest,
    write_fleet_manifest,
)
from .manager import CheckpointManager, resume_from
from .replay import (
    JOURNAL_MAGIC,
    ReplayReport,
    diff_tick_records,
    read_journal,
    replay_from_checkpoint,
    tick_records,
    write_journal,
)
from .snapshot import (
    Snapshottable,
    SnapshotRestoreError,
    restore_simulation,
    simulation_fingerprint,
    snapshot_simulation,
)
from .store import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointEnvelope,
    CheckpointError,
    CheckpointFingerprintError,
    CheckpointSchemaError,
    canonical_json,
    checkpoint_filename,
    latest_checkpoint,
    list_checkpoints,
    payload_checksum,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "FLEET_MANIFEST_MAGIC",
    "FLEET_MANIFEST_NAME",
    "FLEET_MANIFEST_SCHEMA_VERSION",
    "FleetManifest",
    "JOURNAL_MAGIC",
    "CheckpointCorruptError",
    "CheckpointEnvelope",
    "CheckpointError",
    "CheckpointFingerprintError",
    "CheckpointManager",
    "CheckpointSchemaError",
    "ReplayReport",
    "Snapshottable",
    "SnapshotRestoreError",
    "atomic_write_text",
    "canonical_json",
    "checkpoint_filename",
    "diff_tick_records",
    "fleet_manifest_path",
    "fsync_directory",
    "latest_checkpoint",
    "list_checkpoints",
    "payload_checksum",
    "read_checkpoint",
    "read_fleet_manifest",
    "read_journal",
    "replay_from_checkpoint",
    "restore_simulation",
    "resume_from",
    "simulation_fingerprint",
    "snapshot_simulation",
    "tick_records",
    "validate_fleet_manifest",
    "write_checkpoint",
    "write_fleet_manifest",
    "write_journal",
]
