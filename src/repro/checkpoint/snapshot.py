"""Full-state snapshot/restore of a running simulation.

``snapshot_simulation`` walks every mutable object a tick can touch --
the engine's clock and bookkeeping, the chip's regulators and gating, the
tasks' progress and heart-rate windows, placement, load tracking, energy
and metrics accumulators, the sensor's RNG stream, the governor, and an
attached fault injector -- into a JSON-serialisable payload.
``restore_simulation`` applies such a payload onto a *freshly built*
simulation (same config, seed, workload, governor: enforced upstream by
the fingerprint check) so that continuing the restored run is bit-
identical to never having stopped.  Python's ``json`` round-trips floats
exactly (shortest-repr), which is what makes bit-identity achievable
through a text format.

Governors participate in one of two ways:

* implement the :class:`Snapshottable` protocol (``snapshot_state`` /
  ``restore_state``) -- the PPM governor and its market do this, because
  their state includes enums, agent objects and round results that
  deserve explicit, versioned handling;
* or rely on the generic fallback, which encodes the instance ``__dict__``
  with tagged values (tasks by name, tuples, typed objects by import
  path) and restores onto / reconstructs the live objects.  The HPM and
  HL baselines restore through this path without any code of their own.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

from ..hw.sensors import SensorSample, ThermalSample
from ..sim.metrics import TaskSample, TickSample
from ..sim.migration import MigrationRecord
from .store import CheckpointError, canonical_json

#: Attribute names every generic governor snapshot skips: engine-owned
#: objects the factory rebuilds (snapshotting them would duplicate state
#: that :func:`restore_simulation` already handles authoritatively).
_GENERIC_SKIP_TYPES = frozenset(
    {"Simulation", "Chip", "Cluster", "Core", "Market", "LBTModule",
     "SteadyStateEstimator", "FaultInjector", "PowerSensor", "FaultySensor",
     "EstimationManager", "CounterEmitter", "FaultyCounters"}
)

_MAX_DEPTH = 8


@runtime_checkable
class Snapshottable(Protocol):
    """A governor (or sub-component) with explicit snapshot handling."""

    def snapshot_state(self) -> Dict[str, Any]:
        """Return a JSON-serialisable dict of all mutable state."""

    def restore_state(self, sim, state: Dict[str, Any]) -> None:
        """Apply a previously snapshotted ``state`` onto ``self``."""


class SnapshotRestoreError(CheckpointError):
    """The payload does not fit the simulation it is being applied to."""


# ---------------------------------------------------------------------------
# Small value codecs
# ---------------------------------------------------------------------------
def rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` -> JSON-safe nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(data: list) -> tuple:
    version, internal, gauss_next = data
    return (int(version), tuple(int(v) for v in internal), gauss_next)


def sample_to_json(sample: Optional[SensorSample]) -> Optional[dict]:
    return None if sample is None else asdict(sample)


def sample_from_json(data: Optional[dict]) -> Optional[SensorSample]:
    if data is None:
        return None
    return SensorSample(
        chip_power_w=data["chip_power_w"],
        cluster_power_w=dict(data["cluster_power_w"]),
        cluster_frequency_mhz=dict(data["cluster_frequency_mhz"]),
        cluster_voltage_v=dict(data["cluster_voltage_v"]),
    )


def thermal_sample_to_json(sample: Optional[ThermalSample]) -> Optional[dict]:
    return None if sample is None else asdict(sample)


def thermal_sample_from_json(data: Optional[dict]) -> Optional[ThermalSample]:
    if data is None:
        return None
    return ThermalSample(cluster_temperature_c=dict(data["cluster_temperature_c"]))


# ---------------------------------------------------------------------------
# Fingerprint
# ---------------------------------------------------------------------------
def simulation_fingerprint(sim, extra: Any = None) -> str:
    """Identity hash of everything that must match between save and resume.

    Covers the engine config (tick, seed, warm-up, gating, noise, audit),
    the chip topology (clusters, core counts, V-F ladders, transition
    latencies), the task population (names, profiles, priorities,
    lifetimes, HRM windows) and the governor class.  ``extra`` lets
    callers fold additional identity in (e.g. the campaign's fault kind
    and schedule parameters).  Two runs share a fingerprint iff a
    checkpoint of one is a valid resume point for the other.
    """
    cfg = sim.config
    material = {
        "config": {
            "dt": cfg.dt,
            "auto_power_gate": cfg.auto_power_gate,
            "metrics_warmup_s": cfg.metrics_warmup_s,
            "sensor_noise_std_w": cfg.sensor_noise_std_w,
            "seed": cfg.seed,
            "audit": cfg.audit,
            "thermal": None if cfg.thermal is None else {
                "sensor_noise_std_c": cfg.thermal.sensor_noise_std_c,
                "cycle_threshold_k": cfg.thermal.cycle_threshold_k,
                "tcrit_c": cfg.thermal.tcrit_c,
                "params": None if cfg.thermal.params is None else {
                    cid: asdict(p) for cid, p in sorted(cfg.thermal.params.items())
                },
                "protection": (
                    None if cfg.thermal.protection is None
                    else asdict(cfg.thermal.protection)
                ),
            },
            "estimation": (
                None if cfg.estimation is None else asdict(cfg.estimation)
            ),
        },
        "chip": {
            "name": sim.chip.name,
            "clusters": [
                {
                    "id": c.cluster_id,
                    "core_type": c.core_type,
                    "n_cores": len(c.cores),
                    "ladder": [
                        [lvl.frequency_mhz, lvl.voltage_v]
                        for lvl in c.vf_table.levels
                    ],
                    "transition_latency_s": c.regulator.transition_latency_s,
                }
                for c in sim.chip.clusters
            ],
        },
        "tasks": [
            {
                "name": t.name,
                "profile": t.profile.label,
                "priority": t.priority,
                "start_time": t.start_time,
                "duration": t.duration,
                "hrm_window_s": t.hrm.window_s,
            }
            for t in sim.tasks
            # Arrival-spawned tasks are run state, not run identity: the
            # population they came from is pinned below via the stream's
            # own identity (config + seed + trace), so a checkpoint taken
            # mid-crowd still fingerprints the same as the fresh run.
            if not getattr(t, "from_arrival", False)
        ],
        "governor": type(sim.governor).__name__,
        "extra": extra,
    }
    manager = getattr(sim, "arrivals", None)
    if manager is not None:
        material["arrivals"] = manager.identity()
    return hashlib.sha256(canonical_json(material).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Generic (fallback) governor encoding
# ---------------------------------------------------------------------------
_UNSUPPORTED = object()


def _is_task(value: Any) -> bool:
    from ..tasks.task import Task

    return isinstance(value, Task)


def _encode_value(value: Any, depth: int = 0) -> Any:
    """Encode one value into tagged JSON; ``_UNSUPPORTED`` when it can't be."""
    if depth > _MAX_DEPTH:
        return _UNSUPPORTED
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if _is_task(value):
        return {"__kind__": "task", "name": value.name}
    if isinstance(value, list):
        items = [_encode_value(v, depth + 1) for v in value]
        return _UNSUPPORTED if any(i is _UNSUPPORTED for i in items) else items
    if isinstance(value, tuple):
        items = [_encode_value(v, depth + 1) for v in value]
        if any(i is _UNSUPPORTED for i in items):
            return _UNSUPPORTED
        return {"__kind__": "tuple", "items": items}
    if isinstance(value, dict):
        pairs = []
        for k, v in value.items():
            ek = _encode_value(k, depth + 1)
            ev = _encode_value(v, depth + 1)
            if ek is _UNSUPPORTED or ev is _UNSUPPORTED:
                return _UNSUPPORTED
            pairs.append([ek, ev])
        return {"__kind__": "dict", "items": pairs}
    if type(value).__name__ in _GENERIC_SKIP_TYPES:
        return _UNSUPPORTED
    if hasattr(value, "__dict__") and not callable(value):
        state = {}
        for attr, attr_value in vars(value).items():
            encoded = _encode_value(attr_value, depth + 1)
            if encoded is not _UNSUPPORTED:
                state[attr] = encoded
        return {
            "__kind__": "object",
            "module": type(value).__module__,
            "qualname": type(value).__qualname__,
            "state": state,
        }
    return _UNSUPPORTED


def _decode_value(encoded: Any, task_by_name: Dict[str, Any], existing: Any = None) -> Any:
    """Decode a tagged value; ``existing`` (when given) is updated in place."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        return [_decode_value(v, task_by_name) for v in encoded]
    kind = encoded.get("__kind__")
    if kind == "task":
        name = encoded["name"]
        if name not in task_by_name:
            raise SnapshotRestoreError(
                f"snapshot references task {name!r} which does not exist in "
                "the rebuilt simulation; the workload differs from the "
                "checkpointed run"
            )
        return task_by_name[name]
    if kind == "tuple":
        return tuple(_decode_value(v, task_by_name) for v in encoded["items"])
    if kind == "dict":
        return {
            _decode_value(k, task_by_name): _decode_value(v, task_by_name)
            for k, v in encoded["items"]
        }
    if kind == "object":
        target = existing
        if target is None or type(target).__qualname__ != encoded["qualname"]:
            target = _construct_object(encoded)
        _apply_object_state(target, encoded["state"], task_by_name)
        return target
    raise SnapshotRestoreError(f"unknown tagged value kind {kind!r} in snapshot")


def _construct_object(encoded: dict) -> Any:
    import importlib

    try:
        module = importlib.import_module(encoded["module"])
        cls = module
        for part in encoded["qualname"].split("."):
            cls = getattr(cls, part)
    except (ImportError, AttributeError) as exc:
        raise SnapshotRestoreError(
            f"cannot reconstruct {encoded['module']}.{encoded['qualname']} "
            f"from snapshot: {exc}"
        ) from exc
    return object.__new__(cls)  # type: ignore[arg-type]


def _apply_object_state(
    target: Any, state: Dict[str, Any], task_by_name: Dict[str, Any]
) -> None:
    for attr, encoded in state.items():
        existing = getattr(target, attr, None)
        setattr(target, attr, _decode_value(encoded, task_by_name, existing))


def generic_snapshot(obj: Any) -> Dict[str, Any]:
    """Snapshot an arbitrary object's ``__dict__`` with tagged values."""
    state = {}
    for attr, value in vars(obj).items():
        encoded = _encode_value(value)
        if encoded is not _UNSUPPORTED:
            state[attr] = encoded
    return state


def generic_restore(obj: Any, state: Dict[str, Any], task_by_name: Dict[str, Any]) -> None:
    """Apply a :func:`generic_snapshot` onto a live object in place."""
    _apply_object_state(obj, state, task_by_name)


# ---------------------------------------------------------------------------
# Snapshot
# ---------------------------------------------------------------------------
def snapshot_simulation(sim) -> Dict[str, Any]:
    """Capture every mutable bit of ``sim`` into a JSON-serialisable dict."""
    # Checkpoint barrier: materialise the object view (task attributes,
    # load dict) before reading it; no-op on the reference engine.
    sim.sync()
    payload: Dict[str, Any] = {
        "engine": _snapshot_engine(sim),
        "chip": _snapshot_chip(sim),
        "tasks": _snapshot_tasks(sim),
        "placement": _snapshot_placement(sim),
        "load": [
            [task.name, load] for task, load in sim.load_tracker._load.items()
        ],
        "energy": {
            "energy_j": dict(sim.energy.energy_j),
            "elapsed_s": sim.energy.elapsed_s,
        },
        "migrations": [asdict(r) for r in sim.migrations.history],
        "metrics": {
            "samples": [asdict(s) for s in sim.metrics.samples],
            "audit_violations": list(sim.metrics.audit_violations),
        },
        "sensor": _snapshot_sensor(sim),
        "governor": _snapshot_governor(sim),
    }
    injector = getattr(sim, "fault_injector", None)
    if injector is not None:
        payload["fault_injector"] = injector.snapshot_state()
    if sim.thermal is not None:
        payload["thermal"] = _snapshot_thermal(sim)
    if getattr(sim, "estimation", None) is not None:
        payload["estimation"] = _snapshot_estimation(sim)
    if sim.arrivals is not None:
        payload["arrivals"] = sim.arrivals.snapshot_state()
    return payload


def _snapshot_engine(sim) -> Dict[str, Any]:
    return {
        "now": sim.now,
        "tick_index": sim.tick_index,
        "prepared": sim._prepared,
        "offline": sorted(sim._offline),
        "gate_held_down": sorted(sim._gate_held_down),
        "sensor_read_failures": sim.sensor_read_failures,
        "failed_migrations": sim.failed_migrations,
        "allocations": [[t.name, v] for t, v in sim._allocations.items()],
        "weights": [[t.name, v] for t, v in sim._weights.items()],
        "last_sensor_sample": sample_to_json(sim._last_sensor_sample),
    }


def _snapshot_chip(sim) -> Dict[str, Any]:
    clusters = {}
    for cluster in sim.chip.clusters:
        reg = cluster.regulator
        clusters[cluster.cluster_id] = {
            "powered": cluster.powered,
            "regulator": {
                "level_index": reg.level_index,
                "pending_index": reg._pending_index,
                "pending_remaining_s": reg._pending_remaining_s,
                "transitions": reg.transitions,
            },
            "core_utilization": [core.utilization for core in cluster.cores],
        }
    return {"clusters": clusters}


def _snapshot_tasks(sim) -> List[Dict[str, Any]]:
    return [
        {
            "name": task.name,
            "total_beats": task.total_beats,
            "total_work_pu_s": task.total_work_pu_s,
            "last_supply_pus": task.last_supply_pus,
            "last_consumed_pus": task.last_consumed_pus,
            "frozen_until": task.frozen_until,
            "migrations": task.migrations,
            "hrm_samples": [[t, b] for t, b in task.hrm._samples],
        }
        for task in sim.tasks
    ]


def _snapshot_placement(sim) -> List[List[Any]]:
    return [
        [core.core_id, [t.name for t in sim.placement.tasks_on_core(core)]]
        for core in sim.chip.cores
    ]


def _snapshot_sensor(sim) -> Dict[str, Any]:
    sensor = sim.sensor
    wrapper = None
    inner = sensor
    if hasattr(sensor, "_inner"):  # FaultySensor front end
        inner = sensor._inner
        wrapper = sensor.snapshot_state()
    return {
        "rng_state": rng_state_to_json(inner._rng.getstate()),
        "last_sample": sample_to_json(inner._last_sample),
        "wrapper": wrapper,
    }


def _snapshot_thermal(sim) -> Dict[str, Any]:
    sensor = sim.thermal_sensor
    wrapper = None
    inner = sensor
    if hasattr(sensor, "_inner"):  # FaultyThermalSensor front end
        inner = sensor._inner
        wrapper = sensor.snapshot_state()
    supervisor = sim.thermal_supervisor
    return {
        "model": sim.thermal.snapshot_state(),
        "cycle_counters": {
            cid: counter.snapshot_state()
            for cid, counter in sim.cycle_counters.items()
        },
        "sensor": {
            "rng_state": rng_state_to_json(inner._rng.getstate()),
            "last_sample": thermal_sample_to_json(inner._last_sample),
            "wrapper": wrapper,
        },
        "last_thermal_sample": thermal_sample_to_json(sim._last_thermal_sample),
        "time_over_tcrit_s": sim.time_over_tcrit_s,
        "thermal_read_failures": sim.thermal_read_failures,
        "level_ceiling": dict(sim._level_ceiling),
        "supervisor": (
            supervisor.snapshot_state() if supervisor is not None else None
        ),
    }


def _snapshot_estimation(sim) -> Dict[str, Any]:
    manager = sim.estimation
    emitter = manager.emitter
    wrapper = None
    if hasattr(emitter, "_inner"):  # FaultyCounters front end
        wrapper = emitter.snapshot_state()
    supervisor = manager.supervisor
    return {
        "ticks": manager.ticks,
        "emitter": {
            # rng_state passes through the wrapper to the inner emitter.
            "rng_state": rng_state_to_json(emitter.rng_state()),
            "wrapper": wrapper,
        },
        "estimator": manager.estimator.snapshot_state(),
        "supervisor": (
            supervisor.snapshot_state() if supervisor is not None else None
        ),
        "served_sample": sample_to_json(sim._estimated_sample),
    }


def _snapshot_governor(sim) -> Dict[str, Any]:
    governor = sim.governor
    if isinstance(governor, Snapshottable):
        return {
            "type": type(governor).__name__,
            "mode": "snapshottable",
            "state": governor.snapshot_state(),
        }
    return {
        "type": type(governor).__name__,
        "mode": "generic",
        "state": generic_snapshot(governor),
    }


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------
def restore_simulation(sim, payload: Dict[str, Any]) -> None:
    """Apply ``payload`` onto a freshly built ``sim`` in place.

    ``sim`` must be structurally identical to the checkpointed run (same
    config/seed/chip/workload/governor -- callers verify the fingerprint
    before getting here) and must not have been stepped yet.
    """
    arrivals_state = payload.get("arrivals")
    manager = getattr(sim, "arrivals", None)
    if arrivals_state is not None:
        if manager is None:
            raise SnapshotRestoreError(
                "checkpoint was taken with an arrival stream attached, but "
                "the rebuilt simulation has none; attach the same "
                "OverloadManager before restoring"
            )
        # Re-materialise the tasks the stream had spawned so the ordered
        # task zip below lines up (base workload first, then arrivals in
        # their original spawn order).
        manager.rematerialize_tasks(sim, arrivals_state)
    elif manager is not None:
        raise SnapshotRestoreError(
            "rebuilt simulation has an arrival stream but the checkpoint "
            "was taken without one; rebuild without attaching it"
        )
    task_by_name = _restore_tasks(sim, payload["tasks"])
    _restore_chip(sim, payload["chip"])
    _restore_placement(sim, payload["placement"], task_by_name)
    _restore_engine(sim, payload["engine"], task_by_name)
    sim.load_tracker._load = {
        task_by_name[name]: load for name, load in payload["load"]
    }
    sim.energy.energy_j = dict(payload["energy"]["energy_j"])
    sim.energy.elapsed_s = payload["energy"]["elapsed_s"]
    sim.migrations.history = [
        MigrationRecord(**record) for record in payload["migrations"]
    ]
    _restore_metrics(sim, payload["metrics"])
    _restore_sensor(sim, payload["sensor"])
    _restore_governor(sim, payload["governor"], task_by_name)
    # The first-tick prepare already ran in the checkpointed run; mark it
    # done and re-create the pieces that prepare would have attached.
    sim._prepared = True
    sim.invalidate_task_cache()
    sim._maybe_attach_auditor()
    sim._last_audited_round = getattr(sim.governor, "last_round", None)
    thermal_state = payload.get("thermal")
    if thermal_state is not None:
        if sim.thermal is None:
            raise SnapshotRestoreError(
                "checkpoint was taken with thermal tracking but the rebuilt "
                "simulation has none; set the same SimConfig.thermal before "
                "restoring"
            )
        _restore_thermal(sim, thermal_state)
    elif sim.thermal is not None:
        raise SnapshotRestoreError(
            "rebuilt simulation tracks thermals but the checkpoint was "
            "taken without thermal tracking; rebuild with thermal=None"
        )
    estimation_state = payload.get("estimation")
    if estimation_state is not None:
        if getattr(sim, "estimation", None) is None:
            raise SnapshotRestoreError(
                "checkpoint was taken in estimated-power mode but the "
                "rebuilt simulation has no estimation pipeline; set the "
                "same SimConfig.estimation before restoring"
            )
        _restore_estimation(sim, estimation_state)
    elif getattr(sim, "estimation", None) is not None:
        raise SnapshotRestoreError(
            "rebuilt simulation runs estimated-power mode but the "
            "checkpoint was taken without it; rebuild with estimation=None"
        )
    injector_state = payload.get("fault_injector")
    injector = getattr(sim, "fault_injector", None)
    if injector_state is not None:
        if injector is None:
            raise SnapshotRestoreError(
                "checkpoint was taken with a fault injector attached, but "
                "the rebuilt simulation has none; attach the same fault "
                "schedule before restoring"
            )
        injector.restore_state(sim, injector_state)
    elif injector is not None:
        raise SnapshotRestoreError(
            "rebuilt simulation has a fault injector but the checkpoint "
            "was taken without one; rebuild without the schedule"
        )
    if arrivals_state is not None:
        manager.restore_state(sim, arrivals_state)


def _restore_tasks(sim, states: List[Dict[str, Any]]) -> Dict[str, Any]:
    if len(states) != len(sim.tasks):
        raise SnapshotRestoreError(
            f"snapshot holds {len(states)} tasks but the rebuilt simulation "
            f"has {len(sim.tasks)}; the workload differs from the "
            "checkpointed run"
        )
    task_by_name: Dict[str, Any] = {}
    for task, state in zip(sim.tasks, states):
        task.name = state["name"]
        task.total_beats = state["total_beats"]
        task.total_work_pu_s = state["total_work_pu_s"]
        task.last_supply_pus = state["last_supply_pus"]
        task.last_consumed_pus = state["last_consumed_pus"]
        task.frozen_until = state["frozen_until"]
        task.migrations = state["migrations"]
        task.hrm._samples = deque((t, b) for t, b in state["hrm_samples"])
        task_by_name[task.name] = task
    return task_by_name


def _restore_chip(sim, state: Dict[str, Any]) -> None:
    snapshot_ids = set(state["clusters"])
    live_ids = {c.cluster_id for c in sim.chip.clusters}
    if snapshot_ids != live_ids:
        raise SnapshotRestoreError(
            f"snapshot covers clusters {sorted(snapshot_ids)} but the chip "
            f"has {sorted(live_ids)}; the topology differs from the "
            "checkpointed run"
        )
    for cluster in sim.chip.clusters:
        cstate = state["clusters"][cluster.cluster_id]
        cluster.powered = cstate["powered"]
        reg = cluster.regulator
        rstate = cstate["regulator"]
        reg.level_index = rstate["level_index"]
        reg._pending_index = rstate["pending_index"]
        reg._pending_remaining_s = rstate["pending_remaining_s"]
        reg.transitions = rstate["transitions"]
        utils = cstate["core_utilization"]
        if len(utils) != len(cluster.cores):
            raise SnapshotRestoreError(
                f"snapshot has {len(utils)} cores for cluster "
                f"{cluster.cluster_id} but the chip has {len(cluster.cores)}"
            )
        for core, utilization in zip(cluster.cores, utils):
            core.utilization = utilization


def _restore_placement(sim, state: List[List[Any]], task_by_name: Dict[str, Any]) -> None:
    for task in list(sim.placement.all_tasks()):
        sim.placement.remove(task)
    for core_id, names in state:
        core = sim.chip.core(core_id)
        for name in names:
            sim.placement.place(task_by_name[name], core)


def _restore_engine(sim, state: Dict[str, Any], task_by_name: Dict[str, Any]) -> None:
    sim.now = state["now"]
    sim.tick_index = state["tick_index"]
    sim._offline = set(state["offline"])
    sim._gate_held_down = set(state["gate_held_down"])
    sim.sensor_read_failures = state["sensor_read_failures"]
    sim.failed_migrations = state["failed_migrations"]
    sim._allocations = {
        task_by_name[name]: value for name, value in state["allocations"]
    }
    sim._weights = {task_by_name[name]: value for name, value in state["weights"]}
    sim._last_sensor_sample = sample_from_json(state["last_sensor_sample"])


def _restore_metrics(sim, state: Dict[str, Any]) -> None:
    sim.metrics.samples = [
        TickSample(
            time_s=s["time_s"],
            chip_power_w=s["chip_power_w"],
            cluster_power_w=dict(s["cluster_power_w"]),
            cluster_frequency_mhz=dict(s["cluster_frequency_mhz"]),
            tasks={
                name: TaskSample(**task_sample)
                for name, task_sample in s["tasks"].items()
            },
            cluster_temperature_c=(
                None
                if s.get("cluster_temperature_c") is None
                else dict(s["cluster_temperature_c"])
            ),
            estimated_chip_power_w=s.get("estimated_chip_power_w"),
        )
        for s in state["samples"]
    ]
    sim.metrics.audit_violations = list(state["audit_violations"])


def _restore_thermal(sim, state: Dict[str, Any]) -> None:
    sim.thermal.restore_state(state["model"])
    counters = state["cycle_counters"]
    if set(counters) != set(sim.cycle_counters):
        raise SnapshotRestoreError(
            f"snapshot has cycle counters for {sorted(counters)} but the "
            f"rebuilt simulation tracks {sorted(sim.cycle_counters)}"
        )
    for cluster_id, cstate in counters.items():
        sim.cycle_counters[cluster_id].restore_state(cstate)
    sensor = sim.thermal_sensor
    sensor_state = state["sensor"]
    wrapped = hasattr(sensor, "_inner")
    if sensor_state["wrapper"] is not None and not wrapped:
        raise SnapshotRestoreError(
            "checkpoint was taken through a faulty thermal-sensor front end "
            "but the rebuilt simulation reads the bare sensor; attach the "
            "fault injector before restoring"
        )
    if sensor_state["wrapper"] is None and wrapped:
        raise SnapshotRestoreError(
            "rebuilt simulation wraps the thermal sensor in a fault "
            "injector but the checkpoint was taken without one"
        )
    inner = sensor._inner if wrapped else sensor
    inner._rng.setstate(rng_state_from_json(sensor_state["rng_state"]))
    inner._last_sample = thermal_sample_from_json(sensor_state["last_sample"])
    if wrapped:
        sensor.restore_state(sim, sensor_state["wrapper"])
    sim._last_thermal_sample = thermal_sample_from_json(
        state["last_thermal_sample"]
    )
    sim.time_over_tcrit_s = state["time_over_tcrit_s"]
    sim.thermal_read_failures = state["thermal_read_failures"]
    sim._level_ceiling = {
        cid: int(index) for cid, index in state["level_ceiling"].items()
    }
    supervisor_state = state["supervisor"]
    if supervisor_state is not None:
        if sim.thermal_supervisor is None:
            raise SnapshotRestoreError(
                "checkpoint includes thermal-supervisor state but the "
                "rebuilt simulation has no ThermalProtectionConfig"
            )
        sim.thermal_supervisor.restore_state(supervisor_state)


def _restore_estimation(sim, state: Dict[str, Any]) -> None:
    manager = sim.estimation
    emitter = manager.emitter
    wrapped = hasattr(emitter, "_inner")
    emitter_state = state["emitter"]
    if emitter_state["wrapper"] is not None and not wrapped:
        raise SnapshotRestoreError(
            "checkpoint was taken through a faulty-counters front end but "
            "the rebuilt simulation reads the bare emitter; attach the "
            "fault injector before restoring"
        )
    if emitter_state["wrapper"] is None and wrapped:
        raise SnapshotRestoreError(
            "rebuilt simulation wraps the counter emitter in a fault "
            "injector but the checkpoint was taken without one"
        )
    emitter.set_rng_state(rng_state_from_json(emitter_state["rng_state"]))
    if wrapped:
        emitter.restore_state(sim, emitter_state["wrapper"])
    manager.ticks = state["ticks"]
    manager.estimator.restore_state(state["estimator"])
    supervisor_state = state["supervisor"]
    if supervisor_state is not None:
        if manager.supervisor is None:
            raise SnapshotRestoreError(
                "checkpoint includes estimator-supervisor state but the "
                "rebuilt simulation runs unsupervised estimation"
            )
        manager.supervisor.restore_state(supervisor_state)
    elif manager.supervisor is not None:
        raise SnapshotRestoreError(
            "rebuilt simulation supervises the estimator but the "
            "checkpoint was taken without a supervisor"
        )
    sim._estimated_sample = sample_from_json(state["served_sample"])
    manager.served_sample = sim._estimated_sample


def _restore_sensor(sim, state: Dict[str, Any]) -> None:
    sensor = sim.sensor
    wrapped = hasattr(sensor, "_inner")
    if state["wrapper"] is not None and not wrapped:
        raise SnapshotRestoreError(
            "checkpoint was taken through a faulty-sensor front end but the "
            "rebuilt simulation reads the bare sensor; attach the fault "
            "injector before restoring"
        )
    if state["wrapper"] is None and wrapped:
        raise SnapshotRestoreError(
            "rebuilt simulation wraps the sensor in a fault injector but "
            "the checkpoint was taken without one"
        )
    inner = sensor._inner if wrapped else sensor
    inner._rng.setstate(rng_state_from_json(state["rng_state"]))
    inner._last_sample = sample_from_json(state["last_sample"])
    if wrapped:
        sensor.restore_state(sim, state["wrapper"])


def _restore_governor(sim, state: Dict[str, Any], task_by_name: Dict[str, Any]) -> None:
    governor = sim.governor
    expected = state["type"]
    if type(governor).__name__ != expected:
        raise SnapshotRestoreError(
            f"checkpoint was taken under governor {expected!r} but the "
            f"rebuilt simulation runs {type(governor).__name__!r}"
        )
    if state["mode"] == "snapshottable":
        if not isinstance(governor, Snapshottable):
            raise SnapshotRestoreError(
                f"governor {expected!r} no longer implements the "
                "Snapshottable protocol this checkpoint requires"
            )
        governor.restore_state(sim, state["state"])
    else:
        generic_restore(governor, state["state"], task_by_name)
