"""Periodic checkpointing and resume for running simulations.

A :class:`CheckpointManager` attaches to a :class:`~repro.sim.Simulation`
(``sim.checkpointer``); the engine calls :meth:`on_tick` at the end of
every tick and the manager writes a crash-consistent checkpoint every
``interval_s`` of simulated time, pruning old files down to ``retention``.
Several managers can share one directory by using distinct ``stream``
labels (the fault campaign gives each governor its own).

``resume_from`` is the inverse: given a checkpoint file and a *factory*
that rebuilds the identical simulation (same config, seed, workload,
governor and -- when applicable -- fault schedule), it verifies the
config/seed fingerprint and restores the full state, so continuing the
run is bit-identical to never having stopped.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Tuple

from .snapshot import restore_simulation, simulation_fingerprint, snapshot_simulation
from .store import (
    CHECKPOINT_GLOB_RE,
    CheckpointEnvelope,
    checkpoint_filename,
    read_checkpoint,
    write_checkpoint,
)


class CheckpointManager:
    """Writes periodic, retained checkpoints of one simulation.

    Args:
        directory: Where checkpoint files live (created on first write).
        interval_s: Simulated seconds between checkpoints (rounded to a
            whole number of ticks, at least one).
        retention: How many of this manager's checkpoints to keep; older
            ones are pruned after each successful write.  ``None`` keeps
            everything.
        stream: Optional label distinguishing this run's files when the
            directory is shared (e.g. ``"0-PPM"`` in a campaign).
        fingerprint_extra: Extra identity folded into the fingerprint
            (must match at resume time).
        extra_payload: Extra data stored verbatim in every checkpoint's
            payload under ``"extra"`` (e.g. campaign progress) -- state,
            not identity: it is *not* part of the fingerprint.
    """

    def __init__(
        self,
        directory: str,
        interval_s: float = 1.0,
        retention: Optional[int] = 3,
        stream: Optional[str] = None,
        fingerprint_extra: Any = None,
        extra_payload: Optional[Dict[str, Any]] = None,
    ):
        if interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        if retention is not None and retention < 1:
            raise ValueError("retention must be at least 1 (or None)")
        self.directory = directory
        self.interval_s = interval_s
        self.retention = retention
        self.stream = stream
        self.fingerprint_extra = fingerprint_extra
        self.extra_payload = extra_payload
        self.fingerprint: Optional[str] = None
        self.saves = 0
        self._interval_ticks: Optional[int] = None

    def attach(self, sim) -> "CheckpointManager":
        """Install this manager as ``sim.checkpointer``; returns self."""
        self.fingerprint = simulation_fingerprint(sim, extra=self.fingerprint_extra)
        self._interval_ticks = max(1, round(self.interval_s / sim.dt))
        sim.checkpointer = self
        return self

    def on_tick(self, sim) -> None:
        """Engine hook: save when a whole interval has elapsed."""
        if self._interval_ticks is None:
            return
        if sim.tick_index > 0 and sim.tick_index % self._interval_ticks == 0:
            self.save(sim)

    def save(self, sim) -> str:
        """Write one checkpoint now; returns its path."""
        if self.fingerprint is None:
            self.attach(sim)
        payload = snapshot_simulation(sim)
        if self.extra_payload is not None:
            payload["extra"] = self.extra_payload
        path = os.path.join(
            self.directory, checkpoint_filename(sim.tick_index, self.stream)
        )
        write_checkpoint(
            path,
            payload,
            fingerprint=self.fingerprint,
            tick_index=sim.tick_index,
            sim_time_s=sim.now,
        )
        self.saves += 1
        self._prune()
        return path

    def checkpoints(self) -> list:
        """This manager's checkpoint paths (its stream only), oldest first."""
        if not os.path.isdir(self.directory):
            return []
        names = []
        for name in os.listdir(self.directory):
            match = CHECKPOINT_GLOB_RE.match(name)
            if match and match.group("stream") == self.stream:
                names.append(name)
        return [os.path.join(self.directory, name) for name in sorted(names)]

    def _prune(self) -> None:
        if self.retention is None:
            return
        for path in self.checkpoints()[: -self.retention]:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - benign race with readers
                pass


def resume_from(
    checkpoint_path: str,
    factory: Callable[[], Any],
    fingerprint_extra: Any = None,
) -> Tuple[Any, CheckpointEnvelope]:
    """Rebuild a simulation via ``factory`` and restore a checkpoint onto it.

    ``factory`` must return a freshly built, never-stepped simulation
    configured identically to the checkpointed run (including an attached
    fault injector when the checkpoint was taken with one).  The
    checkpoint is validated (schema, checksum) and its fingerprint is
    checked against the rebuilt simulation before any state is applied;
    mismatches raise :class:`CheckpointFingerprintError` with the two
    fingerprints named.

    Returns ``(sim, envelope)`` with ``sim`` ready to continue running.
    """
    sim = factory()
    expected = simulation_fingerprint(sim, extra=fingerprint_extra)
    envelope = read_checkpoint(checkpoint_path, expected_fingerprint=expected)
    restore_simulation(sim, envelope.payload)
    return sim, envelope
