"""The on-disk checkpoint format: versioned, fingerprinted, checksummed.

A checkpoint file is one JSON document (the *envelope*) wrapping the
snapshot *payload* produced by :mod:`repro.checkpoint.snapshot`:

.. code-block:: json

    {
      "magic": "repro-checkpoint",
      "schema_version": 1,
      "fingerprint": "<sha256 of the run's config/seed/topology identity>",
      "tick_index": 1234,
      "sim_time_s": 12.34,
      "payload_sha256": "<sha256 of the canonical payload JSON>",
      "payload": { ... }
    }

Restore refuses to proceed -- with a descriptive, actionable error --
when the schema version is unknown, the payload checksum does not match
(torn or bit-rotted file), or the fingerprint differs from the run being
resumed (different config, seed, workload or governor).  Writes are
atomic (see :mod:`repro.checkpoint.atomicio`), so a crash mid-write can
never produce a file that *parses* but lies.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .atomicio import atomic_write_text

#: Bump on any incompatible change to the payload layout.
CHECKPOINT_SCHEMA_VERSION = 1

_MAGIC = "repro-checkpoint"

#: Checkpoint file name pattern: an optional stream label (e.g. the
#: campaign's governor index) followed by the zero-padded tick, so plain
#: lexicographic order equals chronological order within a run.
CHECKPOINT_GLOB_RE = re.compile(r"^ckpt_(?:(?P<stream>[A-Za-z0-9-]+)_)?(?P<tick>\d{10})\.json$")


class CheckpointError(RuntimeError):
    """Base class for every checkpoint read/validation failure."""


class CheckpointCorruptError(CheckpointError):
    """The file is unreadable, truncated, or fails its payload checksum."""


class CheckpointSchemaError(CheckpointError):
    """The file was written by an incompatible checkpoint schema."""


class CheckpointFingerprintError(CheckpointError):
    """The checkpoint belongs to a different run configuration."""


def canonical_json(payload: Any) -> str:
    """Deterministic JSON serialisation used for checksumming."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def checkpoint_filename(tick_index: int, stream: Optional[str] = None) -> str:
    if stream:
        return f"ckpt_{stream}_{tick_index:010d}.json"
    return f"ckpt_{tick_index:010d}.json"


@dataclass
class CheckpointEnvelope:
    """A parsed-and-validated checkpoint."""

    path: str
    fingerprint: str
    tick_index: int
    sim_time_s: float
    payload: Dict[str, Any]


def write_checkpoint(
    path: str,
    payload: Dict[str, Any],
    fingerprint: str,
    tick_index: int,
    sim_time_s: float,
) -> str:
    """Atomically write one checkpoint file; returns ``path``."""
    envelope = {
        "magic": _MAGIC,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "tick_index": tick_index,
        "sim_time_s": sim_time_s,
        "payload_sha256": payload_checksum(payload),
        "payload": payload,
    }
    return atomic_write_text(path, json.dumps(envelope))


def read_checkpoint(
    path: str, expected_fingerprint: Optional[str] = None
) -> CheckpointEnvelope:
    """Read and validate one checkpoint file.

    Raises:
        CheckpointCorruptError: unreadable JSON, missing envelope fields,
            or a payload checksum mismatch.
        CheckpointSchemaError: schema version this code does not speak.
        CheckpointFingerprintError: ``expected_fingerprint`` given and
            different from the file's -- the checkpoint belongs to a
            different configuration/seed and must not be restored.
    """
    try:
        with open(path, "r") as handle:
            envelope = json.load(handle)
    except OSError as exc:
        raise CheckpointCorruptError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is not valid JSON ({exc}); the file is "
            "corrupt -- delete it and resume from an earlier checkpoint"
        ) from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is missing the {_MAGIC!r} magic marker; "
            "this is not a repro checkpoint file"
        )
    version = envelope.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"checkpoint {path!r} uses schema version {version!r}, but this "
            f"build speaks version {CHECKPOINT_SCHEMA_VERSION}; re-run the "
            "original experiment or use a matching repro version"
        )
    missing = [
        key
        for key in ("fingerprint", "tick_index", "sim_time_s", "payload_sha256", "payload")
        if key not in envelope
    ]
    if missing:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is missing envelope fields {missing}; the "
            "file is corrupt"
        )
    actual = payload_checksum(envelope["payload"])
    if actual != envelope["payload_sha256"]:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} fails its payload checksum (expected "
            f"{envelope['payload_sha256'][:12]}..., got {actual[:12]}...); the "
            "payload is corrupt -- resume from an earlier checkpoint"
        )
    if (
        expected_fingerprint is not None
        and envelope["fingerprint"] != expected_fingerprint
    ):
        raise CheckpointFingerprintError(
            f"checkpoint {path!r} was taken from a different run: its "
            f"config/seed fingerprint is {envelope['fingerprint'][:12]}... but "
            f"the run being resumed has {expected_fingerprint[:12]}....  "
            "Rebuild the simulation with the exact same config, seed, "
            "workload and governor, or point at the matching checkpoint "
            "directory"
        )
    return CheckpointEnvelope(
        path=path,
        fingerprint=envelope["fingerprint"],
        tick_index=int(envelope["tick_index"]),
        sim_time_s=float(envelope["sim_time_s"]),
        payload=envelope["payload"],
    )


def list_checkpoints(directory: str) -> List[str]:
    """Checkpoint paths under ``directory``, oldest first."""
    if not os.path.isdir(directory):
        return []
    names = sorted(
        name for name in os.listdir(directory) if CHECKPOINT_GLOB_RE.match(name)
    )
    return [os.path.join(directory, name) for name in names]


def latest_checkpoint(directory: str) -> Optional[str]:
    """The newest checkpoint in ``directory`` (lexicographic = newest)."""
    paths = list_checkpoints(directory)
    return paths[-1] if paths else None
