"""Deterministic replay with divergence detection.

A *journal* is the per-tick telemetry of a run: one record per tick,
straight from :class:`~repro.sim.metrics.MetricsCollector` (all ticks,
including warmup).  ``replay_from_checkpoint`` rebuilds the run from a
checkpoint, re-executes it to the journal's end, and compares the two
telemetry streams tick for tick.  Because the simulator is deterministic
a clean resume diverges nowhere; any divergence is localized to the
first differing tick and the exact fields that differ.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .atomicio import atomic_write_text
from .manager import resume_from
from .store import CheckpointCorruptError, canonical_json

JOURNAL_MAGIC = "repro-journal"


def tick_records(metrics) -> List[Dict[str, Any]]:
    """One JSON-safe record per simulated tick, in order.

    ``cluster_temperature_c`` is omitted from records where it is ``None``
    (thermal tracking off), so journals and the pinned telemetry digests
    of thermal-free runs are byte-identical to those recorded before the
    field existed.  Thermal-enabled runs carry the temperatures, making
    replay divergence detection cover the thermal state too.
    ``estimated_chip_power_w`` gets the same treatment for runs without
    estimated-power operation.
    """
    records = []
    for sample in metrics.samples:
        record = asdict(sample)
        if record.get("cluster_temperature_c") is None:
            record.pop("cluster_temperature_c", None)
        if record.get("estimated_chip_power_w") is None:
            record.pop("estimated_chip_power_w", None)
        records.append(record)
    return records


def write_journal(path: str, records: List[Dict[str, Any]], fingerprint: str, dt: float) -> str:
    """Atomically write a telemetry journal; returns the path written."""
    document = {
        "magic": JOURNAL_MAGIC,
        "fingerprint": fingerprint,
        "dt": dt,
        "records": records,
    }
    return atomic_write_text(path, canonical_json(document))


def read_journal(path: str) -> Dict[str, Any]:
    """Read a journal written by :func:`write_journal`, validating its shape."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"journal {path!r} is unreadable: {exc}") from exc
    if not isinstance(document, dict) or document.get("magic") != JOURNAL_MAGIC:
        raise CheckpointCorruptError(
            f"journal {path!r} is not a telemetry journal (missing magic "
            f"{JOURNAL_MAGIC!r})"
        )
    if not isinstance(document.get("records"), list):
        raise CheckpointCorruptError(f"journal {path!r} has no record list")
    return document


def _diff_value(path: str, expected: Any, actual: Any, diffs: List[str]) -> None:
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                diffs.append(f"{path}.{key}: unexpected field {actual[key]!r}")
            elif key not in actual:
                diffs.append(f"{path}.{key}: missing (expected {expected[key]!r})")
            else:
                _diff_value(f"{path}.{key}", expected[key], actual[key], diffs)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length {len(actual)} != expected {len(expected)}"
            )
        for index, (exp, act) in enumerate(zip(expected, actual)):
            _diff_value(f"{path}[{index}]", exp, act, diffs)
    elif expected != actual:
        diffs.append(f"{path}: {actual!r} != expected {expected!r}")


def diff_tick_records(
    expected: List[Dict[str, Any]], actual: List[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """First divergent tick between two telemetry streams, or ``None``.

    Returns ``{"tick": i, "diffs": [...]}`` for the first tick whose
    records differ field-by-field; a length mismatch past the common
    prefix counts as divergence at the first uncovered tick.
    """
    for index in range(min(len(expected), len(actual))):
        if expected[index] != actual[index]:
            diffs: List[str] = []
            _diff_value("tick", expected[index], actual[index], diffs)
            return {"tick": index, "diffs": diffs}
    if len(expected) != len(actual):
        tick = min(len(expected), len(actual))
        return {
            "tick": tick,
            "diffs": [
                f"journal has {len(expected)} ticks but replay produced "
                f"{len(actual)}"
            ],
        }
    return None


@dataclass
class ReplayReport:
    """Outcome of one replay-and-compare pass."""

    checkpoint_tick: int
    ticks_compared: int
    first_divergent_tick: Optional[int] = None
    first_divergent_time_s: Optional[float] = None
    diffs: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.first_divergent_tick is None

    def describe(self) -> str:
        if self.clean:
            return (
                f"replay clean: {self.ticks_compared} ticks match the journal "
                f"(resumed from tick {self.checkpoint_tick})"
            )
        lines = [
            f"replay DIVERGED at tick {self.first_divergent_tick} "
            f"(t={self.first_divergent_time_s:.3f}s; resumed from tick "
            f"{self.checkpoint_tick}):"
        ]
        lines.extend(f"  {diff}" for diff in self.diffs[:20])
        if len(self.diffs) > 20:
            lines.append(f"  ... and {len(self.diffs) - 20} more field diffs")
        return "\n".join(lines)


def replay_from_checkpoint(
    checkpoint_path: str,
    factory: Callable[[], Any],
    journal_records: List[Dict[str, Any]],
    fingerprint_extra: Any = None,
) -> ReplayReport:
    """Resume from ``checkpoint_path`` and verify against a journal.

    The simulation is rebuilt via ``factory`` (see
    :func:`~repro.checkpoint.manager.resume_from`), restored, and stepped
    until it has produced as many telemetry ticks as ``journal_records``
    holds.  Every tick -- restored prefix and recomputed suffix alike --
    is then compared against the journal.
    """
    sim, envelope = resume_from(
        checkpoint_path, factory, fingerprint_extra=fingerprint_extra
    )
    target_ticks = len(journal_records)
    if envelope.tick_index > target_ticks:
        raise ValueError(
            f"checkpoint is at tick {envelope.tick_index} but the journal "
            f"only covers {target_ticks} ticks; pick an earlier checkpoint"
        )
    while sim.tick_index < target_ticks:
        sim.step()
    actual = tick_records(sim.metrics)
    divergence = diff_tick_records(journal_records, actual)
    report = ReplayReport(
        checkpoint_tick=envelope.tick_index,
        ticks_compared=min(target_ticks, len(actual)),
    )
    if divergence is not None:
        report.first_divergent_tick = divergence["tick"]
        report.first_divergent_time_s = divergence["tick"] * sim.dt
        report.diffs = divergence["diffs"]
    return report
