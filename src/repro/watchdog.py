"""A hard wall-clock watchdog for CI smoke scripts.

CI gates must fail, not hang: a wedged subprocess, a deadlocked pipe, or
a pathological simulation should surface as a nonzero exit with a
diagnostic, never as a job that sits until the CI platform's own
timeout reaps it with no clue where it was stuck.  ``WallClockWatchdog``
arms a daemon timer; if the deadline passes it dumps every thread's
traceback to stderr (so the log shows *where* the script was stuck) and
hard-exits with status 2.  ``os._exit`` is deliberate: a wedged main
thread cannot be asked to raise, and atexit handlers of a stuck process
are part of the problem, not the solution.

Usage::

    from repro.watchdog import WallClockWatchdog

    with WallClockWatchdog(300, label="fleet smoke"):
        main()

The budget honours the ``REPRO_SMOKE_TIMEOUT_S`` environment variable
when set, so slow CI hosts can widen every script's leash in one place.
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading
from typing import Optional

#: Environment override applied to every watchdog (seconds).
TIMEOUT_ENV = "REPRO_SMOKE_TIMEOUT_S"

#: The watchdog's exit status: distinct from ordinary failure (1) so CI
#: logs distinguish "assertions failed" from "ran out of wall clock".
WATCHDOG_EXIT_STATUS = 2


def resolve_timeout_s(default_s: float) -> float:
    """The effective budget: ``REPRO_SMOKE_TIMEOUT_S`` or the default."""
    raw = os.environ.get(TIMEOUT_ENV)
    if raw is None:
        return float(default_s)
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(
            f"{TIMEOUT_ENV}={raw!r} is not a number; set it to a timeout "
            "in seconds"
        )
    if value <= 0:
        raise SystemExit(f"{TIMEOUT_ENV} must be positive, got {raw!r}")
    return value


class WallClockWatchdog:
    """Kills the process with a traceback dump after a wall-clock budget.

    Args:
        timeout_s: Wall-clock budget in seconds (overridden by
            ``REPRO_SMOKE_TIMEOUT_S`` when set).
        label: Names the guarded script in the diagnostic.
        stream: Where the diagnostic goes (default stderr).
    """

    def __init__(
        self, timeout_s: float, label: str = "smoke script", stream=None
    ):
        self.timeout_s = resolve_timeout_s(timeout_s)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._timer: Optional[threading.Timer] = None

    def _fire(self) -> None:  # pragma: no cover - exercised via subprocess
        self.stream.write(
            f"\nWATCHDOG: {self.label} exceeded its hard wall-clock budget "
            f"of {self.timeout_s:.0f}s; dumping all thread stacks and "
            f"exiting {WATCHDOG_EXIT_STATUS}\n"
        )
        self.stream.flush()
        try:
            faulthandler.dump_traceback(file=self.stream, all_threads=True)
            self.stream.flush()
        finally:
            os._exit(WATCHDOG_EXIT_STATUS)

    def start(self) -> "WallClockWatchdog":
        if self._timer is not None:
            raise RuntimeError("watchdog already armed")
        self._timer = threading.Timer(self.timeout_s, self._fire)
        self._timer.daemon = True
        self._timer.start()
        return self

    def cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def __enter__(self) -> "WallClockWatchdog":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.cancel()
