"""repro: price-theory based power management for heterogeneous multi-cores.

A full-system reproduction of Muthukaruppan, Pathania & Mitra (ASPLOS
2014).  The package splits into:

* :mod:`repro.hw` -- the simulated big.LITTLE hardware substrate;
* :mod:`repro.tasks` -- heartbeat-instrumented benchmark and workload models;
* :mod:`repro.sim` -- the discrete-time OS/scheduler simulator;
* :mod:`repro.core` -- the price-theory framework (PPM), the contribution;
* :mod:`repro.governors` -- PPM plus the HPM and HL baselines;
* :mod:`repro.experiments` -- harnesses regenerating every table & figure;
* :mod:`repro.checkpoint` -- crash-consistent snapshots, resume and replay.

Quickstart::

    from repro import tc2_chip, build_workload, Simulation, PPMGovernor

    chip = tc2_chip()
    tasks = build_workload("m2")
    sim = Simulation(chip, tasks, PPMGovernor())
    metrics = sim.run(30.0)
    print(metrics.any_task_miss_fraction(), metrics.average_power_w())
"""

from .checkpoint import CheckpointManager, resume_from
from .core import MarketConfig, PPMConfig, PPMGovernor
from .governors import HLGovernor, HPMGovernor, MaxFrequencyGovernor, OndemandGovernor
from .hw import TC2_CAPPED_TDP_W, TC2_TDP_W, Chip, synthetic_chip, tc2_chip
from .sim import SimConfig, Simulation
from .tasks import Task, build_workload, make_task, workload_intensity

__version__ = "1.0.0"

__all__ = [
    "CheckpointManager",
    "Chip",
    "HLGovernor",
    "HPMGovernor",
    "MarketConfig",
    "MaxFrequencyGovernor",
    "OndemandGovernor",
    "PPMConfig",
    "PPMGovernor",
    "SimConfig",
    "Simulation",
    "TC2_CAPPED_TDP_W",
    "TC2_TDP_W",
    "Task",
    "__version__",
    "build_workload",
    "make_task",
    "resume_from",
    "synthetic_chip",
    "tc2_chip",
    "workload_intensity",
]
