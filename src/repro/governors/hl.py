"""HL: the Linaro heterogeneity-aware Linux scheduler baseline.

Re-implemented from the paper's description (section 5.3): the HL
scheduler (Linaro's big.LITTLE MP patches in the Linux 3.8 release)

* uses a task's *activeness* -- time spent in the active run queue,
  i.e. per-entity load tracking -- as the migration signal: a task whose
  tracked load exceeds an up-threshold is moved to the A15 (big) cluster
  "at the first opportunity", and moved back to the A7 (LITTLE) cluster
  when its load falls below a down-threshold;
* does not react to the performance demands of individual tasks (plain
  fair scheduling within a core);
* pairs with the cpufreq ondemand governor for DVFS;
* under a TDP cap, the paper's methodology switches the A15 cluster off
  entirely once chip power exceeds the budget, since the A7 cluster alone
  can never exceed it.
"""

from __future__ import annotations

from typing import List, Optional

from ..hw.topology import Cluster, Core
from ..sim.engine import Simulation
from ..tasks.task import Task
from .base import BaseGovernor, PeriodicAction
from .ondemand import OndemandDVFS


class HLGovernor(BaseGovernor):
    """Heterogeneity-aware Linux scheduler + ondemand (the HL baseline).

    Args:
        up_threshold: Tracked-load level that promotes a task to big.
        down_threshold: Tracked-load level that demotes a task to LITTLE.
        migration_period_s: How often migration decisions are taken.
        power_cap_w: Optional TDP; above it the big cluster is switched
            off for the rest of the run (the paper's 4 W experiment).
    """

    def __init__(
        self,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
        migration_period_s: float = 0.10,
        balance_period_s: float = 0.10,
        ondemand_up_threshold: float = 0.80,
        ondemand_period_s: float = 0.05,
        power_cap_w: Optional[float] = None,
    ):
        if not 0.0 <= down_threshold < up_threshold <= 1.0:
            raise ValueError("need 0 <= down < up <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.power_cap_w = power_cap_w
        self._dvfs = OndemandDVFS(ondemand_up_threshold, ondemand_period_s)
        self._migrate_timer = PeriodicAction(migration_period_s)
        self._balance_timer = PeriodicAction(balance_period_s)
        self.capped = False  #: big cluster permanently off (TDP tripped)

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _big_cluster(sim: Simulation) -> Cluster:
        return max(sim.chip.clusters, key=lambda c: c.max_supply_pus)

    @staticmethod
    def _little_cluster(sim: Simulation) -> Cluster:
        return min(sim.chip.clusters, key=lambda c: c.max_supply_pus)

    @staticmethod
    def _fewest_tasks_core(sim: Simulation, cluster: Cluster) -> Core:
        """HL picks a destination without looking at utilisation -- it
        simply balances run-queue lengths."""
        return min(
            cluster.cores, key=lambda core: len(sim.placement.tasks_on_core(core))
        )

    def _enforce_power_cap(self, sim: Simulation) -> None:
        if self.power_cap_w is None or self.capped:
            return
        sample = sim.last_power_sample()
        if sample is None or sample.chip_power_w <= self.power_cap_w:
            return
        # Trip: evacuate and switch off the big cluster for good.  The A7
        # cluster's maximum power is safely below the cap.
        big = self._big_cluster(sim)
        little = self._little_cluster(sim)
        for task in list(sim.placement.tasks_on_cluster(big)):
            sim.migrate(task, self._fewest_tasks_core(sim, little))
        sim.power_down(big, hold=True)
        self.capped = True

    def _migrate(self, sim: Simulation) -> None:
        big = self._big_cluster(sim)
        little = self._little_cluster(sim)
        if big is little:
            return
        sim.sync()  # load-tracker reads below: observation barrier
        for task in sim.active_tasks():
            core = sim.placement.core_of(task)
            if core is None or task.frozen_until > sim.now:
                continue
            load = sim.load_tracker.load(task)
            if core.cluster is little and load >= self.up_threshold and not self.capped:
                sim.migrate(task, self._fewest_tasks_core(sim, big))
            elif core.cluster is big and load <= self.down_threshold:
                sim.migrate(task, self._fewest_tasks_core(sim, little))

    def _balance(self, sim: Simulation) -> None:
        """CFS-style load balancing within each cluster.

        CFS equalises the *tracked load* of run queues: pull work onto an
        idle core, and even out a >25% load imbalance by moving the
        lightest task off the busiest core.
        """
        sim.sync()  # load-tracker reads below: observation barrier
        for cluster in sim.chip.clusters:
            if not cluster.powered or len(cluster.cores) < 2:
                continue

            def core_load(core: Core) -> float:
                return sum(
                    sim.load_tracker.load(t)
                    for t in sim.placement.tasks_on_core(core)
                )

            busiest = max(cluster.cores, key=core_load)
            lightest = min(cluster.cores, key=core_load)
            movable = [
                t
                for t in sim.placement.tasks_on_core(busiest)
                if t.frozen_until <= sim.now
            ]
            if len(movable) < 2:
                continue
            gap = core_load(busiest) - core_load(lightest)
            if gap <= 0.2:
                continue
            # Best-fit: move the task that most evens the two queues, and
            # only if the move strictly shrinks the gap -- this gives the
            # balancer a fixed point instead of a ping-pong cycle.
            def gap_after(task: Task) -> float:
                load = sim.load_tracker.load(task)
                return abs(gap - 2.0 * load)

            candidate = min(movable, key=gap_after)
            if gap_after(candidate) < gap * 0.8:
                sim.migrate(candidate, lightest)

    # -- governor protocol ---------------------------------------------------------
    def on_tick(self, sim: Simulation) -> None:
        self._enforce_power_cap(sim)
        if self._migrate_timer.due(sim.now):
            self._migrate(sim)
        if self._balance_timer.due(sim.now):
            self._balance(sim)
        self._dvfs.on_tick(sim)
