"""A textbook PID controller with output and anti-windup clamping.

Building block of the HPM baseline (the DAC'13 hierarchical framework
"employs multiple PID controllers to meet the demand of tasks in
asymmetric multi-cores under TDP constraint").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class PIDController:
    """Discrete PID: ``u = kp*e + ki*integral(e) + kd*de/dt``.

    Attributes:
        kp, ki, kd: The usual gains.
        output_limits: Clamp on the returned control value.
        integral_limits: Anti-windup clamp on the accumulated integral;
            defaults to the output limits scaled by ``1/ki`` when set.
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_limits: Optional[Tuple[float, float]] = None
    integral_limits: Optional[Tuple[float, float]] = None
    _integral: float = field(default=0.0, repr=False)
    _last_error: Optional[float] = field(default=None, repr=False)

    def update(self, error: float, dt: float) -> float:
        """Advance the controller by ``dt`` with the current ``error``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._integral += error * dt
        if self.integral_limits is not None:
            lo, hi = self.integral_limits
            self._integral = max(lo, min(hi, self._integral))
        derivative = 0.0
        if self._last_error is not None:
            derivative = (error - self._last_error) / dt
        self._last_error = error
        output = self.kp * error + self.ki * self._integral + self.kd * derivative
        if self.output_limits is not None:
            lo, hi = self.output_limits
            output = max(lo, min(hi, output))
        return output

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None
