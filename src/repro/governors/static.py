"""Static frequency governors: powersave and userspace.

Together with :class:`~repro.governors.base.MaxFrequencyGovernor`
(cpufreq's *performance*) these complete the classic cpufreq governor
set; they serve as experimental controls bounding any dynamic policy
from below (power) and as fixed-point references for ablations.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Simulation
from .base import BaseGovernor


class PowersaveGovernor(BaseGovernor):
    """Pin every cluster at its lowest V-F level (cpufreq *powersave*).

    The floor on power and the ceiling on QoS misses.
    """

    def prepare(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            sim.request_level(cluster, 0)

    def on_tick(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            if cluster.regulator.target_index != 0:
                sim.request_level(cluster, 0)


class UserspaceGovernor(BaseGovernor):
    """Hold operator-chosen fixed levels per cluster (cpufreq *userspace*).

    Args:
        levels: Cluster id -> V-F level index.  Unlisted clusters are
            left wherever they are.
    """

    def __init__(self, levels: Optional[Dict[str, int]] = None):
        self.levels = dict(levels or {})

    def set_level(self, cluster_id: str, index: int) -> None:
        """Change the held level (takes effect next tick)."""
        self.levels[cluster_id] = index

    def prepare(self, sim: Simulation) -> None:
        self.on_tick(sim)

    def on_tick(self, sim: Simulation) -> None:
        for cluster_id, index in self.levels.items():
            cluster = sim.chip.cluster(cluster_id)
            clamped = cluster.vf_table.clamp_index(index)
            if cluster.regulator.target_index != clamped:
                sim.request_level(cluster, clamped)
