"""EAS: an energy-aware-scheduling baseline in the mould of modern Linux.

Not one of the paper's comparators (it predates mainline EAS) but the
policy mainstream Linux actually ships today for big.LITTLE-class chips,
included as an extension comparator:

* **schedutil DVFS**: each cluster's frequency targets
  ``next_freq = margin * current_freq * util`` (the kernel's 1.25x
  headroom rule), applied directly rather than stepwise;
* **energy-aware wake placement**: a task is (re)placed on the candidate
  core whose cluster adds the least modelled energy for the task's
  estimated load, consulting the same power model PPM's estimator uses
  (the analogue of the kernel's Energy Model tables);
* plain fair sharing within a core; no QoS/heartbeat awareness at all --
  like HL it reacts to load, not to application demands.
"""

from __future__ import annotations

from typing import Optional

from ..hw.topology import Chip, Cluster, Core
from ..sim.engine import Simulation
from ..tasks.task import Task
from .base import BaseGovernor, PeriodicAction


class EASGovernor(BaseGovernor):
    """Energy-aware scheduler + schedutil (extension baseline).

    Args:
        margin: schedutil's frequency headroom multiplier (kernel: 1.25).
        dvfs_period_s: Frequency re-evaluation period.
        placement_period_s: How often wake-balancing reconsiders tasks.
        overutilized_threshold: Per-core utilisation beyond which EAS
            falls back to spreading (the kernel's "overutilized" escape
            hatch disabling energy-aware placement).
    """

    def __init__(
        self,
        margin: float = 1.25,
        dvfs_period_s: float = 0.05,
        placement_period_s: float = 0.10,
        overutilized_threshold: float = 0.95,
    ):
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        self.margin = margin
        self.overutilized_threshold = overutilized_threshold
        self._dvfs_timer = PeriodicAction(dvfs_period_s)
        self._placement_timer = PeriodicAction(placement_period_s)

    # -- energy model -----------------------------------------------------------
    @staticmethod
    def _core_demands_pus(sim: Simulation, cluster: Cluster, exclude=None) -> "list[float]":
        """Per-core summed task demand (PELT utilisation in PUs)."""
        demands = []
        for core in cluster.cores:
            demands.append(
                sum(
                    task.true_demand_pus(cluster.core_type, sim.now)
                    for task in sim.placement.tasks_on_core(core)
                    if task is not exclude
                )
            )
        return demands

    def _energy_cost_w(
        self, sim: Simulation, cluster: Cluster, task: Task
    ) -> float:
        """Modelled cluster power if ``task`` joined ``cluster``.

        Mirrors the kernel's EM lookup: the hypothetical task lands on
        the emptiest core, the cluster's level must cover its *busiest*
        core with schedutil margin, and the cost is summed per core at
        the implied utilisations.
        """
        try:
            task_demand = task.true_demand_pus(cluster.core_type, sim.now)
        except KeyError:
            return float("inf")
        demands = self._core_demands_pus(sim, cluster, exclude=task)
        demands[demands.index(min(demands))] += task_demand
        table = cluster.vf_table
        level = table[table.index_for_demand(max(demands) * self.margin)]
        supply = level.supply_pus
        utilizations = [min(1.0, d / supply) if supply else 0.0 for d in demands]
        return sim.chip.power_model.cluster_power_w(
            cluster.power_params, level, utilizations
        )

    # -- placement -------------------------------------------------------------
    def _cluster_cost_without_w(
        self, sim: Simulation, cluster: Cluster, exclude: Task
    ) -> float:
        """Modelled cluster power without ``exclude``.

        An empty cluster costs nothing (it would be power-gated), so a
        placement that wakes a cluster is charged its full power -- the
        kernel's energy-delta semantics.
        """
        demands = self._core_demands_pus(sim, cluster, exclude=exclude)
        if not any(d > 0 for d in demands):
            return 0.0
        table = cluster.vf_table
        level = table[table.index_for_demand(max(demands) * self.margin)]
        supply = level.supply_pus
        utilizations = [min(1.0, d / supply) if supply else 0.0 for d in demands]
        return sim.chip.power_model.cluster_power_w(
            cluster.power_params, level, utilizations
        )

    def _best_core(self, sim: Simulation, task: Task) -> Optional[Core]:
        best: Optional[Core] = None
        best_cost = float("inf")
        for cluster in sim.chip.clusters:
            # Energy *delta* of hosting the task here, not absolute power
            # -- otherwise busy clusters look expensive to join even when
            # joining them is nearly free.
            cost = self._energy_cost_w(sim, cluster, task) - self._cluster_cost_without_w(
                sim, cluster, exclude=task
            )
            if cost >= best_cost:
                continue
            # Fit check: the task's demand must fit a core of this
            # cluster at max frequency (otherwise placement is futile).
            try:
                demand = task.true_demand_pus(cluster.core_type, sim.now)
            except KeyError:
                continue
            if demand > cluster.max_supply_pus:
                continue
            candidate = sim.placement.least_loaded_core(
                cluster.cores, sim.now, exclude=task
            )
            best, best_cost = candidate, cost
        return best

    def place_task(self, sim: Simulation, task: Task) -> None:
        core = self._best_core(sim, task)
        if core is not None:
            sim.place(task, core)

    def _rebalance(self, sim: Simulation) -> None:
        overutilized = any(
            core.utilization > self.overutilized_threshold
            for core in sim.chip.cores
            if core.cluster.powered
        )
        for task in sim.active_tasks():
            current = sim.placement.core_of(task)
            if current is None or task.frozen_until > sim.now:
                continue
            target = self._best_core(sim, task)
            if target is None or target is current:
                continue
            if overutilized:
                # Kernel behaviour: when overutilized, spread for
                # throughput instead of chasing energy.
                busiest_load = sum(
                    t.true_demand_pus(current.cluster.core_type, sim.now)
                    for t in sim.placement.tasks_on_core(current)
                )
                if busiest_load <= current.supply_pus:
                    continue
            elif target.cluster is current.cluster:
                continue  # intra-cluster moves only pay off when overutilized
            sim.migrate(task, target)
            return  # one move per invocation

    # -- DVFS --------------------------------------------------------------------
    def _schedutil(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            if not cluster.powered:
                continue
            busiest = max(self._core_demands_pus(sim, cluster), default=0.0)
            target = cluster.vf_table.index_for_demand(busiest * self.margin)
            if target != cluster.regulator.target_index:
                sim.request_level(cluster, target)

    # -- governor protocol ---------------------------------------------------------
    def on_tick(self, sim: Simulation) -> None:
        if self._placement_timer.due(sim.now):
            self._rebalance(sim)
        if self._dvfs_timer.due(sim.now):
            self._schedutil(sim)
