"""HPM: the hierarchical control-theory power-management baseline.

Re-implemented from the paper's description of its DAC'13 predecessor
(sections 4/5.3): "a control-theory based power management framework that
employs multiple PID controllers to meet the demand of tasks in asymmetric
multi-cores under TDP constraint.  However, the HPM scheduler uses naive
load balancing and task migration strategy" that is "non-speculative" and
"oblivious to the utilizations in the other clusters".

Structure:

* a per-task PID on the heart-rate error steers the task's explicit
  supply allocation (the resource-share controller);
* a per-cluster controller picks the lowest V-F level whose supply covers
  the busiest core's summed allocations plus headroom;
* an outer TDP loop lowers a frequency cap on the most power-hungry
  cluster while the chip power exceeds the budget and releases it below;
* the naive LBT: within a cluster, move a task from the most to the least
  loaded core when imbalance is large; across clusters, a task that keeps
  missing its target on a saturated, max-frequency cluster is pushed to
  the other cluster type at a round-robin core -- without checking how
  busy that core is.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hw.topology import Cluster, Core
from ..sim.engine import Simulation
from ..tasks.task import Task
from .base import BaseGovernor, PeriodicAction
from .pid import PIDController


class HPMGovernor(BaseGovernor):
    """Hierarchical PID power manager (the HPM baseline)."""

    def __init__(
        self,
        control_period_s: float = 0.05,
        lbt_period_s: float = 0.20,
        headroom: float = 0.10,
        power_cap_w: Optional[float] = None,
        kp: float = 0.6,
        ki: float = 0.2,
        miss_streak_to_migrate: int = 8,
        imbalance_threshold: float = 0.25,
    ):
        self.headroom = headroom
        self.power_cap_w = power_cap_w
        self._kp = kp
        self._ki = ki
        self._control_timer = PeriodicAction(control_period_s)
        self._lbt_timer = PeriodicAction(lbt_period_s)
        self._control_period_s = control_period_s
        self._task_pids: Dict[Task, PIDController] = {}
        self._allocations: Dict[Task, float] = {}
        self._miss_streak: Dict[Task, int] = {}
        self._freq_caps: Dict[str, int] = {}
        self._rr_counter = 0
        self.miss_streak_to_migrate = miss_streak_to_migrate
        self.imbalance_threshold = imbalance_threshold

    # -- per-task resource-share control ---------------------------------------
    def _pid_for(self, task: Task) -> PIDController:
        pid = self._task_pids.get(task)
        if pid is None:
            pid = PIDController(
                kp=self._kp,
                ki=self._ki,
                output_limits=(-1.0, 1.0),
                integral_limits=(-2.0, 2.0),
            )
            self._task_pids[task] = pid
        return pid

    def _control_allocations(self, sim: Simulation) -> None:
        for task in sim.active_tasks():
            core = sim.placement.core_of(task)
            if core is None:
                continue
            current = self._allocations.get(task)
            if current is None:
                current = task.profile.nominal_demand_pus(core.cluster.core_type)
            hr = task.observed_heart_rate()
            if hr > 0.0:
                error = (task.target_hr - hr) / task.target_hr
                adjustment = self._pid_for(task).update(error, self._control_period_s)
                current *= 1.0 + adjustment * 0.5
            max_supply = max(c.max_supply_pus for c in sim.chip.clusters)
            current = min(max(current, 1.0), max_supply)
            self._allocations[task] = current
            sim.set_allocation(task, current)
            if task.hr_range.below(hr) and hr > 0.0:
                self._miss_streak[task] = self._miss_streak.get(task, 0) + 1
            else:
                self._miss_streak[task] = 0

    # -- per-cluster frequency control --------------------------------------------
    def _core_load(self, sim: Simulation, core: Core) -> float:
        return sum(
            self._allocations.get(t, 0.0)
            for t in sim.placement.tasks_on_core(core)
            if t.is_active(sim.now)
        )

    def _control_frequencies(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            if not cluster.powered:
                continue
            busiest = max(
                (self._core_load(sim, core) for core in cluster.cores), default=0.0
            )
            if busiest <= 0.0:
                sim.request_level(cluster, 0)
                continue
            target = cluster.vf_table.index_for_demand(busiest * (1.0 + self.headroom))
            cap = self._freq_caps.get(cluster.cluster_id)
            if cap is not None:
                target = min(target, cap)
            if target != cluster.regulator.target_index:
                sim.request_level(cluster, target)

    # -- TDP outer loop ---------------------------------------------------------
    def _control_power(self, sim: Simulation) -> None:
        if self.power_cap_w is None:
            return
        sample = sim.last_power_sample()
        if sample is None:
            return
        if sample.chip_power_w > self.power_cap_w:
            hungriest = max(
                (c for c in sim.chip.clusters if c.powered),
                key=lambda c: sample.cluster_power_w.get(c.cluster_id, 0.0),
                default=None,
            )
            if hungriest is not None:
                current_cap = self._freq_caps.get(
                    hungriest.cluster_id, hungriest.vf_table.max_index
                )
                self._freq_caps[hungriest.cluster_id] = max(0, current_cap - 1)
        elif sample.chip_power_w < 0.85 * self.power_cap_w:
            for cluster_id in list(self._freq_caps):
                cap = self._freq_caps[cluster_id]
                table = sim.chip.cluster(cluster_id).vf_table
                if cap >= table.max_index:
                    del self._freq_caps[cluster_id]
                else:
                    self._freq_caps[cluster_id] = cap + 1

    # -- naive LBT ---------------------------------------------------------------
    def _other_cluster(self, sim: Simulation, cluster: Cluster) -> Optional[Cluster]:
        others = [c for c in sim.chip.clusters if c is not cluster]
        if not others:
            return None
        # Prefer the faster cluster for unsatisfied tasks.
        return max(others, key=lambda c: c.max_supply_pus)

    def _round_robin_core(self, cluster: Cluster) -> Core:
        self._rr_counter += 1
        return cluster.cores[self._rr_counter % len(cluster.cores)]

    def _load_balance(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            if not cluster.powered or len(cluster.cores) < 2:
                continue
            loads = {core: self._core_load(sim, core) for core in cluster.cores}
            busiest = max(loads, key=loads.get)
            lightest = min(loads, key=loads.get)
            if loads[busiest] <= 0.0:
                continue
            imbalance = (loads[busiest] - loads[lightest]) / max(loads[busiest], 1e-9)
            if imbalance < self.imbalance_threshold:
                continue
            movable = [
                t
                for t in sim.placement.tasks_on_core(busiest)
                if t.frozen_until <= sim.now
            ]
            if len(movable) < 2:
                continue
            smallest = min(movable, key=lambda t: self._allocations.get(t, 0.0))
            sim.migrate(smallest, lightest)

    def _migrate(self, sim: Simulation) -> None:
        for task in sim.active_tasks():
            core = sim.placement.core_of(task)
            if core is None or task.frozen_until > sim.now:
                continue
            cluster = core.cluster
            if self._miss_streak.get(task, 0) >= self.miss_streak_to_migrate:
                at_top = cluster.regulator.target_index >= self._freq_caps.get(
                    cluster.cluster_id, cluster.vf_table.max_index
                )
                oversubscribed = self._core_load(sim, core) > cluster.supply_pus
                target = self._other_cluster(sim, cluster)
                if (
                    at_top
                    and oversubscribed
                    and target is not None
                    and target.max_supply_pus > cluster.max_supply_pus
                ):
                    # Naive: round-robin destination, no look at its load.
                    sim.migrate(task, self._round_robin_core(target))
                    self._allocations[task] = task.profile.nominal_demand_pus(
                        target.core_type
                    )
                    self._miss_streak[task] = 0
                    return  # one migration per invocation
            else:
                # Demote comfortably-satisfied tasks from the fast cluster.
                others = [c for c in sim.chip.clusters if c is not cluster]
                slower = [c for c in others if c.max_supply_pus < cluster.max_supply_pus]
                if not slower:
                    continue
                little = min(slower, key=lambda c: c.max_supply_pus)
                hr = task.observed_heart_rate()
                try:
                    demand_little = task.profile.nominal_demand_pus(little.core_type)
                except KeyError:
                    continue
                if (
                    hr > task.hr_range.max_hr
                    and demand_little < 0.5 * little.max_supply_pus
                ):
                    sim.migrate(task, self._round_robin_core(little))
                    self._allocations[task] = demand_little
                    return

    # -- governor protocol ---------------------------------------------------------
    def on_tick(self, sim: Simulation) -> None:
        if self._control_timer.due(sim.now):
            self._control_allocations(sim)
            self._control_power(sim)
            self._control_frequencies(sim)
        if self._lbt_timer.due(sim.now):
            self._load_balance(sim)
            self._migrate(sim)
