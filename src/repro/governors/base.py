"""Common governor scaffolding.

All policies -- PPM and the baselines -- implement the engine's
:class:`~repro.sim.engine.Governor` protocol.  This module adds the shared
convenience of periodic sub-activities: most policies act at periods much
longer than the engine tick.
"""

from __future__ import annotations

from typing import Dict

from ..sim.engine import Simulation


class PeriodicAction:
    """Tracks when a periodic activity is next due."""

    def __init__(self, period_s: float, start_at_s: float = 0.0):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.period_s = period_s
        self._next_due = start_at_s

    def due(self, now: float) -> bool:
        """True (and re-arms) when the activity should run at ``now``."""
        if now + 1e-9 >= self._next_due:
            self._next_due = now + self.period_s
            return True
        return False


class BaseGovernor:
    """No-op governor; a convenient superclass for the baselines.

    On its own this is the "race-to-idle-free" null policy: fair equal
    shares, clusters stuck at their boot frequency.  Useful as an
    experimental control and in engine tests.
    """

    def prepare(self, sim: Simulation) -> None:  # pragma: no cover - trivial
        """Called once before the first tick."""

    def on_tick(self, sim: Simulation) -> None:  # pragma: no cover - trivial
        """Called every engine tick."""


class MaxFrequencyGovernor(BaseGovernor):
    """Performance governor: pin every cluster at its top level.

    The upper bound on QoS and on power; used by tests and as an
    ablation reference.
    """

    def prepare(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            sim.request_level(cluster, cluster.vf_table.max_index)

    def on_tick(self, sim: Simulation) -> None:
        for cluster in sim.chip.clusters:
            if cluster.regulator.target_index != cluster.vf_table.max_index:
                sim.request_level(cluster, cluster.vf_table.max_index)


def cluster_utilization(sim: Simulation) -> Dict[str, float]:
    """Maximum per-core utilisation per cluster (ondemand's input)."""
    return {
        cluster.cluster_id: max((core.utilization for core in cluster.cores), default=0.0)
        for cluster in sim.chip.clusters
    }
