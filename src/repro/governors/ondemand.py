"""The cpufreq *ondemand* frequency governor.

The paper pairs the HL scheduler with "the cpufreq on-demand governor that
changes the frequency value based on processor utilization" (section 5.3).
Classic ondemand semantics: when utilisation crosses the up-threshold the
cluster jumps straight to its maximum frequency; otherwise the frequency
is proportionally lowered so utilisation would sit at the up-threshold.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Simulation
from .base import BaseGovernor, PeriodicAction, cluster_utilization


class OndemandDVFS:
    """Per-cluster ondemand logic, embeddable into any governor.

    Args:
        up_threshold: Utilisation above which the cluster races to max.
        sampling_period_s: How often utilisation is evaluated (Linux
            default is tens of milliseconds).
    """

    def __init__(self, up_threshold: float = 0.80, sampling_period_s: float = 0.05):
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError("up_threshold must be in (0, 1]")
        self.up_threshold = up_threshold
        self._timer = PeriodicAction(sampling_period_s)

    def on_tick(self, sim: Simulation) -> None:
        if not self._timer.due(sim.now):
            return
        utils = cluster_utilization(sim)
        for cluster in sim.chip.clusters:
            if not cluster.powered:
                continue
            util = utils.get(cluster.cluster_id, 0.0)
            table = cluster.vf_table
            if util >= self.up_threshold:
                sim.request_level(cluster, table.max_index)
                continue
            # Proportional scale-down: pick the lowest level whose supply
            # keeps utilisation at/below the threshold.
            needed_supply = util * cluster.supply_pus / self.up_threshold
            target = table.index_for_demand(needed_supply)
            if target < cluster.regulator.target_index:
                sim.request_level(cluster, target)


class OndemandGovernor(BaseGovernor):
    """Stand-alone governor: fair shares plus ondemand DVFS.

    No migration policy at all -- tasks stay where they are placed.  Used
    as an experimental control and inside the HL baseline.
    """

    def __init__(
        self, up_threshold: float = 0.80, sampling_period_s: float = 0.05
    ):
        self._dvfs = OndemandDVFS(up_threshold, sampling_period_s)

    def on_tick(self, sim: Simulation) -> None:
        self._dvfs.on_tick(sim)
