"""Power-management governors: PPM and the paper's comparison baselines.

* :class:`~repro.core.framework.PPMGovernor` -- the price-theory framework
  (re-exported here for convenience).
* :class:`HPMGovernor` -- hierarchical PID control (the DAC'13 baseline).
* :class:`HLGovernor` -- Linaro's heterogeneity-aware scheduler with the
  ondemand cpufreq governor.
* :class:`OndemandGovernor`, :class:`MaxFrequencyGovernor`,
  :class:`BaseGovernor` -- controls and building blocks.
"""

from ..core.framework import PPMGovernor
from .base import BaseGovernor, MaxFrequencyGovernor, PeriodicAction, cluster_utilization
from .eas import EASGovernor
from .hl import HLGovernor
from .hpm import HPMGovernor
from .ondemand import OndemandDVFS, OndemandGovernor
from .pid import PIDController
from .static import PowersaveGovernor, UserspaceGovernor

__all__ = [
    "BaseGovernor",
    "EASGovernor",
    "HLGovernor",
    "HPMGovernor",
    "MaxFrequencyGovernor",
    "OndemandDVFS",
    "OndemandGovernor",
    "PIDController",
    "PPMGovernor",
    "PowersaveGovernor",
    "PeriodicAction",
    "UserspaceGovernor",
    "cluster_utilization",
]
