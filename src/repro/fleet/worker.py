"""The fleet worker: one chip's simulation, supervised over a pipe.

A worker process owns exactly one :class:`~repro.sim.Simulation` (the
existing single-chip engine, columnar or object) and advances it one
*epoch* at a time on command.  Everything the robustness contract needs
lives here:

* **Idempotent commands** -- a re-delivered epoch command (the
  supervisor retries on timeouts and injected message loss) is answered
  from the cached result instead of re-running the epoch.
* **Epoch-boundary checkpoints** -- the chip checkpoints through
  :mod:`repro.checkpoint` after every epoch *before* reporting it, so a
  SIGKILL at any instant loses at most the in-flight epoch and a restart
  resumes bit-identically from the last boundary.
* **Tick-loop heartbeats** -- liveness pulses are emitted from inside
  the simulation loop (not a side thread), so a wedged worker genuinely
  goes silent and the supervisor's timeouts are the only detector.
* **Orphan self-termination** -- a closed pipe (the supervisor died)
  aborts the worker even mid-epoch; a SIGKILLed supervisor leaves no
  orphaned workers behind.

Workers are spawned with the ``spawn`` start method: nothing is
inherited except the explicit arguments, so no stray pipe ends keep a
dead peer looking alive.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from ..checkpoint import CheckpointManager, resume_from
from .protocol import (
    MSG_DROP,
    MSG_EPOCH,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STALL,
    WorkerClosed,
    poll_message,
    send_message,
)

#: Bid shaping: a chip asks for its measured draw plus headroom, plus a
#: pressure term proportional to its QoS miss fraction -- a starving
#: chip bids itself more budget, a coasting one releases it.  Pure in
#: the epoch's telemetry, so bids (and hence the whole grid auction) are
#: deterministic.
BID_HEADROOM = 1.15
BID_PRESSURE = 0.75
MIN_BID_W = 0.3

#: Floor on an applied budget grant: a cap of literally zero watts would
#: be rejected by the governors' config validation, and a starved chip
#: must still be able to run its market at a trickle.
MIN_APPLIED_CAP_W = 0.05


@dataclass(frozen=True)
class ChipSpec:
    """Identity of one fleet chip: everything needed to rebuild its sim."""

    chip_id: str
    workload: str = "m2"
    governor: str = "PPM"
    seed: int = 1
    tdp_w: float = 8.0
    region: str = "local"
    dt: float = 0.01

    def __post_init__(self) -> None:
        if not self.chip_id:
            raise ValueError("chip id must be non-empty")
        if self.tdp_w <= 0:
            raise ValueError("chip TDP must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    def identity(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ChipSpec":
        return cls(
            chip_id=str(data["chip_id"]),
            workload=str(data["workload"]),
            governor=str(data["governor"]),
            seed=int(data["seed"]),
            tdp_w=float(data["tdp_w"]),
            region=str(data["region"]),
            dt=float(data["dt"]),
        )


def chip_directory(fleet_dir: str, chip_id: str) -> str:
    """Where one chip's checkpoints live under the fleet directory."""
    return os.path.join(fleet_dir, "chips", chip_id)


def build_chip_simulation(spec: ChipSpec):
    """A fresh, never-stepped simulation for one fleet chip."""
    # Local imports: repro.experiments pulls the whole harness package;
    # workers only need it at build time and the fleet package must stay
    # importable without triggering that chain at module load.
    from ..experiments.harness import make_governor
    from ..hw import tc2_chip
    from ..sim import SimConfig, Simulation
    from ..tasks import build_workload

    chip = tc2_chip()
    tasks = build_workload(spec.workload)
    governor = make_governor(spec.governor, power_cap_w=spec.tdp_w)
    return Simulation(
        chip,
        tasks,
        governor,
        config=SimConfig(
            dt=spec.dt, metrics_warmup_s=0.0, seed=spec.seed, audit=True
        ),
    )


def apply_power_cap(sim, cap_w: float) -> float:
    """Set the chip's epoch budget as its governor's power cap.

    For PPM the grant becomes the market's ``Wtdp`` (buffer ``Wth``
    tracking it at the paper's 0.5 W offset); HPM/HL take it as their
    ``power_cap_w`` setpoint.  Returns the cap actually applied.
    """
    cap = max(float(cap_w), MIN_APPLIED_CAP_W)
    governor = sim.governor
    market = getattr(governor, "market", None)
    if market is not None:
        wth = max(0.0, cap - 0.5)
        governor.config.market.wtdp = cap
        governor.config.market.wth = wth
        market.chip.wtdp = cap
        market.chip.wth = wth
    elif hasattr(governor, "power_cap_w"):
        governor.power_cap_w = cap
    return cap


def epoch_stats(metrics, start_tick: int, end_tick: int) -> Dict[str, float]:
    """Average power and any-task miss fraction over one epoch's ticks.

    Metrics record one sample per tick from tick zero (the fleet runs
    with ``metrics_warmup_s=0``), so slicing by tick index is exact and
    float-accumulation-proof across resumes.
    """
    window = metrics.samples[start_tick:end_tick]
    if not window:
        return {"avg_power_w": 0.0, "miss_fraction": 0.0}
    total_power = 0.0
    missed = 0
    for sample in window:
        total_power += sample.chip_power_w
        if any(task.below_min for task in sample.tasks.values()):
            missed += 1
    return {
        "avg_power_w": total_power / len(window),
        "miss_fraction": missed / len(window),
    }


def compute_bid(spec: ChipSpec, avg_power_w: float, miss_fraction: float) -> float:
    """Next epoch's bid from this epoch's telemetry (deterministic)."""
    wanted = avg_power_w * (BID_HEADROOM + BID_PRESSURE * miss_fraction)
    return min(spec.tdp_w, max(MIN_BID_W, wanted))


class _HeartbeatPulse:
    """Tick hook emitting liveness pulses from inside the sim loop.

    Installed as ``sim.checkpointer`` (checkpoints are saved explicitly
    at epoch boundaries, never from the hook).  Send failures mean the
    supervisor is gone: :class:`WorkerClosed` propagates out of
    ``sim.run`` and terminates the worker -- no orphans.
    """

    def __init__(self, conn, chip_id: str, interval_s: float):
        self.conn = conn
        self.chip_id = chip_id
        self.interval_s = interval_s
        self._last_beat = time.monotonic()

    def on_tick(self, sim) -> None:
        now = time.monotonic()
        if now - self._last_beat >= self.interval_s:
            send_message(
                self.conn,
                MSG_HEARTBEAT,
                chip_id=self.chip_id,
                tick_index=sim.tick_index,
            )
            self._last_beat = now


class WorkerRuntime:
    """The worker's command loop around one chip simulation."""

    def __init__(
        self,
        conn,
        spec: ChipSpec,
        fleet_identity: Dict[str, Any],
        fleet_dir: str,
        heartbeat_interval_s: float = 0.5,
        resume_checkpoint: Optional[str] = None,
    ):
        self.conn = conn
        self.spec = spec
        self.fleet_dir = fleet_dir
        self.completed_epochs = 0
        self.last_result: Optional[Dict[str, Any]] = None
        self.drop_results = 0
        fingerprint_extra = {
            "fleet": fleet_identity,
            "chip": spec.identity(),
        }
        if resume_checkpoint is not None:
            path = os.path.join(fleet_dir, resume_checkpoint)
            self.sim, envelope = resume_from(
                path,
                lambda: build_chip_simulation(spec),
                fingerprint_extra=fingerprint_extra,
            )
            self.completed_epochs = int(
                envelope.payload["extra"]["completed_epochs"]
            )
        else:
            self.sim = build_chip_simulation(spec)
        self.manager = CheckpointManager(
            chip_directory(fleet_dir, spec.chip_id),
            # Saves happen explicitly at epoch boundaries; the periodic
            # trigger is pushed beyond any realistic run length.
            interval_s=1e12,
            retention=4,
            stream=spec.chip_id,
            fingerprint_extra=fingerprint_extra,
        ).attach(self.sim)
        self.sim.checkpointer = _HeartbeatPulse(
            conn, spec.chip_id, heartbeat_interval_s
        )
        self._last_checkpoint = (
            resume_checkpoint
            if resume_checkpoint is not None
            else self._save_checkpoint()
        )

    # ------------------------------------------------------------------
    def _save_checkpoint(self) -> str:
        """Checkpoint the current epoch boundary; returns its relpath."""
        self.manager.extra_payload = {
            "completed_epochs": self.completed_epochs
        }
        path = self.manager.save(self.sim)
        return os.path.relpath(path, self.fleet_dir)

    def _send_result(self, result: Dict[str, Any]) -> None:
        if self.drop_results > 0:
            # Injected message loss: the work happened, the checkpoint
            # exists, only the receipt vanishes -- the supervisor's
            # bounded retries must recover it from the cache.
            self.drop_results -= 1
            return
        send_message(self.conn, MSG_RESULT, **result)

    def _run_epoch(self, message: Dict[str, Any]) -> None:
        epoch = int(message["epoch"])
        if epoch < self.completed_epochs:
            # Re-delivered command (retry after a lost reply): serve the
            # cached result; never re-run simulated time.
            if self.last_result is not None and self.last_result["epoch"] == epoch:
                send_message(self.conn, MSG_RESULT, **self.last_result)
                return
            send_message(
                self.conn,
                MSG_ERROR,
                chip_id=self.spec.chip_id,
                reason=(
                    f"epoch {epoch} already completed and its result is no "
                    f"longer cached (at {self.completed_epochs})"
                ),
            )
            return
        if epoch > self.completed_epochs:
            send_message(
                self.conn,
                MSG_ERROR,
                chip_id=self.spec.chip_id,
                reason=(
                    f"epoch {epoch} requested but only "
                    f"{self.completed_epochs} completed; missing epochs"
                ),
            )
            return
        applied_cap = apply_power_cap(self.sim, float(message["budget_w"]))
        start_tick = self.sim.tick_index
        self.sim.run(float(message["duration_s"]))
        stats = epoch_stats(self.sim.metrics, start_tick, self.sim.tick_index)
        self.completed_epochs = epoch + 1
        self._last_checkpoint = self._save_checkpoint()
        result = {
            "chip_id": self.spec.chip_id,
            "epoch": epoch,
            "avg_power_w": stats["avg_power_w"],
            "miss_fraction": stats["miss_fraction"],
            "next_bid_w": compute_bid(
                self.spec, stats["avg_power_w"], stats["miss_fraction"]
            ),
            "granted_w": applied_cap,
            "audit_violations": self.sim.metrics.audit_violation_count(),
            "tick_index": self.sim.tick_index,
            "sim_time_s": self.sim.now,
            "checkpoint": self._last_checkpoint,
        }
        self.last_result = result
        self._send_result(result)

    # ------------------------------------------------------------------
    def run(self) -> None:
        send_message(
            self.conn,
            MSG_HELLO,
            chip_id=self.spec.chip_id,
            pid=os.getpid(),
            completed_epochs=self.completed_epochs,
            checkpoint=self._last_checkpoint,
        )
        heartbeat = self.sim.checkpointer
        while True:
            message = poll_message(self.conn, heartbeat.interval_s)
            if message is None:
                send_message(
                    self.conn,
                    MSG_HEARTBEAT,
                    chip_id=self.spec.chip_id,
                    tick_index=self.sim.tick_index,
                )
                continue
            msg_type = message["type"]
            if msg_type == MSG_SHUTDOWN:
                return
            if msg_type == MSG_EPOCH:
                self._run_epoch(message)
            elif msg_type == MSG_STALL:
                # Injected wedge: the whole loop sleeps, heartbeats and
                # all -- only the supervisor's timeouts can see this.
                time.sleep(float(message["stall_s"]))
            elif msg_type == MSG_DROP:
                self.drop_results += int(message["count"])
            else:
                send_message(
                    self.conn,
                    MSG_ERROR,
                    chip_id=self.spec.chip_id,
                    reason=f"unknown command {msg_type!r}",
                )


def worker_main(
    conn,
    spec_data: Dict[str, Any],
    fleet_identity: Dict[str, Any],
    fleet_dir: str,
    heartbeat_interval_s: float,
    resume_checkpoint: Optional[str],
) -> None:
    """Process entry point (top-level so the spawn context can pickle it)."""
    spec = ChipSpec.from_json(spec_data)
    try:
        WorkerRuntime(
            conn,
            spec,
            fleet_identity,
            fleet_dir,
            heartbeat_interval_s=heartbeat_interval_s,
            resume_checkpoint=resume_checkpoint,
        ).run()
    except WorkerClosed:
        # Supervisor is gone (SIGKILL, crash): exit instead of orphaning.
        return
    except Exception as exc:  # noqa: BLE001 - report, then die loudly
        try:
            send_message(
                conn,
                MSG_ERROR,
                chip_id=spec.chip_id,
                reason=f"{type(exc).__name__}: {exc}",
            )
        except WorkerClosed:
            pass
        raise
    finally:
        try:
            conn.close()
        except OSError:
            pass
