"""Fleet-tier fault injection: kill, stall and starve the workers.

Single-chip faults perturb a simulation from the inside
(:mod:`repro.faults`); fleet faults perturb the *runtime* -- worker
processes are SIGKILLed, wedged, or have their replies dropped -- so the
supervisor's detection/recovery machinery is what gets exercised, not
the governors.  Events are scheduled in **epoch space** (inject at the
start of global epoch ``k``), which keeps campaigns reproducible even
though detection itself runs on wall-clock timeouts.

The kinds are first-class members of the :class:`~repro.faults.FaultKind`
taxonomy (``requires="fleet"`` in the ``KindSpec`` registry), so CLI
parsing, listings and the completeness test all come from the one
registry single-chip faults use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..faults import FLEET_FAULTS, FaultKind, parse_fault_kind

#: Default wall-clock wedge for :attr:`FaultKind.WORKER_STALL`; long
#: enough to exhaust any sane retry schedule so the stall is detected
#: and the worker is killed and restarted rather than waited out.
DEFAULT_STALL_S = 3600.0


@dataclass(frozen=True)
class FleetFaultEvent:
    """One fleet fault: a kind, a global epoch, and a target chip.

    Attributes:
        kind: A fleet-tier :class:`~repro.faults.FaultKind` (member of
            ``FLEET_FAULTS``).
        epoch: Global epoch at whose start the fault is injected.
        chip_id: The targeted chip's id.
        stall_s: Wall-clock wedge length for ``WORKER_STALL``.
        count: Results to drop for ``WORKER_MSG_LOSS``.
    """

    kind: FaultKind
    epoch: int
    chip_id: str
    stall_s: float = DEFAULT_STALL_S
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FLEET_FAULTS:
            raise ValueError(
                f"{self.kind.value!r} is not a fleet fault kind; fleet "
                "events accept: "
                + ", ".join(sorted(k.value for k in FLEET_FAULTS))
            )
        if self.epoch < 0:
            raise ValueError("fault epoch must be non-negative")
        if not self.chip_id:
            raise ValueError("fleet faults must name a chip id")
        if self.stall_s <= 0:
            raise ValueError("stall must be positive")
        if self.count < 1:
            raise ValueError("must drop at least one result")

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind.value,
            "epoch": self.epoch,
            "chip_id": self.chip_id,
            "stall_s": self.stall_s,
            "count": self.count,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FleetFaultEvent":
        return cls(
            kind=parse_fault_kind(str(data["kind"])),
            epoch=int(data["epoch"]),
            chip_id=str(data["chip_id"]),
            stall_s=float(data.get("stall_s", DEFAULT_STALL_S)),
            count=int(data.get("count", 1)),
        )


class FleetFaultSchedule:
    """An immutable, epoch-indexed set of fleet fault events."""

    def __init__(self, events: Iterable[FleetFaultEvent] = ()):
        self._events: Tuple[FleetFaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.epoch, e.chip_id, e.kind.value))
        )

    @property
    def events(self) -> Tuple[FleetFaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def at_epoch(self, epoch: int) -> List[FleetFaultEvent]:
        return [e for e in self._events if e.epoch == epoch]

    def to_json(self) -> List[Dict[str, object]]:
        return [e.to_json() for e in self._events]

    @classmethod
    def from_json(cls, data: Iterable[Dict[str, object]]) -> "FleetFaultSchedule":
        return cls(FleetFaultEvent.from_json(item) for item in data)


def parse_fleet_fault(spec: str) -> FleetFaultEvent:
    """Parse a CLI fault spec: ``<kind>@<epoch>:<chip-id>[:<param>]``.

    ``<param>`` is the stall length in wall seconds for ``worker-stall``
    and the number of dropped results for ``worker-msg-loss``; ignored
    for ``worker-kill``.  Examples::

        worker-kill@2:chip03
        worker-stall@3:chip05:45
        worker-msg-loss@1:chip00:2
    """
    head, sep, rest = spec.partition("@")
    if not sep:
        raise ValueError(
            f"bad fleet fault spec {spec!r}; expected "
            "<kind>@<epoch>:<chip-id>[:<param>]"
        )
    kind = parse_fault_kind(head.strip())
    pieces = rest.split(":")
    if len(pieces) not in (2, 3) or not pieces[0] or not pieces[1]:
        raise ValueError(
            f"bad fleet fault spec {spec!r}; expected "
            "<kind>@<epoch>:<chip-id>[:<param>]"
        )
    try:
        epoch = int(pieces[0])
    except ValueError:
        raise ValueError(
            f"bad fleet fault epoch {pieces[0]!r} in {spec!r}"
        ) from None
    kwargs: Dict[str, object] = {}
    if len(pieces) == 3:
        try:
            if kind is FaultKind.WORKER_MSG_LOSS:
                kwargs["count"] = int(pieces[2])
            else:
                kwargs["stall_s"] = float(pieces[2])
        except ValueError:
            raise ValueError(
                f"bad fleet fault parameter {pieces[2]!r} in {spec!r}"
            ) from None
    return FleetFaultEvent(kind=kind, epoch=epoch, chip_id=pieces[1], **kwargs)


class FleetFaultInjector:
    """Applies scheduled fleet faults through a supervisor's seams.

    The supervisor calls :meth:`apply` at the start of every global
    epoch; the injector turns each due event into the matching runtime
    action -- SIGKILL the worker process, send a stall command, or arm a
    result-drop counter -- and keeps per-kind injection counts for the
    fleet report, mirroring ``FaultInjector.stats()``.
    """

    def __init__(self, schedule: FleetFaultSchedule):
        self.schedule = schedule
        self.injected: Dict[str, int] = {}

    def apply(self, supervisor, epoch: int) -> List[FleetFaultEvent]:
        """Inject every event due at ``epoch``; returns what was applied."""
        applied: List[FleetFaultEvent] = []
        for event in self.schedule.at_epoch(epoch):
            if event.kind is FaultKind.WORKER_KILL:
                done = supervisor.inject_kill(event.chip_id)
            elif event.kind is FaultKind.WORKER_STALL:
                done = supervisor.inject_stall(event.chip_id, event.stall_s)
            else:  # WORKER_MSG_LOSS
                done = supervisor.inject_message_loss(
                    event.chip_id, event.count
                )
            if done:
                self.injected[event.kind.value] = (
                    self.injected.get(event.kind.value, 0) + 1
                )
                applied.append(event)
        return applied

    def stats(self) -> Dict[str, int]:
        return dict(sorted(self.injected.items()))
