"""The supervisor<->worker message protocol.

Messages are plain dicts with a ``"type"`` field, carried over
:class:`multiprocessing.connection.Connection` pipes.  The transport is
reliable while both ends live, but the *processes* are not: workers get
SIGKILLed, stall for seconds, or deliberately drop replies under fault
injection.  Every exchange therefore goes through :func:`request`, which
implements the robustness contract the fleet promises:

* every wait is bounded by a wall-clock timeout;
* timeouts re-send the request a bounded number of times with
  exponential backoff (workers treat re-delivered commands
  idempotently, re-serving the cached result instead of re-running);
* a peer that never answers surfaces as :class:`WorkerTimeout`, a
  closed pipe (dead process) as :class:`WorkerClosed` -- never a hang.

Nothing here touches simulated time: retries and timeouts are wall-clock
mechanics, so a fault-free fleet run's *results* are independent of
scheduling jitter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

# -- message types: supervisor -> worker --------------------------------
MSG_EPOCH = "epoch"  #: run one chip-epoch under a budget grant
MSG_STALL = "stall"  #: fault injection: wedge the main loop for stall_s
MSG_DROP = "drop-results"  #: fault injection: drop the next n results
MSG_SHUTDOWN = "shutdown"  #: clean exit

# -- message types: worker -> supervisor --------------------------------
MSG_HELLO = "hello"  #: worker up (fresh or restored), with its epoch count
MSG_HEARTBEAT = "heartbeat"  #: liveness pulse emitted from the tick loop
MSG_RESULT = "result"  #: one chip-epoch's telemetry + checkpoint pointer
MSG_ERROR = "error"  #: worker-side exception (treated as a crash)


class ProtocolError(RuntimeError):
    """Base class for fleet transport failures."""


class WorkerTimeout(ProtocolError):
    """The worker did not answer within the bounded retry schedule."""


class WorkerClosed(ProtocolError):
    """The worker's pipe is closed -- the process is gone."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    Attempt ``k`` (0-based) waits ``timeout_s * backoff**k`` wall
    seconds, capped at ``max_timeout_s``, before re-sending; after
    ``attempts`` unanswered sends the exchange fails with
    :class:`WorkerTimeout`.
    """

    attempts: int = 3
    timeout_s: float = 10.0
    backoff: float = 2.0
    max_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("need at least one attempt")
        if self.timeout_s <= 0 or self.max_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must not shrink the timeout")

    def timeout_for(self, attempt: int) -> float:
        return min(self.timeout_s * self.backoff**attempt, self.max_timeout_s)

    def total_budget_s(self) -> float:
        return sum(self.timeout_for(k) for k in range(self.attempts))


def send_message(conn, msg_type: str, **fields: Any) -> Dict[str, Any]:
    """Send one message; returns it.  Raises :class:`WorkerClosed`."""
    message = {"type": msg_type, **fields}
    try:
        conn.send(message)
    except (OSError, ValueError, EOFError) as exc:
        raise WorkerClosed(f"pipe closed while sending {msg_type!r}: {exc}") from exc
    return message


def poll_message(conn, timeout_s: float) -> Optional[Dict[str, Any]]:
    """Receive one message, or ``None`` after ``timeout_s`` of silence.

    Raises :class:`WorkerClosed` when the peer end is gone.
    """
    try:
        if not conn.poll(timeout_s):
            return None
        message = conn.recv()
    except (OSError, EOFError) as exc:
        raise WorkerClosed(f"pipe closed while receiving: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed fleet message: {message!r}")
    return message


def request(
    conn,
    msg_type: str,
    fields: Dict[str, Any],
    matches: Callable[[Dict[str, Any]], bool],
    policy: RetryPolicy,
    on_other: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Send a request and await a matching reply, with bounded retries.

    Non-matching traffic (heartbeats, stale results) is handed to
    ``on_other`` and does not reset the attempt's deadline, so a worker
    that heartbeats forever without ever answering still times out.

    Raises:
        WorkerTimeout: every attempt's window elapsed without a match.
        WorkerClosed: the pipe died at any point.
    """
    for attempt in range(policy.attempts):
        send_message(conn, msg_type, **fields)
        deadline = time.monotonic() + policy.timeout_for(attempt)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            message = poll_message(conn, remaining)
            if message is None:
                break
            if matches(message):
                return message
            if on_other is not None:
                on_other(message)
    raise WorkerTimeout(
        f"no reply to {msg_type!r} after {policy.attempts} attempt(s) "
        f"({policy.total_budget_s():.1f}s of wall-clock budget)"
    )
