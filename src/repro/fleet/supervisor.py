"""The fleet supervisor: a grid-budget market over worker processes.

One supervisor drives N chips, each simulated in its own worker process
(:mod:`repro.fleet.worker`), through a lockstep sequence of global
epochs.  Every epoch it:

1. restarts any chip that went down, from the last checkpoint *the
   supervisor* acknowledged (readmitted at the bottom of its
   :class:`~repro.fleet.budget.ReadmissionLadder`);
2. injects any scheduled fleet faults (kill/stall/message loss);
3. clears the grid-budget auction over the live chips' bids
   (:func:`~repro.fleet.budget.clear_grants`) and audits the clearing
   (:class:`~repro.fleet.budget.FleetBudgetAuditor`);
4. commands each live chip to run one chip-epoch under its grant --
   lagging chips (fresh from a checkpoint) catch up a bounded number of
   chip-epochs per round;
5. promotes ladders for chips that finished the epoch aligned and
   healthy, then writes the fleet checkpoint manifest.

Failure detection is entirely in-band: a dead worker surfaces as a
closed pipe, a wedged one as an exhausted retry schedule
(:class:`~repro.fleet.protocol.WorkerTimeout`).  The supervisor never
blocks unboundedly and never double-runs simulated time (workers treat
re-delivered epoch commands idempotently).  While a chip is down its
budget share is redistributed by the same clearing rules, so the
conservation invariant (grants never exceed the grid budget) holds
through any fault pattern.

Fault-free fleets are deterministic: results depend only on the fleet
config (chip specs, seeds, budget, epoch count), never on wall-clock
timing, and a fleet resumed from its manifest reproduces the remaining
epochs byte-identically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..checkpoint import (
    canonical_json,
    fleet_manifest_path,
    read_fleet_manifest,
    write_fleet_manifest,
)
from .budget import (
    ChipBid,
    FleetBudgetAuditor,
    FleetBudgetConfig,
    ReadmissionLadder,
    clear_grants,
)
from .faults import FleetFaultInjector, FleetFaultSchedule
from .protocol import (
    MSG_DROP,
    MSG_EPOCH,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STALL,
    ProtocolError,
    RetryPolicy,
    WorkerClosed,
    WorkerTimeout,
    poll_message,
    request,
    send_message,
)
from .worker import ChipSpec, worker_main

#: Environment marker stamped on every worker process so orphan scans
#: (and humans reading ``/proc``) can attribute a worker to its fleet.
FLEET_ENV_MARKER = "REPRO_FLEET_RUN_ID"

#: The report schema tag, bumped on incompatible report layout changes.
FLEET_REPORT_SCHEMA = "repro-fleet-report/v1"


class WorkerFault(ProtocolError):
    """The worker reported an internal error; treated as a crash."""


def _fingerprint(identity: Mapping[str, Any]) -> str:
    import hashlib

    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines a fleet campaign.

    The *identity* fields (chips, epochs, epoch length, budget market,
    catch-up bound) determine results and are folded into the fleet
    fingerprint; the wall-clock knobs (heartbeat cadence, retry policy,
    hello timeout) only shape fault detection and may differ between a
    run and its resume without breaking byte-identical replay.
    """

    chips: Tuple[ChipSpec, ...]
    epochs: int
    budget: FleetBudgetConfig
    epoch_s: float = 1.0
    catchup_per_round: int = 2
    heartbeat_interval_s: float = 0.25
    hello_timeout_s: float = 60.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not self.chips:
            raise ValueError("a fleet needs at least one chip")
        ids = [spec.chip_id for spec in self.chips]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate chip ids in fleet config")
        if self.epochs < 1:
            raise ValueError("a fleet campaign needs at least one epoch")
        if self.epoch_s <= 0:
            raise ValueError("epoch duration must be positive")
        if self.catchup_per_round < 1:
            raise ValueError("catch-up bound must be at least one epoch")
        if self.heartbeat_interval_s <= 0 or self.hello_timeout_s <= 0:
            raise ValueError("heartbeat/hello intervals must be positive")

    def identity(self) -> Dict[str, Any]:
        """The result-determining part of the config (fingerprinted)."""
        return {
            "chips": [spec.identity() for spec in self.chips],
            "epochs": self.epochs,
            "epoch_s": self.epoch_s,
            "catchup_per_round": self.catchup_per_round,
            "budget": {
                "grid_budget_w": self.budget.grid_budget_w,
                "min_grant_w": self.budget.min_grant_w,
                "ladder_weights": list(self.budget.ladder_weights),
                "hysteresis_epochs": self.budget.hysteresis_epochs,
                "region_prices": dict(
                    sorted(dict(self.budget.region_prices).items())
                ),
            },
        }

    def to_json(self) -> Dict[str, Any]:
        data = self.identity()
        data["heartbeat_interval_s"] = self.heartbeat_interval_s
        data["hello_timeout_s"] = self.hello_timeout_s
        data["retry"] = {
            "attempts": self.retry.attempts,
            "timeout_s": self.retry.timeout_s,
            "backoff": self.retry.backoff,
            "max_timeout_s": self.retry.max_timeout_s,
        }
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FleetConfig":
        budget = data["budget"]
        retry = data.get("retry", {})
        return cls(
            chips=tuple(ChipSpec.from_json(item) for item in data["chips"]),
            epochs=int(data["epochs"]),
            epoch_s=float(data["epoch_s"]),
            catchup_per_round=int(data["catchup_per_round"]),
            budget=FleetBudgetConfig(
                grid_budget_w=float(budget["grid_budget_w"]),
                min_grant_w=float(budget["min_grant_w"]),
                ladder_weights=tuple(
                    float(w) for w in budget["ladder_weights"]
                ),
                hysteresis_epochs=int(budget["hysteresis_epochs"]),
                region_prices=dict(budget["region_prices"]),
            ),
            heartbeat_interval_s=float(data.get("heartbeat_interval_s", 0.25)),
            hello_timeout_s=float(data.get("hello_timeout_s", 60.0)),
            retry=RetryPolicy(
                attempts=int(retry.get("attempts", 3)),
                timeout_s=float(retry.get("timeout_s", 10.0)),
                backoff=float(retry.get("backoff", 2.0)),
                max_timeout_s=float(retry.get("max_timeout_s", 60.0)),
            ),
        )


class WorkerHandle:
    """The supervisor's view of one chip and its (current) process."""

    def __init__(self, spec: ChipSpec, ladder: ReadmissionLadder):
        self.spec = spec
        self.ladder = ladder
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.up = False
        self.completed_epochs = 0
        self.last_bid_w = spec.tdp_w
        self.last_checkpoint: Optional[str] = None
        self.last_result: Optional[Dict[str, Any]] = None
        self.restarts = 0

    @property
    def chip_id(self) -> str:
        return self.spec.chip_id


class FleetSupervisor:
    """Runs one fleet campaign; see the module docstring for the loop."""

    def __init__(
        self,
        config: FleetConfig,
        fleet_dir: str,
        schedule: Optional[FleetFaultSchedule] = None,
        strict_audit: bool = False,
    ):
        self.config = config
        self.fleet_dir = fleet_dir
        self.identity = config.identity()
        self.fingerprint = _fingerprint(self.identity)
        self.schedule = schedule or FleetFaultSchedule()
        self.injector = FleetFaultInjector(self.schedule)
        self.auditor = FleetBudgetAuditor(strict=strict_audit)
        self.handles: Dict[str, WorkerHandle] = {
            spec.chip_id: WorkerHandle(spec, ReadmissionLadder(config.budget))
            for spec in config.chips
        }
        self.epochs_completed = 0
        #: One row per completed global epoch; the deterministic record.
        self.rows: List[Dict[str, Any]] = []
        #: (epoch, chip_id, failure kind) for every detected failure.
        self.failures: List[List[Any]] = []
        self._ctx = multiprocessing.get_context("spawn")

    # -- construction from a manifest ----------------------------------
    @classmethod
    def resume(
        cls, fleet_dir: str, strict_audit: bool = False
    ) -> "FleetSupervisor":
        """Rebuild a supervisor from the fleet manifest in ``fleet_dir``.

        The manifest's fingerprint is re-derived from its recorded config
        and must match; every restored worker is spawned from exactly the
        per-chip checkpoint the manifest names.
        """
        manifest = read_fleet_manifest(fleet_manifest_path(fleet_dir))
        config = FleetConfig.from_json(manifest.config)
        supervisor = cls(
            config,
            fleet_dir,
            schedule=FleetFaultSchedule.from_json(
                manifest.supervisor.get("schedule", [])
            ),
            strict_audit=strict_audit,
        )
        if supervisor.fingerprint != manifest.fingerprint:
            from ..checkpoint import CheckpointFingerprintError

            raise CheckpointFingerprintError(
                f"fleet manifest {manifest.path!r} fingerprint "
                f"{manifest.fingerprint[:12]}... does not match its own "
                f"recorded config ({supervisor.fingerprint[:12]}...); the "
                "manifest is inconsistent"
            )
        supervisor.epochs_completed = manifest.epochs_completed
        supervisor.rows = list(manifest.supervisor.get("rows", []))
        supervisor.failures = [
            list(item) for item in manifest.supervisor.get("failures", [])
        ]
        supervisor.auditor.restore_state(manifest.supervisor.get("audit", []))
        supervisor.injector.injected = dict(
            manifest.supervisor.get("injected", {})
        )
        for chip_id, entry in manifest.chips.items():
            handle = supervisor.handles[chip_id]
            handle.completed_epochs = int(entry["completed_epochs"])
            handle.last_checkpoint = entry["checkpoint"]
            handle.last_result = entry.get("last_result")
            handle.restarts = int(entry.get("restarts", 0))
            if handle.last_result is not None:
                handle.last_bid_w = float(handle.last_result["next_bid_w"])
            handle.ladder.restore_state(entry["ladder"])
        return supervisor

    # -- process management --------------------------------------------
    def _spawn(self, handle: WorkerHandle) -> None:
        """Start (or restart) one chip's worker and await its hello."""
        self._start_process(handle)
        self._finish_spawn(handle)

    def _start_process(self, handle: WorkerHandle) -> None:
        # The lazily-spawned multiprocessing resource tracker must not
        # be born inside the env-marker window below: it deliberately
        # outlives every child process, so a tracker carrying the fleet
        # marker would read as an eternal orphan in process-table scans.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                handle.spec.identity(),
                self.identity,
                self.fleet_dir,
                self.config.heartbeat_interval_s,
                handle.last_checkpoint,
            ),
            name=f"fleet-worker-{handle.chip_id}",
            daemon=True,
        )
        marker = os.path.realpath(self.fleet_dir)
        previous = os.environ.get(FLEET_ENV_MARKER)
        os.environ[FLEET_ENV_MARKER] = marker
        try:
            process.start()
        finally:
            if previous is None:
                os.environ.pop(FLEET_ENV_MARKER, None)
            else:
                os.environ[FLEET_ENV_MARKER] = previous
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn

    def _finish_spawn(self, handle: WorkerHandle) -> None:
        hello = self._await_hello(handle)
        if int(hello["completed_epochs"]) != handle.completed_epochs:
            self._kill_process(handle)
            raise ProtocolError(
                f"chip {handle.chip_id}: worker came up at epoch "
                f"{hello['completed_epochs']} but the supervisor expected "
                f"{handle.completed_epochs}; checkpoint state is inconsistent"
            )
        handle.last_checkpoint = hello["checkpoint"]
        handle.up = True

    def _await_hello(self, handle: WorkerHandle) -> Dict[str, Any]:
        import time

        deadline = time.monotonic() + self.config.hello_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_process(handle)
                raise WorkerTimeout(
                    f"chip {handle.chip_id}: no hello within "
                    f"{self.config.hello_timeout_s:.0f}s of spawn"
                )
            message = poll_message(handle.conn, remaining)
            if message is None:
                continue
            if message["type"] == MSG_HELLO:
                return message
            if message["type"] == MSG_ERROR:
                self._kill_process(handle)
                raise WorkerFault(
                    f"chip {handle.chip_id}: {message.get('reason')}"
                )

    def _kill_process(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is not None and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            process.join(timeout=5.0)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        handle.conn = None
        handle.process = None
        handle.up = False

    def _mark_down(self, handle: WorkerHandle, epoch: int, exc: Exception) -> None:
        self.failures.append([epoch, handle.chip_id, type(exc).__name__])
        self._kill_process(handle)
        handle.ladder.on_failure(epoch)

    # -- fault-injection seams (driven by FleetFaultInjector) ----------
    def inject_kill(self, chip_id: str) -> bool:
        """SIGKILL a worker; the supervisor must *detect* the death."""
        handle = self.handles.get(chip_id)
        if handle is None or not handle.up or handle.process is None:
            return False
        try:
            os.kill(handle.process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        handle.process.join(timeout=5.0)
        return True

    def inject_stall(self, chip_id: str, stall_s: float) -> bool:
        """Wedge a worker's command loop for ``stall_s`` wall seconds."""
        handle = self.handles.get(chip_id)
        if handle is None or not handle.up:
            return False
        try:
            send_message(handle.conn, MSG_STALL, stall_s=stall_s)
        except WorkerClosed:
            return False
        return True

    def inject_message_loss(self, chip_id: str, count: int) -> bool:
        """Make a worker swallow its next ``count`` epoch results."""
        handle = self.handles.get(chip_id)
        if handle is None or not handle.up:
            return False
        try:
            send_message(handle.conn, MSG_DROP, count=count)
        except WorkerClosed:
            return False
        return True

    # -- the epoch loop ------------------------------------------------
    def run(self, until_epoch: Optional[int] = None) -> Dict[str, Any]:
        """Run global epochs up to ``until_epoch`` (default: all).

        Returns the fleet report (:meth:`report`).  Workers are always
        shut down -- cleanly when possible, by escalation otherwise --
        before this method returns, so no run leaves orphans.
        """
        stop = self.config.epochs if until_epoch is None else until_epoch
        stop = min(stop, self.config.epochs)
        try:
            for epoch in range(self.epochs_completed, stop):
                self._run_epoch(epoch)
            return self.report()
        finally:
            self._shutdown_all()

    def _run_epoch(self, epoch: int) -> None:
        previous_rungs = {
            cid: handle.ladder.rung for cid, handle in self.handles.items()
        }
        # 1. Recovery: restart everything that is down, at bottom rung.
        # Processes start first and say hello after their (slow) imports
        # and checkpoint restore, so starting them all before awaiting
        # any hello overlaps the spawn latency across chips.
        starting = [h for h in self._sorted_handles() if not h.up]
        for handle in starting:
            self._start_process(handle)
        for handle in starting:
            try:
                self._finish_spawn(handle)
            except ProtocolError as exc:
                self.failures.append([epoch, handle.chip_id, type(exc).__name__])
                continue
            handle.restarts += 1 if handle.ladder.down else 0
            if handle.ladder.down:
                handle.ladder.on_restart(epoch)

        # 2. Scheduled fleet faults.
        self.injector.apply(self, epoch)

        # 3. Clear the grid auction and audit it.
        bids = [
            ChipBid(
                chip_id=h.chip_id,
                bid_w=h.last_bid_w,
                tdp_w=h.spec.tdp_w,
                region=h.spec.region,
            )
            for h in self._sorted_handles()
        ]
        weights = {
            cid: handle.ladder.weight() for cid, handle in self.handles.items()
        }
        grants = clear_grants(self.config.budget, bids, weights)
        current_rungs = {
            cid: handle.ladder.rung for cid, handle in self.handles.items()
        }
        self.auditor.audit_epoch(
            epoch,
            self.config.budget,
            bids,
            weights,
            grants,
            previous_rungs,
            current_rungs,
        )

        # 4. Drive every live chip (with bounded catch-up for laggards).
        results: Dict[str, List[Dict[str, Any]]] = {}
        for handle in self._sorted_handles():
            if not handle.up:
                continue
            try:
                ran = self._drive_chip(handle, epoch, grants[handle.chip_id])
            except ProtocolError as exc:
                self._mark_down(handle, epoch, exc)
                continue
            if ran:
                results[handle.chip_id] = ran

        # 5. Ladder promotions for chips that ended the epoch aligned.
        for handle in self._sorted_handles():
            if handle.up and handle.completed_epochs == epoch + 1:
                handle.ladder.on_healthy_epoch(epoch)

        self.rows.append(
            {
                "epoch": epoch,
                "budget_w": self.config.budget.grid_budget_w,
                "bids": {b.chip_id: b.bid_w for b in bids},
                "weights": weights,
                "grants": grants,
                "rungs": current_rungs,
                "down": [
                    h.chip_id for h in self._sorted_handles() if not h.up
                ],
                "results": results,
            }
        )
        self.epochs_completed = epoch + 1
        self._write_manifest()

    def _drive_chip(
        self, handle: WorkerHandle, epoch: int, grant_w: float
    ) -> List[Dict[str, Any]]:
        """Run this chip up to its catch-up bound; returns its results."""
        target = min(
            handle.completed_epochs + self.config.catchup_per_round, epoch + 1
        )
        ran: List[Dict[str, Any]] = []
        while handle.completed_epochs < target:
            chip_epoch = handle.completed_epochs
            reply = request(
                handle.conn,
                MSG_EPOCH,
                {
                    "epoch": chip_epoch,
                    "budget_w": grant_w,
                    "duration_s": self.config.epoch_s,
                },
                matches=lambda m, e=chip_epoch: (
                    m["type"] == MSG_RESULT
                    and m.get("chip_id") == handle.chip_id
                    and m.get("epoch") == e
                ),
                policy=self.config.retry,
                on_other=lambda m: self._sideband(handle, m),
            )
            result = {
                key: reply[key]
                for key in (
                    "chip_id",
                    "epoch",
                    "avg_power_w",
                    "miss_fraction",
                    "next_bid_w",
                    "granted_w",
                    "audit_violations",
                    "tick_index",
                    "sim_time_s",
                    "checkpoint",
                )
            }
            handle.completed_epochs = chip_epoch + 1
            handle.last_bid_w = float(result["next_bid_w"])
            handle.last_checkpoint = result["checkpoint"]
            handle.last_result = result
            ran.append(result)
        return ran

    def _sideband(self, handle: WorkerHandle, message: Dict[str, Any]) -> None:
        """Non-matching traffic during a request: heartbeats or errors."""
        if message["type"] == MSG_ERROR:
            raise WorkerFault(
                f"chip {handle.chip_id}: {message.get('reason')}"
            )
        if message["type"] != MSG_HEARTBEAT:
            # Stale results (possible after retries) are simply dropped;
            # anything else is noise the protocol does not define.
            pass

    def _sorted_handles(self) -> List[WorkerHandle]:
        return [self.handles[cid] for cid in sorted(self.handles)]

    # -- persistence and reporting -------------------------------------
    def _write_manifest(self) -> None:
        chips = {}
        for handle in self._sorted_handles():
            chips[handle.chip_id] = {
                "checkpoint": handle.last_checkpoint,
                "completed_epochs": handle.completed_epochs,
                "restarts": handle.restarts,
                "last_result": handle.last_result,
                "ladder": handle.ladder.snapshot_state(),
            }
        write_fleet_manifest(
            self.fleet_dir,
            fingerprint=self.fingerprint,
            config=self.config.to_json(),
            epochs_completed=self.epochs_completed,
            chips=chips,
            supervisor={
                "rows": self.rows,
                "failures": self.failures,
                "audit": self.auditor.snapshot_state(),
                "injected": self.injector.injected,
                "schedule": self.schedule.to_json(),
            },
        )

    def report(self) -> Dict[str, Any]:
        """The deterministic campaign record (no wall-clock content)."""
        return {
            "schema": FLEET_REPORT_SCHEMA,
            "fingerprint": self.fingerprint,
            "config": self.config.to_json(),
            "epochs_completed": self.epochs_completed,
            "rows": self.rows,
            "chips": {
                handle.chip_id: {
                    "completed_epochs": handle.completed_epochs,
                    "restarts": handle.restarts,
                    "ladder_transitions": [
                        list(t) for t in handle.ladder.transitions
                    ],
                    "last_result": handle.last_result,
                }
                for handle in self._sorted_handles()
            },
            "audit": {
                "records": self.auditor.snapshot_state(),
                "violations": self.auditor.violations(),
            },
            "faults_injected": self.injector.stats(),
            "failures": self.failures,
            "total_restarts": sum(
                handle.restarts for handle in self.handles.values()
            ),
        }

    def _shutdown_all(self) -> None:
        """Stop every worker: polite shutdown, then escalate. No orphans."""
        for handle in self._sorted_handles():
            if handle.conn is not None:
                try:
                    send_message(handle.conn, MSG_SHUTDOWN)
                except WorkerClosed:
                    pass
        for handle in self._sorted_handles():
            process = handle.process
            if process is None:
                continue
            process.join(timeout=1.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            handle.conn = None
            handle.process = None
            handle.up = False
