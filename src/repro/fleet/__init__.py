"""Fault-tolerant multi-chip fleet runtime.

One more level of the paper's hierarchy: just as the chip agent splits
TDP across clusters by auction, a :class:`FleetSupervisor` splits a
*grid* power budget across whole chips -- each chip simulated in its own
worker process -- clearing a price-weighted auction every epoch and
auditing conservation throughout.  The headline property is robustness:
workers that crash, stall, or drop messages are detected via bounded
timeouts, restarted from per-chip checkpoints, and readmitted to the
budget market through a hysteresis ladder, while the fleet degrades
gracefully (surviving chips inherit the budget) instead of failing.

Fault-free fleet runs are deterministic and byte-identically resumable
from the fleet checkpoint manifest (:mod:`repro.checkpoint.fleetmanifest`).
"""

from .budget import (
    ChipBid,
    FleetAuditRecord,
    FleetBudgetAuditor,
    FleetBudgetConfig,
    FleetBudgetInvariantError,
    ReadmissionLadder,
    clear_grants,
)
from .faults import (
    DEFAULT_STALL_S,
    FleetFaultEvent,
    FleetFaultInjector,
    FleetFaultSchedule,
    parse_fleet_fault,
)
from .protocol import (
    ProtocolError,
    RetryPolicy,
    WorkerClosed,
    WorkerTimeout,
    poll_message,
    request,
    send_message,
)
from .supervisor import (
    FLEET_ENV_MARKER,
    FLEET_REPORT_SCHEMA,
    FleetConfig,
    FleetSupervisor,
    WorkerFault,
    WorkerHandle,
)
from .worker import ChipSpec, build_chip_simulation, chip_directory, compute_bid

__all__ = [
    "DEFAULT_STALL_S",
    "FLEET_ENV_MARKER",
    "FLEET_REPORT_SCHEMA",
    "ChipBid",
    "ChipSpec",
    "FleetAuditRecord",
    "FleetBudgetAuditor",
    "FleetBudgetConfig",
    "FleetBudgetInvariantError",
    "FleetConfig",
    "FleetFaultEvent",
    "FleetFaultInjector",
    "FleetFaultSchedule",
    "FleetSupervisor",
    "ProtocolError",
    "ReadmissionLadder",
    "RetryPolicy",
    "WorkerClosed",
    "WorkerFault",
    "WorkerHandle",
    "WorkerTimeout",
    "build_chip_simulation",
    "chip_directory",
    "clear_grants",
    "compute_bid",
    "parse_fleet_fault",
    "poll_message",
    "request",
    "send_message",
]
