"""The grid-budget market: one more level of the paper's hierarchy.

The chip agent splits TDP across clusters by auctioning allowance
against demand; the fleet supervisor splits a *grid* power budget across
chips the same way.  Each epoch every live chip submits a bid (the watts
it wants next epoch, derived from its measured power and QoS misses) and
the market clears grants under three rules:

* **Conservation** -- the grants never sum to more than the grid budget.
  This holds by construction for any subset of dead chips and is audited
  every epoch by :class:`FleetBudgetAuditor`, exactly like
  :class:`~repro.core.audit.MarketAuditor` audits the chip market.
* **Region pricing** -- following "Performance-Based Pricing in
  Multi-Core Geo-Distributed Cloud Computing" (PAPERS.md), each chip's
  share under scarcity is weighted by the reciprocal of its region's
  electricity price: cheap-region chips clear more watts per unit of
  demand than expensive-region ones.
* **Readmission ladder** -- a chip returning from a crash re-enters the
  auction at a fraction of its claim and climbs one rung per healthy
  epoch with hysteresis (:class:`ReadmissionLadder`), mirroring the
  AdmissionController/ThermalSupervisor ladder idiom, so recovery can
  never oscillate the budget split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_EPS = 1e-9


class FleetBudgetInvariantError(AssertionError):
    """An audited fleet epoch violated a budget invariant."""


@dataclass(frozen=True)
class FleetBudgetConfig:
    """Parameters of the grid-budget auction.

    Attributes:
        grid_budget_w: Total watts the grid allots the fleet per epoch.
        min_grant_w: Floor grant for a participating chip (scaled down
            proportionally if the floors alone would overrun the budget,
            so conservation always wins over the floor).
        ladder_weights: Claim fractions of the readmission rungs, bottom
            to top; strictly increasing, ending at 1.0 (full share).
        hysteresis_epochs: Consecutive healthy epochs required on a rung
            before the next promotion; promotions move one rung at most.
        region_prices: Relative electricity price per region name;
            unlisted regions price at 1.0.
    """

    grid_budget_w: float
    min_grant_w: float = 0.25
    ladder_weights: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    hysteresis_epochs: int = 1
    region_prices: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid_budget_w <= 0:
            raise ValueError("grid budget must be positive")
        if self.min_grant_w < 0:
            raise ValueError("min grant must be non-negative")
        if not self.ladder_weights:
            raise ValueError("ladder needs at least one rung")
        if any(
            b <= a for a, b in zip(self.ladder_weights, self.ladder_weights[1:])
        ):
            raise ValueError("ladder weights must be strictly increasing")
        if not 0.0 < self.ladder_weights[0] <= 1.0:
            raise ValueError("ladder weights must lie in (0, 1]")
        if self.ladder_weights[-1] != 1.0:
            raise ValueError("the top rung must be full share (1.0)")
        if self.hysteresis_epochs < 1:
            raise ValueError("hysteresis must be at least one epoch")
        for region, price in dict(self.region_prices).items():
            if price <= 0:
                raise ValueError(f"region {region!r} price must be positive")

    def price_of(self, region: str) -> float:
        return float(dict(self.region_prices).get(region, 1.0))


@dataclass(frozen=True)
class ChipBid:
    """One chip's demand for the next epoch."""

    chip_id: str
    bid_w: float
    tdp_w: float
    region: str = "local"

    def __post_init__(self) -> None:
        if self.bid_w < 0:
            raise ValueError("bids must be non-negative")
        if self.tdp_w <= 0:
            raise ValueError("chip TDP must be positive")

    @property
    def demand_w(self) -> float:
        """The chip can never usefully claim more than its own TDP."""
        return min(self.bid_w, self.tdp_w)


class ReadmissionLadder:
    """Per-chip share ladder: DOWN -> bottom rung -> ... -> full share.

    ``rung`` is ``None`` while the chip is down (excluded from the
    auction), else an index into ``config.ladder_weights``.  A fresh
    chip starts at the top; a restarted chip re-enters at the bottom and
    climbs at most one rung per healthy epoch, each promotion gated on
    ``hysteresis_epochs`` consecutive healthy epochs at the current rung.
    Any failure drops straight to DOWN and resets the streak, so a chip
    flapping between alive and dead can never oscillate its grant above
    the bottom rung.
    """

    def __init__(self, config: FleetBudgetConfig):
        self.config = config
        self.rung: Optional[int] = len(config.ladder_weights) - 1
        self.healthy_streak = 0
        #: (epoch, from_rung, to_rung) history; ``None`` encodes DOWN.
        self.transitions: List[Tuple[int, Optional[int], Optional[int]]] = []

    @property
    def down(self) -> bool:
        return self.rung is None

    @property
    def full(self) -> bool:
        return self.rung == len(self.config.ladder_weights) - 1

    def weight(self) -> Optional[float]:
        """Claim fraction at the current rung; ``None`` while down."""
        if self.rung is None:
            return None
        return self.config.ladder_weights[self.rung]

    def _move(self, epoch: int, to_rung: Optional[int]) -> None:
        if to_rung != self.rung:
            self.transitions.append((epoch, self.rung, to_rung))
        self.rung = to_rung

    def on_failure(self, epoch: int) -> None:
        """The chip crashed or stalled: out of the auction entirely."""
        self._move(epoch, None)
        self.healthy_streak = 0

    def on_restart(self, epoch: int) -> None:
        """The chip is back from its checkpoint: bottom-rung probation."""
        self._move(epoch, 0)
        self.healthy_streak = 0

    def on_healthy_epoch(self, epoch: int) -> None:
        """One aligned, fault-free epoch: at most one promotion."""
        if self.rung is None:
            return
        self.healthy_streak += 1
        if (
            not self.full
            and self.healthy_streak >= self.config.hysteresis_epochs
        ):
            self._move(epoch, self.rung + 1)
            self.healthy_streak = 0

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "rung": self.rung,
            "healthy_streak": self.healthy_streak,
            "transitions": [list(t) for t in self.transitions],
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        self.rung = state["rung"]
        self.healthy_streak = int(state["healthy_streak"])
        self.transitions = [
            (int(e), f if f is None else int(f), t if t is None else int(t))
            for e, f, t in state["transitions"]
        ]


def clear_grants(
    config: FleetBudgetConfig,
    bids: Sequence[ChipBid],
    weights: Mapping[str, Optional[float]],
) -> Dict[str, float]:
    """Clear one epoch of the grid auction; returns watts per chip id.

    ``weights`` carries each chip's ladder fraction (``None`` = down,
    excluded).  Clearing is price-weighted water-filling: every
    participant first receives its floor (floors are scaled down together
    if they alone would overrun the budget), then the remainder is
    distributed proportionally to each chip's outstanding claim divided
    by its region's electricity price, capping at the claim, until either
    the budget or the claims are exhausted.  Deterministic: chips are
    processed in sorted id order and the result is independent of wall
    time.  Conservation (``sum(grants) <= grid_budget_w``) holds for any
    subset of down chips by construction.
    """
    ordered = sorted(bids, key=lambda b: b.chip_id)
    if len({b.chip_id for b in ordered}) != len(ordered):
        raise ValueError("duplicate chip id in bids")
    claims: Dict[str, float] = {}
    prices: Dict[str, float] = {}
    for bid in ordered:
        weight = weights.get(bid.chip_id)
        if weight is None:
            continue
        if not 0.0 < weight <= 1.0:
            raise ValueError(
                f"ladder weight for {bid.chip_id!r} must be in (0, 1]"
            )
        claims[bid.chip_id] = bid.demand_w * weight
        prices[bid.chip_id] = config.price_of(bid.region)
    grants = {b.chip_id: 0.0 for b in ordered}
    if not claims:
        return grants

    floors = {cid: min(config.min_grant_w, claims[cid]) for cid in claims}
    floor_total = sum(floors.values())
    if floor_total > config.grid_budget_w:
        scale = config.grid_budget_w / floor_total
        for cid in floors:
            grants[cid] = floors[cid] * scale
        return grants
    for cid in floors:
        grants[cid] = floors[cid]
    remaining = config.grid_budget_w - floor_total

    active = [cid for cid in sorted(claims) if claims[cid] - grants[cid] > _EPS]
    while remaining > _EPS and active:
        scores = {
            cid: (claims[cid] - grants[cid]) / prices[cid] for cid in active
        }
        total_score = sum(scores.values())
        if total_score <= 0.0:
            break
        distributed = 0.0
        for cid in active:
            give = min(
                remaining * scores[cid] / total_score,
                claims[cid] - grants[cid],
            )
            grants[cid] += give
            distributed += give
        remaining -= distributed
        active = [cid for cid in active if claims[cid] - grants[cid] > _EPS]
        if distributed <= _EPS:
            break
    return grants


@dataclass
class FleetAuditRecord:
    """Outcome of auditing one fleet epoch."""

    epoch: int
    budget_w: float
    granted_w: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "budget_w": self.budget_w,
            "granted_w": self.granted_w,
            "violations": list(self.violations),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FleetAuditRecord":
        return cls(
            epoch=int(data["epoch"]),
            budget_w=float(data["budget_w"]),
            granted_w=float(data["granted_w"]),
            violations=list(data["violations"]),
        )


class FleetBudgetAuditor:
    """Verifies the grid budget's invariants after every clearing.

    Checked, per epoch:

    F1  Conservation: the grants sum to at most the grid budget.
    F2  No negative grants.
    F3  A down chip (ladder weight ``None``) is granted exactly zero.
    F4  No grant exceeds the chip's ladder-weighted claim.
    F5  No ladder transition since the previous epoch skipped a rung
        (DOWN <-> bottom and one-step promotions are the only moves).

    ``strict`` raises :class:`FleetBudgetInvariantError` on the first
    violation; otherwise records accumulate for the fleet report, the
    same split :class:`~repro.core.audit.MarketAuditor` offers.
    """

    _AUDIT_EPS = 1e-6

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.records: List[FleetAuditRecord] = []

    def audit_epoch(
        self,
        epoch: int,
        config: FleetBudgetConfig,
        bids: Sequence[ChipBid],
        weights: Mapping[str, Optional[float]],
        grants: Mapping[str, float],
        previous_rungs: Mapping[str, Optional[int]],
        current_rungs: Mapping[str, Optional[int]],
    ) -> FleetAuditRecord:
        granted = sum(grants.values())
        record = FleetAuditRecord(
            epoch=epoch, budget_w=config.grid_budget_w, granted_w=granted
        )
        if granted > config.grid_budget_w + self._AUDIT_EPS:
            record.violations.append(
                f"F1 conservation: granted {granted:.6f} W exceeds grid "
                f"budget {config.grid_budget_w:.6f} W"
            )
        by_id = {bid.chip_id: bid for bid in bids}
        for cid in sorted(grants):
            grant = grants[cid]
            if grant < -self._AUDIT_EPS:
                record.violations.append(
                    f"F2 negative grant: {cid} granted {grant:.6f} W"
                )
            weight = weights.get(cid)
            if weight is None and grant > self._AUDIT_EPS:
                record.violations.append(
                    f"F3 down chip paid: {cid} is down yet granted "
                    f"{grant:.6f} W"
                )
            if weight is not None and cid in by_id:
                claim = by_id[cid].demand_w * weight
                if grant > claim + self._AUDIT_EPS:
                    record.violations.append(
                        f"F4 over-claim: {cid} granted {grant:.6f} W above "
                        f"its weighted claim {claim:.6f} W"
                    )
        for cid in sorted(current_rungs):
            prev = previous_rungs.get(cid)
            cur = current_rungs[cid]
            if prev is None or cur is None:
                # DOWN transitions (either direction) are legal in one
                # step: a crash exits the ladder, a restart re-enters at
                # the bottom -- F5 only constrains rung-to-rung moves,
                # plus restarts must land on the bottom rung.
                if prev is None and cur is not None and cur != 0:
                    record.violations.append(
                        f"F5 rung skip: {cid} re-admitted at rung {cur}, "
                        "not the bottom"
                    )
                continue
            if abs(cur - prev) > 1:
                record.violations.append(
                    f"F5 rung skip: {cid} moved {prev} -> {cur} in one epoch"
                )
        self.records.append(record)
        if self.strict and record.violations:
            raise FleetBudgetInvariantError(
                f"epoch {epoch}: " + "; ".join(record.violations)
            )
        return record

    def violations(self) -> List[str]:
        out: List[str] = []
        for record in self.records:
            out.extend(
                f"epoch {record.epoch}: {violation}"
                for violation in record.violations
            )
        return out

    def snapshot_state(self) -> List[Dict[str, object]]:
        return [record.to_json() for record in self.records]

    def restore_state(self, state: Sequence[Mapping[str, object]]) -> None:
        self.records = [FleetAuditRecord.from_json(item) for item in state]
