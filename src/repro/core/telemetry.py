"""Market telemetry: per-round history of the virtual economy.

The paper's figures about the market's internals (Table 3's allowance
trajectory, Figure 8's savings) need the economy observed over time.
A :class:`MarketRecorder` wraps a :class:`~repro.core.framework.
PPMGovernor` and snapshots the market after every bid round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .agents import ChipPowerState
from .framework import PPMGovernor


@dataclass(frozen=True)
class MarketSnapshot:
    """The market's aggregate state after one bid round."""

    time_s: float
    allowance: float
    chip_state: ChipPowerState
    total_demand: float
    total_supply: float
    bids: Dict[str, float]
    supplies: Dict[str, float]
    demands: Dict[str, float]
    savings: Dict[str, float]
    allowances: Dict[str, float]
    prices: Dict[str, float]


class MarketRecorder:
    """Snapshots a PPM governor's market after every round.

    Usage::

        governor = PPMGovernor()
        recorder = MarketRecorder(governor)
        Simulation(chip, tasks, governor).run(60.0)
        times, savings = recorder.series("savings", "x264")
    """

    def __init__(self, governor: PPMGovernor, capacity: int = 200_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self.snapshots: List[MarketSnapshot] = []
        self.dropped = 0
        self._governor = governor
        self._original_on_tick = governor.on_tick
        governor.on_tick = self._on_tick  # type: ignore[method-assign]

    def _on_tick(self, sim) -> None:
        rounds_before = self._governor.market.rounds_run
        self._original_on_tick(sim)
        if self._governor.market.rounds_run > rounds_before:
            self._snapshot(sim.now)

    def _snapshot(self, time_s: float) -> None:
        market = self._governor.market
        result = self._governor.last_round
        snapshot = MarketSnapshot(
            time_s=time_s,
            allowance=market.chip.allowance,
            chip_state=market.chip.state,
            total_demand=result.total_demand if result else 0.0,
            total_supply=result.total_supply if result else 0.0,
            bids={tid: a.bid for tid, a in market.tasks.items()},
            supplies={tid: a.supply for tid, a in market.tasks.items()},
            demands={tid: a.demand for tid, a in market.tasks.items()},
            savings={tid: a.wallet.savings for tid, a in market.tasks.items()},
            allowances={tid: a.wallet.allowance for tid, a in market.tasks.items()},
            prices=dict(result.prices) if result else {},
        )
        if len(self.snapshots) >= self._capacity:
            self.snapshots.pop(0)
            self.dropped += 1
        self.snapshots.append(snapshot)

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.snapshots)

    def series(
        self, quantity: str, task_id: Optional[str] = None
    ) -> Tuple[List[float], List[float]]:
        """(times, values) for an aggregate or per-task quantity.

        Aggregates: ``allowance``, ``total_demand``, ``total_supply``.
        Per-task (require ``task_id``): ``bids``, ``supplies``,
        ``demands``, ``savings``, ``allowances``.
        """
        times: List[float] = []
        values: List[float] = []
        for snap in self.snapshots:
            if task_id is None:
                value = getattr(snap, quantity)
                if not isinstance(value, (int, float)):
                    raise KeyError(f"{quantity!r} is not an aggregate quantity")
            else:
                mapping = getattr(snap, quantity)
                if task_id not in mapping:
                    continue
                value = mapping[task_id]
            times.append(snap.time_s)
            values.append(float(value))
        return times, values

    def state_intervals(self) -> List[Tuple[float, ChipPowerState]]:
        """(time, state) at each state change -- Table 3's trajectory."""
        changes: List[Tuple[float, ChipPowerState]] = []
        for snap in self.snapshots:
            if not changes or changes[-1][1] is not snap.chip_state:
                changes.append((snap.time_s, snap.chip_state))
        return changes

    def time_in_state(self, state: ChipPowerState) -> float:
        """Fraction of recorded rounds spent in ``state``."""
        if not self.snapshots:
            return 0.0
        hits = sum(1 for s in self.snapshots if s.chip_state is state)
        return hits / len(self.snapshots)
