"""Virtual money: allowances, savings and bid clamping.

Task agents receive an allowance each round, bid part of it for supply,
and save the remainder (``m_t = a_t - b_t``) for future rounds; a bid may
never exceed allowance plus savings and never fall below the minimum bid
(paper section 3.2.1).  Savings are capped at a designer-chosen multiple
of the current allowance (section 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Wallet:
    """The monetary state of one task agent."""

    allowance: float = 0.0
    savings: float = 0.0

    def budget(self) -> float:
        """Maximum spendable this round: allowance plus savings."""
        return self.allowance + self.savings

    def clamp_bid(self, desired: float, bmin: float) -> float:
        """Clamp a desired bid into ``[bmin, allowance + savings]``.

        When the wallet cannot even afford ``bmin`` the bid is still
        ``bmin``: the minimum bid is a market rule, not a solvency one --
        it keeps prices well-defined for destitute agents.
        """
        return max(bmin, min(desired, self.budget()))

    def settle(self, bid: float, cap_fraction: float) -> float:
        """Account one round: fold unspent allowance into savings.

        ``savings += allowance - bid``, clamped to ``[0, cap_fraction *
        allowance]``.  Returns the new savings.  A bid above the allowance
        drains savings (that is how the Figure 8 task spends its hoard);
        the lower clamp guards rounding, since ``clamp_bid`` already
        prevents true overdraft.
        """
        self.savings = self.savings + self.allowance - bid
        if self.savings < 0.0:
            self.savings = 0.0
        cap = cap_fraction * self.allowance
        if self.savings > cap:
            self.savings = cap
        return self.savings
