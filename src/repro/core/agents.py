"""The four market agents: task, core, cluster and chip.

Each agent is an autonomous transactional body (paper section 3.1):

* **Task agents** are buyers: they receive allowances, bid for Processing
  Units according to their task's demand, and save what they don't spend.
* **Core agents** are market makers: price emerges from the submitted bids
  and the core's current supply, and supply is sold pro rata to the bids.
* **Cluster agents** are supply regulators: they watch the price on their
  constrained core and apply DVFS to cancel inflation or deflation.
* **The chip agent** is the central bank: it controls the money in
  circulation (the global allowance) so that total power respects the TDP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .money import Wallet


class ChipPowerState(enum.Enum):
    """The three regions of the power spectrum (paper section 3.2.3)."""

    NORMAL = "normal"  #: W < Wth -- grow allowance to satisfy demand
    THRESHOLD = "threshold"  #: Wth <= W <= Wtdp -- hold allowance constant
    EMERGENCY = "emergency"  #: W > Wtdp -- contract allowance


class ClusterFreeze(enum.Enum):
    """Bid-freeze protocol around a V-F transition (paper section 3.2.2).

    While the V-F level is changing, task agents may not change their bids
    until they have observed the effect of the new supply.
    """

    ACTIVE = "active"  #: normal trading
    AWAITING = "awaiting"  #: level change requested, hardware not done yet
    OBSERVING = "observing"  #: new supply observed this round; reset base price


@dataclass
class TaskAgent:
    """Buyer agent for one task.

    Holds the monetary state and the last observed market quantities
    (demand ``d_t``, purchased supply ``s_t``, bid ``b_t``).
    """

    task_id: str
    priority: int
    wallet: Wallet = field(default_factory=Wallet)
    bid: float = 1.0
    demand: float = 0.0
    supply: float = 0.0
    #: Consecutive rounds this agent has been under-supplied; the LBT
    #: module migrates for performance only on persistent shortage, so a
    #: one-round phase blip does not bounce tasks between clusters.
    unsatisfied_rounds: int = 0

    def desired_bid(self, last_price: float) -> float:
        """Equation 1's raw update: ``b + (d - s) * P`` (before clamping).

        Under-supplied tasks raise their bid, over-supplied tasks lower
        it, satisfied tasks keep it unchanged.
        """
        return self.bid + (self.demand - self.supply) * last_price

    def place_bid(self, last_price: float, bmin: float, cap_fraction: float) -> float:
        """One bidding step: clamp the desired bid and settle savings."""
        self.bid = self.wallet.clamp_bid(self.desired_bid(last_price), bmin)
        self.wallet.settle(self.bid, cap_fraction)
        return self.bid

    @property
    def satisfied(self) -> bool:
        return self.supply >= self.demand

    def note_round_outcome(self) -> None:
        """Update the persistence counter after a purchase round."""
        if self.demand > self.supply * 1.02:
            self.unsatisfied_rounds += 1
        else:
            self.unsatisfied_rounds = 0

    @property
    def supply_demand_ratio(self) -> float:
        """``s_t / d_t``; infinite demand-free tasks count as satisfied."""
        if self.demand <= 0.0:
            return 1.0
        return self.supply / self.demand


@dataclass
class CoreAgent:
    """Market maker for one core.

    ``price`` is the last discovered price per PU; ``base_price`` is the
    reference from which the cluster agent measures inflation/deflation,
    reset every time the V-F level changes.
    """

    core_id: str
    cluster_id: str
    price: float = 0.0
    base_price: Optional[float] = None

    def discover_price(self, bids: Sequence[float], supply_pus: float) -> float:
        """``P_c = sum(bids) / S_c`` (paper section 3.2.1)."""
        if supply_pus <= 0.0:
            self.price = 0.0
            return self.price
        self.price = sum(bids) / supply_pus
        # A zero/absent base (e.g. the core was empty at the last V-F
        # change) would blind the inflation detector permanently; adopt
        # the first meaningful price instead.
        if (self.base_price is None or self.base_price <= 0.0) and self.price > 0.0:
            self.base_price = self.price
        return self.price

    def reset_base_price(self) -> None:
        """Adopt the current price as the new inflation reference.

        An empty core has no meaningful price; its base is cleared so the
        first real price after tasks arrive becomes the reference.
        """
        self.base_price = self.price if self.price > 0.0 else None

    def inflation_signal(self, tolerance: float) -> int:
        """+1 under intolerable inflation, -1 under deflation, else 0."""
        if self.base_price is None or self.base_price <= 0.0:
            return 0
        upper = self.base_price * (1.0 + tolerance)
        lower = self.base_price * (1.0 - tolerance)
        eps = 1e-12
        if self.price >= upper - eps:
            return 1
        if self.price <= lower + eps:
            return -1
        return 0


@dataclass
class ClusterAgent:
    """Supply regulator for one V-F cluster.

    ``supply_ladder`` is the per-core supply (PUs) of each V-F level in
    ascending order; ``level_index`` is the market's view of the applied
    level, synced from the hardware every round.
    """

    cluster_id: str
    core_ids: List[str]
    supply_ladder: List[float]
    level_index: int = 0
    freeze: ClusterFreeze = ClusterFreeze.ACTIVE

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ValueError("cluster agent needs at least one core")
        if not self.supply_ladder or sorted(self.supply_ladder) != list(self.supply_ladder):
            raise ValueError("supply ladder must be ascending and non-empty")

    @property
    def max_index(self) -> int:
        return len(self.supply_ladder) - 1

    @property
    def supply(self) -> float:
        return self.supply_ladder[self.level_index]

    @property
    def max_supply(self) -> float:
        return self.supply_ladder[-1]

    @property
    def bids_frozen(self) -> bool:
        """Task agents in this cluster must not change their bids now."""
        return self.freeze is not ClusterFreeze.ACTIVE

    def decide_level_change(self, constrained_core: CoreAgent, tolerance: float) -> int:
        """DVFS decision from the constrained core's price: -1, 0 or +1.

        The cluster agent only responds to the constrained core -- the one
        with the highest demand -- because it dictates the required supply
        (paper section 3.2.2); deflation on non-constrained cores is the
        LBT module's problem.
        """
        signal = constrained_core.inflation_signal(tolerance)
        if signal > 0 and self.level_index < self.max_index:
            return 1
        if signal < 0 and self.level_index > 0:
            return -1
        return 0


@dataclass
class ChipAgent:
    """Central bank: sets the global allowance ``A`` from the power state.

    The allowance follows ``A_{N+1} = A_N + Delta`` with ``Delta`` chosen
    per power region (paper section 3.2.3):

    * normal: ``Delta = A * (D - S) / D`` when demand outstrips supply;
    * threshold: ``Delta = 0`` (this is where an overloaded system parks);
    * emergency: ``Delta = A * (Wtdp - W) / Wtdp`` (negative).
    """

    allowance: float
    wth: Optional[float] = None
    wtdp: Optional[float] = None
    state: ChipPowerState = ChipPowerState.NORMAL
    last_delta: float = 0.0
    #: Cap on the per-round relative allowance growth.  ``(D-S)/D`` can
    #: approach 1 on noisy demand snapshots; uncapped compounding at the
    #: ~32 ms bid period would explode the money supply within seconds.
    max_growth_frac: float = 0.10

    def classify(self, chip_power_w: float) -> ChipPowerState:
        """Which power region the chip currently sits in."""
        if self.wtdp is None:
            self.state = ChipPowerState.NORMAL
        elif chip_power_w > self.wtdp:
            self.state = ChipPowerState.EMERGENCY
        elif self.wth is not None and chip_power_w >= self.wth:
            self.state = ChipPowerState.THRESHOLD
        else:
            self.state = ChipPowerState.NORMAL
        return self.state

    def update_allowance(
        self,
        chip_power_w: float,
        total_demand: float,
        supply_shortfall: float,
        floor: float,
        growth_useful: bool = True,
    ) -> float:
        """One allowance-control step; returns the new global allowance.

        ``supply_shortfall`` is ``sum_v max(0, D_v - S_v)`` -- the paper
        raises the allowance "when the demand is not satisfied in at least
        one of the clusters", so a surplus in one cluster must not mask a
        shortage in another (with the paper's plain ``D - S`` it would).

        ``growth_useful`` says whether extra money could buy anything:
        the point of a bigger allowance is to let agents "generate higher
        bids", which triggers supply increases -- pointless once every
        under-supplied cluster already sits at its maximum V-F level, so
        growth is gated on it (otherwise the allowance would ratchet
        without bound in overload).
        """
        state = self.classify(chip_power_w)
        if state is ChipPowerState.NORMAL:
            if growth_useful and supply_shortfall > 0.0 and total_demand > 0.0:
                delta = self.allowance * supply_shortfall / total_demand
                delta = min(delta, self.max_growth_frac * self.allowance)
            else:
                delta = 0.0
        elif state is ChipPowerState.THRESHOLD:
            delta = 0.0
        else:  # EMERGENCY
            assert self.wtdp is not None
            delta = self.allowance * (self.wtdp - chip_power_w) / self.wtdp
        self.last_delta = delta
        self.allowance = max(floor, self.allowance + delta)
        return self.allowance


def distribute_allowance(
    global_allowance: float,
    chip_power_w: float,
    cluster_power_w: Dict[str, float],
    cluster_task_agents: Dict[str, List[TaskAgent]],
) -> None:
    """Hierarchical allowance distribution (paper section 3.2.3).

    Cluster allowances are inversely proportional to power consumption --
    ``A_v = A * (W - W_v) / W`` -- generalised to any number of clusters by
    normalising the weights (the paper's two-cluster formula is the
    special case).  Within a cluster, allowances flow to tasks in
    proportion to their priorities (``A_c = A_v * R_c / R_v`` followed by
    ``a_t = A_c * r_t / R_c`` collapses to ``a_t = A_v * r_t / R_v``).

    Clusters without tasks receive nothing.
    """
    populated = {
        cid: agents for cid, agents in cluster_task_agents.items() if agents
    }
    if not populated:
        return
    weights: Dict[str, float] = {}
    if chip_power_w > 0.0 and len(populated) > 1:
        for cid in populated:
            weights[cid] = max(0.0, chip_power_w - cluster_power_w.get(cid, 0.0))
    if not weights or sum(weights.values()) <= 0.0:
        weights = {cid: 1.0 for cid in populated}
    total_weight = sum(weights.values())
    for cid, agents in populated.items():
        cluster_allowance = global_allowance * weights[cid] / total_weight
        priority_sum = sum(agent.priority for agent in agents)
        for agent in agents:
            agent.wallet.allowance = cluster_allowance * agent.priority / priority_sum
