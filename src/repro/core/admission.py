"""Market-based admission control: graceful degradation under overload.

The PPM market clears whatever task set it is given; nothing in the
paper stops an open-ended arrival stream from offering more demand than
the chip can sell power to.  This module adds the missing protection: a
controller that *prices* incoming tasks against current supply and
thermal headroom and walks a graduated degradation ladder mirroring the
thermal supervisor's:

    OPEN -> DEGRADED -> QUEUE -> SHED -> REJECT

* **open** -- every arrival is admitted at full QoS.
* **degraded** -- arrivals that cannot afford the scarcity premium are
  admitted at a reduced QoS target (their heart-rate range scaled by
  ``degraded_qos_factor``), so the market sells them less supply.
* **queue** -- unaffordable arrivals wait in a bounded FIFO queue with a
  timeout (bounded backpressure); affordable ones still enter degraded.
* **shed** -- additionally, the lowest-priority already-admitted
  stream tasks are terminated, ``sheds_per_check`` per evaluation.
* **reject** -- new arrivals are refused outright; the queue drains
  only by timeout.

The *pressure* signal is the ratio of priced demand (active tasks at
their placed core type, plus the queue) to sellable supply (online
clusters at their thermal-ceiling-capped top level), inflated by
``thermal_surcharge`` while the thermal ladder sits at WARN or above --
the admission analogue of the chip agent's price surcharge.  The
scarcity premium ``max(pressure - 1, 0)`` is the unit price an arrival
must afford; a task's budget grows with its user priority ``r_t``
exactly like the paper's allowance distribution, so high-priority
requests keep full QoS deepest into an overload.

Like the thermal ladder, transitions move at most one rung per
``check_period_s`` and step down only once pressure has fallen
``hysteresis`` below the current rung's entry threshold, so the ladder
cannot chatter.  All state is snapshot/restorable so checkpoint/resume
and replay stay bit-exact through a flash crowd.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..tasks.arrivals import ArrivalRecord, ArrivalStream


class AdmissionState(Enum):
    """Rung on the admission degradation ladder."""

    OPEN = "open"
    DEGRADED = "degraded"
    QUEUE = "queue"
    SHED = "shed"
    REJECT = "reject"


#: Ladder order, calmest to most defensive.  Transitions move one rung
#: per evaluation, so escalation is always degraded -> queue -> shed ->
#: reject, never a jump.
_LADDER = [
    AdmissionState.OPEN,
    AdmissionState.DEGRADED,
    AdmissionState.QUEUE,
    AdmissionState.SHED,
    AdmissionState.REJECT,
]


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning of the admission ladder.

    Attributes:
        check_period_s: How often the ladder is evaluated; each
            evaluation moves at most one rung.
        degrade_at / queue_at / shed_at / reject_at: Ascending pressure
            entry thresholds of the four defensive rungs (pressure 1.0
            means offered demand exactly matches sellable supply).
        hysteresis: Pressure must fall this far below the current rung's
            entry threshold before the ladder steps back down.
        queue_capacity: Bounded backpressure -- arrivals beyond this
            queue depth are rejected (overflow).
        queue_timeout_s: Queued arrivals older than this are dropped.
        drain_per_check: Queue entries admitted per evaluation once the
            ladder has descended back to DEGRADED or OPEN.
        degraded_qos_factor: Heart-rate-range scale of degraded admits.
        budget_per_priority: Scarcity premium one unit of task priority
            can afford; priority ``r_t`` affords ``r_t * this``.
        sheds_per_check: Admitted stream tasks terminated per evaluation
            while at the SHED rung or above.
        thermal_surcharge: Pressure inflation while the thermal
            supervisor reports WARN or hotter (mirrors the chip agent's
            warn surcharge).
        estimation_surcharge: Pressure inflation while the estimator
            supervisor reports a degraded power signal (MARGIN or
            FALLBACK) -- with the power estimate suspect, admitting at
            the margin risks an unseen TDP overshoot, so arrivals pay a
            scarcity premium until the estimator recovers.
    """

    check_period_s: float = 0.25
    degrade_at: float = 0.85
    queue_at: float = 1.0
    shed_at: float = 1.2
    reject_at: float = 1.4
    hysteresis: float = 0.1
    queue_capacity: int = 32
    queue_timeout_s: float = 3.0
    drain_per_check: int = 2
    degraded_qos_factor: float = 0.7
    budget_per_priority: float = 0.25
    sheds_per_check: int = 2
    thermal_surcharge: float = 0.25
    estimation_surcharge: float = 0.25

    def __post_init__(self) -> None:
        if self.check_period_s <= 0:
            raise ValueError("check period must be positive")
        if not self.degrade_at < self.queue_at < self.shed_at < self.reject_at:
            raise ValueError(
                "thresholds must ascend: degrade < queue < shed < reject"
            )
        if self.hysteresis <= 0:
            raise ValueError("hysteresis must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if self.queue_timeout_s <= 0:
            raise ValueError("queue timeout must be positive")
        if self.drain_per_check < 1:
            raise ValueError("drain_per_check must be positive")
        if not 0.0 < self.degraded_qos_factor <= 1.0:
            raise ValueError("degraded_qos_factor must be in (0, 1]")
        if self.budget_per_priority < 0:
            raise ValueError("budget_per_priority must be non-negative")
        if self.sheds_per_check < 1:
            raise ValueError("sheds_per_check must be positive")
        if self.thermal_surcharge < 0:
            raise ValueError("thermal_surcharge must be non-negative")
        if self.estimation_surcharge < 0:
            raise ValueError("estimation_surcharge must be non-negative")


class AdmissionController:
    """The graduated admission ladder (see module docstring).

    Pure policy: it never touches the engine except through the
    ``sim`` handle passed into :meth:`process`, and its ladder mechanics
    (:meth:`evaluate_ladder`) are a function of the pressure signal
    alone, which is what the hysteresis property tests drive directly.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self.state = AdmissionState.OPEN
        self._next_check_s = 0.0
        #: FIFO of ``(record, enqueued_s)`` awaiting admission.
        self._queue: List[Tuple[ArrivalRecord, float]] = []
        self._entry = {
            AdmissionState.DEGRADED: self.config.degrade_at,
            AdmissionState.QUEUE: self.config.queue_at,
            AdmissionState.SHED: self.config.shed_at,
            AdmissionState.REJECT: self.config.reject_at,
        }
        self.last_pressure = 0.0
        # -- counters (all snapshot/restored) --
        self.offered = 0
        self.admitted = 0
        self.admitted_degraded = 0
        self.queued = 0
        self.queue_timeouts = 0
        self.shed_tasks = 0
        self.rejected = 0
        self.peak_queue_depth = 0
        #: Seconds from arrival to admission, one entry per admitted task.
        self.admission_latencies: List[float] = []
        #: Names of admitted tasks later shed (commitment withdrawn).
        self.shed_names: List[str] = []
        #: ``(time_s, from_state, to_state, pressure)`` per transition.
        self.transitions: List[tuple] = []
        #: Telemetry: ``(time_s, pressure, state, queue_depth)`` per check.
        self.samples: List[tuple] = []

    # -- queries -----------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def identity(self) -> Dict[str, object]:
        return asdict(self.config)

    def stats(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "admitted_degraded": self.admitted_degraded,
            "queued": self.queued,
            "queue_timeouts": self.queue_timeouts,
            "shed_tasks": self.shed_tasks,
            "rejected": self.rejected,
            "peak_queue_depth": self.peak_queue_depth,
            "queue_depth": self.queue_depth,
            "transitions": len(self.transitions),
        }

    # -- pricing -----------------------------------------------------------------
    def pressure(self, sim) -> float:
        """Priced *active* demand over sellable supply, thermally inflated.

        Supply counts every online (not hot-unplugged) cluster at its
        top V-F level, capped by any active thermal ceiling -- the most
        the market could sell right now.  Demand prices every active
        task at its placed core type's nominal demand (A7 for unplaced
        tasks).  Queued work is deliberately *excluded*: its
        backpressure is already bounded by capacity and timeout, and
        counting it would keep the ladder shedding live tasks to make
        room for queue entries that largely time out -- the signal must
        track what is actually competing for supply.
        """
        supply = 0.0
        for cluster in sim.online_clusters():
            index = cluster.vf_table.max_index
            ceiling = sim.level_ceiling_of(cluster.cluster_id)
            if ceiling is not None:
                index = min(index, ceiling)
            supply += cluster.vf_table[index].supply_pus * len(cluster.cores)
        demand = 0.0
        for task in sim.active_tasks():
            core = sim.placement.core_of(task)
            core_type = core.cluster.core_type if core is not None else "A7"
            demand += task.profile.nominal_demand_pus(core_type)
        if supply <= 0.0:
            return self._entry[AdmissionState.REJECT] if demand > 0 else 0.0
        pressure = demand / supply
        supervisor = getattr(sim, "thermal_supervisor", None)
        if supervisor is not None:
            from .resilience import ThermalState, _LADDER as _THERMAL_LADDER

            hot = _THERMAL_LADDER.index(supervisor.max_state) >= _THERMAL_LADDER.index(
                ThermalState.WARN
            )
            if hot:
                pressure *= 1.0 + self.config.thermal_surcharge
        estimation = getattr(sim, "estimation", None)
        if estimation is not None and estimation.degraded:
            # Estimated-power analogue of the thermal surcharge: a
            # suspect power signal means the supply side of the ratio
            # is less trustworthy than it looks.
            pressure *= 1.0 + self.config.estimation_surcharge
        return pressure

    def unit_price(self) -> float:
        """Scarcity premium at the last evaluated pressure."""
        return max(self.last_pressure - 1.0, 0.0)

    def _affords(self, record: ArrivalRecord) -> bool:
        """Whether ``record`` can pay the premium at its priority's budget."""
        return self.unit_price() <= record.priority * self.config.budget_per_priority

    # -- ladder mechanics --------------------------------------------------------
    def evaluate_ladder(self, now_s: float, pressure: float) -> AdmissionState:
        """Move at most one rung for this pressure observation.

        Exposed separately from :meth:`process` so property tests can
        drive arbitrary pressure sequences through the exact transition
        logic the simulation uses.
        """
        self.last_pressure = pressure
        rank = _LADDER.index(self.state)
        new_rank = rank
        if rank < len(_LADDER) - 1 and pressure >= self._entry[_LADDER[rank + 1]]:
            new_rank = rank + 1
        elif rank > 0 and pressure < self._entry[self.state] - self.config.hysteresis:
            new_rank = rank - 1
        if new_rank != rank:
            self.transitions.append(
                (now_s, _LADDER[rank].value, _LADDER[new_rank].value, pressure)
            )
            self.state = _LADDER[new_rank]
        return self.state

    # -- queue -------------------------------------------------------------------
    def _expire_queue(self, now_s: float) -> None:
        keep: List[Tuple[ArrivalRecord, float]] = []
        for record, enqueued_s in self._queue:
            if now_s - enqueued_s >= self.config.queue_timeout_s:
                self.queue_timeouts += 1
            else:
                keep.append((record, enqueued_s))
        self._queue = keep

    def _drain_queue(self, sim, manager) -> None:
        if _LADDER.index(self.state) > _LADDER.index(AdmissionState.DEGRADED):
            return
        for _ in range(min(self.config.drain_per_check, len(self._queue))):
            record, _enqueued = self._queue.pop(0)
            self._admit(sim, manager, record, degraded=True)

    def _enqueue(self, record: ArrivalRecord, now_s: float) -> None:
        if len(self._queue) >= self.config.queue_capacity:
            self.rejected += 1  # overflow: bounded backpressure
            return
        self._queue.append((record, now_s))
        self.queued += 1
        self.peak_queue_depth = max(self.peak_queue_depth, len(self._queue))

    # -- shedding ----------------------------------------------------------------
    def _shed(self, sim, manager) -> None:
        """Terminate the lowest-priority admitted stream tasks, newest first."""
        now = sim.now
        candidates = [
            task
            for task in manager.spawned_tasks
            if task.is_active(now)
        ]
        candidates.sort(key=lambda t: (t.priority, -t.start_time, t.name))
        for task in candidates[: self.config.sheds_per_check]:
            task.duration = max(0.0, now - task.start_time)
            self.shed_tasks += 1
            self.shed_names.append(task.name)
        if candidates:
            sim.invalidate_task_cache()

    # -- admission ---------------------------------------------------------------
    def _admit(self, sim, manager, record: ArrivalRecord, degraded: bool) -> None:
        qos = self.config.degraded_qos_factor if degraded else 1.0
        manager.spawn(sim, record, qos_factor=qos)
        self.admitted += 1
        if degraded:
            self.admitted_degraded += 1
        self.admission_latencies.append(sim.now - record.arrival_s)

    def _route(self, sim, manager, record: ArrivalRecord) -> None:
        state = self.state
        if state is AdmissionState.OPEN:
            self._admit(sim, manager, record, degraded=False)
        elif state is AdmissionState.DEGRADED:
            self._admit(sim, manager, record, degraded=not self._affords(record))
        elif state is AdmissionState.QUEUE:
            if self._affords(record):
                self._admit(sim, manager, record, degraded=True)
            else:
                self._enqueue(record, sim.now)
        elif state is AdmissionState.SHED:
            self._enqueue(record, sim.now)
        else:  # REJECT
            self.rejected += 1

    # -- per-tick entry point ----------------------------------------------------
    def process(self, sim, manager, records: List[ArrivalRecord]) -> None:
        """One tick: evaluate the ladder (at most once per check period),
        maintain the queue, shed if called for, and route new arrivals."""
        now = sim.now
        if now >= self._next_check_s:
            self._next_check_s = now + self.config.check_period_s
            pressure = self.pressure(sim)
            self.evaluate_ladder(now, pressure)
            self._expire_queue(now)
            self._drain_queue(sim, manager)
            if _LADDER.index(self.state) >= _LADDER.index(AdmissionState.SHED):
                self._shed(sim, manager)
            self.samples.append(
                (now, pressure, self.state.value, len(self._queue))
            )
        for record in records:
            self.offered += 1
            self._route(sim, manager, record)

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "next_check_s": self._next_check_s,
            "queue": [
                [record.to_json_dict(), enqueued_s]
                for record, enqueued_s in self._queue
            ],
            "last_pressure": self.last_pressure,
            "offered": self.offered,
            "admitted": self.admitted,
            "admitted_degraded": self.admitted_degraded,
            "queued": self.queued,
            "queue_timeouts": self.queue_timeouts,
            "shed_tasks": self.shed_tasks,
            "rejected": self.rejected,
            "peak_queue_depth": self.peak_queue_depth,
            "admission_latencies": list(self.admission_latencies),
            "shed_names": list(self.shed_names),
            "transitions": [list(t) for t in self.transitions],
            "samples": [list(s) for s in self.samples],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.state = AdmissionState(state["state"])
        self._next_check_s = state["next_check_s"]
        self._queue = [
            (ArrivalRecord.from_json_dict(record), enqueued_s)
            for record, enqueued_s in state["queue"]
        ]
        self.last_pressure = state["last_pressure"]
        self.offered = state["offered"]
        self.admitted = state["admitted"]
        self.admitted_degraded = state["admitted_degraded"]
        self.queued = state["queued"]
        self.queue_timeouts = state["queue_timeouts"]
        self.shed_tasks = state["shed_tasks"]
        self.rejected = state["rejected"]
        self.peak_queue_depth = state["peak_queue_depth"]
        self.admission_latencies = list(state["admission_latencies"])
        self.shed_names = list(state["shed_names"])
        self.transitions = [tuple(t) for t in state["transitions"]]
        self.samples = [tuple(s) for s in state["samples"]]


class OverloadManager:
    """Binds an :class:`ArrivalStream` (and optionally an
    :class:`AdmissionController`) to a running simulation.

    Attach with :meth:`attach`; the engine then calls :meth:`on_tick` at
    the top of every tick.  Without a controller every arrival is
    admitted immediately at full QoS -- the no-admission-control
    baseline the overload experiments compare against.

    The manager keeps a JSON-safe spawn log so checkpoint restore can
    re-materialise the exact task population of the interrupted run
    (see :func:`repro.checkpoint.snapshot.restore_simulation`).
    """

    def __init__(
        self,
        stream: ArrivalStream,
        controller: Optional[AdmissionController] = None,
    ):
        self.stream = stream
        self.controller = controller
        #: Live Task objects spawned so far, in spawn order.
        self.spawned_tasks: List = []
        #: JSON-safe spawn history backing checkpoint re-materialisation.
        self._spawn_log: List[Dict[str, object]] = []
        #: Arrivals admitted without a controller (baseline accounting).
        self.baseline_admitted = 0
        self.baseline_latencies: List[float] = []

    # -- identity ----------------------------------------------------------------
    def identity(self) -> Dict[str, object]:
        """Fingerprint material: stream + admission policy identity."""
        return {
            "stream": self.stream.identity(),
            "admission": (
                None if self.controller is None else self.controller.identity()
            ),
        }

    def admitted_task_names(self) -> List[str]:
        return [entry["record"]["name"] for entry in self._spawn_log]

    def committed_task_names(self) -> List[str]:
        """Admitted tasks whose commitment was kept (never shed).

        The tail-QoS population: shedding *withdraws* a commitment so the
        remaining admitted tasks can be served -- counting the shed
        (deliberately sacrificed) tasks would make every shed look like a
        QoS failure and hide exactly the protection it buys.
        """
        if self.controller is None:
            return self.admitted_task_names()
        shed = set(self.controller.shed_names)
        return [n for n in self.admitted_task_names() if n not in shed]

    def stats(self) -> Dict[str, int]:
        if self.controller is not None:
            return self.controller.stats()
        return {
            "offered": self.stream.count,
            "admitted": self.baseline_admitted,
        }

    # -- engine hooks ------------------------------------------------------------
    def attach(self, sim) -> "OverloadManager":
        sim.arrivals = self
        return self

    def on_tick(self, sim) -> None:
        records = self.stream.pop_due(sim.now)
        if self.controller is None:
            for record in records:
                self.spawn(sim, record, qos_factor=1.0)
                self.baseline_admitted += 1
                self.baseline_latencies.append(sim.now - record.arrival_s)
        else:
            self.controller.process(sim, self, records)

    def spawn(self, sim, record: ArrivalRecord, qos_factor: float) -> None:
        """Materialise one admitted arrival into the live task population."""
        task = record.materialize(
            start_time_s=sim.now,
            qos_factor=qos_factor,
            hrm_window_s=self.stream.config.hrm_window_s,
        )
        sim.tasks.append(task)
        self.spawned_tasks.append(task)
        sim.invalidate_task_cache()
        self._spawn_log.append(
            {
                "record": record.to_json_dict(),
                "start_s": sim.now,
                "qos_factor": qos_factor,
            }
        )

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "stream": self.stream.snapshot_state(),
            "spawn_log": [dict(entry) for entry in self._spawn_log],
            # Live durations, aligned with spawn_log: shedding truncates a
            # task's duration in place, and the generic task restore does
            # not cover durations, so they must round-trip here or a shed
            # task would resurrect on resume.
            "durations": [task.duration for task in self.spawned_tasks],
            "baseline_admitted": self.baseline_admitted,
            "baseline_latencies": list(self.baseline_latencies),
            "controller": (
                None if self.controller is None else self.controller.snapshot_state()
            ),
        }

    def rematerialize_tasks(self, sim, state: Dict[str, object]) -> None:
        """Rebuild the spawned task population of a checkpointed run.

        Must run *before* the snapshot's per-task progress state is
        applied: it appends freshly materialised tasks to ``sim.tasks``
        in the original spawn order so the restore's order-based zip
        lines up.
        """
        if self.spawned_tasks:
            raise ValueError(
                "cannot restore onto an OverloadManager that has already "
                "spawned tasks; restore requires a freshly built simulation"
            )
        for entry, duration in zip(state["spawn_log"], state["durations"]):
            record = ArrivalRecord.from_json_dict(entry["record"])
            task = record.materialize(
                start_time_s=entry["start_s"],
                qos_factor=entry["qos_factor"],
                hrm_window_s=self.stream.config.hrm_window_s,
            )
            task.duration = duration
            sim.tasks.append(task)
            self.spawned_tasks.append(task)
            self._spawn_log.append(dict(entry))
        sim.invalidate_task_cache()

    def restore_state(self, sim, state: Dict[str, object]) -> None:
        """Restore stream/controller state (tasks were re-materialised
        earlier by :meth:`rematerialize_tasks`)."""
        self.stream.restore_state(state["stream"])
        self.baseline_admitted = state["baseline_admitted"]
        self.baseline_latencies = list(state["baseline_latencies"])
        controller_state = state["controller"]
        if controller_state is not None:
            if self.controller is None:
                raise ValueError(
                    "checkpoint includes admission-controller state but the "
                    "rebuilt simulation has no controller attached"
                )
            self.controller.restore_state(controller_state)
        elif self.controller is not None:
            raise ValueError(
                "rebuilt simulation attaches an admission controller but the "
                "checkpoint was taken without one"
            )
