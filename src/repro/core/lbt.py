"""Load Balancing and Task migration (LBT) module (paper section 3.3).

Given the market's steady state, the LBT module searches for a better
task-to-core mapping:

* **Load balancing** moves a task from a cluster's constrained core to the
  most over-supplied unconstrained core *within the same cluster*, letting
  the cluster drop its V-F level.
* **Task migration** moves a task from a constrained core to the most
  over-supplied unconstrained core of *another cluster*, exploiting
  heterogeneity.

Decision flow (paper Figure 3): when every task is expected to meet its
demand in the steady state of the current mapping, the goal is power --
pick the candidate with the largest reduction in aggregate spending that
does not degrade ``perf``.  Otherwise the goal is performance -- among the
tasks with unsatisfied demand on constrained cores, improve the
supply/demand ratio of the highest-priority one without harming
higher-priority tasks; ties break on spending.

To bound overhead, only tasks on constrained cores contemplate moving, and
only the single most over-supplied unconstrained core per target cluster
is considered (section 3.3); at most one movement is approved per
invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import market as _market_mod
from . import vecestimate
from .estimation import (
    MappingEstimate,
    SteadyStateEstimator,
    perf_improves,
    perf_not_worse,
)
from .market import Market

_EPS = 1e-9


@dataclass
class MoveDecision:
    """One approved task movement."""

    task_id: str
    source_core_id: str
    target_core_id: str
    mode: str  #: "power" or "performance"
    current: MappingEstimate
    candidate: MappingEstimate

    @property
    def spend_saving(self) -> float:
        return self.current.spend - self.candidate.spend

    @property
    def is_inter_cluster_hint(self) -> bool:  # pragma: no cover - debug aid
        return self.source_core_id.split(".")[0] != self.target_core_id.split(".")[0]


class LBTModule:
    """Proposes (at most) one task movement per invocation.

    Args:
        market: The live market.
        estimator: Steady-state estimator bound to the same market.
        min_spend_saving_frac: Minimum relative spending reduction for a
            power-mode move to be worth the migration cost; guards against
            churn on estimation noise.
    """

    def __init__(
        self,
        market: Market,
        estimator: SteadyStateEstimator,
        min_spend_saving_frac: float = 0.05,
        unsatisfied_rounds_to_move: int = 3,
    ):
        self._market = market
        self._estimator = estimator
        self._min_saving_frac = min_spend_saving_frac
        self._unsat_rounds = unsatisfied_rounds_to_move
        #: Candidate mappings evaluated by the last proposal (Table 7's
        #: overhead unit of work).
        self.evaluations = 0
        # Per-proposal caches: the market is frozen while a proposal is
        # being evaluated, so demands and constrained cores are pure.
        self._core_demand_cache: Optional[Dict[str, float]] = None
        self._constrained_cache: Optional[Dict[str, object]] = None
        self._target_cache: Optional[Dict[Tuple[str, Optional[str]], Optional[str]]] = None
        # Epoch-cached batch evaluator: persists across proposals so its
        # structural per-cluster arrays survive between governor epochs;
        # begin_proposal() refreshes the demand-dependent state.
        self._batch_eval: Optional["vecestimate.BatchMappingEvaluator"] = None

    # -- helpers --------------------------------------------------------------
    def _priorities(self) -> Dict[str, int]:
        return {tid: agent.priority for tid, agent in self._market.tasks.items()}

    def _core_demand(self, core_id: str) -> float:
        cache = self._core_demand_cache
        if cache is None:
            return self._market.core_demand(core_id)
        demand = cache.get(core_id)
        if demand is None:
            demand = self._market.core_demand(core_id)
            cache[core_id] = demand
        return demand

    def _constrained_core(self, cluster_id: str):
        cache = self._constrained_cache
        if cache is None:
            return self._market.constrained_core(cluster_id)
        if cluster_id in cache:
            return cache[cluster_id]
        market = self._market
        cluster = market.clusters[cluster_id]
        populated = [
            cid for cid in cluster.core_ids if market.tasks_on_core(cid)
        ]
        constrained = (
            market.cores[max(populated, key=self._core_demand)]
            if populated
            else None
        )
        cache[cluster_id] = constrained
        return constrained

    def _most_oversupplied_unconstrained_core(
        self, cluster_id: str, exclude_core_id: Optional[str] = None
    ) -> Optional[str]:
        """Target-core heuristic: lowest-demand non-constrained core.

        All cores of a cluster share the same supply, so the core with the
        smallest summed demand is the most over-supplied one.  The
        constrained core is excluded unless it is the only choice.
        """
        cache = self._target_cache
        key = (cluster_id, exclude_core_id)
        if cache is not None and key in cache:
            return cache[key]
        market = self._market
        cluster = market.clusters[cluster_id]
        constrained = self._constrained_core(cluster_id)
        candidates = [
            cid
            for cid in cluster.core_ids
            if cid != exclude_core_id
            and (constrained is None or cid != constrained.core_id)
        ]
        if not candidates:
            candidates = [cid for cid in cluster.core_ids if cid != exclude_core_id]
        target = min(candidates, key=self._core_demand) if candidates else None
        if cache is not None:
            cache[key] = target
        return target

    def _movers_on_constrained_core(
        self, cluster_id: str, only_unsatisfied: bool, excluded: frozenset
    ) -> Tuple[Optional[str], List[str]]:
        """(constrained core id, task ids that contemplate moving)."""
        market = self._market
        constrained = self._constrained_core(cluster_id)
        if constrained is None:
            return None, []
        agents = [
            a
            for a in market.tasks_on_core(constrained.core_id)
            if a.task_id not in excluded
        ]
        if only_unsatisfied:
            agents = [
                a for a in agents if a.unsatisfied_rounds >= self._unsat_rounds
            ]
        return constrained.core_id, [a.task_id for a in agents]

    def _evaluate_candidate(
        self, task_id: str, target_core_id: str
    ) -> Tuple[MappingEstimate, MappingEstimate]:
        self.evaluations += 1
        return self._estimator.evaluate_move(task_id, target_core_id)

    # -- proposal logic ---------------------------------------------------------
    def _propose(
        self, cross_cluster: bool, exclude_tasks: frozenset
    ) -> Optional[MoveDecision]:
        """Memoized wrapper: market state is frozen for the whole search."""
        self._estimator.begin_batch()
        self._core_demand_cache = {}
        self._constrained_cache = {}
        self._target_cache = {}
        try:
            return self._propose_inner(cross_cluster, exclude_tasks)
        finally:
            self._estimator.end_batch()
            self._core_demand_cache = None
            self._constrained_cache = None
            self._target_cache = None

    def _propose_inner(
        self, cross_cluster: bool, exclude_tasks: frozenset
    ) -> Optional[MoveDecision]:
        market = self._market
        tasks_by_core = market._tasks_by_core
        populated = [
            cid
            for cid, cluster in market.clusters.items()
            if any(tasks_by_core[core_id] for core_id in cluster.core_ids)
        ]
        if not populated:
            return None
        priorities = self._priorities()

        # Batched evaluation above the same population threshold the
        # market kernels use, so a given run takes one path consistently
        # (per-task ratios are bit-identical either way; aggregate spends
        # can differ in the last ulp, hence the shared gate).
        batch = None
        if (
            vecestimate.AVAILABLE
            and len(market.tasks) >= _market_mod._VEC_MIN_TASKS
        ):
            batch = self._batch_eval
            if batch is None:
                batch = vecestimate.BatchMappingEvaluator(
                    market, self._estimator
                )
                self._batch_eval = batch
            batch.begin_proposal()
        if batch is not None:
            performance_mode = not batch.all_satisfied(populated)
        else:
            overall = self._estimator.evaluate_current(populated)
            performance_mode = not overall.all_satisfied

        # Enumerate every candidate move in the same order the scalar
        # nested loops visited them, then evaluate scalar or batched.
        candidates: List[Tuple[str, str, str]] = []
        for cluster_id in populated:
            source_core, movers = self._movers_on_constrained_core(
                cluster_id, only_unsatisfied=performance_mode, excluded=exclude_tasks
            )
            if source_core is None or not movers:
                continue
            if cross_cluster:
                # Performance mode may wake an empty cluster (the ramp-up
                # path to big).  Power mode may do so only when spend is
                # energy-aware: waking the more efficient cluster to sleep
                # the hungry one is then a genuine saving, whereas a pure
                # market-price estimate would see empty clusters as
                # spuriously cheap.
                may_wake = performance_mode or self._estimator.energy_aware
                targets = [
                    cid
                    for cid in market.clusters
                    if cid != cluster_id and (may_wake or cid in populated)
                ]
            else:
                targets = [cluster_id]
            for task_id in movers:
                for target_cluster in targets:
                    exclude = source_core if target_cluster == cluster_id else None
                    target_core = self._most_oversupplied_unconstrained_core(
                        target_cluster, exclude_core_id=exclude
                    )
                    if target_core is None or target_core == source_core:
                        continue
                    candidates.append((task_id, source_core, target_core))
        if not candidates:
            return None

        self.evaluations += len(candidates)
        if batch is not None:
            verdicts = [
                (v, None, None) for v in batch.evaluate(candidates)
            ]
        else:
            verdicts = [
                self._scalar_verdict(task_id, target_core, priorities, performance_mode)
                for task_id, _source_core, target_core in candidates
            ]

        best_power: Optional[Tuple[float, int]] = None
        best_perf: Optional[Tuple[Tuple[int, float, float], int]] = None
        for idx, ((task_id, _source, _target), (verdict, _cur, _cand)) in enumerate(
            zip(candidates, verdicts)
        ):
            if performance_mode:
                if not verdict.perf_improves:
                    continue
                mover_prio = priorities[task_id]
                mover_ratio = verdict.mover_ratio_candidate
                if mover_ratio <= verdict.mover_ratio_current + _EPS:
                    continue
                key = (mover_prio, mover_ratio, -verdict.spend_candidate)
                if best_perf is None or key > best_perf[0]:
                    best_perf = (key, idx)
            else:
                saving = verdict.spend_current - verdict.spend_candidate
                if saving <= self._min_saving_frac * max(verdict.spend_current, _EPS):
                    continue
                if not verdict.perf_not_worse:
                    continue
                if best_power is None or saving > best_power[0]:
                    best_power = (saving, idx)

        if performance_mode:
            if best_perf is None:
                return None
            winner = best_perf[1]
            mode = "performance"
        else:
            if best_power is None:
                return None
            winner = best_power[1]
            mode = "power"
        task_id, source_core, target_core = candidates[winner]
        _verdict, current, candidate = verdicts[winner]
        if current is None:
            # Batched path: materialize full estimates (ratio/bid maps for
            # the audit trail) for the winning move only.  Prime the
            # demand memo per affected cluster first so the scalar
            # estimate's per-task lookups all hit cache.
            src_cluster = market.cores[source_core].cluster_id
            dst_cluster = market.cores[target_core].cluster_id
            for cid in {src_cluster, dst_cluster}:
                cluster = market.clusters[cid]
                roster = [
                    tid
                    for core_id in cluster.core_ids
                    for tid in market._tasks_by_core[core_id]
                ]
                self._estimator.prime_demands(cid, roster)
            current, candidate = self._estimator.evaluate_move(task_id, target_core)
        return MoveDecision(
            task_id=task_id,
            source_core_id=source_core,
            target_core_id=target_core,
            mode=mode,
            current=current,
            candidate=candidate,
        )

    def _scalar_verdict(
        self,
        task_id: str,
        target_core: str,
        priorities: Dict[str, int],
        performance_mode: bool,
    ) -> Tuple["vecestimate.CandidateVerdict", MappingEstimate, MappingEstimate]:
        """Scalar-path verdict (estimates kept for the decision record)."""
        current, candidate = self._estimator.evaluate_move(task_id, target_core)
        if performance_mode:
            improves = perf_improves(current.ratios, candidate.ratios, priorities)
            not_worse = improves
        else:
            improves = False
            not_worse = perf_not_worse(current.ratios, candidate.ratios, priorities)
        return (
            vecestimate.CandidateVerdict(
                perf_improves=improves,
                perf_not_worse=not_worse,
                mover_ratio_current=current.ratios.get(task_id, 0.0),
                mover_ratio_candidate=candidate.ratios.get(task_id, 0.0),
                spend_current=current.spend,
                spend_candidate=candidate.spend,
            ),
            current,
            candidate,
        )

    def propose_load_balance(
        self, exclude_tasks: frozenset = frozenset()
    ) -> Optional[MoveDecision]:
        """One intra-cluster move, or ``None`` when nothing improves.

        ``exclude_tasks`` holds tasks in their post-migration cooldown --
        moving a task again before its market state has settled is the
        main source of ping-pong instability.
        """
        return self._propose(cross_cluster=False, exclude_tasks=exclude_tasks)

    def propose_migration(
        self, exclude_tasks: frozenset = frozenset()
    ) -> Optional[MoveDecision]:
        """One inter-cluster move, or ``None`` when nothing improves."""
        return self._propose(cross_cluster=True, exclude_tasks=exclude_tasks)
