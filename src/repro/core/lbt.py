"""Load Balancing and Task migration (LBT) module (paper section 3.3).

Given the market's steady state, the LBT module searches for a better
task-to-core mapping:

* **Load balancing** moves a task from a cluster's constrained core to the
  most over-supplied unconstrained core *within the same cluster*, letting
  the cluster drop its V-F level.
* **Task migration** moves a task from a constrained core to the most
  over-supplied unconstrained core of *another cluster*, exploiting
  heterogeneity.

Decision flow (paper Figure 3): when every task is expected to meet its
demand in the steady state of the current mapping, the goal is power --
pick the candidate with the largest reduction in aggregate spending that
does not degrade ``perf``.  Otherwise the goal is performance -- among the
tasks with unsatisfied demand on constrained cores, improve the
supply/demand ratio of the highest-priority one without harming
higher-priority tasks; ties break on spending.

To bound overhead, only tasks on constrained cores contemplate moving, and
only the single most over-supplied unconstrained core per target cluster
is considered (section 3.3); at most one movement is approved per
invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .estimation import (
    MappingEstimate,
    SteadyStateEstimator,
    perf_improves,
    perf_not_worse,
)
from .market import Market

_EPS = 1e-9


@dataclass
class MoveDecision:
    """One approved task movement."""

    task_id: str
    source_core_id: str
    target_core_id: str
    mode: str  #: "power" or "performance"
    current: MappingEstimate
    candidate: MappingEstimate

    @property
    def spend_saving(self) -> float:
        return self.current.spend - self.candidate.spend

    @property
    def is_inter_cluster_hint(self) -> bool:  # pragma: no cover - debug aid
        return self.source_core_id.split(".")[0] != self.target_core_id.split(".")[0]


class LBTModule:
    """Proposes (at most) one task movement per invocation.

    Args:
        market: The live market.
        estimator: Steady-state estimator bound to the same market.
        min_spend_saving_frac: Minimum relative spending reduction for a
            power-mode move to be worth the migration cost; guards against
            churn on estimation noise.
    """

    def __init__(
        self,
        market: Market,
        estimator: SteadyStateEstimator,
        min_spend_saving_frac: float = 0.05,
        unsatisfied_rounds_to_move: int = 3,
    ):
        self._market = market
        self._estimator = estimator
        self._min_saving_frac = min_spend_saving_frac
        self._unsat_rounds = unsatisfied_rounds_to_move
        #: Candidate mappings evaluated by the last proposal (Table 7's
        #: overhead unit of work).
        self.evaluations = 0

    # -- helpers --------------------------------------------------------------
    def _priorities(self) -> Dict[str, int]:
        return {tid: agent.priority for tid, agent in self._market.tasks.items()}

    def _most_oversupplied_unconstrained_core(
        self, cluster_id: str, exclude_core_id: Optional[str] = None
    ) -> Optional[str]:
        """Target-core heuristic: lowest-demand non-constrained core.

        All cores of a cluster share the same supply, so the core with the
        smallest summed demand is the most over-supplied one.  The
        constrained core is excluded unless it is the only choice.
        """
        market = self._market
        cluster = market.clusters[cluster_id]
        constrained = market.constrained_core(cluster_id)
        candidates = [
            cid
            for cid in cluster.core_ids
            if cid != exclude_core_id
            and (constrained is None or cid != constrained.core_id)
        ]
        if not candidates:
            candidates = [cid for cid in cluster.core_ids if cid != exclude_core_id]
        if not candidates:
            return None
        return min(candidates, key=market.core_demand)

    def _movers_on_constrained_core(
        self, cluster_id: str, only_unsatisfied: bool, excluded: frozenset
    ) -> Tuple[Optional[str], List[str]]:
        """(constrained core id, task ids that contemplate moving)."""
        market = self._market
        constrained = market.constrained_core(cluster_id)
        if constrained is None:
            return None, []
        agents = [
            a
            for a in market.tasks_on_core(constrained.core_id)
            if a.task_id not in excluded
        ]
        if only_unsatisfied:
            agents = [
                a for a in agents if a.unsatisfied_rounds >= self._unsat_rounds
            ]
        return constrained.core_id, [a.task_id for a in agents]

    def _evaluate_candidate(
        self, task_id: str, target_core_id: str
    ) -> Tuple[MappingEstimate, MappingEstimate]:
        self.evaluations += 1
        return self._estimator.evaluate_move(task_id, target_core_id)

    # -- proposal logic ---------------------------------------------------------
    def _propose(
        self, cross_cluster: bool, exclude_tasks: frozenset
    ) -> Optional[MoveDecision]:
        market = self._market
        populated = [
            cid for cid in market.clusters if market.tasks_on_cluster(cid)
        ]
        if not populated:
            return None
        priorities = self._priorities()
        overall = self._estimator.evaluate_current(populated)
        performance_mode = not overall.all_satisfied

        best_power: Optional[MoveDecision] = None
        best_perf: Optional[Tuple[int, float, float, MoveDecision]] = None

        for cluster_id in populated:
            source_core, movers = self._movers_on_constrained_core(
                cluster_id, only_unsatisfied=performance_mode, excluded=exclude_tasks
            )
            if source_core is None or not movers:
                continue
            if cross_cluster:
                # Performance mode may wake an empty cluster (the ramp-up
                # path to big).  Power mode may do so only when spend is
                # energy-aware: waking the more efficient cluster to sleep
                # the hungry one is then a genuine saving, whereas a pure
                # market-price estimate would see empty clusters as
                # spuriously cheap.
                may_wake = performance_mode or self._estimator.energy_aware
                targets = [
                    cid
                    for cid in market.clusters
                    if cid != cluster_id and (may_wake or cid in populated)
                ]
            else:
                targets = [cluster_id]
            for task_id in movers:
                for target_cluster in targets:
                    exclude = source_core if target_cluster == cluster_id else None
                    target_core = self._most_oversupplied_unconstrained_core(
                        target_cluster, exclude_core_id=exclude
                    )
                    if target_core is None or target_core == source_core:
                        continue
                    current, candidate = self._evaluate_candidate(task_id, target_core)
                    if performance_mode:
                        if not perf_improves(
                            current.ratios, candidate.ratios, priorities
                        ):
                            continue
                        mover_prio = priorities[task_id]
                        mover_ratio = candidate.ratios.get(task_id, 0.0)
                        if mover_ratio <= current.ratios.get(task_id, 0.0) + _EPS:
                            continue
                        key = (mover_prio, mover_ratio, -candidate.spend)
                        if best_perf is None or key > best_perf[:3]:
                            best_perf = (
                                mover_prio,
                                mover_ratio,
                                -candidate.spend,
                                MoveDecision(
                                    task_id=task_id,
                                    source_core_id=source_core,
                                    target_core_id=target_core,
                                    mode="performance",
                                    current=current,
                                    candidate=candidate,
                                ),
                            )
                    else:
                        saving = current.spend - candidate.spend
                        if saving <= self._min_saving_frac * max(current.spend, _EPS):
                            continue
                        if not perf_not_worse(
                            current.ratios, candidate.ratios, priorities
                        ):
                            continue
                        decision = MoveDecision(
                            task_id=task_id,
                            source_core_id=source_core,
                            target_core_id=target_core,
                            mode="power",
                            current=current,
                            candidate=candidate,
                        )
                        if best_power is None or decision.spend_saving > best_power.spend_saving:
                            best_power = decision
        if performance_mode:
            return best_perf[3] if best_perf is not None else None
        return best_power

    def propose_load_balance(
        self, exclude_tasks: frozenset = frozenset()
    ) -> Optional[MoveDecision]:
        """One intra-cluster move, or ``None`` when nothing improves.

        ``exclude_tasks`` holds tasks in their post-migration cooldown --
        moving a task again before its market state has settled is the
        main source of ping-pong instability.
        """
        return self._propose(cross_cluster=False, exclude_tasks=exclude_tasks)

    def propose_migration(
        self, exclude_tasks: frozenset = frozenset()
    ) -> Optional[MoveDecision]:
        """One inter-cluster move, or ``None`` when nothing improves."""
        return self._propose(cross_cluster=True, exclude_tasks=exclude_tasks)
