"""Vectorized market-clearing kernels (struct-of-arrays fast path).

The round protocol in :mod:`repro.core.market` is defined agent-by-agent;
at fleet scale the per-agent Python loops dominate the tick budget.  This
module re-states the per-agent arithmetic as NumPy array kernels so one
round prices every core and settles every wallet in a handful of
vectorized passes.

Exactness contract: every kernel reproduces the scalar loop bit-for-bit.

* Elementwise arithmetic (bid updates, wallet settlement, pro-rata
  grants) maps 1:1 onto IEEE-754 scalar operations, so vectorizing it
  cannot change a single bit.
* Per-core reductions use :func:`numpy.bincount` with weights, which
  accumulates strictly in input order -- the same left-to-right fold as
  the ``sum()`` over a core's agent list it replaces.  (``np.sum`` and
  ``np.add.reduceat`` use pairwise summation and would NOT be
  equivalent; they must never be substituted here.)

The property suite (``tests/core/test_vecmarket_properties.py``) checks
both the market invariants and exact agreement with the scalar oracle on
random bid matrices.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as np
except Exception:  # pragma: no cover - numpy is baked into the image
    np = None  # type: ignore[assignment]

#: Whether the vectorized path can be used at all.
AVAILABLE = np is not None


def ordered_core_sums(values: "np.ndarray", core_ix: "np.ndarray", n_cores: int) -> "np.ndarray":
    """Per-core left-to-right fold of ``values`` (bit-exact vs ``sum()``).

    ``np.bincount`` adds the weights in input order, so for tasks listed
    in per-core registration order this equals the scalar accumulation
    over each core's agent list, bit for bit.
    """
    return np.bincount(core_ix, weights=values, minlength=n_cores)


def clear_prices(
    bids: "np.ndarray",
    core_ix: "np.ndarray",
    n_cores: int,
    supplies: "np.ndarray",
) -> "np.ndarray":
    """Price per core: ``P_c = sum(bids) / S_c``; 0 for empty/supply-less cores."""
    sums = ordered_core_sums(bids, core_ix, n_cores)
    counts = np.bincount(core_ix, minlength=n_cores)
    safe = np.where(supplies > 0.0, supplies, 1.0)
    prices = np.where(supplies > 0.0, sums / safe, 0.0)
    return np.where(counts > 0, prices, 0.0)


def grants_at_prices(
    bids: "np.ndarray", core_ix: "np.ndarray", prices: "np.ndarray"
) -> "np.ndarray":
    """Supply purchased per task: ``s_t = b_t / P_c`` (0 on a priceless core)."""
    p = prices[core_ix]
    return np.where(p > 0.0, bids / np.where(p > 0.0, p, 1.0), 0.0)


def settle_bids(
    bid: "np.ndarray",
    demand: "np.ndarray",
    supply: "np.ndarray",
    last_price: "np.ndarray",
    allowance: "np.ndarray",
    savings: "np.ndarray",
    bmin: float,
    cap_fraction: float,
):
    """Equation 1 bidding plus wallet settlement, elementwise.

    Mirrors ``TaskAgent.place_bid``/``Wallet.settle``: the desired bid
    ``b + (d - s) * P`` is clamped into ``[bmin, allowance + savings]``,
    then unspent allowance folds into savings, clamped to
    ``[0, cap_fraction * allowance]``.  Returns ``(new_bid, new_savings)``.
    """
    desired = bid + (demand - supply) * last_price
    budget = allowance + savings
    new_bid = np.maximum(bmin, np.minimum(desired, budget))
    new_savings = savings + allowance - new_bid
    new_savings = np.maximum(new_savings, 0.0)
    new_savings = np.minimum(new_savings, cap_fraction * allowance)
    return new_bid, new_savings


def share_allowance(
    priorities: "np.ndarray",
    cluster_ix: "np.ndarray",
    cluster_allowance: "np.ndarray",
) -> "np.ndarray":
    """Priority-proportional within-cluster allowance split.

    ``a_t = A_v * r_t / R_v`` with ``R_v`` the integer priority sum of the
    cluster's tasks (integer accumulation is order-independent and exact).
    """
    psum = np.bincount(cluster_ix, weights=priorities, minlength=len(cluster_allowance))
    return cluster_allowance[cluster_ix] * priorities / psum[cluster_ix]


def update_unsatisfied_rounds(
    unsatisfied: "np.ndarray", demand: "np.ndarray", supply: "np.ndarray"
) -> "np.ndarray":
    """Persistence counter: ++ while under-supplied by >2 %, else reset."""
    return np.where(demand > supply * 1.02, unsatisfied + 1, 0)


def compute_grants_batch(
    core_ix: "np.ndarray",
    n_cores: int,
    supplies: "np.ndarray",
    alloc: "np.ndarray",
    has_alloc: "np.ndarray",
    weights: "np.ndarray",
) -> "np.ndarray":
    """All-cores scheduler grants, bit-exact vs ``compute_grants`` per core.

    Args:
        core_ix: Core index per task (tasks listed in per-core dispatch
            order, so ``bincount`` folds match the scalar loops).
        n_cores: Number of cores.
        supplies: Supply in PUs per core.
        alloc: Explicit allocation per task, already ``max(0, .)``-clamped
            and 0.0 where ``has_alloc`` is False.
        has_alloc: Whether the task has an explicit allocation.
        weights: Fair-share weight per task (used where ``has_alloc`` is
            False), already ``max(0, .)``-clamped.
    """
    # Explicit requests: pooled tasks contribute +0.0, which is exact.
    requested = ordered_core_sums(alloc, core_ix, n_cores)
    over = requested > supplies
    scale = np.where(over, supplies / np.where(over, requested, 1.0), 1.0)
    g_explicit = np.where(has_alloc, alloc * scale[core_ix], 0.0)
    granted_total = ordered_core_sums(g_explicit, core_ix, n_cores)
    leftover = supplies - granted_total

    pooled = ~has_alloc
    w = np.where(pooled, weights, 0.0)
    wsum = ordered_core_sums(w, core_ix, n_cores)
    n_pooled = np.bincount(core_ix, weights=pooled.astype(np.float64), minlength=n_cores)
    open_core = leftover > 0.0
    # Equal split when every weight is zero, else weight-proportional;
    # associativity matches the scalar path: ``(leftover * w) / wsum``.
    equal = np.where(
        open_core & (n_pooled > 0.0),
        leftover / np.where(n_pooled > 0.0, n_pooled, 1.0),
        0.0,
    )
    use_equal = wsum <= 0.0
    prop = np.where(
        open_core[core_ix] & ~use_equal[core_ix] & pooled,
        (leftover[core_ix] * w) / np.where(wsum[core_ix] > 0.0, wsum[core_ix], 1.0),
        0.0,
    )
    g_pooled = np.where(
        pooled,
        np.where(use_equal[core_ix], equal[core_ix], prop),
        0.0,
    )
    grants = g_explicit + g_pooled

    # Guard rounding overshoot exactly like the scalar path: compare the
    # task-order fold of the grants against the supply and rescale.
    totals = ordered_core_sums(grants, core_ix, n_cores)
    overshoot = totals > supplies * (1.0 + 1e-9)
    factor = np.where(overshoot, supplies / np.where(overshoot, totals, 1.0), 1.0)
    grants = np.where(overshoot[core_ix], grants * factor[core_ix], grants)
    # A supply-less core grants exactly 0.0 to everything.
    grants = np.where(supplies[core_ix] <= 0.0, 0.0, grants)
    return grants


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - numpy is baked into the image
        raise RuntimeError("vectorized market kernels require numpy")


__all__ = [
    "AVAILABLE",
    "ordered_core_sums",
    "clear_prices",
    "grants_at_prices",
    "settle_bids",
    "share_allowance",
    "update_unsatisfied_rounds",
    "compute_grants_batch",
]
