"""Batched steady-state mapping evaluation (vectorized LBT search).

The LBT module's proposal sweep evaluates dozens of candidate mappings
against one frozen market state; :class:`SteadyStateEstimator._evaluate`
walks every task of the affected clusters per candidate in Python.  This
module evaluates *all* candidates of one sweep as matrix rows: for each
cluster, every candidate that touches it becomes one row of a
``[rows, tasks]`` ratio/bid matrix computed in a handful of array passes.

Per-task arithmetic is elementwise and bit-identical to the scalar
estimator; per-core demand sums are in-order ``bincount`` folds (also
bit-identical).  Aggregate ``spend`` values use ``np.sum`` (pairwise) and
may differ from the scalar dict-order fold in the last ulp, which is why
the LBT gates this path on the same population threshold as the market
kernels: a given run takes one path or the other consistently, on either
simulation engine.

Decision logic equivalence with :func:`repro.core.estimation.perf_improves`
(descending-priority sweep): an improved task qualifies iff no worsened
task has strictly higher priority, so the sweep returns True iff
``max(prio | improved) >= max(prio | worsened)`` with ``-inf`` maxima for
empty sets and at least one improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - numpy is baked into the image
    import numpy as np
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]

AVAILABLE = np is not None

_EPS = 1e-9
_NEG_INF = float("-inf")
#: Dense-matrix budget for one candidate-evaluation chunk (elements of a
#: ``rows x tasks`` temporary); keeps the working set cache-resident
#: instead of allocating gigabytes when both dimensions are in the
#: thousands.
_CHUNK_ELEMS = 2_000_000


@dataclass
class CandidateVerdict:
    """Decision quantities for one candidate move."""

    perf_improves: bool
    perf_not_worse: bool
    mover_ratio_current: float
    mover_ratio_candidate: float
    spend_current: float
    spend_candidate: float


class _ClusterBase:
    """Frozen per-cluster arrays for one proposal sweep."""

    __slots__ = (
        "cluster_id", "ladder", "max_index", "tids", "tid_index", "prio",
        "core_slot", "slot_of_core", "d", "S", "psum", "n_tasks", "n_cores",
        "cur_present", "cur_level", "cur_ratio", "cur_bids", "cur_spend",
    )

    def __init__(self, market, estimator, cluster_id: str):
        cluster = market.clusters[cluster_id]
        self.cluster_id = cluster_id
        self.ladder = np.asarray(cluster.supply_ladder)
        self.max_index = cluster.max_index
        self.slot_of_core = {
            core_id: slot for slot, core_id in enumerate(cluster.core_ids)
        }
        tids: List[str] = []
        core_slot: List[int] = []
        for slot, core_id in enumerate(cluster.core_ids):
            for tid in market._tasks_by_core[core_id]:
                tids.append(tid)
                core_slot.append(slot)
        self.tids = tids
        self.tid_index = {tid: i for i, tid in enumerate(tids)}
        self.n_tasks = len(tids)
        self.n_cores = len(cluster.core_ids)
        self.prio = np.asarray(
            [float(market.tasks[tid].priority) for tid in tids]
        )
        self.core_slot = np.asarray(core_slot, dtype=np.intp)
        self.d = np.asarray(
            [estimator._demand(tid, cluster_id) for tid in tids]
        )
        if self.n_tasks:
            self.S = np.bincount(
                self.core_slot, weights=self.d, minlength=self.n_cores
            )
            self.psum = np.bincount(
                self.core_slot, weights=self.prio, minlength=self.n_cores
            )
        else:
            self.S = np.zeros(self.n_cores)
            self.psum = np.zeros(self.n_cores)


class BatchMappingEvaluator:
    """Evaluates one proposal sweep's candidates as array batches.

    Built per LBT proposal (inside an estimator batch); the market must
    stay frozen for its lifetime, like the estimator's own batch caches.
    """

    def __init__(self, market, estimator):
        self._market = market
        self._est = estimator
        self._bases: Dict[str, _ClusterBase] = {}

    # -- base state ---------------------------------------------------------
    def _base(self, cluster_id: str) -> _ClusterBase:
        base = self._bases.get(cluster_id)
        if base is None:
            base = _ClusterBase(self._market, self._est, cluster_id)
            self._current(base)
            self._bases[cluster_id] = base
        return base

    def _current(self, base: _ClusterBase) -> None:
        """Current-mapping row (no adjustments) for one cluster."""
        ratio, bids, present, level, _ = self._eval_rows(
            base,
            S_rows=base.S[None, :],
            psum_rows=base.psum[None, :],
        )
        base.cur_present = bool(present[0])
        base.cur_level = int(level[0])
        if base.cur_present and base.n_tasks:
            base.cur_ratio = ratio[0]
            base.cur_bids = bids[0]
            base.cur_spend = float(np.sum(bids[0]))
        else:
            base.cur_ratio = np.zeros(base.n_tasks)
            base.cur_bids = np.zeros(base.n_tasks)
            base.cur_spend = 0.0

    def all_satisfied(self, cluster_ids) -> bool:
        """Whether the current mapping satisfies every task's demand."""
        for cluster_id in cluster_ids:
            base = self._base(cluster_id)
            if not base.cur_present or not base.n_tasks:
                continue
            if bool(np.any(base.cur_ratio < 1.0 - _EPS)):
                return False
        return True

    # -- row evaluation -----------------------------------------------------
    def _eval_rows(self, base: _ClusterBase, S_rows, psum_rows):
        """Ratio/bid matrices for adjusted core-sum rows of one cluster.

        Mirrors ``SteadyStateEstimator._evaluate`` per-cluster logic: the
        cluster demand is the max core sum, the target level the first
        ladder entry covering it, the price the estimator's (memoized)
        per-(cluster, level) estimate; unsaturated cores supply demand,
        saturated cores split priority-proportionally.
        """
        est = self._est
        bmin = self._market.config.bmin
        cd = S_rows.max(axis=1) if base.n_cores else np.zeros(len(S_rows))
        present = cd > 0.0
        level = np.minimum(
            np.searchsorted(base.ladder, cd - _EPS, side="left"),
            base.max_index,
        )
        price = np.asarray(
            [
                est.estimate_price(base.cluster_id, int(lv)) if ok else 0.0
                for lv, ok in zip(level.tolist(), present.tolist())
            ]
        )
        cs = base.ladder[level]
        sat = S_rows > cs[:, None] + _EPS
        if not base.n_tasks:
            shape = (len(S_rows), 0)
            return np.zeros(shape), np.zeros(shape), present, level, (cs, sat, price)
        d = base.d[None, :]
        tsat = sat[:, base.core_slot]
        psum_t = psum_rows[:, base.core_slot]
        satsup = cs[:, None] * base.prio[None, :] / np.where(psum_t > 0.0, psum_t, 1.0)
        satsup = np.where(d > 0.0, np.minimum(satsup, d), satsup)
        supply = np.where(tsat, satsup, d)
        ratio = np.where(
            d > 0.0,
            np.minimum(1.0, supply / np.where(d > 0.0, d, 1.0)),
            1.0,
        )
        bids = np.maximum(supply * price[:, None], bmin)
        return ratio, bids, present, level, (cs, sat, price)

    # -- candidate evaluation -----------------------------------------------
    def evaluate(
        self, candidates: List[Tuple[str, str, str]]
    ) -> List[CandidateVerdict]:
        """Verdicts for ``(task_id, source_core_id, target_core_id)`` triples."""
        market = self._market
        est = self._est
        # Group the per-cluster rows this sweep needs.  Each candidate
        # contributes a removal row on its source cluster and an addition
        # row on its target cluster (one combined row when they match).
        plans = []
        rows: Dict[str, List[dict]] = {}

        def add_row(cluster_id: str, spec: dict) -> int:
            bucket = rows.setdefault(cluster_id, [])
            bucket.append(spec)
            return len(bucket) - 1

        for task_id, source_core, target_core in candidates:
            src_cluster = market.cores[source_core].cluster_id
            dst_cluster = market.cores[target_core].cluster_id
            prio = float(market.tasks[task_id].priority)
            d_src = est._demand(task_id, src_cluster)
            d_dst = est._demand(task_id, dst_cluster)
            src_base = self._base(src_cluster)
            dst_base = self._base(dst_cluster)
            src_slot = src_base.slot_of_core[source_core]
            dst_slot = dst_base.slot_of_core[target_core]
            if src_cluster == dst_cluster:
                row = add_row(
                    src_cluster,
                    {
                        "adjust": [(src_slot, -d_src, -prio), (dst_slot, d_src, prio)],
                        "mask": src_base.tid_index[task_id],
                        "mover": (dst_slot, d_src, prio),
                    },
                )
                plans.append((task_id, src_cluster, row, src_cluster, row))
            else:
                src_row = add_row(
                    src_cluster,
                    {
                        "adjust": [(src_slot, -d_src, -prio)],
                        "mask": src_base.tid_index[task_id],
                        "mover": None,
                    },
                )
                dst_row = add_row(
                    dst_cluster,
                    {
                        "adjust": [(dst_slot, d_dst, prio)],
                        "mask": None,
                        "mover": (dst_slot, d_dst, prio),
                    },
                )
                plans.append((task_id, src_cluster, src_row, dst_cluster, dst_row))

        results = {
            cluster_id: self._eval_cluster_rows(cluster_id, specs)
            for cluster_id, specs in rows.items()
        }

        verdicts: List[CandidateVerdict] = []
        for (task_id, src_cluster, src_row, dst_cluster, dst_row), cand in zip(
            plans, candidates
        ):
            src_base = self._bases[src_cluster]
            src_res = results[src_cluster]
            dst_res = results[dst_cluster]
            same = src_cluster == dst_cluster

            # Mover bookkeeping: present in the current mapping iff its
            # source cluster contributes ratios; present in the candidate
            # iff its destination row does.
            tidx = src_base.tid_index[task_id]
            mover_cur = (
                float(src_base.cur_ratio[tidx]) if src_base.cur_present else 0.0
            )
            mv_present = dst_res["present"][dst_row] and dst_res["mv_ok"][dst_row]
            mover_cand = dst_res["mv_ratio"][dst_row] if mv_present else 0.0

            max_imp = max(
                src_res["maxprio_imp"][src_row],
                _NEG_INF if same else dst_res["maxprio_imp"][dst_row],
            )
            max_wor = max(
                src_res["maxprio_wor"][src_row],
                _NEG_INF if same else dst_res["maxprio_wor"][dst_row],
            )
            max_abs = max(
                src_res["maxabs"][src_row],
                0.0 if same else dst_res["maxabs"][dst_row],
            )
            prio = float(market.tasks[task_id].priority)
            if mv_present:
                if mover_cand > mover_cur + _EPS:
                    max_imp = max(max_imp, prio)
                if mover_cand < mover_cur - _EPS:
                    max_wor = max(max_wor, prio)
                max_abs = max(max_abs, abs(mover_cand - mover_cur))

            improves = max_imp > _NEG_INF and max_imp >= max_wor
            dst_base = self._bases[dst_cluster]
            # perf_equal's keyset test, at the union level: a cluster whose
            # presence flag flips only breaks equality if it contributes
            # tasks besides the mover (moving onto an empty cluster keeps
            # the task union identical even though the cluster wakes up).
            keysets_equal = (
                (
                    src_base.n_tasks <= 1
                    or src_res["present"][src_row] == src_base.cur_present
                )
                and (
                    same
                    or dst_base.n_tasks == 0
                    or dst_res["present"][dst_row] == dst_base.cur_present
                )
                and mv_present == src_base.cur_present
            )
            equal = keysets_equal and max_abs <= _EPS
            spend_cand = (
                src_res["spend"][src_row]
                + (0.0 if same else dst_res["spend"][dst_row])
                + (dst_res["mv_bid"][dst_row] if mv_present else 0.0)
            )
            spend_cur = src_base.cur_spend + (
                0.0 if same else dst_base.cur_spend
            )
            verdicts.append(
                CandidateVerdict(
                    perf_improves=improves,
                    perf_not_worse=equal or improves,
                    mover_ratio_current=mover_cur,
                    mover_ratio_candidate=mover_cand,
                    spend_current=spend_cur,
                    spend_candidate=spend_cand,
                )
            )
        return verdicts

    def _eval_cluster_rows(self, cluster_id: str, specs: List[dict]) -> dict:
        """Evaluate all of one cluster's rows and reduce against current.

        Rows are processed in chunks that bound the dense ``rows x tasks``
        temporaries to a few million elements: with thousands of candidate
        moves against a cluster holding thousands of tasks, one shot would
        allocate gigabytes of short-lived matrices and the evaluation
        becomes allocator/bandwidth-bound.  Chunking along rows leaves
        every per-row result bit-identical (each row's arithmetic and its
        axis-1 reductions never see the other rows).
        """
        base = self._bases[cluster_id]
        n = base.n_tasks
        limit = max(1, _CHUNK_ELEMS // max(1, n))
        if len(specs) > limit:
            merged: Dict[str, list] = {}
            for start in range(0, len(specs), limit):
                part = self._eval_cluster_rows(
                    cluster_id, specs[start:start + limit]
                )
                if not merged:
                    merged = {key: list(val) for key, val in part.items()}
                else:
                    for key, val in part.items():
                        merged[key].extend(val)
            return merged
        n_rows = len(specs)
        S_list = base.S.tolist()
        psum_list = base.psum.tolist()
        S_rows_l = []
        psum_rows_l = []
        for spec in specs:
            s = list(S_list)
            p = list(psum_list)
            for slot, dd, dp in spec["adjust"]:
                s[slot] = s[slot] + dd
                p[slot] = p[slot] + dp
            S_rows_l.append(s)
            psum_rows_l.append(p)
        S_rows = np.asarray(S_rows_l)
        psum_rows = np.asarray(psum_rows_l)
        ratio, bids, present, _level, (cs, sat, price) = self._eval_rows(
            base, S_rows, psum_rows
        )

        n = base.n_tasks
        if n:
            colmask = np.ones((n_rows, n), dtype=bool)
            for r, spec in enumerate(specs):
                if spec["mask"] is not None:
                    colmask[r, spec["mask"]] = False
            active = present[:, None] & colmask
            cur_base = base.cur_ratio if base.cur_present else np.zeros(n)
            # Comparisons mirror perf_improves exactly: ``new > cur + eps``
            # (NOT ``new - cur > eps`` -- different rounding at the edge).
            imp = active & (ratio > cur_base[None, :] + _EPS)
            wor = active & (ratio < cur_base[None, :] - _EPS)
            delta = ratio - cur_base[None, :]
            maxprio_imp = np.max(
                np.where(imp, base.prio[None, :], _NEG_INF), axis=1
            )
            maxprio_wor = np.max(
                np.where(wor, base.prio[None, :], _NEG_INF), axis=1
            )
            maxabs = np.max(np.where(active, np.abs(delta), 0.0), axis=1)
            spend = np.sum(np.where(active, bids, 0.0), axis=1)
        else:
            maxprio_imp = np.full(n_rows, _NEG_INF)
            maxprio_wor = np.full(n_rows, _NEG_INF)
            maxabs = np.zeros(n_rows)
            spend = np.zeros(n_rows)

        # Mover-side values (rows that add the task to this cluster).
        mv_ok = [spec["mover"] is not None for spec in specs]
        mv_ratio = [0.0] * n_rows
        mv_bid = [0.0] * n_rows
        bmin = self._market.config.bmin
        for r, spec in enumerate(specs):
            mover = spec["mover"]
            if mover is None or not present[r]:
                continue
            slot, md, mp = mover
            cs_r = float(cs[r])
            sat_m = bool(sat[r, slot])
            if sat_m:
                psum_m = float(psum_rows[r, slot])
                sup = cs_r * mp / (psum_m if psum_m > 0.0 else 1.0)
                if md > 0.0:
                    sup = min(sup, md)
            else:
                sup = md
            mv_ratio[r] = min(1.0, sup / md) if md > 0.0 else 1.0
            mv_bid[r] = max(sup * float(price[r]), bmin)

        return {
            "present": present.tolist(),
            "maxprio_imp": maxprio_imp.tolist(),
            "maxprio_wor": maxprio_wor.tolist(),
            "maxabs": maxabs.tolist(),
            "spend": spend.tolist(),
            "mv_ok": mv_ok,
            "mv_ratio": mv_ratio,
            "mv_bid": mv_bid,
        }


__all__ = ["AVAILABLE", "BatchMappingEvaluator", "CandidateVerdict"]
