"""Batched steady-state mapping evaluation (vectorized LBT search).

The LBT module's proposal sweep evaluates dozens of candidate mappings
against one frozen market state; :class:`SteadyStateEstimator._evaluate`
walks every task of the affected clusters per candidate in Python.  This
module evaluates *all* candidates of one sweep as matrix rows: for each
cluster, every candidate that touches it becomes one row of a
``[rows, tasks]`` ratio/bid matrix computed in a handful of array passes.

Per-task arithmetic is elementwise and bit-identical to the scalar
estimator; per-core demand sums are in-order ``bincount`` folds (also
bit-identical).  Aggregate ``spend`` values use ``np.sum`` (pairwise) and
may differ from the scalar dict-order fold in the last ulp, which is why
the LBT gates this path on the same population threshold as the market
kernels: a given run takes one path or the other consistently, on either
simulation engine.

Decision logic equivalence with :func:`repro.core.estimation.perf_improves`
(descending-priority sweep): an improved task qualifies iff no worsened
task has strictly higher priority, so the sweep returns True iff
``max(prio | improved) >= max(prio | worsened)`` with ``-inf`` maxima for
empty sets and at least one improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - numpy is baked into the image
    import numpy as np
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]

AVAILABLE = np is not None

_EPS = 1e-9
_NEG_INF = float("-inf")
#: Dense-matrix budget for one candidate-evaluation chunk (elements of a
#: ``rows x tasks`` temporary); keeps the working set cache-resident
#: instead of allocating gigabytes when both dimensions are in the
#: thousands.
_CHUNK_ELEMS = 2_000_000
#: Below this many dense ``rows x tasks`` elements the straight matrix
#: evaluation beats the grouped one's fixed overhead (tiling, signature
#: hashing, top-two reductions).  The gate is a pure function of the
#: population, so a given market state always takes the same path on
#: either engine; ``max`` reductions are bit-identical between the two
#: paths anyway, only aggregate ``spend`` has the documented last-ulp
#: fold freedom.
_GROUPED_MIN_ELEMS = 65_536


@dataclass
class CandidateVerdict:
    """Decision quantities for one candidate move."""

    perf_improves: bool
    perf_not_worse: bool
    mover_ratio_current: float
    mover_ratio_candidate: float
    spend_current: float
    spend_candidate: float


class _ClusterBase:
    """Per-cluster arrays for proposal sweeps.

    Split into a *structural* part -- roster, slot maps, priorities and
    their per-core sums, all functions of ``market._tasks_by_core`` alone
    and therefore cacheable against ``market.structure_stamp`` -- and a
    *per-proposal* part (:meth:`refresh`): demands, in-order core demand
    sums and the current-mapping row, which change every market round.
    """

    __slots__ = (
        "cluster_id", "ladder", "max_index", "tids", "tid_index", "prio",
        "core_slot", "slot_of_core", "d", "S", "psum", "n_tasks", "n_cores",
        "cur_present", "cur_level", "cur_ratio", "cur_bids", "cur_spend",
        "stamp", "seq",
    )

    def __init__(self, market, cluster_id: str):
        cluster = market.clusters[cluster_id]
        self.cluster_id = cluster_id
        self.ladder = np.asarray(cluster.supply_ladder)
        self.max_index = cluster.max_index
        self.slot_of_core = {
            core_id: slot for slot, core_id in enumerate(cluster.core_ids)
        }
        tids: List[str] = []
        core_slot: List[int] = []
        for slot, core_id in enumerate(cluster.core_ids):
            for tid in market._tasks_by_core[core_id]:
                tids.append(tid)
                core_slot.append(slot)
        self.tids = tids
        self.tid_index = {tid: i for i, tid in enumerate(tids)}
        self.n_tasks = len(tids)
        self.n_cores = len(cluster.core_ids)
        self.prio = np.asarray(
            [float(market.tasks[tid].priority) for tid in tids]
        )
        self.core_slot = np.asarray(core_slot, dtype=np.intp)
        if self.n_tasks:
            self.psum = np.bincount(
                self.core_slot, weights=self.prio, minlength=self.n_cores
            )
        else:
            self.psum = np.zeros(self.n_cores)
        self.stamp = market.structure_stamp
        self.seq = -1  # no proposal data yet; refresh() must run first

    def refresh(self, estimator) -> None:
        """Per-proposal arrays: demands and their in-order core sums."""
        d = estimator.demand_array(self.tids, self.cluster_id)
        if d is None:
            d = np.asarray(
                [estimator._demand(tid, self.cluster_id) for tid in self.tids]
            )
        self.d = d
        if self.n_tasks:
            self.S = np.bincount(
                self.core_slot, weights=d, minlength=self.n_cores
            )
        else:
            self.S = np.zeros(self.n_cores)


class BatchMappingEvaluator:
    """Evaluates one proposal sweep's candidates as array batches.

    Held persistently by the LBT module across proposals of one run: the
    structural cluster arrays (roster, slot maps, priority sums) are
    cached against ``market.structure_stamp`` and survive between
    proposals, while demand-dependent state is re-derived lazily per
    cluster after each :meth:`begin_proposal`.  The market must stay
    frozen for the duration of one sweep, like the estimator's own batch
    caches.
    """

    def __init__(self, market, estimator):
        self._market = market
        self._est = estimator
        self._bases: Dict[str, _ClusterBase] = {}
        self._seq = 0

    # -- base state ---------------------------------------------------------
    def begin_proposal(self) -> None:
        """Open one proposal sweep (one epoch of the cached evaluator).

        Structural arrays persist; each cluster's demands, core sums and
        current-mapping row refresh on first touch.  Placement deltas
        (add/remove/move/restore) invalidate the structural arrays too,
        via the market's structure stamp.
        """
        self._seq += 1

    def _base(self, cluster_id: str) -> _ClusterBase:
        base = self._bases.get(cluster_id)
        if base is None or base.stamp != self._market.structure_stamp:
            base = _ClusterBase(self._market, cluster_id)
            self._bases[cluster_id] = base
        if base.seq != self._seq:
            base.refresh(self._est)
            self._current(base)
            base.seq = self._seq
        return base

    def _current(self, base: _ClusterBase) -> None:
        """Current-mapping row (no adjustments) for one cluster."""
        ratio, bids, present, level, _ = self._eval_rows(
            base,
            S_rows=base.S[None, :],
            psum_rows=base.psum[None, :],
        )
        base.cur_present = bool(present[0])
        base.cur_level = int(level[0])
        if base.cur_present and base.n_tasks:
            base.cur_ratio = ratio[0]
            base.cur_bids = bids[0]
            base.cur_spend = float(np.sum(bids[0]))
        else:
            base.cur_ratio = np.zeros(base.n_tasks)
            base.cur_bids = np.zeros(base.n_tasks)
            base.cur_spend = 0.0

    def all_satisfied(self, cluster_ids) -> bool:
        """Whether the current mapping satisfies every task's demand."""
        for cluster_id in cluster_ids:
            base = self._base(cluster_id)
            if not base.cur_present or not base.n_tasks:
                continue
            if bool(np.any(base.cur_ratio < 1.0 - _EPS)):
                return False
        return True

    # -- row evaluation -----------------------------------------------------
    def _eval_rows(self, base: _ClusterBase, S_rows, psum_rows):
        """Ratio/bid matrices for adjusted core-sum rows of one cluster.

        Mirrors ``SteadyStateEstimator._evaluate`` per-cluster logic: the
        cluster demand is the max core sum, the target level the first
        ladder entry covering it, the price the estimator's (memoized)
        per-(cluster, level) estimate; unsaturated cores supply demand,
        saturated cores split priority-proportionally.
        """
        est = self._est
        bmin = self._market.config.bmin
        cd = S_rows.max(axis=1) if base.n_cores else np.zeros(len(S_rows))
        present = cd > 0.0
        level = np.minimum(
            np.searchsorted(base.ladder, cd - _EPS, side="left"),
            base.max_index,
        )
        price = np.asarray(
            [
                est.estimate_price(base.cluster_id, int(lv)) if ok else 0.0
                for lv, ok in zip(level.tolist(), present.tolist())
            ]
        )
        cs = base.ladder[level]
        sat = S_rows > cs[:, None] + _EPS
        if not base.n_tasks:
            shape = (len(S_rows), 0)
            return np.zeros(shape), np.zeros(shape), present, level, (cs, sat, price)
        d = base.d[None, :]
        tsat = sat[:, base.core_slot]
        psum_t = psum_rows[:, base.core_slot]
        satsup = cs[:, None] * base.prio[None, :] / np.where(psum_t > 0.0, psum_t, 1.0)
        satsup = np.where(d > 0.0, np.minimum(satsup, d), satsup)
        supply = np.where(tsat, satsup, d)
        ratio = np.where(
            d > 0.0,
            np.minimum(1.0, supply / np.where(d > 0.0, d, 1.0)),
            1.0,
        )
        bids = np.maximum(supply * price[:, None], bmin)
        return ratio, bids, present, level, (cs, sat, price)

    # -- candidate evaluation -----------------------------------------------
    def evaluate(
        self, candidates: List[Tuple[str, str, str]]
    ) -> List[CandidateVerdict]:
        """Verdicts for ``(task_id, source_core_id, target_core_id)`` triples."""
        market = self._market
        est = self._est
        # Group the per-cluster rows this sweep needs.  Each candidate
        # contributes a removal row on its source cluster and an addition
        # row on its target cluster (one combined row when they match).
        plans = []
        rows: Dict[str, List[dict]] = {}

        def add_row(cluster_id: str, spec: dict) -> int:
            bucket = rows.setdefault(cluster_id, [])
            bucket.append(spec)
            return len(bucket) - 1

        # Per-sweep local caches: candidate loops touch the same handful
        # of clusters thousands of times, so hoist the stamp-checked
        # lookups out of the hot loop.
        cluster_of_core: Dict[str, str] = {}
        bases: Dict[str, _ClusterBase] = {}

        def _cluster_of(core_id: str) -> str:
            cid = cluster_of_core.get(core_id)
            if cid is None:
                cid = cluster_of_core[core_id] = market.cores[core_id].cluster_id
            return cid

        def _base_of(cluster_id: str) -> _ClusterBase:
            base = bases.get(cluster_id)
            if base is None:
                base = bases[cluster_id] = self._base(cluster_id)
            return base

        # Plain-list views of the per-cluster roster arrays: the candidate
        # loop reads a handful of scalars per candidate, and python-list
        # indexing beats numpy scalar indexing by an order of magnitude.
        # ``tolist`` round-trips float64 exactly.
        base_lists: Dict[str, tuple] = {}

        def _lists_of(cluster_id: str) -> tuple:
            bl = base_lists.get(cluster_id)
            if bl is None:
                base = _base_of(cluster_id)
                bl = base_lists[cluster_id] = (
                    base,
                    base.d.tolist(),
                    base.prio.tolist(),
                    base.cur_ratio.tolist() if base.cur_present else None,
                )
            return bl

        # Cross-cluster mover demands, one vectorized gather per target
        # cluster (the mover is not resident there, so its demand is not
        # in the base's roster array).  Scalar fallback preserves exact
        # semantics when the vector path declines.
        cross: Dict[str, List[str]] = {}
        for task_id, source_core, target_core in candidates:
            src_cluster = _cluster_of(source_core)
            dst_cluster = _cluster_of(target_core)
            if src_cluster != dst_cluster:
                cross.setdefault(dst_cluster, []).append(task_id)
        d_cross: Dict[Tuple[str, str], float] = {}
        for dst_cluster, tids in cross.items():
            arr = est.demand_array(tids, dst_cluster)
            if arr is None:
                for tid in tids:
                    d_cross[(tid, dst_cluster)] = est._demand(tid, dst_cluster)
            else:
                for tid, val in zip(tids, arr.tolist()):
                    d_cross[(tid, dst_cluster)] = val

        for task_id, source_core, target_core in candidates:
            src_cluster = _cluster_of(source_core)
            dst_cluster = _cluster_of(target_core)
            src_base, d_list, prio_list, cur_list = _lists_of(src_cluster)
            dst_base = _base_of(dst_cluster)
            tidx = src_base.tid_index[task_id]
            prio = prio_list[tidx]
            # Resident demand comes straight off the source base's roster
            # array (same values ``est._demand`` would return).
            d_src = d_list[tidx]
            mover_cur = cur_list[tidx] if cur_list is not None else 0.0
            src_slot = src_base.slot_of_core[source_core]
            dst_slot = dst_base.slot_of_core[target_core]
            if src_cluster == dst_cluster:
                row = add_row(
                    src_cluster,
                    {
                        "adjust": [(src_slot, -d_src, -prio), (dst_slot, d_src, prio)],
                        "mask": tidx,
                        "mover": (dst_slot, d_src, prio),
                    },
                )
                plans.append(
                    (src_cluster, row, src_cluster, row, prio, mover_cur)
                )
            else:
                d_dst = d_cross[(task_id, dst_cluster)]
                src_row = add_row(
                    src_cluster,
                    {
                        "adjust": [(src_slot, -d_src, -prio)],
                        "mask": tidx,
                        "mover": None,
                    },
                )
                dst_row = add_row(
                    dst_cluster,
                    {
                        "adjust": [(dst_slot, d_dst, prio)],
                        "mask": None,
                        "mover": (dst_slot, d_dst, prio),
                    },
                )
                plans.append(
                    (src_cluster, src_row, dst_cluster, dst_row, prio, mover_cur)
                )

        results = {
            cluster_id: self._eval_cluster_rows(cluster_id, specs)
            for cluster_id, specs in rows.items()
        }
        # Positional views of each cluster's result lists: the verdict
        # loop reads eight fields per candidate, and repeated string-key
        # dict lookups dominate otherwise.
        res_t = {
            cid: (
                r["present"],
                r["maxprio_imp"],
                r["maxprio_wor"],
                r["maxabs"],
                r["spend"],
                r["mv_ok"],
                r["mv_ratio"],
                r["mv_bid"],
            )
            for cid, r in results.items()
        }

        verdicts: List[CandidateVerdict] = []
        for src_cluster, src_row, dst_cluster, dst_row, prio, mover_cur in plans:
            src_base = bases[src_cluster]
            dst_base = bases[dst_cluster]
            s_pres, s_imp, s_wor, s_abs, s_spend = res_t[src_cluster][:5]
            (
                d_pres,
                d_imp,
                d_wor,
                d_abs,
                d_spend,
                d_mvok,
                d_mvr,
                d_mvb,
            ) = res_t[dst_cluster]
            same = src_cluster == dst_cluster

            # Mover bookkeeping: present in the current mapping iff its
            # source cluster contributes ratios; present in the candidate
            # iff its destination row does.
            mv_present = d_pres[dst_row] and d_mvok[dst_row]
            mover_cand = d_mvr[dst_row] if mv_present else 0.0

            max_imp = max(
                s_imp[src_row],
                _NEG_INF if same else d_imp[dst_row],
            )
            max_wor = max(
                s_wor[src_row],
                _NEG_INF if same else d_wor[dst_row],
            )
            max_abs = max(
                s_abs[src_row],
                0.0 if same else d_abs[dst_row],
            )
            if mv_present:
                if mover_cand > mover_cur + _EPS:
                    max_imp = max(max_imp, prio)
                if mover_cand < mover_cur - _EPS:
                    max_wor = max(max_wor, prio)
                max_abs = max(max_abs, abs(mover_cand - mover_cur))

            improves = max_imp > _NEG_INF and max_imp >= max_wor
            # perf_equal's keyset test, at the union level: a cluster whose
            # presence flag flips only breaks equality if it contributes
            # tasks besides the mover (moving onto an empty cluster keeps
            # the task union identical even though the cluster wakes up).
            keysets_equal = (
                (
                    src_base.n_tasks <= 1
                    or s_pres[src_row] == src_base.cur_present
                )
                and (
                    same
                    or dst_base.n_tasks == 0
                    or d_pres[dst_row] == dst_base.cur_present
                )
                and mv_present == src_base.cur_present
            )
            equal = keysets_equal and max_abs <= _EPS
            spend_cand = (
                s_spend[src_row]
                + (0.0 if same else d_spend[dst_row])
                + (d_mvb[dst_row] if mv_present else 0.0)
            )
            spend_cur = src_base.cur_spend + (
                0.0 if same else dst_base.cur_spend
            )
            verdicts.append(
                CandidateVerdict(
                    perf_improves=improves,
                    perf_not_worse=equal or improves,
                    mover_ratio_current=mover_cur,
                    mover_ratio_candidate=mover_cand,
                    spend_current=spend_cur,
                    spend_candidate=spend_cand,
                )
            )
        return verdicts

    def _eval_cluster_rows(self, cluster_id: str, specs: List[dict]) -> dict:
        """Evaluate all of one cluster's rows, deduplicated by signature.

        A candidate row differs from the cluster's base state only on its
        adjusted core slots, and the per-task arithmetic depends on the
        mover only through the target V-F level, the adjusted slots'
        saturation flags, and the mover's priority: supplies are ``cs *
        prio / psum`` -- the mover's demand enters solely via the
        saturation comparison and the cluster-demand maximum, both
        resolved per row first.  Rows therefore collapse onto a handful
        of ``(level, present, (slot, dprio, saturated)...)`` groups; the
        full per-task vectors are evaluated once per group, and each row
        reads its reductions off its group with an exact
        max-minus-one-element correction for the masked mover column
        (top-two maxima plus a tie count).  Per-task values are
        bit-identical to the dense row evaluation; aggregate ``spend``
        recomposes the same bids in a different summation order -- the
        documented last-ulp freedom of this module's aggregates.
        """
        base = self._bases[cluster_id]
        if len(specs) * max(base.n_tasks, 1) < _GROUPED_MIN_ELEMS:
            return self._eval_cluster_rows_dense(cluster_id, specs)
        est = self._est
        market = self._market
        n = base.n_tasks
        n_rows = len(specs)
        n_cores = base.n_cores
        bmin = market.config.bmin

        # -- per-row exact quantities: adjusted sums, level, price -------
        S_row = np.tile(base.S, (n_rows, 1))
        psum_row = np.tile(base.psum, (n_rows, 1))
        adj_rows: List[int] = []
        adj_slots: List[int] = []
        adj_dd: List[float] = []
        adj_dp: List[float] = []
        for r, spec in enumerate(specs):
            for slot, dd, dp in spec["adjust"]:
                adj_rows.append(r)
                adj_slots.append(slot)
                adj_dd.append(dd)
                adj_dp.append(dp)
        if adj_rows:
            # Each (row, slot) pair appears at most once, so the
            # unbuffered adds reproduce the scalar ``S[slot] + dd``.
            ar = np.asarray(adj_rows, dtype=np.intp)
            asl = np.asarray(adj_slots, dtype=np.intp)
            np.add.at(S_row, (ar, asl), np.asarray(adj_dd))
            np.add.at(psum_row, (ar, asl), np.asarray(adj_dp))
        cd = S_row.max(axis=1) if n_cores else np.zeros(n_rows)
        present = cd > 0.0
        level = np.minimum(
            np.searchsorted(base.ladder, cd - _EPS, side="left"),
            base.max_index,
        )
        cs = base.ladder[level] if n_cores else np.zeros(n_rows)
        sat_row = S_row > cs[:, None] + _EPS
        price = np.empty(n_rows)
        pr_memo: Dict[int, float] = {}
        lv_list = level.tolist()
        ok_list = present.tolist()
        for r, (lv, ok) in enumerate(zip(lv_list, ok_list)):
            if not ok:
                price[r] = 0.0
                continue
            p = pr_memo.get(lv)
            if p is None:
                p = est.estimate_price(cluster_id, int(lv))
                pr_memo[lv] = p
            price[r] = p

        # -- group rows by reduction signature ---------------------------
        groups: Dict[tuple, int] = {}
        group_sigs: List[tuple] = []
        group_of = np.empty(n_rows, dtype=np.intp)
        for r, spec in enumerate(specs):
            adj = tuple(
                (slot, dp, bool(sat_row[r, slot]))
                for slot, _dd, dp in spec["adjust"]
            )
            sig = (lv_list[r], ok_list[r], adj)
            gi = groups.get(sig)
            if gi is None:
                gi = groups[sig] = len(group_sigs)
                group_sigs.append(sig)
            group_of[r] = gi
        g = len(group_sigs)

        mask_col = np.asarray(
            [
                spec["mask"] if spec["mask"] is not None else -1
                for spec in specs
            ],
            dtype=np.intp,
        )
        has_mask = mask_col >= 0

        if n:
            g_sat = np.empty((g, n_cores), dtype=bool)
            g_psum = np.tile(base.psum, (g, 1))
            g_cs = np.empty(g)
            g_price = np.empty(g)
            for gi, (lv, ok, adj) in enumerate(group_sigs):
                csv = float(base.ladder[lv]) if n_cores else 0.0
                g_cs[gi] = csv
                g_price[gi] = pr_memo.get(lv, 0.0) if ok else 0.0
                g_sat[gi] = base.S > csv + _EPS
                for slot, dp, sat in adj:
                    g_psum[gi, slot] += dp
                    g_sat[gi, slot] = sat

            d = base.d[None, :]
            cur_base = base.cur_ratio if base.cur_present else np.zeros(n)
            max1_imp = np.full(g, _NEG_INF)
            cnt_imp = np.zeros(g)
            max2_imp = np.full(g, _NEG_INF)
            max1_wor = np.full(g, _NEG_INF)
            cnt_wor = np.zeros(g)
            max2_wor = np.full(g, _NEG_INF)
            max1_abs = np.full(g, _NEG_INF)
            cnt_abs = np.zeros(g)
            max2_abs = np.full(g, _NEG_INF)
            g_spend = np.zeros(g)
            vj_imp = np.full(n_rows, _NEG_INF)
            vj_wor = np.full(n_rows, _NEG_INF)
            vj_abs = np.zeros(n_rows)
            vj_bid = np.zeros(n_rows)
            limit = max(1, _CHUNK_ELEMS // max(1, n))
            for start in range(0, g, limit):
                stop = min(g, start + limit)
                sl = slice(start, stop)
                tsat = g_sat[sl][:, base.core_slot]
                psum_t = g_psum[sl][:, base.core_slot]
                satsup = (
                    g_cs[sl, None]
                    * base.prio[None, :]
                    / np.where(psum_t > 0.0, psum_t, 1.0)
                )
                satsup = np.where(d > 0.0, np.minimum(satsup, d), satsup)
                supply = np.where(tsat, satsup, d)
                ratio = np.where(
                    d > 0.0,
                    np.minimum(1.0, supply / np.where(d > 0.0, d, 1.0)),
                    1.0,
                )
                bids = np.maximum(supply * g_price[sl, None], bmin)
                # Comparisons mirror perf_improves exactly: ``new > cur +
                # eps`` (NOT ``new - cur > eps``, different edge rounding).
                imp_vals = np.where(
                    ratio > cur_base[None, :] + _EPS, base.prio[None, :], _NEG_INF
                )
                wor_vals = np.where(
                    ratio < cur_base[None, :] - _EPS, base.prio[None, :], _NEG_INF
                )
                abs_vals = np.abs(ratio - cur_base[None, :])
                for vals, m1, cnt, m2 in (
                    (imp_vals, max1_imp, cnt_imp, max2_imp),
                    (wor_vals, max1_wor, cnt_wor, max2_wor),
                    (abs_vals, max1_abs, cnt_abs, max2_abs),
                ):
                    vm = vals.max(axis=1)
                    at_max = vals == vm[:, None]
                    m1[sl] = vm
                    cnt[sl] = at_max.sum(axis=1)
                    m2[sl] = np.where(at_max, _NEG_INF, vals).max(axis=1)
                g_spend[sl] = bids.sum(axis=1)
                rsel = has_mask & (group_of >= start) & (group_of < stop)
                if rsel.any():
                    ridx = np.nonzero(rsel)[0]
                    gix = group_of[ridx] - start
                    cj = mask_col[ridx]
                    vj_imp[ridx] = imp_vals[gix, cj]
                    vj_wor[ridx] = wor_vals[gix, cj]
                    vj_abs[ridx] = abs_vals[gix, cj]
                    vj_bid[ridx] = bids[gix, cj]

            # Per-row reductions: group value, minus the mover's column
            # for masked rows.  ``max`` minus one element is exact: the
            # group max stands unless the excluded entry was its only
            # attaining element, in which case the runner-up max applies.
            def _excluded(m1g, cntg, m2g, vj):
                m1r = m1g[group_of]
                excl = np.where(
                    vj < m1r, m1r, np.where(cntg[group_of] > 1, m1r, m2g[group_of])
                )
                return np.where(has_mask, excl, m1r)

            maxprio_imp = np.where(
                present, _excluded(max1_imp, cnt_imp, max2_imp, vj_imp), _NEG_INF
            )
            maxprio_wor = np.where(
                present, _excluded(max1_wor, cnt_wor, max2_wor, vj_wor), _NEG_INF
            )
            maxabs = np.where(
                present,
                np.maximum(
                    _excluded(max1_abs, cnt_abs, max2_abs, vj_abs), 0.0
                ),
                0.0,
            )
            gs = g_spend[group_of]
            spend = np.where(
                present, np.where(has_mask, gs - vj_bid, gs), 0.0
            )
        else:
            maxprio_imp = np.full(n_rows, _NEG_INF)
            maxprio_wor = np.full(n_rows, _NEG_INF)
            maxabs = np.zeros(n_rows)
            spend = np.zeros(n_rows)

        # -- mover-side values (rows adding the task to this cluster) ----
        mv_ok = [spec["mover"] is not None for spec in specs]
        if any(mv_ok):
            has_mover = np.asarray(mv_ok)
            mv_slot = np.asarray(
                [spec["mover"][0] if spec["mover"] is not None else 0 for spec in specs],
                dtype=np.intp,
            )
            md = np.asarray(
                [spec["mover"][1] if spec["mover"] is not None else 0.0 for spec in specs]
            )
            mp = np.asarray(
                [spec["mover"][2] if spec["mover"] is not None else 0.0 for spec in specs]
            )
            rows_ix = np.arange(n_rows)
            sat_m = sat_row[rows_ix, mv_slot]
            psum_m = psum_row[rows_ix, mv_slot]
            sup_sat = cs * mp / np.where(psum_m > 0.0, psum_m, 1.0)
            sup_sat = np.where(md > 0.0, np.minimum(sup_sat, md), sup_sat)
            sup = np.where(sat_m, sup_sat, md)
            ratio_m = np.where(
                md > 0.0,
                np.minimum(1.0, sup / np.where(md > 0.0, md, 1.0)),
                1.0,
            )
            bid_m = np.maximum(sup * price, bmin)
            live = has_mover & present
            mv_ratio = np.where(live, ratio_m, 0.0).tolist()
            mv_bid = np.where(live, bid_m, 0.0).tolist()
        else:
            mv_ratio = [0.0] * n_rows
            mv_bid = [0.0] * n_rows

        return {
            "present": present.tolist(),
            "maxprio_imp": maxprio_imp.tolist(),
            "maxprio_wor": maxprio_wor.tolist(),
            "maxabs": maxabs.tolist(),
            "spend": spend.tolist(),
            "mv_ok": mv_ok,
            "mv_ratio": mv_ratio,
            "mv_bid": mv_bid,
        }

    def _eval_cluster_rows_dense(self, cluster_id: str, specs: List[dict]) -> dict:
        """Dense reference evaluation: one matrix row per candidate.

        Kept as the differential oracle for the grouped evaluator above
        (``max`` reductions must match bit-for-bit; ``spend`` up to the
        documented fold freedom).  Rows are processed in chunks that
        bound the dense ``rows x tasks`` temporaries to a few million
        elements; chunking along rows leaves every per-row result
        bit-identical (each row's arithmetic and its axis-1 reductions
        never see the other rows).
        """
        base = self._bases[cluster_id]
        n = base.n_tasks
        limit = max(1, _CHUNK_ELEMS // max(1, n))
        if len(specs) > limit:
            merged: Dict[str, list] = {}
            for start in range(0, len(specs), limit):
                part = self._eval_cluster_rows_dense(
                    cluster_id, specs[start:start + limit]
                )
                if not merged:
                    merged = {key: list(val) for key, val in part.items()}
                else:
                    for key, val in part.items():
                        merged[key].extend(val)
            return merged
        n_rows = len(specs)
        S_list = base.S.tolist()
        psum_list = base.psum.tolist()
        S_rows_l = []
        psum_rows_l = []
        for spec in specs:
            s = list(S_list)
            p = list(psum_list)
            for slot, dd, dp in spec["adjust"]:
                s[slot] = s[slot] + dd
                p[slot] = p[slot] + dp
            S_rows_l.append(s)
            psum_rows_l.append(p)
        S_rows = np.asarray(S_rows_l)
        psum_rows = np.asarray(psum_rows_l)
        ratio, bids, present, _level, (cs, sat, price) = self._eval_rows(
            base, S_rows, psum_rows
        )

        n = base.n_tasks
        if n:
            colmask = np.ones((n_rows, n), dtype=bool)
            for r, spec in enumerate(specs):
                if spec["mask"] is not None:
                    colmask[r, spec["mask"]] = False
            active = present[:, None] & colmask
            cur_base = base.cur_ratio if base.cur_present else np.zeros(n)
            # Comparisons mirror perf_improves exactly: ``new > cur + eps``
            # (NOT ``new - cur > eps`` -- different rounding at the edge).
            imp = active & (ratio > cur_base[None, :] + _EPS)
            wor = active & (ratio < cur_base[None, :] - _EPS)
            delta = ratio - cur_base[None, :]
            maxprio_imp = np.max(
                np.where(imp, base.prio[None, :], _NEG_INF), axis=1
            )
            maxprio_wor = np.max(
                np.where(wor, base.prio[None, :], _NEG_INF), axis=1
            )
            maxabs = np.max(np.where(active, np.abs(delta), 0.0), axis=1)
            spend = np.sum(np.where(active, bids, 0.0), axis=1)
        else:
            maxprio_imp = np.full(n_rows, _NEG_INF)
            maxprio_wor = np.full(n_rows, _NEG_INF)
            maxabs = np.zeros(n_rows)
            spend = np.zeros(n_rows)

        # Mover-side values (rows that add the task to this cluster).
        mv_ok = [spec["mover"] is not None for spec in specs]
        mv_ratio = [0.0] * n_rows
        mv_bid = [0.0] * n_rows
        bmin = self._market.config.bmin
        for r, spec in enumerate(specs):
            mover = spec["mover"]
            if mover is None or not present[r]:
                continue
            slot, md, mp = mover
            cs_r = float(cs[r])
            sat_m = bool(sat[r, slot])
            if sat_m:
                psum_m = float(psum_rows[r, slot])
                sup = cs_r * mp / (psum_m if psum_m > 0.0 else 1.0)
                if md > 0.0:
                    sup = min(sup, md)
            else:
                sup = md
            mv_ratio[r] = min(1.0, sup / md) if md > 0.0 else 1.0
            mv_bid[r] = max(sup * float(price[r]), bmin)

        return {
            "present": present.tolist(),
            "maxprio_imp": maxprio_imp.tolist(),
            "maxprio_wor": maxprio_wor.tolist(),
            "maxabs": maxabs.tolist(),
            "spend": spend.tolist(),
            "mv_ok": mv_ok,
            "mv_ratio": mv_ratio,
            "mv_bid": mv_bid,
        }


__all__ = ["AVAILABLE", "BatchMappingEvaluator", "CandidateVerdict"]
