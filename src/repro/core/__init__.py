"""The paper's contribution: price-theory based power management (PPM).

A virtual marketplace trades Processing Units for virtual money: task
agents bid, core agents discover prices, cluster agents cancel inflation
and deflation with DVFS, and the chip agent controls the money supply to
respect the TDP.  The LBT module improves the task-to-core mapping through
load balancing and cross-cluster migration driven by steady-state
``perf``/``spend`` estimation.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionState,
    OverloadManager,
)
from .agents import (
    ChipAgent,
    ChipPowerState,
    ClusterAgent,
    ClusterFreeze,
    CoreAgent,
    TaskAgent,
    distribute_allowance,
)
from .config import MarketConfig, PPMConfig
from .estimation import (
    MappingEstimate,
    SteadyStateEstimator,
    perf_equal,
    perf_improves,
    perf_not_worse,
)
from .framework import PPMGovernor
from .lbt import LBTModule, MoveDecision
from .powerest import (
    ClusterPowerEstimator,
    EstimationConfig,
    EstimationManager,
    PowerEstimate,
    PowerEstimator,
)
from .market import Market, MarketObservations, RoundResult
from .money import Wallet
from .audit import AuditReport, MarketAuditor, MarketInvariantError, audited_round
from .resilience import (
    BackoffRetry,
    DVFSSupervisor,
    EstimatorState,
    EstimatorSupervisor,
    MarketWatchdog,
    ResilienceConfig,
    StaleSensorDetector,
    ThermalState,
    ThermalSupervisor,
    WatchdogState,
)
from .telemetry import MarketRecorder, MarketSnapshot

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionState",
    "OverloadManager",
    "AuditReport",
    "BackoffRetry",
    "ClusterPowerEstimator",
    "DVFSSupervisor",
    "EstimationConfig",
    "EstimationManager",
    "EstimatorState",
    "EstimatorSupervisor",
    "MarketWatchdog",
    "ResilienceConfig",
    "StaleSensorDetector",
    "ThermalState",
    "ThermalSupervisor",
    "WatchdogState",
    "ChipAgent",
    "ChipPowerState",
    "ClusterAgent",
    "ClusterFreeze",
    "CoreAgent",
    "LBTModule",
    "MappingEstimate",
    "MarketAuditor",
    "MarketInvariantError",
    "MarketRecorder",
    "MarketSnapshot",
    "Market",
    "MarketConfig",
    "MarketObservations",
    "MoveDecision",
    "PPMConfig",
    "PPMGovernor",
    "PowerEstimate",
    "PowerEstimator",
    "RoundResult",
    "SteadyStateEstimator",
    "TaskAgent",
    "Wallet",
    "audited_round",
    "distribute_allowance",
    "perf_equal",
    "perf_improves",
    "perf_not_worse",
]
