"""PPM: the price-theory power-management governor.

Adapts the abstract market (:mod:`repro.core.market`) and the LBT module
onto the simulation engine, the way the paper's kernel modules sit between
the agents and Linux:

* every bid period (~31.7 ms) it converts observed heart rates to demands
  (Table 4), runs one market round, applies the resulting allocations
  (nice values in the paper) and DVFS requests (cpufreq);
* every 3 bid rounds it runs load balancing and every 6 bid rounds task
  migration (sched_setaffinity), skipping both in the emergency state;
* clusters left without tasks are powered down by the engine's gating.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hw.sensors import SensorReadError, SensorSample
from ..sim.engine import Simulation
from ..tasks.demand import demand_for_range
from ..tasks.estimation import OnlineDemandEstimator
from ..tasks.task import Task
from .agents import ChipPowerState
from .config import PPMConfig
from .estimation import SteadyStateEstimator
from .lbt import LBTModule, MoveDecision
from .market import Market, MarketObservations, RoundResult
from .resilience import (
    BackoffRetry,
    DVFSSupervisor,
    MarketWatchdog,
    StaleSensorDetector,
)


class _DemandVecCache:
    """Round-to-round arrays for the vectorized Table 4 demand conversion.

    ``ids``/``tasks``/``target`` are fixed while the market membership is
    unchanged; ``fallback`` additionally depends on each task's current
    core type (refreshed when the placement mutates); ``prev`` is last
    round's smoothed-demand array, valid until an out-of-band write to
    the smoothed dict bumps the owning governor's stamp.
    """

    __slots__ = ("stamp", "ids", "tasks", "target", "pver", "fallback", "prev")

    def __init__(self, stamp: int):
        self.stamp = stamp
        self.ids: List[str] = []
        self.tasks: List[Task] = []
        self.target = None
        self.pver = -1
        self.fallback = None
        self.prev = None


class PPMGovernor:
    """Price-theory based power manager (the paper's contribution)."""

    def __init__(self, config: Optional[PPMConfig] = None):
        self.config = config or PPMConfig()
        self.market = Market(self.config.market)
        self._chip = None
        self.estimator: Optional[SteadyStateEstimator] = None
        self.lbt: Optional[LBTModule] = None
        self._tasks_by_id: Dict[str, Task] = {}
        self._smoothed_demand: Dict[str, float] = {}
        #: Cached Table 4 demand cap; the chip's max capacities are fixed
        #: for a run, so compute the max once instead of per task per round.
        self._demand_cap: Optional[float] = None
        #: Per-(cluster, level) energy cost; pure in the chip's static
        #: power parameters, so cache for the life of the attachment.
        self._energy_cost_cache: Dict[Tuple[str, int], float] = {}
        #: Off-line-profile demand per (task, core type); profiles are
        #: immutable, so cache for the life of the attachment.
        self._nominal_demand_cache: Dict[Tuple[str, str], float] = {}
        #: Per-round array cache for :meth:`_demands_of_all`; invalidated
        #: by bumping ``_demand_cache_stamp`` at every out-of-band mutation
        #: of the market membership or the smoothed-demand dict.
        self._demand_vec_cache: Optional[_DemandVecCache] = None
        self._demand_cache_stamp = 0
        #: Structural arrays for :meth:`_demands_on_cluster_arr`, one
        #: entry per target cluster, keyed by the market's structure
        #: stamp: which roster rows sit on the target cluster already and
        #: the off-line-profile nominal demands the others scale by.
        self._demand_arr_struct: Dict[str, list] = {}
        self._next_bid_time = 0.0
        self._round_counter = 0
        self._last_move_time: Dict[str, float] = {}
        self.last_round: Optional[RoundResult] = None
        self.moves_executed = 0
        #: Future-work path: learned demands instead of off-line profiles.
        self.online_estimator: Optional[OnlineDemandEstimator] = (
            OnlineDemandEstimator() if self.config.online_estimation else None
        )
        # -- resilience layer (None when config.resilience is None) -----
        res = self.config.resilience
        self.sensor_guard: Optional[StaleSensorDetector] = None
        self.dvfs_supervisor: Optional[DVFSSupervisor] = None
        self.watchdog: Optional[MarketWatchdog] = None
        self._move_retry: Optional[BackoffRetry] = None
        self._pending_moves: Dict[str, MoveDecision] = {}
        # Signature of the last completed market mirror (_sync_tasks):
        # while it matches, the mirror pass is skipped wholesale.
        self._market_sync_sig: Optional[tuple] = None
        self.safe_mode_entries = 0
        self._last_observed_power_w = 0.0
        #: Fractional power mark-up applied to the market's observations
        #: while the thermal supervisor holds a cluster at WARN or above;
        #: raises prices so bids shrink before forcible throttling.
        self.thermal_surcharge = 0.0
        if res is not None:
            self.sensor_guard = StaleSensorDetector(
                stale_reads=res.stale_reads, spike_factor=res.spike_factor
            )
            self.dvfs_supervisor = DVFSSupervisor(
                BackoffRetry(res.retry_initial_rounds, res.retry_max_rounds)
            )
            self.watchdog = MarketWatchdog(res)
            self._move_retry = BackoffRetry(
                res.retry_initial_rounds, res.retry_max_rounds
            )

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def prepare(self, sim: Simulation) -> None:
        self._chip = sim.chip
        self._energy_cost_cache.clear()
        self._nominal_demand_cache.clear()
        for cluster in sim.chip.clusters:
            self.market.add_cluster(
                cluster_id=cluster.cluster_id,
                core_ids=[core.core_id for core in cluster.cores],
                supply_ladder=[
                    level.supply_pus for level in cluster.vf_table.levels
                ],
            )
        self.estimator = SteadyStateEstimator(
            self.market, self._demand_on_cluster, self._energy_cost_per_pu
        )
        self.estimator.demand_array_fn = self._demands_on_cluster_arr
        self.lbt = LBTModule(self.market, self.estimator)
        self._sync_tasks(sim)

    def on_tick(self, sim: Simulation) -> None:
        if sim.now + 1e-9 < self._next_bid_time:
            return
        self._next_bid_time = sim.now + self.config.bid_period_s
        self._sync_tasks(sim)
        if self.watchdog is not None and self.watchdog.in_safe_mode:
            self._safe_mode_round(sim)
            return
        if not self.market.tasks:
            return
        try:
            result = self._run_market_round(sim)
        except Exception:
            if self.watchdog is None:
                raise
            # A frozen/raising round: keep last allocations, count it,
            # and degrade to the safe static policy if rounds stay dead.
            if self.watchdog.record_failure("market round raised"):
                self._enter_safe_mode(sim)
            return
        self.last_round = result
        self._round_counter += 1
        if self.watchdog is not None:
            tripped = self.watchdog.record_round(
                chip_power_w=self._last_observed_power_w,
                wtdp=self.config.market.wtdp,
                prices=result.prices,
                allocations=result.allocations,
            )
            if tripped:
                self._enter_safe_mode(sim)
                return
        if self.dvfs_supervisor is not None:
            self.dvfs_supervisor.verify(sim, self._round_counter)
        self._retry_pending_moves(sim)
        # LBT is disabled in the emergency state: the immediate goal is to
        # bring power under the TDP through the supply-demand module.
        if result.chip_state is ChipPowerState.EMERGENCY or not self.config.lbt_enabled:
            return
        counter = self._round_counter
        cooling = frozenset(
            task_id
            for task_id, moved_at in self._last_move_time.items()
            if sim.now - moved_at < self.config.migration_cooldown_s
        )
        decision: Optional[MoveDecision] = None
        if self.config.enable_migration and counter % self.config.migrate_every == 0:
            decision = self.lbt.propose_migration(exclude_tasks=cooling)
        elif (
            self.config.enable_load_balancing
            and counter % self.config.load_balance_every == 0
        ):
            decision = self.lbt.propose_load_balance(exclude_tasks=cooling)
        if decision is not None:
            self._execute_move(sim, decision)

    def set_thermal_surcharge(self, surcharge: float) -> None:
        """Hook for the thermal supervisor's WARN rung (0 clears it)."""
        self.thermal_surcharge = max(0.0, surcharge)

    # ------------------------------------------------------------------
    # Snapshot/restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """All mutable governor state (Snapshottable protocol)."""
        from ..checkpoint.snapshot import generic_snapshot

        return {
            "market": self.market.snapshot_state(),
            "smoothed_demand": dict(self._smoothed_demand),
            "next_bid_time": self._next_bid_time,
            "round_counter": self._round_counter,
            "last_move_time": dict(self._last_move_time),
            "last_round": self._round_result_to_json(self.last_round),
            "moves_executed": self.moves_executed,
            "safe_mode_entries": self.safe_mode_entries,
            "last_observed_power_w": self._last_observed_power_w,
            "thermal_surcharge": self.thermal_surcharge,
            "lbt_evaluations": self.lbt.evaluations if self.lbt is not None else 0,
            "pending_moves": {
                task_id: self._move_decision_to_json(decision)
                for task_id, decision in self._pending_moves.items()
            },
            "sensor_guard": (
                self.sensor_guard.snapshot_state() if self.sensor_guard else None
            ),
            "dvfs_supervisor": (
                self.dvfs_supervisor.snapshot_state() if self.dvfs_supervisor else None
            ),
            "watchdog": self.watchdog.snapshot_state() if self.watchdog else None,
            "move_retry": (
                self._move_retry.snapshot_state() if self._move_retry else None
            ),
            "online_estimator": (
                generic_snapshot(self.online_estimator)
                if self.online_estimator is not None
                else None
            ),
        }

    def restore_state(self, sim: Simulation, state: Dict[str, object]) -> None:
        """Apply a :meth:`snapshot_state` onto a freshly built governor."""
        from ..checkpoint.snapshot import generic_restore

        if self._chip is None:
            # Registers clusters/cores with the market and builds the
            # estimator/LBT; the market's agent state is overwritten below.
            self.prepare(sim)
        self.market.restore_state(state["market"])
        self._tasks_by_id = {
            task.name: task for task in sim.tasks if task.name in self.market.tasks
        }
        self._smoothed_demand = dict(state["smoothed_demand"])
        self._demand_cache_stamp += 1
        self._market_sync_sig = None
        self._next_bid_time = state["next_bid_time"]
        self._round_counter = state["round_counter"]
        self._last_move_time = dict(state["last_move_time"])
        self.last_round = self._round_result_from_json(state["last_round"])
        self.moves_executed = state["moves_executed"]
        self.safe_mode_entries = state["safe_mode_entries"]
        self._last_observed_power_w = state["last_observed_power_w"]
        self.thermal_surcharge = state.get("thermal_surcharge", 0.0)
        if self.lbt is not None:
            self.lbt.evaluations = state["lbt_evaluations"]
        self._pending_moves = {
            task_id: self._move_decision_from_json(decision)
            for task_id, decision in state["pending_moves"].items()
        }
        for component, cstate in (
            (self.sensor_guard, state["sensor_guard"]),
            (self.dvfs_supervisor, state["dvfs_supervisor"]),
            (self.watchdog, state["watchdog"]),
            (self._move_retry, state["move_retry"]),
        ):
            if component is not None and cstate is not None:
                component.restore_state(cstate)
        if self.online_estimator is not None and state["online_estimator"] is not None:
            generic_restore(self.online_estimator, state["online_estimator"], {})

    @staticmethod
    def _round_result_to_json(result: Optional[RoundResult]) -> Optional[dict]:
        if result is None:
            return None
        return {
            "allocations": dict(result.allocations),
            "level_requests": dict(result.level_requests),
            "chip_state": result.chip_state.value,
            "allowance": result.allowance,
            "prices": dict(result.prices),
            "frozen_clusters": sorted(result.frozen_clusters),
            "total_demand": result.total_demand,
            "total_supply": result.total_supply,
        }

    @staticmethod
    def _round_result_from_json(data: Optional[dict]) -> Optional[RoundResult]:
        if data is None:
            return None
        return RoundResult(
            allocations=dict(data["allocations"]),
            level_requests=dict(data["level_requests"]),
            chip_state=ChipPowerState(data["chip_state"]),
            allowance=data["allowance"],
            prices=dict(data["prices"]),
            frozen_clusters=set(data["frozen_clusters"]),
            total_demand=data["total_demand"],
            total_supply=data["total_supply"],
        )

    @staticmethod
    def _move_decision_to_json(decision: MoveDecision) -> dict:
        def estimate(est) -> dict:
            return {
                "ratios": dict(est.ratios),
                "bids": dict(est.bids),
                "levels": dict(est.levels),
            }

        return {
            "task_id": decision.task_id,
            "source_core_id": decision.source_core_id,
            "target_core_id": decision.target_core_id,
            "mode": decision.mode,
            "current": estimate(decision.current),
            "candidate": estimate(decision.candidate),
        }

    @staticmethod
    def _move_decision_from_json(data: dict) -> MoveDecision:
        from .estimation import MappingEstimate

        def estimate(est: dict) -> MappingEstimate:
            return MappingEstimate(
                ratios=dict(est["ratios"]),
                bids=dict(est["bids"]),
                levels=dict(est["levels"]),
            )

        return MoveDecision(
            task_id=data["task_id"],
            source_core_id=data["source_core_id"],
            target_core_id=data["target_core_id"],
            mode=data["mode"],
            current=estimate(data["current"]),
            candidate=estimate(data["candidate"]),
        )

    # ------------------------------------------------------------------
    # Market round plumbing
    # ------------------------------------------------------------------
    def _sync_tasks(self, sim: Simulation) -> None:
        """Mirror the engine's task population and placement in the market.

        Every membership or placement change that could desynchronise the
        mirror bumps one of the signature components: arrivals/retires
        and migrations bump ``placement.version`` (tasks enter the market
        only once placed), spawns grow ``sim.tasks``, market membership
        edits move ``len(market.tasks)``, and out-of-band market
        mutations bump ``_demand_cache_stamp``.  A matching signature
        therefore means a full pass would be a no-op.
        """
        sig = (
            sim.placement.version,
            len(sim.tasks),
            len(self.market.tasks),
            self._demand_cache_stamp,
        )
        if sig == self._market_sync_sig:
            return
        active = {task.name: task for task in sim.active_tasks()}
        for task_id in list(self.market.tasks):
            if task_id not in active:
                self.market.remove_task(task_id)
                task = self._tasks_by_id.pop(task_id, None)
                if task is not None:
                    sim.clear_allocation(task)
                self._smoothed_demand.pop(task_id, None)
                self._demand_cache_stamp += 1
        for task_id, task in active.items():
            core = sim.placement.core_of(task)
            if core is None:
                continue
            if task_id not in self.market.tasks:
                self.market.add_task(task_id, task.priority, core.core_id)
                self._tasks_by_id[task_id] = task
                self._demand_cache_stamp += 1
            elif self.market.core_of(task_id) != core.core_id:
                self.market.move_task(task_id, core.core_id)
        # Recomputed after the pass: the body itself moves the counters.
        self._market_sync_sig = (
            sim.placement.version,
            len(sim.tasks),
            len(self.market.tasks),
            self._demand_cache_stamp,
        )

    def _demands_of_all(self, sim: Simulation) -> Dict[str, float]:
        """Table 4 demand conversion for every market task.

        Above the vectorization threshold the per-task formula runs as
        elementwise array arithmetic -- bit-identical to ``_demand_of``
        (every operation maps 1:1 onto the scalar expression) -- with the
        observation gather served straight from the columnar engine's
        buffers when available.
        """
        from .market import _VEC_MIN_TASKS
        from . import vecmarket

        tasks_by_id = self._tasks_by_id
        if not (vecmarket.AVAILABLE and len(tasks_by_id) >= _VEC_MIN_TASKS):
            # Scalar path reads Task attributes: observation barrier.
            sim.sync()
            return {
                task_id: self._demand_of(sim, task)
                for task_id, task in tasks_by_id.items()
            }
        import numpy as np

        cache = self._demand_vec_cache
        if cache is None or cache.stamp != self._demand_cache_stamp:
            cache = self._demand_vec_cache = _DemandVecCache(self._demand_cache_stamp)
            cache.ids = list(tasks_by_id)
            cache.tasks = list(tasks_by_id.values())
            cache.target = np.asarray([t.hr_range.target_hr for t in cache.tasks])
        ids = cache.ids
        tasks = cache.tasks
        target = cache.target
        gather = getattr(sim, "gather_demand_inputs", None)
        gathered = gather(tasks) if gather is not None else None
        if gathered is not None:
            hr, consumed, supplied = gathered
        else:
            sim.sync()  # attribute reads below: observation barrier
            hr = np.asarray([t.observed_heart_rate() for t in tasks])
            consumed = np.asarray([t.last_consumed_pus for t in tasks])
            supplied = np.asarray([t.last_supply_pus for t in tasks])
        pver = sim.placement.version
        if cache.fallback is None or cache.pver != pver:
            cache.fallback = np.asarray(
                [self._nominal_demand_here(sim, t) for t in tasks]
            )
            cache.pver = pver
        fallback = cache.fallback
        cap = self._demand_cap
        if cap is None:
            cap = self.config.market.demand_cap_factor * max(
                cluster.max_supply_pus for cluster in sim.chip.clusters
            )
            self._demand_cap = cap

        # ``last_consumed or last_supply``: consumed wins unless zero.
        supply = np.where(consumed != 0.0, consumed, supplied)
        usable = (hr > 0.0) & (supply > 0.0)
        demand = np.where(
            usable,
            target * supply / np.where(usable, hr, 1.0),
            fallback,
        )
        demand = demand * self.config.market.demand_headroom
        demand = np.minimum(np.maximum(demand, 1.0), cap)

        smoothed = self._smoothed_demand
        if cache.prev is not None:
            # Every id was written by the previous round and nothing
            # mutated the dict out-of-band since (the stamp check above).
            prev = cache.prev
            has_prev = None
        else:
            prev = np.asarray([smoothed.get(tid, -1.0) for tid in ids])
            has_prev = np.asarray([tid in smoothed for tid in ids])
        rise = 0.4 * prev + 0.6 * demand
        fall = 0.75 * prev + 0.25 * demand
        adjusted = np.where(
            demand > prev,
            rise,
            np.where(prev - demand < 0.04 * prev, prev, fall),
        )
        demand = adjusted if has_prev is None else np.where(has_prev, adjusted, demand)
        cache.prev = demand
        values = demand.tolist()
        smoothed.update(zip(ids, values))
        return dict(zip(ids, values))

    def _nominal_demand_here(self, sim: Simulation, task: Task) -> float:
        """Off-line-profile fallback demand on the task's current core type."""
        core = sim.placement.core_of(task)
        assert core is not None
        core_type = core.cluster.core_type
        key = (task.name, core_type)
        cached = self._nominal_demand_cache.get(key)
        if cached is None:
            cached = task.profile.nominal_demand_pus(core_type)
            self._nominal_demand_cache[key] = cached
        return cached

    def _demand_of(self, sim: Simulation, task: Task) -> float:
        """Table 4 conversion with off-line-profile bootstrap and smoothing."""
        core = sim.placement.core_of(task)
        assert core is not None
        core_type = core.cluster.core_type
        fallback = task.profile.nominal_demand_pus(core_type)
        supply = task.last_consumed_pus or task.last_supply_pus
        demand = demand_for_range(
            task.hr_range, supply, task.observed_heart_rate(), fallback_pus=fallback
        )
        demand *= self.config.market.demand_headroom
        cap = self._demand_cap
        if cap is None:
            cap = self.config.market.demand_cap_factor * max(
                cluster.max_supply_pus for cluster in sim.chip.clusters
            )
            self._demand_cap = cap
        demand = min(max(demand, 1.0), cap)
        previous = self._smoothed_demand.get(task.name)
        if previous is not None:
            # Asymmetric EWMA with a small deadband: follow demand rises
            # quickly (a lagging supply is a QoS miss) but damp falls and
            # jitter, which otherwise cause V-F hunting (the thermal-
            # cycling concern of section 3.2.2).
            if demand > previous:
                demand = 0.4 * previous + 0.6 * demand
            elif previous - demand < 0.04 * previous:
                # Deadband on the *raw* change -- applying it after the
                # EWMA would freeze any slow decline permanently.
                demand = previous
            else:
                demand = 0.75 * previous + 0.25 * demand
        self._smoothed_demand[task.name] = demand
        return demand

    def _observe_power(self, sim: Simulation) -> SensorSample:
        """Read the power sensors, surviving dropouts and bad readings.

        Uses the engine's last sample (already dropout-substituted), pulls
        a fresh reading before the first tick, and -- with resilience on
        -- validates it through the stale-sensor detector so stuck or
        spiking registers trade on the last good value instead.

        With ``use_estimated_power`` off the market is pinned to the
        metered sensor even when an estimation pipeline is attached --
        the ablation arm of the model-error experiments.
        """
        if self.config.use_estimated_power:
            sample = sim.last_power_sample()
        else:
            sample = sim.metered_power_sample()
        if sample is None:
            try:
                sample = sim.sensor.sample()
            except SensorReadError:
                sample = None
        if self.sensor_guard is not None:
            return self.sensor_guard.observe(sample)
        if sample is None:
            # Resilience disabled: fall back to an all-zero reading
            # rather than crashing the bid round before the first tick.
            return SensorSample(
                chip_power_w=0.0,
                cluster_power_w={
                    c.cluster_id: 0.0 for c in sim.chip.clusters
                },
                cluster_frequency_mhz={
                    c.cluster_id: c.frequency_mhz for c in sim.chip.clusters
                },
                cluster_voltage_v={c.cluster_id: 0.0 for c in sim.chip.clusters},
            )
        return sample

    def _run_market_round(self, sim: Simulation) -> RoundResult:
        sample = self._observe_power(sim)
        self._last_observed_power_w = sample.chip_power_w
        demands = self._demands_of_all(sim)
        if self.online_estimator is not None:
            for task_id, demand in demands.items():
                task = self._tasks_by_id[task_id]
                core = sim.placement.core_of(task)
                if core is not None:
                    self.online_estimator.observe(
                        task_id, core.cluster.core_type, demand
                    )
        # Thermal surcharge: inflate the power the market trades on (the
        # chip agent shrinks the allowance, raising prices chip-wide).
        # ``_last_observed_power_w`` above stays raw so the watchdog's
        # divergence detection is not fooled by the synthetic mark-up.
        scale = 1.0 + self.thermal_surcharge
        obs = MarketObservations(
            demands=demands,
            cluster_level={
                c.cluster_id: c.level_index for c in sim.chip.clusters
            },
            cluster_in_transition={
                c.cluster_id: c.regulator.in_transition for c in sim.chip.clusters
            },
            chip_power_w=sample.chip_power_w * scale,
            cluster_power_w={
                cid: watts * scale
                for cid, watts in sample.cluster_power_w.items()
            },
        )
        result = self.market.run_round(obs)
        tasks_by_id = self._tasks_by_id
        updates = {}
        for task_id, allocation in result.allocations.items():
            task = tasks_by_id.get(task_id)
            if task is not None:
                updates[task] = allocation
        if updates:
            # One bulk dict update (same insertion order and clamping as
            # a set_allocation loop) and one grant-cache invalidation.
            sim.set_allocations(updates)
        for cluster_id, level in result.level_requests.items():
            cluster = sim.chip.cluster(cluster_id)
            if self.dvfs_supervisor is not None:
                self.dvfs_supervisor.request(sim, cluster, level)
            else:
                sim.request_level(cluster, level)
        return result

    # ------------------------------------------------------------------
    # LBT plumbing
    # ------------------------------------------------------------------
    def _demand_on_cluster(self, task_id: str, cluster_id: str) -> float:
        """Steady-state demand of a task on a (possibly different) cluster.

        On the task's current cluster this is the live market demand; on a
        different core type it falls back to the off-line profile (the
        paper obtains the same numbers by profiling on the board).
        """
        task = self._tasks_by_id.get(task_id)
        agent = self.market.tasks.get(task_id)
        if task is None or agent is None:
            return 0.0
        current_cluster = self.market.cores[self.market.core_of(task_id)].cluster_id
        if cluster_id == current_cluster:
            return agent.demand
        if self.online_estimator is not None:
            assert self._chip is not None
            target = self._chip.cluster(cluster_id)
            current = self._chip.cluster(current_cluster)
            return self.online_estimator.estimate_demand(
                task_id,
                target_type=target.core_type,
                current_type=current.core_type,
                current_demand_pus=agent.demand,
                target_is_faster=target.max_supply_pus > current.max_supply_pus,
            )
        try:
            nominal = task.profile.nominal_demand_pus(
                self._core_type_of_cluster(cluster_id)
            )
            nominal_here = task.profile.nominal_demand_pus(
                self._core_type_of_cluster(current_cluster)
            )
        except KeyError:
            return agent.demand
        if nominal_here <= 0.0:
            return nominal
        # Scale the profiled cross-type ratio by the live demand so phase
        # behaviour carries over to the speculation.
        return agent.demand * nominal / nominal_here

    def _demands_on_cluster_arr(self, task_ids: List[str], cluster_id: str):
        """Vectorized :meth:`_demand_on_cluster` over one task roster.

        Every row evaluates the exact scalar expression elementwise --
        ``agent.demand`` for tasks already on the target cluster, the
        profile-scaled ``(demand * nominal) / nominal_here`` otherwise --
        so the gather is bit-identical to per-task calls.  The masks and
        nominal-demand operands are pure placement/profile state, cached
        per target cluster against the market's structure stamp; only the
        live-demand gather runs per call.  Returns ``None`` when scalar
        semantics cannot be reproduced array-wise (online estimation) and
        the caller falls back to the scalar loop.
        """
        if self.online_estimator is not None:
            return None
        try:
            import numpy as np
        except Exception:  # pragma: no cover - numpy is baked into the image
            return None
        market = self.market
        stamp = market.structure_stamp
        n = len(task_ids)
        # Two cached rosters per cluster: the resident roster (refresh)
        # and the movers roster (cross-cluster batches) alternate within
        # one proposal sweep; a single slot would thrash between them.
        slots = self._demand_arr_struct.get(cluster_id)
        if slots is None:
            slots = self._demand_arr_struct[cluster_id] = []
        struct = None
        for s in slots:
            if (
                s[0] == stamp
                and s[1] == n
                and (
                    n == 0
                    or (s[2][0] is task_ids[0] and s[2][-1] is task_ids[-1])
                )
            ):
                struct = s
                break
        if struct is None:
            struct = self._build_demand_struct(np, list(task_ids), cluster_id, stamp)
            slots.insert(0, struct)
            del slots[2:]
        (_s, _n, _ids, valid, is_current, use_plain, use_nominal, nominal, nh_safe) = struct
        agents = market.tasks
        dem = np.asarray(
            [
                agent.demand if (agent := agents.get(tid)) is not None else 0.0
                for tid in task_ids
            ]
        )
        out = (dem * nominal) / nh_safe
        out = np.where(use_nominal, nominal, out)
        out = np.where(use_plain, dem, out)
        out = np.where(is_current, dem, out)
        return np.where(valid, out, 0.0)

    def _build_demand_struct(
        self, np, task_ids: List[str], cluster_id: str, stamp: int
    ) -> tuple:
        """Placement/profile masks for one ``_demands_on_cluster_arr`` roster."""
        market = self.market
        tasks_by_id = self._tasks_by_id
        target_type = self._core_type_of_cluster(cluster_id)
        n = len(task_ids)
        valid = np.zeros(n, dtype=bool)
        is_current = np.zeros(n, dtype=bool)
        use_plain = np.zeros(n, dtype=bool)  # missing profile entry
        use_nominal = np.zeros(n, dtype=bool)  # nominal_here <= 0
        nominal = np.zeros(n)
        nh_safe = np.ones(n)  # placeholder 1.0 where the ratio is unused
        for i, tid in enumerate(task_ids):
            task = tasks_by_id.get(tid)
            if task is None or tid not in market.tasks:
                continue
            valid[i] = True
            current_cluster = market.cores[market.core_of(tid)].cluster_id
            if current_cluster == cluster_id:
                is_current[i] = True
                continue
            try:
                nom = task.profile.nominal_demand_pus(target_type)
                nom_here = task.profile.nominal_demand_pus(
                    self._core_type_of_cluster(current_cluster)
                )
            except KeyError:
                use_plain[i] = True
                continue
            nominal[i] = nom
            if nom_here <= 0.0:
                use_nominal[i] = True
            else:
                nh_safe[i] = nom_here
        return (
            stamp, n, task_ids, valid, is_current, use_plain,
            use_nominal, nominal, nh_safe,
        )

    def _core_type_of_cluster(self, cluster_id: str) -> str:
        assert self._chip is not None, "prepare() must run before LBT"
        return self._chip.cluster(cluster_id).core_type

    def _energy_cost_per_pu(self, cluster_id: str, level_index: int) -> float:
        """Watts per PU of a fully loaded cluster at ``level_index``.

        Drives the estimator's energy-aware pricing; computed from the
        same power model the sensors read (the paper's off-line profiling
        provides the equivalent per-core-type power numbers).
        """
        assert self._chip is not None
        key = (cluster_id, level_index)
        cached = self._energy_cost_cache.get(key)
        if cached is not None:
            return cached
        cluster = self._chip.cluster(cluster_id)
        table = cluster.vf_table
        level = table[table.clamp_index(level_index)]
        watts = self._chip.power_model.max_cluster_power_w(
            cluster.power_params, level, len(cluster.cores)
        )
        total_pus = level.supply_pus * len(cluster.cores)
        cost = watts / total_pus if total_pus > 0.0 else 0.0
        self._energy_cost_cache[key] = cost
        return cost

    def _execute_move(self, sim: Simulation, decision: MoveDecision) -> None:
        task = self._tasks_by_id.get(decision.task_id)
        if task is None:
            return
        destination = sim.chip.core(decision.target_core_id)
        current = sim.placement.core_of(task)
        if current is destination:
            self._pending_moves.pop(decision.task_id, None)
            return
        crossed_types = current is None or (
            current.cluster.core_type != destination.cluster.core_type
        )
        # Estimate the demand on the destination before the market's view
        # of the placement changes.
        seeded = self._demand_on_cluster(
            decision.task_id, destination.cluster.cluster_id
        )
        record = sim.migrate(task, destination)
        if record.failed:
            # sched_setaffinity failed: the task did not move.  Remember
            # the decision and re-issue it with exponential backoff.
            if self._move_retry is not None:
                self._pending_moves[decision.task_id] = decision
                self._move_retry.record_failure(
                    decision.task_id, self._round_counter
                )
            return
        self._pending_moves.pop(decision.task_id, None)
        if self._move_retry is not None:
            self._move_retry.record_success(decision.task_id)
        self.market.move_task(decision.task_id, decision.target_core_id)
        self._last_move_time[decision.task_id] = sim.now
        self.moves_executed += 1
        if crossed_types and seeded > 0.0:
            # The heart-rate window now mixes observations from two core
            # types; restart it and seed the demand from the estimate the
            # move was decided on, so the next rounds trade on consistent
            # numbers instead of a transient.
            task.hrm.reset()
            agent = self.market.tasks.get(decision.task_id)
            if agent is not None:
                agent.demand = seeded
            self._smoothed_demand[decision.task_id] = seeded
            self._demand_cache_stamp += 1

    # ------------------------------------------------------------------
    # Resilience: migration retry and safe-mode degradation
    # ------------------------------------------------------------------
    def _retry_pending_moves(self, sim: Simulation) -> None:
        """Re-issue failed migrations whose backoff has elapsed."""
        if not self._pending_moves or self._move_retry is None:
            return
        for task_id, decision in list(self._pending_moves.items()):
            if task_id not in self.market.tasks:
                self._pending_moves.pop(task_id, None)
                self._move_retry.record_success(task_id)
                continue
            if not self._move_retry.should_attempt(task_id, self._round_counter):
                continue
            self._execute_move(sim, decision)

    @property
    def in_safe_mode(self) -> bool:
        return self.watchdog is not None and self.watchdog.in_safe_mode

    def _safe_level_for(self, cluster) -> int:
        assert self.config.resilience is not None
        return cluster.vf_table.clamp_index(self.config.resilience.safe_level_index)

    def _enter_safe_mode(self, sim: Simulation) -> None:
        """Degrade to a safe static policy: fair shares at the safe level.

        Explicit allocations are dropped (the dispatcher falls back to
        fair weighted sharing) and every online cluster is parked at the
        configured safe V-F level -- a powersave-like floor that cannot
        violate the TDP -- until the watchdog observes sustained health.
        """
        self.safe_mode_entries += 1
        self._pending_moves.clear()
        sim.clear_allocations()
        for cluster in sim.chip.clusters:
            if cluster.cluster_id in sim.offline_clusters:
                continue
            if self.dvfs_supervisor is not None:
                self.dvfs_supervisor.request(
                    sim, cluster, self._safe_level_for(cluster)
                )
            else:
                sim.request_level(cluster, self._safe_level_for(cluster))

    def _safe_mode_round(self, sim: Simulation) -> None:
        """One bid period spent degraded: hold the floor, watch for health."""
        assert self.watchdog is not None
        self._round_counter += 1
        for cluster in sim.chip.clusters:
            if cluster.cluster_id in sim.offline_clusters:
                continue
            safe = self._safe_level_for(cluster)
            if cluster.regulator.target_index != safe:
                sim.request_level(cluster, safe)
        if self.dvfs_supervisor is not None:
            self.dvfs_supervisor.verify(sim, self._round_counter)
        sample = self._observe_power(sim)
        self._last_observed_power_w = sample.chip_power_w
        wtdp = self.config.market.wtdp
        healthy = wtdp is None or sample.chip_power_w <= wtdp
        self.watchdog.record_safe_round(healthy)
