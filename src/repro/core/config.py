"""Configuration for the price-theory power-management framework (PPM)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .resilience import ResilienceConfig


@dataclass
class MarketConfig:
    """Parameters of the virtual marketplace.

    Attributes:
        bmin: Minimum bid any task agent may place (keeps every task
            purchasable and prices well-defined).
        tolerance: The tolerance factor ``delta`` -- the rate of inflation
            (deflation) a cluster agent tolerates before raising (lowering)
            the supply by one V-F level.  Lower values react faster but
            cause thermal cycling (paper section 3.2.2).
        savings_cap_fraction: Savings are capped at this multiple of the
            task's current allowance, so a rich task cannot hold the chip
            in the emergency state indefinitely (paper section 3.2.3).
        initial_bid: Opening bid of a freshly created task agent (the
            running examples start every agent at $1).
        initial_allowance: Opening global allowance ``A``; ``None`` sizes
            it automatically from the number of tasks and initial bids.
        wtdp: Thermal design power constraint in W (``None`` = unbounded).
        wth: Threshold-state floor in W; the buffer zone is
            ``[wth, wtdp]``.  ``None`` defaults to ``wtdp - 0.5``.
        demand_cap_factor: Upper bound on a task's inferred demand as a
            multiple of the biggest per-core supply on the chip; guards the
            Table 4 conversion against start-up transients.
        demand_headroom: Multiplier on the converted demand.  The raw
            Table 4 conversion steers the heart rate exactly onto the
            target; a few percent of headroom parks the equilibrium above
            the QoS floor so phase drift does not clip through it.
    """

    bmin: float = 0.01
    tolerance: float = 0.15
    savings_cap_fraction: float = 5.0
    initial_bid: float = 1.0
    initial_allowance: Optional[float] = None
    wtdp: Optional[float] = None
    wth: Optional[float] = None
    demand_cap_factor: float = 3.0
    demand_headroom: float = 1.04

    def __post_init__(self) -> None:
        if self.bmin <= 0:
            raise ValueError("bmin must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance factor must be positive")
        if self.savings_cap_fraction < 0:
            raise ValueError("savings cap must be non-negative")
        if self.initial_bid < self.bmin:
            raise ValueError("initial bid must be at least bmin")
        if self.wtdp is not None:
            if self.wtdp <= 0:
                raise ValueError("TDP must be positive")
            if self.wth is None:
                self.wth = max(0.0, self.wtdp - 0.5)
            if not 0.0 <= self.wth < self.wtdp:
                raise ValueError("need 0 <= wth < wtdp")

    @property
    def has_power_budget(self) -> bool:
        return self.wtdp is not None


@dataclass
class PPMConfig:
    """Invocation schedule and feature switches of the PPM governor.

    The paper's periods (section 3.4): the bidding interval is
    ``max(linux epoch, shortest task period)`` = 31.7 ms in their
    experiments; load balancing runs every 3 bid rounds and task migration
    every 2 load-balancing rounds (6 bid rounds).
    """

    market: MarketConfig = field(default_factory=MarketConfig)
    bid_period_s: float = 0.0317
    load_balance_every: int = 3
    migrate_every: int = 6
    enable_load_balancing: bool = True
    enable_migration: bool = True
    #: A task that just moved may not move again for this long: its heart
    #: rate window and the market around it need time to re-settle, and
    #: re-deciding from transient data is the main ping-pong source.
    migration_cooldown_s: float = 1.0
    #: Replace the off-line profile tables with the online cross-core-type
    #: demand estimator -- the paper's stated future-work extension
    #: ("eliminate the off-line profiling step", section 3.3).
    online_estimation: bool = False
    #: Trade on the counter-estimated power signal when the simulation
    #: runs an estimation pipeline (``SimConfig.estimation``).  ``False``
    #: pins the market to the metered sensor even with estimation
    #: attached -- the ablation arm of the model-error experiments.
    #: Without an estimation pipeline the flag is inert: both signals
    #: are the same metered sample.
    use_estimated_power: bool = True
    #: Governor-side resilience layer (stale-sensor fallback, actuation
    #: retry, market watchdog with safe-mode degradation).  On by default
    #: -- in a fault-free run it changes nothing; ``None`` disables it,
    #: restoring the raise-on-failure behaviour for debugging.
    resilience: Optional[ResilienceConfig] = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.bid_period_s <= 0:
            raise ValueError("bid period must be positive")
        if self.load_balance_every < 1 or self.migrate_every < 1:
            raise ValueError("invocation multiples must be >= 1")
        if self.migration_cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")

    @property
    def lbt_enabled(self) -> bool:
        return self.enable_load_balancing or self.enable_migration
