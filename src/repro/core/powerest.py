"""Online counter-based power estimation (the estimated-power mode).

The paper's governors read power from a perfect meter; production power
managers estimate it from performance counters through a regression
model that is biased, noisy and drifts.  This module closes that gap:

* :class:`EstimationConfig` -- opt-in configuration carried by
  ``SimConfig.estimation``; ``None`` (the default) leaves every existing
  run byte-identical.
* :class:`ClusterPowerEstimator` -- an exponentially-weighted recursive
  least squares (RLS) fit of one cluster's metered power against its
  aggregated counters, with ridge initialisation and a forgetting factor
  so the model tracks V-F regime changes.
* :class:`PowerEstimate` -- one cluster's estimate: value + confidence.
* :class:`PowerEstimator` -- the per-chip collection of cluster fits.
* :class:`EstimationManager` -- the engine-facing pipeline: each tick it
  samples the counters, updates the fit against the metered sample, runs
  the :class:`~repro.core.resilience.EstimatorSupervisor` (default on)
  and returns the power sample the governors will consume next tick.

The physics always runs on the true analytic model; only the governors'
*view* of power goes through the estimator, so a wrong model heats the
chip exactly the way it would on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.counters import (
    CYCLES_SCALE,
    CounterConfig,
    CounterEmitter,
    CounterSample,
)
from ..hw.sensors import SensorSample
from ..hw.topology import Chip

#: Feature vector length: intercept + the four aggregated counters.
N_FEATURES = 5


@dataclass(frozen=True)
class EstimationConfig:
    """Configuration of the estimated-power operating mode.

    Attributes:
        counters: Shape of the synthetic counter stream.
        forgetting: RLS forgetting factor in (0, 1]; smaller values track
            drift faster at the cost of noisier coefficients.
        ridge: Ridge regularisation strength; the inverse covariance is
            initialised to ``ridge * I`` so early estimates stay tame.
        innovation_window: Effective window (in ticks) of the
            exponentially-weighted innovation average that feeds
            divergence detection and confidence; at least 2.
        warmup_ticks: Ticks served from the metered sample while the
            fresh fit converges; the supervisor also stays quiet.
        supervised: Run the :class:`~repro.core.resilience.EstimatorSupervisor`
            sanity gates and degradation ladder (default on; disabling it
            serves raw estimates and is meant for experiments only).
        check_period_s: Seconds between supervisor ladder evaluations.
        innovation_gate_w: Innovation level (watts, per cluster) treated
            as the edge of healthy; the ladder's health score is the
            worst cluster's innovation EWMA divided by this gate.
        innovation_clamp_w: Hard per-tick sanity bound: an estimate
            farther than this from the metered reading is rejected for
            that tick (the metered value is served instead).
        margin_factor: Multiplier applied to served estimates on the
            MARGIN rung (> 1): over-reporting power makes every governor
            act conservatively while the model is suspect.
        hysteresis: Health-score slack subtracted from a rung's entry
            threshold before the ladder steps back down.
        recovery_checks: Consecutive healthy evaluations required per
            downward rung (with :attr:`hysteresis`, prevents flapping).
    """

    counters: CounterConfig = field(default_factory=CounterConfig)
    forgetting: float = 0.995
    ridge: float = 1.0
    innovation_window: int = 32
    warmup_ticks: int = 100
    supervised: bool = True
    check_period_s: float = 0.25
    innovation_gate_w: float = 1.0
    innovation_clamp_w: float = 4.0
    margin_factor: float = 1.25
    hysteresis: float = 0.25
    recovery_checks: int = 4

    def __post_init__(self) -> None:
        if not isinstance(self.counters, CounterConfig):
            raise ValueError("counters must be a CounterConfig")
        if not 0.0 < self.forgetting <= 1.0:
            raise ValueError(
                f"forgetting factor must be in (0, 1], got {self.forgetting}"
            )
        if self.ridge <= 0:
            raise ValueError(f"ridge must be positive, got {self.ridge}")
        if self.innovation_window < 2:
            raise ValueError(
                "innovation_window must be at least 2 ticks, got "
                f"{self.innovation_window}"
            )
        if self.warmup_ticks < 1:
            raise ValueError(
                f"warmup_ticks must be at least 1, got {self.warmup_ticks}"
            )
        if self.check_period_s <= 0:
            raise ValueError(
                f"check_period_s must be positive, got {self.check_period_s}"
            )
        if self.innovation_gate_w <= 0:
            raise ValueError(
                f"innovation_gate_w must be positive, got {self.innovation_gate_w}"
            )
        if self.innovation_clamp_w < self.innovation_gate_w:
            raise ValueError(
                "innovation_clamp_w must be at least innovation_gate_w "
                f"({self.innovation_gate_w}), got {self.innovation_clamp_w}"
            )
        if self.margin_factor <= 1.0:
            raise ValueError(
                f"margin_factor must exceed 1, got {self.margin_factor}"
            )
        if self.hysteresis < 0:
            raise ValueError(
                f"hysteresis must be non-negative, got {self.hysteresis}"
            )
        if self.recovery_checks < 1:
            raise ValueError(
                f"recovery_checks must be at least 1, got {self.recovery_checks}"
            )


@dataclass(frozen=True)
class PowerEstimate:
    """One cluster's estimated power and the model's confidence in it.

    ``confidence`` is in (0, 1]: 1 means the recent innovation (estimate
    minus metered) has been negligible against the configured gate; it
    decays towards 0 as the model diverges.
    """

    power_w: float
    confidence: float


def _features(totals: Dict[str, float], dt: float) -> List[float]:
    """Normalised feature vector for one cluster's counter totals."""
    return [
        1.0,
        totals["active_cycles"] / CYCLES_SCALE,
        totals["instr_proxy"] / CYCLES_SCALE,
        totals["mem_stall"] / CYCLES_SCALE,
        totals["idle_s"] / dt,
    ]


class ClusterPowerEstimator:
    """Exponentially-weighted RLS fit of one cluster's power.

    Standard RLS with forgetting factor ``lambda`` and ridge-initialised
    inverse covariance ``P = I / ridge``::

        k = P x / (lambda + x' P x)
        w <- w + k (y - w' x)
        P <- (P - k x' P) / lambda

    Pure Python on 5-vectors: a handful of multiplies per tick, and the
    whole state is JSON-trivial for bit-exact checkpointing.
    """

    def __init__(self, forgetting: float, ridge: float, innovation_window: int):
        self._forgetting = forgetting
        self.weights: List[float] = [0.0] * N_FEATURES
        self._P: List[List[float]] = [
            [(1.0 / ridge if i == j else 0.0) for j in range(N_FEATURES)]
            for i in range(N_FEATURES)
        ]
        self._alpha = 2.0 / (innovation_window + 1.0)
        self.innovation_ewma = 0.0
        self.frozen = False
        self.updates = 0

    def predict(self, x: List[float]) -> float:
        w = self.weights
        return sum(w[i] * x[i] for i in range(N_FEATURES))

    def update(self, x: List[float], y: float) -> float:
        """Observe one (features, metered watts) pair; returns innovation.

        The innovation EWMA always tracks -- even frozen, the supervisor
        needs to score the held model against fresh metered power to know
        when recovery is safe -- but coefficient and covariance updates
        stop while :attr:`frozen` is set.
        """
        innovation = y - self.predict(x)
        self.innovation_ewma += self._alpha * (abs(innovation) - self.innovation_ewma)
        if self.frozen:
            return innovation
        P = self._P
        Px = [sum(P[i][j] * x[j] for j in range(N_FEATURES)) for i in range(N_FEATURES)]
        denom = self._forgetting + sum(x[i] * Px[i] for i in range(N_FEATURES))
        k = [Px[i] / denom for i in range(N_FEATURES)]
        w = self.weights
        for i in range(N_FEATURES):
            w[i] += k[i] * innovation
        inv_forgetting = 1.0 / self._forgetting
        for i in range(N_FEATURES):
            ki = k[i]
            row = P[i]
            for j in range(N_FEATURES):
                row[j] = (row[j] - ki * Px[j]) * inv_forgetting
        self.updates += 1
        return innovation

    # -- snapshot/restore (checkpointing) -------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "weights": list(self.weights),
            "P": [list(row) for row in self._P],
            "innovation_ewma": self.innovation_ewma,
            "frozen": self.frozen,
            "updates": self.updates,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.weights = list(state["weights"])
        self._P = [list(row) for row in state["P"]]
        self.innovation_ewma = state["innovation_ewma"]
        self.frozen = state["frozen"]
        self.updates = state["updates"]


class PowerEstimator:
    """Per-cluster RLS fits plus the chip-level aggregate view."""

    def __init__(self, chip: Chip, config: EstimationConfig):
        self.config = config
        self._estimators: Dict[str, ClusterPowerEstimator] = {
            cluster.cluster_id: ClusterPowerEstimator(
                config.forgetting, config.ridge, config.innovation_window
            )
            for cluster in chip.clusters
        }
        self._last_features: Dict[str, List[float]] = {}

    @property
    def cluster_ids(self) -> List[str]:
        return list(self._estimators)

    def estimator_for(self, cluster_id: str) -> ClusterPowerEstimator:
        return self._estimators[cluster_id]

    @property
    def updates(self) -> int:
        """Unfrozen coefficient updates completed (any cluster's count)."""
        return max(e.updates for e in self._estimators.values())

    def update(
        self, counters: CounterSample, metered: SensorSample, chip: Chip, dt: float
    ) -> None:
        """Fit every cluster against one tick's counters + metered power."""
        totals = counters.cluster_totals(chip)
        for cluster_id, estimator in self._estimators.items():
            x = _features(totals[cluster_id], dt)
            self._last_features[cluster_id] = x
            y = metered.cluster_power_w.get(cluster_id, 0.0)
            estimator.update(x, y)

    def estimates(self) -> Dict[str, PowerEstimate]:
        """Current per-cluster estimates from the last observed features."""
        gate = self.config.innovation_gate_w
        out: Dict[str, PowerEstimate] = {}
        for cluster_id, estimator in self._estimators.items():
            x = self._last_features.get(cluster_id)
            watts = 0.0 if x is None else estimator.predict(x)
            confidence = 1.0 / (1.0 + estimator.innovation_ewma / gate)
            out[cluster_id] = PowerEstimate(power_w=watts, confidence=confidence)
        return out

    def health_score(self) -> float:
        """Worst cluster's innovation EWMA over the configured gate."""
        gate = self.config.innovation_gate_w
        return max(
            (e.innovation_ewma / gate for e in self._estimators.values()),
            default=0.0,
        )

    def freeze(self) -> None:
        for estimator in self._estimators.values():
            estimator.frozen = True

    def unfreeze(self) -> None:
        for estimator in self._estimators.values():
            estimator.frozen = False

    @property
    def frozen(self) -> bool:
        return any(e.frozen for e in self._estimators.values())

    # -- snapshot/restore (checkpointing) -------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "estimators": {
                cid: est.snapshot_state() for cid, est in self._estimators.items()
            },
            "last_features": {
                cid: list(x) for cid, x in self._last_features.items()
            },
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        for cid, est_state in state["estimators"].items():
            self._estimators[cid].restore_state(est_state)
        self._last_features = {
            cid: list(x) for cid, x in state["last_features"].items()
        }


class EstimationManager:
    """The engine-facing estimation pipeline (one per simulation).

    Owns the counter emitter (wrappable by the fault injector), the
    per-cluster estimator and the supervisor; ``on_tick`` runs the whole
    chain after the engine's metered sensor read and returns the sample
    :meth:`~repro.sim.engine.Simulation.last_power_sample` will serve
    until the next tick.
    """

    def __init__(self, chip: Chip, config: EstimationConfig, seed: Optional[int]):
        self.config = config
        self.emitter = CounterEmitter(chip, config.counters, seed)
        self.estimator = PowerEstimator(chip, config)
        self.supervisor = None
        if config.supervised:
            # Local import: resilience must stay importable without this
            # module (it is part of repro.core's import chain).
            from .resilience import EstimatorSupervisor

            max_power = {
                cluster.cluster_id: chip.power_model.max_cluster_power_w(
                    cluster.power_params,
                    cluster.vf_table.max_level,
                    len(cluster.cores),
                )
                for cluster in chip.clusters
            }
            self.supervisor = EstimatorSupervisor(config, max_power)
        self.last_counter_sample: Optional[CounterSample] = None
        self.served_sample: Optional[SensorSample] = None
        self.ticks = 0

    @property
    def warmed_up(self) -> bool:
        return self.ticks >= self.config.warmup_ticks

    @property
    def degraded(self) -> bool:
        """Whether the supervisor has left the healthy rung (MARGIN+)."""
        if self.supervisor is None:
            return False
        return self.supervisor.degraded

    def raw_sample(self, metered: SensorSample) -> SensorSample:
        """Unsupervised estimated sample (frequencies copied from metered)."""
        estimates = self.estimator.estimates()
        cluster_power = {cid: est.power_w for cid, est in estimates.items()}
        return SensorSample(
            chip_power_w=sum(cluster_power.values()),
            cluster_power_w=cluster_power,
            cluster_frequency_mhz=dict(metered.cluster_frequency_mhz),
            cluster_voltage_v=dict(metered.cluster_voltage_v),
        )

    def on_tick(self, sim, metered: SensorSample) -> SensorSample:
        """Advance the pipeline one tick; returns the sample to serve."""
        counters = self.emitter.sample(sim.now, sim.dt)
        self.last_counter_sample = counters
        self.estimator.update(counters, metered, sim.chip, sim.dt)
        self.ticks += 1
        if not self.warmed_up:
            served = metered
        elif self.supervisor is not None:
            served = self.supervisor.on_tick(sim, self.estimator, metered)
        else:
            served = self.raw_sample(metered)
        self.served_sample = served
        return served

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "ticks": self.ticks,
            "warmed_up": self.warmed_up,
            "health_score": self.estimator.health_score(),
            "frozen": self.estimator.frozen,
        }
        if self.supervisor is not None:
            stats.update(self.supervisor.stats())
        return stats
