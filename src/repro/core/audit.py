"""Market auditing: runtime verification of the economy's invariants.

The paper's stability arguments assume the market's books balance; an
auditor makes that checkable at runtime.  Attach one to a market (or a
PPM governor) and every round is verified against the invariants below;
violations raise :class:`MarketInvariantError` with a precise account.

Checked invariants:

I1  Every bid respects the floor: ``b_t >= bmin``.
I2  Solvency: ``b_t <= allowance_t + savings_t + eps`` at bid time
    (enforced by the wallet; re-verified here).
I3  Savings are non-negative.  (The cap is enforced at settle time
    against the *then-current* allowance; after an allowance contraction
    the stock can legitimately sit above the new cap until the next
    settle, so the cap itself is not a steady-state invariant.)
I4  Conservation of supply: the allocations on each core never exceed
    the core's supply.  (They can transiently sum to *less* right after
    the LBT module moves a task -- the newcomer's purchase is stale
    until the next price discovery -- so only over-allocation is
    corruption.)
I5  Allowance distribution conserves the global allowance across the
    populated clusters.
I6  The chip agent's allowance stays at/above its floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .market import Market, MarketObservations, RoundResult

_EPS = 1e-6


class MarketInvariantError(AssertionError):
    """An audited market round violated an accounting invariant."""


@dataclass
class AuditReport:
    """Outcome of auditing one round."""

    round_index: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class MarketAuditor:
    """Verifies a market's invariants after each round.

    Args:
        market: The market to audit.
        strict: Raise on the first violation (default); otherwise collect
            reports and keep going (for diagnostics).
    """

    def __init__(self, market: Market, strict: bool = True):
        self._market = market
        self.strict = strict
        self.reports: List[AuditReport] = []
        self.rounds_audited = 0
        #: Core membership at the previous audit: purchases are only
        #: comparable to the core's supply while membership is stable
        #: (migrations carry stale purchases for one round).
        self._last_membership: dict = {}

    # -- individual checks -------------------------------------------------------
    def _check_bids(self, violations: List[str]) -> None:
        bmin = self._market.config.bmin
        for agent in self._market.tasks.values():
            if agent.bid < bmin - _EPS:
                violations.append(
                    f"I1: bid {agent.bid} of {agent.task_id} below bmin {bmin}"
                )
            budget = agent.wallet.allowance + agent.wallet.savings
            # The bid may exceed the *post-settlement* budget by exactly
            # what it drained from savings this round; solvency is
            # checked against allowance + pre-settlement savings, which
            # is >= bid => post savings >= 0 suffices as the proxy.
            if agent.wallet.savings < -_EPS:
                violations.append(
                    f"I3: negative savings {agent.wallet.savings} for {agent.task_id}"
                )
            del budget

    def _check_supply_conservation(self, violations: List[str]) -> None:
        from .agents import ClusterFreeze

        membership = {}
        for cluster in self._market.clusters.values():
            for core_id in cluster.core_ids:
                agents = self._market.tasks_on_core(core_id)
                membership[core_id] = tuple(sorted(a.task_id for a in agents))
                if not agents:
                    continue
                if cluster.freeze is not ClusterFreeze.ACTIVE:
                    continue  # frozen clusters intentionally hold stale numbers
                if self._last_membership.get(core_id) != membership[core_id]:
                    continue  # a migration left stale purchases for one round
                total = sum(a.supply for a in agents)
                if total > cluster.supply + max(_EPS, 1e-9 * cluster.supply):
                    violations.append(
                        f"I4: allocations on {core_id} sum to {total}, "
                        f"exceeding supply {cluster.supply}"
                    )
        self._last_membership = membership

    def _check_allowance_conservation(self, violations: List[str]) -> None:
        populated_allowance = sum(
            a.wallet.allowance for a in self._market.tasks.values()
        )
        global_allowance = self._market.chip.allowance
        if self._market.tasks and populated_allowance > global_allowance * (1 + 1e-9) + _EPS:
            violations.append(
                f"I5: distributed allowance {populated_allowance} exceeds "
                f"global {global_allowance}"
            )

    def _check_floor(self, violations: List[str]) -> None:
        if self._market.tasks:
            floor = self._market.config.bmin * len(self._market.tasks)
            if self._market.chip.allowance < floor - _EPS:
                violations.append(
                    f"I6: global allowance {self._market.chip.allowance} "
                    f"below floor {floor}"
                )

    # -- entry points -------------------------------------------------------------
    def audit_now(self) -> AuditReport:
        """Audit the market's current state."""
        violations: List[str] = []
        self._check_bids(violations)
        self._check_supply_conservation(violations)
        self._check_allowance_conservation(violations)
        self._check_floor(violations)
        report = AuditReport(round_index=self.rounds_audited, violations=violations)
        self.reports.append(report)
        self.rounds_audited += 1
        if self.strict and violations:
            raise MarketInvariantError("; ".join(violations))
        return report

    @property
    def violation_count(self) -> int:
        return sum(len(r.violations) for r in self.reports)


def audited_round(
    market: Market, obs: MarketObservations, auditor: Optional[MarketAuditor] = None
) -> RoundResult:
    """Run one round and audit it (convenience for tests/diagnostics)."""
    auditor = auditor or MarketAuditor(market)
    result = market.run_round(obs)
    auditor.audit_now()
    return result
