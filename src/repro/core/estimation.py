"""Steady-state estimation of candidate task mappings (paper section 3.3).

Before moving a task, the LBT module predicts what the market would look
like *after* the move settles: per-task demand (from the off-line profile
when the core type changes), supply (demand-limited, or priority-
proportional when the cluster saturates), price (Equation 2's recursion
``P_{Z+1} = P_Z + P_Z * delta`` per V-F level), and from those the two
comparison metrics:

* ``perf(M)`` -- the priority-lexicographic ordering over supply/demand
  ratios, and
* ``spend(M)`` -- the aggregate steady-state bids, a proxy for power.

A candidate mapping is always compared against the current mapping
*evaluated over the same set of affected clusters*: bids and ratios of
untouched clusters are identical in both mappings and cancel out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .market import Market

try:  # pragma: no cover - numpy is baked into the image
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: demand estimator: (task_id, cluster_id) -> steady-state demand in PUs.
DemandLookup = Callable[[str, str], float]

_EPS = 1e-9

#: Population floor for the vectorized per-core estimate loop; below it
#: the scalar loop is cheaper.  Either path yields bit-identical values.
_VEC_EVAL_MIN_TASKS = 32


@dataclass
class MappingEstimate:
    """Predicted steady state for one (possibly hypothetical) mapping."""

    ratios: Dict[str, float]  #: capped supply/demand ratio per affected task
    bids: Dict[str, float]  #: steady-state bid per affected task
    levels: Dict[str, int]  #: required V-F level per affected cluster
    spend: float = field(init=False)

    def __post_init__(self) -> None:
        self.spend = sum(self.bids.values())

    @property
    def all_satisfied(self) -> bool:
        return all(r >= 1.0 - _EPS for r in self.ratios.values())

    def unsatisfied_tasks(self) -> List[str]:
        return [t for t, r in self.ratios.items() if r < 1.0 - _EPS]


def perf_improves(
    current: Dict[str, float],
    candidate: Dict[str, float],
    priorities: Dict[str, int],
) -> bool:
    """``perf(M') > perf(M)`` per the paper's definition.

    True iff some task's supply/demand ratio improves while every task of
    strictly higher priority keeps a ratio at least as good.

    Evaluated by one descending-priority sweep: a task qualifies iff it
    improves and every strictly-higher-priority task already swept is not
    worse -- O(k log k) instead of the quadratic all-pairs scan, with
    identical decisions (the LBT calls this once per candidate mapping).
    """
    if not candidate:
        return False
    ordered = sorted(
        candidate.items(), key=lambda item: priorities[item[0]], reverse=True
    )
    above_ok = True  # every strictly-higher-priority task is >= current
    index = 0
    count = len(ordered)
    while index < count:
        prio = priorities[ordered[index][0]]
        group_end = index
        while group_end < count and priorities[ordered[group_end][0]] == prio:
            group_end += 1
        if above_ok:
            for task_id, new_ratio in ordered[index:group_end]:
                if new_ratio > current.get(task_id, 0.0) + _EPS:
                    return True
        for task_id, new_ratio in ordered[index:group_end]:
            if new_ratio < current.get(task_id, 0.0) - _EPS:
                # No lower-priority task can qualify any more.
                return False
        index = group_end
    return False


def perf_equal(current: Dict[str, float], candidate: Dict[str, float]) -> bool:
    return set(current) == set(candidate) and all(
        abs(candidate[t] - current[t]) <= _EPS for t in current
    )


def perf_not_worse(
    current: Dict[str, float],
    candidate: Dict[str, float],
    priorities: Dict[str, int],
) -> bool:
    """``perf(M') >= perf(M)``: strictly better or equal."""
    return perf_equal(current, candidate) or perf_improves(
        current, candidate, priorities
    )


#: energy model: (cluster_id, level_index) -> watts per PU at full load.
EnergyCostLookup = Callable[[str, int], float]


class SteadyStateEstimator:
    """Evaluates hypothetical mappings against the live market state.

    Args:
        market: The live market.
        demand_lookup: Cross-core-type demand estimator (off-line profile).
        energy_cost_lookup: Optional watts-per-PU model per cluster and
            V-F level.  When present, estimated prices are weighted by the
            cluster's energy cost so that ``spend`` comparisons reflect
            the heterogeneity ("migration of the tasks to the most
            efficient cluster").  On the real platform the chip agent's
            inverse-power allowance distribution pushes market prices
            toward exactly this shape; the simulator encodes the
            steady-state result directly (documented substitution).
    """

    def __init__(
        self,
        market: Market,
        demand_lookup: DemandLookup,
        energy_cost_lookup: Optional[EnergyCostLookup] = None,
    ):
        self._market = market
        self._demand_fn = demand_lookup
        self._energy_cost = energy_cost_lookup
        #: Optional vectorized counterpart of ``demand_lookup``: maps a
        #: task-id roster and a cluster to a demand array bit-identical to
        #: per-task ``demand_lookup`` calls, or returns ``None`` when the
        #: scalar semantics cannot be reproduced (caller falls back).
        self.demand_array_fn: Optional[Callable[[List[str], str], object]] = None
        # Per-batch caches (see begin_batch): market state is frozen while
        # the LBT enumerates candidates, so every pure lookup is memoised
        # for the duration of one proposal sweep.
        self._batch: Optional[dict] = None

    @property
    def energy_aware(self) -> bool:
        """Whether spend estimates reflect per-cluster energy costs."""
        return self._energy_cost is not None

    # -- batch memoisation ------------------------------------------------------
    def begin_batch(self) -> None:
        """Start a memoised evaluation sweep.

        The LBT module evaluates dozens of candidate mappings against one
        frozen market state; demand lookups, price estimates and whole
        mapping estimates repeat heavily across candidates.  Between
        ``begin_batch`` and ``end_batch`` those pure lookups are cached.
        Callers must not mutate the market while a batch is active.
        """
        self._batch = {
            "demand": {},  # (task_id, cluster_id) -> PUs
            "price": {},  # (cluster_id, target_level) -> price per PU
            "core_demand": {},  # core_id -> unmodified per-core demand sum
            "evaluate": {},  # (frozenset clusters, move items) -> estimate
            "avg_price": None,
            "mean_cost": None,
        }

    def end_batch(self) -> None:
        self._batch = None

    def demand_array(self, task_ids: List[str], cluster_id: str):
        """Vectorized ``_demand`` over a roster, or ``None`` to fall back."""
        fn = self.demand_array_fn
        return None if fn is None else fn(task_ids, cluster_id)

    def prime_demands(self, cluster_id: str, task_ids: List[str]) -> None:
        """Bulk-fill the batch demand memo via the vectorized lookup.

        The array path yields values bit-identical to per-task
        ``_demand`` calls, so scalar evaluation that follows -- with its
        exact left-to-right sum folds -- is unchanged; only the per-task
        python lookups are skipped.  A no-op without an active batch or
        when the vector path declines.
        """
        batch = self._batch
        if batch is None:
            return
        arr = self.demand_array(task_ids, cluster_id)
        if arr is None:
            return
        memo = batch["demand"]
        for tid, val in zip(task_ids, arr.tolist()):
            memo[(tid, cluster_id)] = val

    def _demand(self, task_id: str, cluster_id: str) -> float:
        batch = self._batch
        if batch is None:
            return self._demand_fn(task_id, cluster_id)
        memo = batch["demand"]
        key = (task_id, cluster_id)
        value = memo.get(key)
        if value is None:
            value = self._demand_fn(task_id, cluster_id)
            memo[key] = value
        return value

    # -- price estimation -----------------------------------------------------
    def _average_price_per_pu(self) -> float:
        """Market-wide average price, the fallback for priceless clusters."""
        batch = self._batch
        if batch is not None and batch["avg_price"] is not None:
            return batch["avg_price"]
        total_bids = sum(agent.bid for agent in self._market.tasks.values())
        total_supply = sum(
            cluster.supply
            for cluster in self._market.clusters.values()
            if self._market.tasks_on_cluster(cluster.cluster_id)
        )
        if total_supply <= 0.0:
            price = self._market.config.bmin
        else:
            price = total_bids / total_supply
        if batch is not None:
            batch["avg_price"] = price
        return price

    def estimate_price(self, cluster_id: str, target_level: int) -> float:
        """Steady-state price per PU on ``cluster_id`` at ``target_level``.

        With an energy model: the chip-wide average price re-weighted by
        the cluster's watts-per-PU at the target level, relative to the
        chip's mean energy cost -- the price structure the allowance
        feedback converges to on real hardware.

        Without one (stand-alone market tests, synthetic chips): Equation
        2's recursion from the current price -- moving up one V-F level
        inflates the price by the tolerance factor (``P_{Z+1} = P_Z + P_Z
        * delta``), moving down deflates it symmetrically.
        """
        batch = self._batch
        if batch is not None:
            cached = batch["price"].get((cluster_id, target_level))
            if cached is not None:
                return cached
        price = self._estimate_price_uncached(cluster_id, target_level)
        if batch is not None:
            batch["price"][(cluster_id, target_level)] = price
        return price

    def _estimate_price_uncached(self, cluster_id: str, target_level: int) -> float:
        cluster = self._market.clusters[cluster_id]
        if self._energy_cost is not None:
            avg_price = self._average_price_per_pu()
            mean_cost = self._mean_energy_cost()
            cost = self._energy_cost(cluster_id, target_level)
            if mean_cost > 0.0 and cost > 0.0:
                return max(avg_price * cost / mean_cost, 0.0)
        constrained = self._market.constrained_core(cluster_id)
        if constrained is not None and constrained.price > 0.0:
            price = constrained.price
        else:
            price = self._average_price_per_pu()
        delta = self._market.config.tolerance
        steps = target_level - cluster.level_index
        if steps >= 0:
            price *= (1.0 + delta) ** steps
        else:
            price *= (1.0 - delta) ** (-steps)
        return max(price, 0.0)

    def _mean_energy_cost(self) -> float:
        """Mean watts-per-PU across clusters at their current levels."""
        assert self._energy_cost is not None
        batch = self._batch
        if batch is not None and batch["mean_cost"] is not None:
            return batch["mean_cost"]
        result = self._mean_energy_cost_uncached()
        if batch is not None:
            batch["mean_cost"] = result
        return result

    def _mean_energy_cost_uncached(self) -> float:
        assert self._energy_cost is not None
        costs = [
            self._energy_cost(cluster_id, cluster.level_index)
            for cluster_id, cluster in self._market.clusters.items()
        ]
        costs = [c for c in costs if c > 0.0]
        if not costs:
            return 0.0
        return sum(costs) / len(costs)

    # -- mapping evaluation -----------------------------------------------------
    def evaluate_current(
        self, cluster_ids: Optional[Iterable[str]] = None
    ) -> MappingEstimate:
        """Steady-state estimate of the mapping as it stands."""
        if cluster_ids is None:
            cluster_ids = [
                cid
                for cid in self._market.clusters
                if self._market.tasks_on_cluster(cid)
            ]
        return self._evaluate_memo(frozenset(cluster_ids), moves={})

    def evaluate_move(
        self, task_id: str, core_id: str
    ) -> Tuple[MappingEstimate, MappingEstimate]:
        """(current, candidate) estimates for moving one task.

        Both estimates cover exactly the source and destination clusters,
        so their ``spend`` and ``ratios`` are directly comparable.
        """
        market = self._market
        if task_id not in market.tasks:
            raise KeyError(f"unknown task {task_id}")
        if core_id not in market.cores:
            raise KeyError(f"unknown core {core_id}")
        affected = frozenset(
            (
                market.cores[market.core_of(task_id)].cluster_id,
                market.cores[core_id].cluster_id,
            )
        )
        current = self._evaluate_memo(affected, moves={})
        candidate = self._evaluate_memo(affected, moves={task_id: core_id})
        return current, candidate

    def _evaluate_memo(
        self, affected_clusters: frozenset, moves: Dict[str, str]
    ) -> MappingEstimate:
        batch = self._batch
        if batch is None:
            return self._evaluate(affected_clusters, moves)
        key = (affected_clusters, tuple(moves.items()))
        memo = batch["evaluate"]
        estimate = memo.get(key)
        if estimate is None:
            estimate = self._evaluate(affected_clusters, moves)
            memo[key] = estimate
        return estimate

    def _core_demand_sum(self, core_id: str, cluster_id: str, tids: List[str]) -> float:
        """Summed steady-state demand of ``tids`` on ``cluster_id``."""
        total = 0.0
        for task_id in tids:
            total += self._demand(task_id, cluster_id)
        return total

    def _evaluate(
        self, affected_clusters: Set[str], moves: Dict[str, str]
    ) -> MappingEstimate:
        market = self._market
        batch = self._batch
        # At most one move per candidate (the LBT evaluates single-task
        # movements); a moved task leaves its source core's list and is
        # appended to the destination core's.
        move_task: Optional[str] = None
        move_core: Optional[str] = None
        source_core: Optional[str] = None
        if moves:
            move_task, move_core = next(iter(moves.items()))
            if len(moves) > 1:
                raise ValueError("estimator evaluates one move at a time")
            source_core = market.core_of(move_task)

        ratios: Dict[str, float] = {}
        bids: Dict[str, float] = {}
        levels: Dict[str, int] = {}
        tasks_by_core = market._tasks_by_core
        for cluster_id in sorted(affected_clusters):
            cluster = market.clusters[cluster_id]
            core_tasks: Dict[str, List[str]] = {}
            core_demands: Dict[str, float] = {}
            for core_id in cluster.core_ids:
                tids = tasks_by_core[core_id]
                modified = False
                if move_task is not None and move_core != source_core:
                    if core_id == source_core:
                        tids = [t for t in tids if t != move_task]
                        modified = True
                    elif core_id == move_core:
                        tids = tids + [move_task]
                        modified = True
                core_tasks[core_id] = tids
                if modified or batch is None:
                    core_demands[core_id] = self._core_demand_sum(
                        core_id, cluster_id, tids
                    )
                else:
                    cached = batch["core_demand"].get(core_id)
                    if cached is None:
                        cached = self._core_demand_sum(core_id, cluster_id, tids)
                        batch["core_demand"][core_id] = cached
                    core_demands[core_id] = cached

            cluster_demand = max(core_demands.values(), default=0.0)
            if cluster_demand <= 0.0:
                levels[cluster_id] = 0
                continue
            # Round demand up to the next supply value (section 3.2.4).
            target_level = cluster.max_index
            for index, supply in enumerate(cluster.supply_ladder):
                if supply >= cluster_demand - _EPS:
                    target_level = index
                    break
            levels[cluster_id] = target_level
            price = self.estimate_price(cluster_id, target_level)

            for core_id, tids in core_tasks.items():
                if not tids:
                    continue
                core_supply = cluster.supply_ladder[target_level]
                core_saturated = core_demands[core_id] > core_supply + _EPS
                if _np is not None and len(tids) >= _VEC_EVAL_MIN_TASKS:
                    # Vectorized per-task arithmetic: every expression is
                    # the elementwise image of the scalar branch below
                    # (the priority sum keeps its left-to-right fold), so
                    # the resulting dicts are bit-identical, in the same
                    # insertion order.
                    prio_list = [market.tasks[t].priority for t in tids]
                    priority_sum = sum(prio_list)
                    d = _np.asarray(
                        [self._demand(t, cluster_id) for t in tids]
                    )
                    positive = d > 0.0
                    if not core_saturated:
                        supply_arr = d
                    else:
                        supply_arr = (
                            core_supply
                            * _np.asarray(prio_list, dtype=float)
                            / priority_sum
                        )
                        supply_arr = _np.where(
                            positive, _np.minimum(supply_arr, d), supply_arr
                        )
                    ratio_arr = _np.where(
                        positive,
                        _np.minimum(
                            1.0, supply_arr / _np.where(positive, d, 1.0)
                        ),
                        1.0,
                    )
                    bid_arr = _np.maximum(
                        supply_arr * price, market.config.bmin
                    )
                    ratios.update(zip(tids, ratio_arr.tolist()))
                    bids.update(zip(tids, bid_arr.tolist()))
                    continue
                priority_sum = sum(market.tasks[t].priority for t in tids)
                for task_id in tids:
                    demand = self._demand(task_id, cluster_id)
                    if not core_saturated:
                        supply = demand
                    else:
                        # Priority-proportional split of the saturated core.
                        supply = core_supply * market.tasks[task_id].priority / priority_sum
                        if demand > 0.0:
                            supply = min(supply, demand)
                    ratios[task_id] = (
                        min(1.0, supply / demand) if demand > 0.0 else 1.0
                    )
                    bids[task_id] = max(supply * price, market.config.bmin)
        return MappingEstimate(ratios=ratios, bids=bids, levels=levels)
